//! Simulated NFS servers: the prototype Network Appliance F85 filer (with
//! NVRAM log and checkpoint pauses), the four-way Linux knfsd (UNSTABLE
//! writes plus COMMIT against a single SCSI disk), and a generic slow
//! server on 100 Mb/s Ethernet.
//!
//! Servers consume real RPC CALL datagrams from a NIC receive queue,
//! decode them with `nfsperf-sunrpc`/`nfsperf-nfs3`, and answer with real
//! REPLY encodings — the client cannot tell these from a byte-accurate
//! NFSv3 peer, which is the point: the paper's client-side effects must
//! emerge from protocol-level interaction, not from shortcuts.

pub mod disk;
pub mod fs;
pub mod nvram;
pub mod sched;
pub mod server;

pub use disk::DiskModel;
pub use fs::{FsState, ROOT_FILEID};
pub use nvram::{Nvram, NvramAdmit};
pub use sched::{
    ClassedDrr, Drr, Fifo, LatencyDigest, OpClass, ReqMeta, SchedPolicy, Scheduler, ServiceEngine,
    SvcAdmit, SvcSlot, Ticket,
};
pub use server::{
    BackendConfig, DiskKind, FlyStep, FlyweightOp, NfsServer, PerClientStats, ServerConfig,
    ServerStats, SlimTierStats,
};

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_net::{Nic, NicSpec, Path};
    use nfsperf_nfs3::{
        Commit3Args, Commit3Res, Create3Args, Create3Res, CreateMode, NfsProc3, NfsStat3, Sattr3,
        StableHow, Write3Args, Write3Res, NFS_PROGRAM, NFS_V3,
    };
    use nfsperf_sim::{Receiver, Sim, SimDuration};
    use nfsperf_sunrpc::{decode_reply, encode_call, AuthUnix};
    use nfsperf_xdr::XdrDecode;
    use std::rc::Rc;

    struct TestClient {
        sim: Sim,
        to_server: Path,
        rx: Receiver<Vec<u8>>,
        xid: std::cell::Cell<u32>,
    }

    impl TestClient {
        async fn call<A: nfsperf_xdr::XdrEncode, R: XdrDecode>(
            &self,
            proc: NfsProc3,
            args: &A,
        ) -> R {
            let xid = self.xid.get();
            self.xid.set(xid + 1);
            let msg = encode_call(
                xid,
                NFS_PROGRAM,
                NFS_V3,
                proc as u32,
                &AuthUnix::root_on("test"),
                args,
            );
            self.to_server.send(msg);
            let reply = self.rx.recv().await.expect("server reply");
            let (hdr, mut dec) = decode_reply(&reply).expect("parse reply");
            assert_eq!(hdr.xid, xid);
            R::decode(&mut dec).expect("decode results")
        }
    }

    fn build(config: ServerConfig, server_nic: NicSpec) -> (Sim, TestClient, Rc<NfsServer>) {
        let sim = Sim::new();
        let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (snic, srx) = Nic::new(&sim, "server", server_nic);
        let to_server = Path::new(cnic, snic, Path::default_latency());
        let server = NfsServer::spawn(&sim, srx, to_server.reversed(), config);
        let client = TestClient {
            sim: sim.clone(),
            to_server,
            rx: crx,
            xid: std::cell::Cell::new(1),
        };
        (sim, client, server)
    }

    async fn create_and_write(
        client: &TestClient,
        server: &Rc<NfsServer>,
        stable: StableHow,
        writes: u32,
    ) -> (nfsperf_nfs3::FileHandle, Vec<Write3Res>) {
        let root = server.fs.root_handle();
        let created: Create3Res = client
            .call(
                NfsProc3::Create,
                &Create3Args {
                    dir: root,
                    name: "bench".into(),
                    mode: CreateMode::Unchecked,
                    attrs: Sattr3::default(),
                },
            )
            .await;
        assert_eq!(created.status, NfsStat3::Ok);
        let fh = created.file.unwrap();
        let mut results = Vec::new();
        for i in 0..writes {
            let res: Write3Res = client
                .call(
                    NfsProc3::Write,
                    &Write3Args::new(fh, u64::from(i) * 8192, 8192, stable),
                )
                .await;
            results.push(res);
        }
        (fh, results)
    }

    #[test]
    fn filer_grants_file_sync() {
        let (sim, client, server) = build(ServerConfig::netapp_f85(), NicSpec::gigabit());
        let srv = Rc::clone(&server);
        sim.run_until(async move {
            let (_fh, results) = create_and_write(&client, &srv, StableHow::Unstable, 4).await;
            for r in &results {
                assert_eq!(r.status, NfsStat3::Ok);
                assert_eq!(r.committed, StableHow::FileSync);
                assert_eq!(r.count, 8192);
            }
        });
        assert_eq!(server.stats().writes, 4);
        assert_eq!(server.stats().write_bytes, 4 * 8192);
    }

    #[test]
    fn knfsd_grants_unstable_then_commits_to_disk() {
        let (sim, client, server) = build(ServerConfig::linux_knfsd(), NicSpec::gigabit());
        let srv = Rc::clone(&server);
        sim.run_until(async move {
            let (fh, results) = create_and_write(&client, &srv, StableHow::Unstable, 4).await;
            for r in &results {
                assert_eq!(r.committed, StableHow::Unstable);
            }
            assert_eq!(srv.dirty_bytes(), Some(4 * 8192));
            let commit: Commit3Res = client
                .call(
                    NfsProc3::Commit,
                    &Commit3Args {
                        file: fh,
                        offset: 0,
                        count: 0,
                    },
                )
                .await;
            assert_eq!(commit.status, NfsStat3::Ok);
            assert_eq!(srv.dirty_bytes(), Some(0));
        });
        assert_eq!(server.stats().commits, 1);
    }

    #[test]
    fn knfsd_sync_write_flushes_through() {
        let (sim, client, server) = build(ServerConfig::linux_knfsd(), NicSpec::gigabit());
        let srv = Rc::clone(&server);
        sim.run_until(async move {
            let (_fh, results) = create_and_write(&client, &srv, StableHow::FileSync, 1).await;
            assert_eq!(results[0].committed, StableHow::FileSync);
            assert_eq!(
                srv.dirty_bytes(),
                Some(0),
                "sync write leaves nothing dirty"
            );
        });
    }

    #[test]
    fn write_reply_carries_wcc_and_size_grows() {
        let (sim, client, server) = build(ServerConfig::netapp_f85(), NicSpec::gigabit());
        let srv = Rc::clone(&server);
        sim.run_until(async move {
            let (fh, results) = create_and_write(&client, &srv, StableHow::Unstable, 3).await;
            assert_eq!(results[2].wcc.before.unwrap().size, 2 * 8192);
            assert_eq!(results[2].wcc.after.unwrap().size, 3 * 8192);
            assert_eq!(srv.fs.size_of(&fh).unwrap(), 3 * 8192);
        });
    }

    #[test]
    fn filer_checkpoint_pauses_service() {
        let mut config = ServerConfig::netapp_f85();
        if let BackendConfig::Filer {
            ref mut checkpoint_offset,
            ref mut checkpoint_duration,
            ..
        } = config.backend
        {
            *checkpoint_offset = SimDuration::from_millis(1);
            *checkpoint_duration = SimDuration::from_millis(50);
        }
        let (sim, client, server) = build(config, NicSpec::gigabit());
        let srv = Rc::clone(&server);
        let s = sim.clone();
        sim.run_until(async move {
            // Land a write inside the checkpoint window.
            s.sleep(SimDuration::from_millis(2)).await;
            let before = s.now();
            let (_fh, _r) = create_and_write(&client, &srv, StableHow::Unstable, 1).await;
            let elapsed = s.now().since(before);
            assert!(
                elapsed >= SimDuration::from_millis(40),
                "write during checkpoint should stall, took {elapsed}"
            );
        });
        assert!(server.stats().checkpoints >= 1);
    }

    #[test]
    fn reboot_changes_verifier_and_drops_dirty() {
        let (sim, client, server) = build(ServerConfig::linux_knfsd(), NicSpec::gigabit());
        let srv = Rc::clone(&server);
        sim.run_until(async move {
            let (_fh, results) = create_and_write(&client, &srv, StableHow::Unstable, 2).await;
            let v1 = results[0].verf;
            srv.reboot();
            assert_ne!(srv.current_verf(), v1);
            assert_eq!(srv.dirty_bytes(), Some(0));
        });
    }

    #[test]
    fn unknown_proc_rejected() {
        let (sim, client, _server) = build(ServerConfig::slow_100bt(), NicSpec::fast_ethernet());
        sim.run_until(async move {
            let msg = encode_call(
                77,
                NFS_PROGRAM,
                NFS_V3,
                19, // unimplemented proc
                &AuthUnix::root_on("test"),
                &0u32,
            );
            client.to_server.send(msg);
            let reply = client.rx.recv().await.unwrap();
            let (hdr, _dec) = decode_reply(&reply).unwrap();
            assert_eq!(hdr.xid, 77);
            assert_eq!(hdr.accept_stat, nfsperf_sunrpc::ACCEPT_PROC_UNAVAIL);
        });
    }

    #[test]
    fn wrong_program_and_version_get_distinct_accept_stats() {
        let (sim, client, _server) = build(ServerConfig::netapp_f85(), NicSpec::gigabit());
        sim.run_until(async move {
            // Wrong program number: PROG_UNAVAIL.
            client.to_server.send(encode_call(
                101,
                100_005, // mountd, not NFS
                NFS_V3,
                0,
                &AuthUnix::root_on("test"),
                &0u32,
            ));
            let reply = client.rx.recv().await.unwrap();
            let (hdr, _dec) = decode_reply(&reply).unwrap();
            assert_eq!(hdr.xid, 101);
            assert_eq!(hdr.accept_stat, nfsperf_sunrpc::ACCEPT_PROG_UNAVAIL);

            // Right program, unsupported version: PROG_MISMATCH.
            client.to_server.send(encode_call(
                102,
                NFS_PROGRAM,
                2, // NFSv2
                0,
                &AuthUnix::root_on("test"),
                &0u32,
            ));
            let reply = client.rx.recv().await.unwrap();
            let (hdr, _dec) = decode_reply(&reply).unwrap();
            assert_eq!(hdr.xid, 102);
            assert_eq!(hdr.accept_stat, nfsperf_sunrpc::ACCEPT_PROG_MISMATCH);
        });
    }

    /// Drives `spawn_tcp` with a raw TCP client endpoint: connect, send
    /// record-marked calls, read record-marked replies.
    fn tcp_roundtrip(config: ServerConfig) {
        use nfsperf_sunrpc::{encode_record, RecordReader};
        use nfsperf_tcp::{TcpConfig, TcpEndpoint};

        let sim = Sim::new();
        let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (snic, srx) = Nic::new(&sim, "server", NicSpec::gigabit());
        let to_server = Path::new(cnic, snic, Path::default_latency());
        let server = NfsServer::spawn_tcp(&sim, srx, to_server.reversed(), config);
        let client = TcpEndpoint::new(&sim, to_server, crx, TcpConfig::for_mtu(1500));
        let root = server.fs.root_handle();

        async fn recv_reply(records: &mut RecordReader, conn: &Rc<nfsperf_tcp::TcpConn>) -> Vec<u8> {
            loop {
                if let Some(r) = records.next_record() {
                    return r;
                }
                records.push(&conn.recv_some().await.expect("stream open"));
            }
        }

        let writes = sim.run_until(async move {
            let conn = client.connect().await.expect("handshake");
            let mut records = RecordReader::new();
            let create = encode_call(
                1,
                NFS_PROGRAM,
                NFS_V3,
                NfsProc3::Create as u32,
                &AuthUnix::root_on("test"),
                &Create3Args {
                    dir: root,
                    name: "bench".into(),
                    mode: CreateMode::Unchecked,
                    attrs: Sattr3::default(),
                },
            );
            conn.send(&encode_record(&create)).unwrap();
            let reply = recv_reply(&mut records, &conn).await;
            let (hdr, mut dec) = decode_reply(&reply).unwrap();
            assert_eq!(hdr.xid, 1);
            let created = Create3Res::decode(&mut dec).unwrap();
            assert_eq!(created.status, NfsStat3::Ok);
            let fh = created.file.unwrap();

            for i in 0..4u32 {
                let write = encode_call(
                    2 + i,
                    NFS_PROGRAM,
                    NFS_V3,
                    NfsProc3::Write as u32,
                    &AuthUnix::root_on("test"),
                    &Write3Args::new(fh, u64::from(i) * 8192, 8192, StableHow::Unstable),
                );
                conn.send(&encode_record(&write)).unwrap();
                let reply = recv_reply(&mut records, &conn).await;
                let (hdr, mut dec) = decode_reply(&reply).unwrap();
                assert_eq!(hdr.xid, 2 + i);
                let res = Write3Res::decode(&mut dec).unwrap();
                assert_eq!(res.status, NfsStat3::Ok);
                assert_eq!(res.count, 8192);
            }
            4
        });
        assert_eq!(server.stats().writes, writes);
        assert_eq!(server.stats().write_bytes, writes * 8192);
    }

    #[test]
    fn tcp_server_filer_serves_writes() {
        tcp_roundtrip(ServerConfig::netapp_f85());
    }

    #[test]
    fn tcp_server_knfsd_serves_writes() {
        tcp_roundtrip(ServerConfig::linux_knfsd());
    }

    #[test]
    fn knfsd_inline_flush_when_dirty_cap_exceeded() {
        let mut config = ServerConfig::linux_knfsd();
        if let BackendConfig::CacheDisk {
            ref mut dirty_cap, ..
        } = config.backend
        {
            *dirty_cap = 16 * 1024; // two 8K writes fill it
        }
        let (sim, client, server) = build(config, NicSpec::gigabit());
        let srv = Rc::clone(&server);
        sim.run_until(async move {
            let (_fh, _r) = create_and_write(&client, &srv, StableHow::Unstable, 5).await;
        });
        assert!(server.stats().inline_flushes > 0);
    }

    /// Flyweight requests contend for the same backend as faithful
    /// traffic (the dirty cache fills and flushes) but leave only shared
    /// tier counters behind — no per-client stats entry, no digests.
    #[test]
    fn flyweight_tier_counts_without_per_client_state() {
        let (sim, client, server) = build(ServerConfig::linux_knfsd(), NicSpec::gigabit());
        let srv = Rc::clone(&server);
        let base = server.register_slim_clients(10_000);
        sim.run_until(async move {
            let (_fh, _r) = create_and_write(&client, &srv, StableHow::Unstable, 2).await;
            for i in 0..4u64 {
                srv.serve_flyweight_write(base + (i as usize % 10_000), 8192).await;
            }
            srv.serve_flyweight_commit(base).await;
        });
        let slim = server.slim_stats();
        assert_eq!(slim.clients, 10_000);
        assert_eq!(slim.writes, 4);
        assert_eq!(slim.write_bytes, 4 * 8192);
        assert_eq!(slim.commits, 1);
        // Aggregate server stats see the whole mixed load...
        assert_eq!(server.stats().writes, 6);
        assert_eq!(server.stats().write_bytes, 6 * 8192);
        // ...but only the faithful client materialized per-client state.
        let per_client = server.per_client_stats();
        assert_eq!(per_client.len(), base);
        assert_eq!(per_client[0].writes, 2);
        assert!(server.service_engine().service_samples(base).is_empty());
    }

    /// The poll-style flyweight machine must replay the async flyweight
    /// path exactly: same finish times, same aggregate stats, on every
    /// backend — including ones sized down to force NVRAM stalls and
    /// inline dirty-cache flushes, where wait-queue order decides who
    /// flushes what.
    #[test]
    fn flyweight_poll_machine_matches_task_engine() {
        use nfsperf_sim::EventHandlerId;
        use server::{FlyStep, FlyweightOp};
        use std::cell::{Cell, RefCell};

        const CLIENTS: usize = 4;
        const WRITES: u32 = 8;
        const BYTES: u64 = 64 * 1024;

        fn configs() -> Vec<ServerConfig> {
            let mut filer = ServerConfig::netapp_f85();
            if let BackendConfig::Filer {
                ref mut nvram_capacity,
                ref mut checkpoint_offset,
                ..
            } = filer.backend
            {
                *nvram_capacity = 192 * 1024; // force admission stalls
                *checkpoint_offset = SimDuration::from_micros(200);
            }
            let mut knfsd = ServerConfig::linux_knfsd();
            if let BackendConfig::CacheDisk {
                ref mut dirty_cap, ..
            } = knfsd.backend
            {
                *dirty_cap = 128 * 1024; // force inline flushes
            }
            vec![filer, knfsd, ServerConfig::slow_100bt()]
        }

        type Outcome = (u64, ServerStats, SlimTierStats);

        fn run_tasks(config: ServerConfig) -> Outcome {
            let sim = Sim::new();
            let server = NfsServer::new(&sim, config);
            let base = server.register_slim_clients(CLIENTS);
            let done = Rc::new(Cell::new(0usize));
            let finish = Rc::new(Cell::new(0u64));
            for c in 0..CLIENTS {
                let srv = Rc::clone(&server);
                let done = Rc::clone(&done);
                let finish = Rc::clone(&finish);
                let s = sim.clone();
                sim.spawn(async move {
                    for _ in 0..WRITES {
                        srv.serve_flyweight_write(base + c, BYTES).await;
                    }
                    srv.serve_flyweight_commit(base + c).await;
                    finish.set(finish.get().max(s.now().as_nanos()));
                    done.set(done.get() + 1);
                });
            }
            let s = sim.clone();
            let d = Rc::clone(&done);
            sim.run_until(async move {
                while d.get() < CLIENTS {
                    s.sleep(SimDuration::from_micros(100)).await;
                }
            });
            (finish.get(), server.stats(), server.slim_stats())
        }

        fn run_events(config: ServerConfig) -> Outcome {
            struct Chain {
                writes_left: u32,
                committed: bool,
                op: FlyweightOp,
            }
            struct Driver {
                sim: Sim,
                server: Rc<NfsServer>,
                handler: Cell<EventHandlerId>,
                chains: RefCell<Vec<Chain>>,
                base: usize,
                live: Cell<usize>,
                finish: Cell<u64>,
            }
            impl Driver {
                fn step(&self, idx: usize) {
                    let mut chains = self.chains.borrow_mut();
                    let chain = &mut chains[idx];
                    let sim = self.sim.clone();
                    let h = self.handler.get();
                    let data = idx as u64;
                    let mut wf = move || sim.event_waker(h, data).1;
                    loop {
                        match self.server.poll_flyweight(&mut chain.op, &mut wf) {
                            FlyStep::Parked => return,
                            FlyStep::Sleep(d) => {
                                let deadline =
                                    nfsperf_sim::SimTime(self.sim.now().as_nanos() + d.as_nanos());
                                if deadline > self.sim.now() {
                                    self.sim.schedule_event(deadline, h, data);
                                    return;
                                }
                            }
                            FlyStep::Done => {
                                if chain.writes_left > 0 {
                                    chain.writes_left -= 1;
                                    chain.op =
                                        self.server.begin_flyweight_write(self.base + idx, BYTES);
                                } else if !chain.committed {
                                    chain.committed = true;
                                    chain.op =
                                        self.server.begin_flyweight_commit(self.base + idx);
                                } else {
                                    self.finish
                                        .set(self.finish.get().max(self.sim.now().as_nanos()));
                                    self.live.set(self.live.get() - 1);
                                    return;
                                }
                            }
                        }
                    }
                }
            }
            let sim = Sim::new();
            let server = NfsServer::new(&sim, config);
            let base = server.register_slim_clients(CLIENTS);
            let driver = Rc::new(Driver {
                sim: sim.clone(),
                server: Rc::clone(&server),
                handler: Cell::new(sim.register_event_handler(Rc::new(|_| {}))),
                chains: RefCell::new(Vec::new()),
                base,
                live: Cell::new(CLIENTS),
                finish: Cell::new(0),
            });
            let d = Rc::clone(&driver);
            let h = sim.register_event_handler(Rc::new(move |data| d.step(data as usize)));
            driver.handler.set(h);
            for c in 0..CLIENTS {
                driver.chains.borrow_mut().push(Chain {
                    writes_left: WRITES - 1,
                    committed: false,
                    op: server.begin_flyweight_write(base + c, BYTES),
                });
                sim.post_event(h, c as u64);
            }
            let s = sim.clone();
            let d = Rc::clone(&driver);
            sim.run_until(async move {
                while d.live.get() > 0 {
                    s.sleep(SimDuration::from_micros(100)).await;
                }
            });
            sim.clear_event_handler(h);
            (driver.finish.get(), server.stats(), server.slim_stats())
        }

        for config in configs() {
            let name = config.name;
            let tasks = run_tasks(config.clone());
            let events = run_events(config);
            assert_eq!(tasks, events, "engines diverged on {name}");
        }
    }

    #[test]
    fn slow_server_throughput_is_wire_bound() {
        let (sim, client, server) = build(ServerConfig::slow_100bt(), NicSpec::fast_ethernet());
        let srv = Rc::clone(&server);
        let start_to_end = sim.run_until(async move {
            let t0 = client.sim.now();
            let (_fh, _r) = create_and_write(&client, &srv, StableHow::Unstable, 64).await;
            client.sim.now().since(t0)
        });
        // 64 x 8 KiB = 512 KiB serially over 100 Mb/s: at least 45 ms of
        // pure wire time (ignoring latency and service).
        assert!(
            start_to_end >= SimDuration::from_millis(45),
            "slow wire must dominate: {start_to_end}"
        );
        assert_eq!(server.stats().writes, 64);
    }
}
