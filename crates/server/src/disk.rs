//! Disk models: a single arm with seek cost and streaming bandwidth.

use std::rc::Rc;

use nfsperf_sim::{ByteMeter, Semaphore, Sim, SimDuration};

/// A simple disk: one arm (writes serialize), per-operation positioning
/// cost, and a streaming rate.
pub struct DiskModel {
    sim: Sim,
    arm: Rc<Semaphore>,
    /// Streaming bandwidth in bytes/second.
    stream_bps: u64,
    /// Positioning (seek + rotational) cost per operation.
    position: SimDuration,
    meter: ByteMeter,
}

impl DiskModel {
    /// Creates a disk with the given streaming rate and positioning cost.
    pub fn new(sim: &Sim, stream_bytes_per_sec: u64, position: SimDuration) -> DiskModel {
        assert!(stream_bytes_per_sec > 0, "disk rate must be positive");
        DiskModel {
            sim: sim.clone(),
            arm: Rc::new(Semaphore::new(1)),
            stream_bps: stream_bytes_per_sec,
            position,
            meter: ByteMeter::new(),
        }
    }

    /// The paper's client-side IBM Deskstar EIDE drive, crippled to
    /// multiword DMA mode 2 by the ServerWorks south bridge: ~14 MB/s
    /// streaming.
    pub fn ide_udma_crippled(sim: &Sim) -> DiskModel {
        DiskModel::new(sim, 14_000_000, SimDuration::from_millis(9))
    }

    /// The Linux server's single Seagate SCSI LVD disk: ~30 MB/s stream.
    pub fn scsi_single(sim: &Sim) -> DiskModel {
        DiskModel::new(sim, 30_000_000, SimDuration::from_millis(6))
    }

    /// The filer's eight-disk RAID 4 volume: ~40 MB/s of sequential write
    /// bandwidth after parity.
    pub fn raid4_volume(sim: &Sim) -> DiskModel {
        DiskModel::new(sim, 40_000_000, SimDuration::from_millis(4))
    }

    /// Writes `bytes` sequentially (no positioning cost): the model for
    /// log-style drains and large flushes.
    pub async fn write_stream(&self, bytes: u64) {
        let _arm = self.arm.acquire().await;
        self.sim.sleep(self.transfer_time(bytes)).await;
        self.meter.record(self.sim.now(), bytes);
    }

    /// Writes `bytes` with a positioning cost first (scattered writes).
    pub async fn write_seek(&self, bytes: u64) {
        let _arm = self.arm.acquire().await;
        self.sim
            .sleep(self.position + self.transfer_time(bytes))
            .await;
        self.meter.record(self.sim.now(), bytes);
    }

    /// Waits for any in-progress disk operation to finish without
    /// issuing one — the barrier a sync needs when another request is
    /// already flushing the bytes it cares about.
    pub async fn barrier(&self) {
        let _arm = self.arm.acquire().await;
    }

    /// Poll-style first half of [`DiskModel::write_stream`]: acquires
    /// the arm (parking a waker from `waker_factory` and returning
    /// `None` while it is held elsewhere) and, once held, returns the
    /// permit plus the streaming transfer time. The caller models the
    /// transfer itself and then calls [`DiskModel::finish_write`].
    pub fn poll_write_stream(
        &self,
        bytes: u64,
        st: &mut nfsperf_sim::SemAcquire,
        waker_factory: &mut dyn FnMut() -> std::task::Waker,
    ) -> Option<(nfsperf_sim::SemPermit, SimDuration)> {
        let permit = self.arm.poll_acquire(st, waker_factory)?;
        Some((permit, self.transfer_time(bytes)))
    }

    /// Completes a streaming write admitted by
    /// [`DiskModel::poll_write_stream`] after its transfer time elapsed:
    /// meters the bytes, then releases the arm — the same order as the
    /// async method (record while still holding the arm).
    pub fn finish_write(&self, bytes: u64, permit: nfsperf_sim::SemPermit) {
        self.meter.record(self.sim.now(), bytes);
        drop(permit);
    }

    /// Poll-style [`DiskModel::barrier`]: `true` once the arm has been
    /// acquired and immediately released, `false` after parking.
    pub fn poll_barrier(
        &self,
        st: &mut nfsperf_sim::SemAcquire,
        waker_factory: &mut dyn FnMut() -> std::task::Waker,
    ) -> bool {
        self.arm.poll_acquire(st, waker_factory).is_some()
    }

    fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration((bytes * 1_000_000_000).div_ceil(self.stream_bps))
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.meter.bytes()
    }

    /// Mean write throughput over the active period, MB/s.
    pub fn throughput_mbps(&self) -> f64 {
        self.meter.throughput_mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::SimTime;
    use std::rc::Rc;

    #[test]
    fn stream_write_takes_bandwidth_time() {
        let sim = Sim::new();
        let disk = Rc::new(DiskModel::new(
            &sim,
            10_000_000,
            SimDuration::from_millis(5),
        ));
        let d = Rc::clone(&disk);
        sim.run_until(async move {
            d.write_stream(1_000_000).await;
        });
        // 1 MB at 10 MB/s = 100 ms, no positioning.
        assert_eq!(sim.now(), SimTime(100_000_000));
        assert_eq!(disk.bytes_written(), 1_000_000);
    }

    #[test]
    fn seek_write_adds_position_cost() {
        let sim = Sim::new();
        let disk = Rc::new(DiskModel::new(
            &sim,
            10_000_000,
            SimDuration::from_millis(5),
        ));
        let d = Rc::clone(&disk);
        sim.run_until(async move {
            d.write_seek(1_000_000).await;
        });
        assert_eq!(sim.now(), SimTime(105_000_000));
    }

    #[test]
    fn single_arm_serializes() {
        let sim = Sim::new();
        let disk = Rc::new(DiskModel::new(&sim, 10_000_000, SimDuration::ZERO));
        for _ in 0..3 {
            let d = Rc::clone(&disk);
            sim.spawn(async move {
                d.write_stream(1_000_000).await;
            });
        }
        let s = sim.clone();
        sim.run_until(async move {
            while s.live_tasks() > 1 {
                s.sleep(SimDuration::from_millis(1)).await;
            }
        });
        assert!(sim.now() >= SimTime(300_000_000), "three writes serialize");
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let sim = Sim::new();
        let ide = DiskModel::ide_udma_crippled(&sim);
        let scsi = DiskModel::scsi_single(&sim);
        let raid = DiskModel::raid4_volume(&sim);
        assert!(ide.stream_bps < scsi.stream_bps);
        assert!(scsi.stream_bps < raid.stream_bps);
    }
}
