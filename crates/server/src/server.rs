//! The generic simulated NFSv3 server: request dispatch plus pluggable
//! write backends (filer NVRAM, knfsd page-cache-and-disk, plain memory).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use nfsperf_net::{DatagramPayload, Path};
use nfsperf_nfs3::{
    Commit3Args, Commit3Res, Create3Args, Create3Res, Getattr3Args, Getattr3Res, Lookup3Args,
    Lookup3Res, NfsProc3, NfsStat3, Read3Args, Read3Res, Setattr3Args, Setattr3Res, StableHow,
    WccData, Write3Args, Write3Res, WriteVerf, NFS_PROGRAM, NFS_V3,
};
use nfsperf_sim::{
    Counter, Gate, GatePass, Receiver, SemAcquire, SemPermit, Sim, SimDuration, SimTime,
};
use nfsperf_sunrpc::{
    decode_call, encode_record, encode_reply, encode_reply_status, RecordReader,
    ACCEPT_GARBAGE_ARGS, ACCEPT_PROC_UNAVAIL, ACCEPT_PROG_MISMATCH, ACCEPT_PROG_UNAVAIL,
};
use nfsperf_tcp::{TcpConfig, TcpConn, TcpEndpoint};
use nfsperf_xdr::XdrDecode;

use crate::disk::DiskModel;
use crate::fs::FsState;
use crate::nvram::{Nvram, NvramAdmit};
use crate::sched::{
    LatencyDigest, OpClass, ReqMeta, SchedPolicy, ServiceEngine, SvcAdmit, SvcSlot,
};

/// Which disk model a backend drains to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskKind {
    /// Eight-disk RAID 4 volume (the filer).
    Raid4,
    /// Single SCSI LVD disk (the Linux server).
    ScsiSingle,
}

impl DiskKind {
    fn build(self, sim: &Sim) -> Rc<DiskModel> {
        match self {
            DiskKind::Raid4 => Rc::new(DiskModel::raid4_volume(sim)),
            DiskKind::ScsiSingle => Rc::new(DiskModel::scsi_single(sim)),
        }
    }
}

/// Backend selection and parameters.
#[derive(Debug, Clone)]
pub enum BackendConfig {
    /// NVRAM-logged stable writes with periodic checkpoint pauses — the
    /// Network Appliance filer.
    Filer {
        /// NVRAM log size (the F85 has 64 MB).
        nvram_capacity: u64,
        /// Time between file-system checkpoints.
        checkpoint_interval: SimDuration,
        /// Service pause while a checkpoint runs.
        checkpoint_duration: SimDuration,
        /// When the first checkpoint starts.
        checkpoint_offset: SimDuration,
    },
    /// Unstable writes into a server page cache, flushed to disk on
    /// COMMIT or when the dirty cap is exceeded — the Linux knfsd.
    CacheDisk {
        /// Dirty bytes the server caches before it must flush inline.
        dirty_cap: u64,
        /// Backing disk.
        disk: DiskKind,
    },
    /// Replies from memory, no durability modelling — the generic "slow
    /// server" whose bottleneck is its 100 Mb/s wire.
    Memory,
}

/// Full server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Server name for reports.
    pub name: &'static str,
    /// Concurrent request handlers (nfsd threads / filer service engine).
    pub concurrency: usize,
    /// Fixed CPU cost per operation.
    pub fixed_op_cost: SimDuration,
    /// Rate at which the server CPU moves write payload (bytes/second).
    pub data_rate_bps: u64,
    /// Write backend.
    pub backend: BackendConfig,
    /// Fault injection: WRITEs fail with `NFS3ERR_NOSPC` once this many
    /// payload bytes have been absorbed (`None` = never).
    pub write_error_after: Option<u64>,
    /// Request scheduling policy across the service slots. FIFO by
    /// default: the paper's servers serve in arrival order, and the
    /// reproduced figures depend on it.
    pub sched: SchedPolicy,
    /// Optional per-client SLA weights: upgrades a DRR `sched` to
    /// weighted DRR, scaling each client's per-rotation service credit.
    /// `None` (the default) leaves every policy untouched.
    pub client_weights: Option<crate::sched::WeightTable>,
}

impl ServerConfig {
    /// The prototype Network Appliance F85: single 833 MHz CPU, 64 MB
    /// NVRAM, RAID 4 volume. Fast per-op service; sustained write rate
    /// bounded by the NVRAM drain (~40 MB/s), matching the paper's
    /// ~38 MB/s observation.
    pub fn netapp_f85() -> ServerConfig {
        ServerConfig {
            name: "netapp-f85",
            concurrency: 1,
            fixed_op_cost: SimDuration::from_micros(40),
            data_rate_bps: 60_000_000,
            backend: BackendConfig::Filer {
                nvram_capacity: 64 * 1024 * 1024,
                checkpoint_interval: SimDuration::from_secs(10),
                checkpoint_duration: SimDuration::from_millis(250),
                checkpoint_offset: SimDuration::from_millis(400),
            },
            write_error_after: None,
            sched: SchedPolicy::Fifo,
            client_weights: None,
        }
    }

    /// The four-way Linux 2.4 knfsd: plenty of CPU, UNSTABLE writes into
    /// the page cache, one SCSI disk behind COMMIT. Its network path is
    /// the real limiter (32-bit/33 MHz PCI NIC), configured at the NIC.
    pub fn linux_knfsd() -> ServerConfig {
        ServerConfig {
            name: "linux-knfsd",
            concurrency: 4,
            fixed_op_cost: SimDuration::from_micros(25),
            data_rate_bps: 200_000_000,
            backend: BackendConfig::CacheDisk {
                dirty_cap: 64 * 1024 * 1024,
                disk: DiskKind::ScsiSingle,
            },
            write_error_after: None,
            sched: SchedPolicy::Fifo,
            client_weights: None,
        }
    }

    /// A generic server on 100 Mb/s Ethernet: the paper's "slow server"
    /// used to show that slower servers yield *faster* client memory
    /// writes.
    pub fn slow_100bt() -> ServerConfig {
        ServerConfig {
            name: "slow-100bt",
            concurrency: 2,
            fixed_op_cost: SimDuration::from_micros(30),
            data_rate_bps: 100_000_000,
            backend: BackendConfig::Memory,
            write_error_after: None,
            sched: SchedPolicy::Fifo,
            client_weights: None,
        }
    }

    /// A hypothetical fast prototype: wide service concurrency, cheap
    /// per-op cost, memory-speed backend on a gigabit wire. Used by the
    /// CAWL regime sweep to re-test the paper's "a faster server makes
    /// the *client* slower" observation — fast replies steal client CPU
    /// from the writer in the cache-fit regime.
    pub fn fast_prototype() -> ServerConfig {
        ServerConfig {
            name: "fast-prototype",
            concurrency: 8,
            fixed_op_cost: SimDuration::from_micros(10),
            data_rate_bps: 400_000_000,
            backend: BackendConfig::Memory,
            write_error_after: None,
            sched: SchedPolicy::Fifo,
            client_weights: None,
        }
    }
}

enum Backend {
    Filer {
        nvram: Rc<Nvram>,
        checkpoint: Rc<Gate>,
        checkpoints_taken: Rc<Counter>,
    },
    CacheDisk {
        dirty: Cell<u64>,
        dirty_cap: u64,
        disk: Rc<DiskModel>,
        inline_flushes: Counter,
    },
    Memory,
}

/// Aggregate server statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Operations served.
    pub ops: u64,
    /// WRITE operations served.
    pub writes: u64,
    /// Payload bytes written.
    pub write_bytes: u64,
    /// COMMIT operations served.
    pub commits: u64,
    /// Checkpoints taken (filer only).
    pub checkpoints: u64,
    /// Inline dirty-cap flushes (knfsd only).
    pub inline_flushes: u64,
}

/// Per-client server-side counters, indexed by the client id returned
/// from [`NfsServer::attach_udp`] / [`NfsServer::attach_tcp`].
///
/// A real server demultiplexes clients by peer address; here each
/// attached transport *is* one client, which is what fleet fairness
/// accounting needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerClientStats {
    /// Operations served for this client.
    pub ops: u64,
    /// WRITE operations served for this client.
    pub writes: u64,
    /// Payload bytes written by this client.
    pub write_bytes: u64,
    /// COMMIT operations served for this client.
    pub commits: u64,
    /// Queue delay (request arrival to service start) percentiles.
    pub queue_delay: LatencyDigest,
    /// Service latency (request arrival to completion) percentiles.
    pub service: LatencyDigest,
}

/// Aggregate counters for the flyweight ("slim") client tier.
///
/// Clients registered through [`NfsServer::register_slim_clients`] share
/// these counters instead of materializing a [`PerClientStats`] entry and
/// per-client latency vectors each — the point of the flyweight tier is
/// that a million clients cost the server a handful of `u64`s, not a
/// million digests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlimTierStats {
    /// Flyweight clients registered.
    pub clients: u64,
    /// Operations served for the tier.
    pub ops: u64,
    /// WRITE operations served for the tier.
    pub writes: u64,
    /// Payload bytes written by the tier.
    pub write_bytes: u64,
    /// COMMIT operations served for the tier.
    pub commits: u64,
}

/// How a reply leaves the server: transports differ only in framing.
enum ReplySink {
    /// Datagram reply along a UDP path.
    Udp(Path),
    /// Record-marked reply onto a TCP connection.
    Tcp(Rc<TcpConn>),
}

impl ReplySink {
    fn deliver(&self, reply: DatagramPayload) {
        match self {
            ReplySink::Udp(path) => path.send(reply),
            // A send error means the peer went away; a real server drops
            // the reply on the floor, so do we.
            ReplySink::Tcp(conn) => {
                let _ = conn.send(&encode_record(&reply));
            }
        }
    }
}

/// What a [`NfsServer::poll_flyweight`] call asks its driver to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlyStep {
    /// The op parked a waker in a server wait queue; poll again when it
    /// fires.
    Parked,
    /// Model this much service or disk-transfer time, then poll again.
    Sleep(SimDuration),
    /// The reply would leave the server now; the op is finished.
    Done,
}

/// Which RPC a flyweight op serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlyKind {
    Write,
    Commit,
}

/// Pipeline position of an in-flight flyweight op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlyStage {
    /// Waiting out a filer checkpoint (skipped on other backends).
    Gate,
    /// Queued for a service slot.
    Admit,
    /// Service time slept; run the backend (NVRAM / dirty cache).
    Backend,
    /// Disk arm held and transfer time slept; complete the flush.
    DiskXfer,
    /// Bump counters and release the slot.
    Finish,
    /// Terminal; further polls are no-ops.
    Done,
}

/// One flyweight WRITE or COMMIT advanced as a poll-style state machine
/// instead of a spawned task. The event-driven client tier embeds one
/// per RPC record and drives it with [`NfsServer::poll_flyweight`]; all
/// wait-state scratch lives inline (plain `Option`s), so constructing a
/// fresh op per RPC allocates nothing.
pub struct FlyweightOp {
    client: usize,
    kind: FlyKind,
    bytes: u64,
    arrival: SimTime,
    stage: FlyStage,
    gate: GatePass,
    admit: SvcAdmit,
    slot: Option<SvcSlot>,
    nvram: NvramAdmit,
    disk: SemAcquire,
    permit: Option<SemPermit>,
    /// Dirty-cache bytes this op flushes (cache-disk backend only).
    flush: u64,
    /// Whether the backend stage already ran its entry bookkeeping
    /// (flush sizing, `inline_flushes`, the commit's dirty claim) —
    /// parking on the disk arm must not repeat it.
    backend_entered: bool,
}

impl FlyweightOp {
    fn new(client: usize, kind: FlyKind, bytes: u64, arrival: SimTime) -> FlyweightOp {
        FlyweightOp {
            client,
            kind,
            bytes,
            arrival,
            stage: FlyStage::Gate,
            gate: GatePass::default(),
            admit: SvcAdmit::default(),
            slot: None,
            nvram: NvramAdmit::default(),
            disk: SemAcquire::default(),
            permit: None,
            flush: 0,
            backend_entered: false,
        }
    }

    /// Whether the op has finished (reply left the server).
    pub fn is_done(&self) -> bool {
        self.stage == FlyStage::Done
    }
}

/// A running simulated NFS server.
pub struct NfsServer {
    sim: Sim,
    /// The exported file system.
    pub fs: Rc<FsState>,
    per_client: RefCell<Vec<PerClientStats>>,
    engine: Rc<ServiceEngine>,
    fixed_op_cost: SimDuration,
    data_rate_bps: u64,
    backend: Backend,
    verf: Cell<WriteVerf>,
    stability: StableHow,
    write_error_after: Option<u64>,
    ops: Counter,
    writes: Counter,
    write_bytes: Counter,
    commits: Counter,
    slim_clients: Cell<u64>,
    slim_ops: Counter,
    slim_writes: Counter,
    slim_write_bytes: Counter,
    slim_commits: Counter,
    /// Server name for reports.
    pub name: &'static str,
}

impl NfsServer {
    /// Boots a server: spawns the dispatcher draining `rx` and replying
    /// along `reply_path`, plus any backend daemons.
    pub fn spawn(
        sim: &Sim,
        rx: Receiver<DatagramPayload>,
        reply_path: Path,
        config: ServerConfig,
    ) -> Rc<NfsServer> {
        let server = NfsServer::new(sim, config);
        server.attach_udp(rx, reply_path);
        server
    }

    /// Boots a server that speaks RPC over TCP instead of UDP: accepts
    /// connections on `rx`, reassembles record-marked calls from each
    /// stream, and writes record-marked replies back onto the same
    /// connection. Same signature and backends as [`NfsServer::spawn`].
    pub fn spawn_tcp(
        sim: &Sim,
        rx: Receiver<DatagramPayload>,
        reply_path: Path,
        config: ServerConfig,
    ) -> Rc<NfsServer> {
        let server = NfsServer::new(sim, config);
        server.attach_tcp(rx, reply_path);
        server
    }

    /// Attaches one UDP client: spawns a dispatcher draining `rx` and
    /// replying along `reply_path`. Returns the client's id for
    /// [`NfsServer::per_client_stats`]. Any number of clients may attach;
    /// their requests mix in the shared service queue.
    pub fn attach_udp(self: &Rc<Self>, rx: Receiver<DatagramPayload>, reply_path: Path) -> usize {
        let client = self.register_client();
        let dispatcher = Rc::clone(self);
        self.sim.spawn(async move {
            while let Some(payload) = rx.recv().await {
                dispatcher.serve_one(client, payload, ReplySink::Udp(reply_path.clone()));
            }
        });
        client
    }

    /// Attaches one TCP client: accepts connections on `rx` and serves
    /// record-marked calls from each. Returns the client's id, as
    /// [`NfsServer::attach_udp`] does.
    pub fn attach_tcp(self: &Rc<Self>, rx: Receiver<DatagramPayload>, reply_path: Path) -> usize {
        let client = self.register_client();
        let mtu = reply_path.local.spec().mtu;
        let endpoint = TcpEndpoint::new(&self.sim, reply_path, rx, TcpConfig::for_mtu(mtu));
        let acceptor = Rc::clone(self);
        let sim2 = self.sim.clone();
        self.sim.spawn(async move {
            while let Some(conn) = endpoint.accept().await {
                let srv = Rc::clone(&acceptor);
                sim2.spawn(async move {
                    srv.serve_conn(client, conn).await;
                });
            }
        });
        client
    }

    fn register_client(&self) -> usize {
        let mut per_client = self.per_client.borrow_mut();
        per_client.push(PerClientStats::default());
        per_client.len() - 1
    }

    fn client_stat(&self, client: usize, update: impl FnOnce(&mut PerClientStats)) {
        update(&mut self.per_client.borrow_mut()[client]);
    }

    /// Reserves `count` flyweight client ids and returns the first one.
    ///
    /// Flyweight ids start after every faithful client registered so far;
    /// they never materialize [`PerClientStats`] or per-client latency
    /// vectors (the service engine's sample cap is set to the faithful
    /// population), only the shared [`SlimTierStats`] counters. Requests
    /// for these ids enter through [`NfsServer::serve_flyweight_write`] /
    /// [`NfsServer::serve_flyweight_commit`] and contend for the same
    /// service slots, NVRAM, checkpoints, and dirty cache as everyone
    /// else. Attach all faithful clients first.
    pub fn register_slim_clients(&self, count: usize) -> usize {
        let base = self.per_client.borrow().len();
        self.engine.set_sample_cap(base);
        self.slim_clients.set(self.slim_clients.get() + count as u64);
        base
    }

    /// Serves one flyweight WRITE of `bytes` payload for client id
    /// `client`: same checkpoint gate, scheduler admission, CPU cost, and
    /// backend (NVRAM / dirty cache) as [`NfsServer::handle_write`], but
    /// without XDR decode, file-system state, or per-client digests.
    /// Returns when the reply would leave the server.
    pub async fn serve_flyweight_write(&self, client: usize, bytes: u64) {
        self.slim_ops.inc();
        let arrival = self.sim.now();
        if let Backend::Filer { checkpoint, .. } = &self.backend {
            checkpoint.pass().await;
        }
        let _svc = self.admit(client, OpClass::Write, bytes, arrival).await;
        self.sim
            .sleep(self.fixed_op_cost + self.data_time(bytes))
            .await;
        match self.backend {
            Backend::Filer { ref nvram, .. } => {
                nvram.admit(bytes).await;
            }
            Backend::CacheDisk {
                ref dirty,
                dirty_cap,
                ref disk,
                ref inline_flushes,
            } => {
                if dirty.get() + bytes > dirty_cap {
                    let flush = dirty.get() / 2 + bytes;
                    inline_flushes.inc();
                    disk.write_stream(flush).await;
                    dirty.set(dirty.get().saturating_sub(flush));
                }
                dirty.set(dirty.get() + bytes);
            }
            Backend::Memory => {}
        }
        self.ops.inc();
        self.writes.inc();
        self.write_bytes.add(bytes);
        self.slim_writes.inc();
        self.slim_write_bytes.add(bytes);
    }

    /// Serves one flyweight COMMIT for client id `client`: same gate,
    /// admission, and dirty-cache flush as [`NfsServer::handle_commit`].
    pub async fn serve_flyweight_commit(&self, client: usize) {
        self.slim_ops.inc();
        let arrival = self.sim.now();
        if let Backend::Filer { checkpoint, .. } = &self.backend {
            checkpoint.pass().await;
        }
        let _svc = self.admit(client, OpClass::Commit, 0, arrival).await;
        self.sim.sleep(self.fixed_op_cost).await;
        match self.backend {
            Backend::Filer { .. } | Backend::Memory => {}
            Backend::CacheDisk {
                ref dirty,
                ref disk,
                ..
            } => {
                let d = dirty.replace(0);
                if d > 0 {
                    disk.write_stream(d).await;
                } else {
                    disk.barrier().await;
                }
            }
        }
        self.ops.inc();
        self.commits.inc();
        self.slim_commits.inc();
    }

    /// Starts a flyweight WRITE as a poll-style op: the taskless twin of
    /// [`NfsServer::serve_flyweight_write`]. Runs the same entry
    /// bookkeeping the async method's first lines do (tier op count,
    /// arrival timestamp), then hands back a state machine the caller
    /// advances with [`NfsServer::poll_flyweight`].
    pub fn begin_flyweight_write(&self, client: usize, bytes: u64) -> FlyweightOp {
        self.slim_ops.inc();
        FlyweightOp::new(client, FlyKind::Write, bytes, self.sim.now())
    }

    /// Starts a flyweight COMMIT as a poll-style op: the taskless twin of
    /// [`NfsServer::serve_flyweight_commit`].
    pub fn begin_flyweight_commit(&self, client: usize) -> FlyweightOp {
        self.slim_ops.inc();
        FlyweightOp::new(client, FlyKind::Commit, 0, self.sim.now())
    }

    /// Advances a flyweight op until it parks, needs simulated time, or
    /// finishes. On [`FlyStep::Parked`] the op has parked a waker built
    /// by `waker_factory` in one of the server's wait queues — poll again
    /// when it fires. On [`FlyStep::Sleep`] the caller models that much
    /// service or disk-transfer time and polls again. Every queue
    /// transition replays the async methods exactly (same checkpoint
    /// gate, scheduler queue, NVRAM stalls, dirty-cache flushes, counter
    /// order), so task-served and event-served flyweights interleave
    /// bit-identically.
    pub fn poll_flyweight(
        &self,
        op: &mut FlyweightOp,
        waker_factory: &mut dyn FnMut() -> std::task::Waker,
    ) -> FlyStep {
        loop {
            match op.stage {
                FlyStage::Gate => {
                    // Checkpoint pause happens before service; once
                    // passed, the gate is never re-checked (a task past
                    // `pass().await` does not return to it either).
                    if let Backend::Filer { checkpoint, .. } = &self.backend {
                        if !checkpoint.poll_pass(&mut op.gate, waker_factory) {
                            return FlyStep::Parked;
                        }
                    }
                    op.stage = FlyStage::Admit;
                }
                FlyStage::Admit => {
                    let (class, bytes) = match op.kind {
                        FlyKind::Write => (OpClass::Write, op.bytes),
                        FlyKind::Commit => (OpClass::Commit, 0),
                    };
                    let meta = ReqMeta {
                        client: op.client,
                        class,
                        bytes,
                        arrival: op.arrival,
                    };
                    match self.engine.poll_admit(meta, &mut op.admit, waker_factory) {
                        None => return FlyStep::Parked,
                        Some(slot) => {
                            op.slot = Some(slot);
                            op.stage = FlyStage::Backend;
                            let service = match op.kind {
                                FlyKind::Write => self.fixed_op_cost + self.data_time(op.bytes),
                                FlyKind::Commit => self.fixed_op_cost,
                            };
                            return FlyStep::Sleep(service);
                        }
                    }
                }
                FlyStage::Backend => match (op.kind, &self.backend) {
                    (FlyKind::Write, Backend::Filer { nvram, .. }) => {
                        if !nvram.poll_admit(op.bytes, &mut op.nvram, waker_factory) {
                            return FlyStep::Parked;
                        }
                        op.stage = FlyStage::Finish;
                    }
                    (
                        FlyKind::Write,
                        Backend::CacheDisk {
                            dirty,
                            dirty_cap,
                            disk,
                            inline_flushes,
                        },
                    ) => {
                        // Flush sizing and the stat bump happen once, on
                        // entry, before any wait on the arm — exactly
                        // where the async method reads `dirty`.
                        if !op.backend_entered {
                            op.backend_entered = true;
                            if dirty.get() + op.bytes > *dirty_cap {
                                op.flush = dirty.get() / 2 + op.bytes;
                                inline_flushes.inc();
                            }
                        }
                        if op.flush > 0 {
                            match disk.poll_write_stream(op.flush, &mut op.disk, waker_factory) {
                                None => return FlyStep::Parked,
                                Some((permit, xfer)) => {
                                    op.permit = Some(permit);
                                    op.stage = FlyStage::DiskXfer;
                                    return FlyStep::Sleep(xfer);
                                }
                            }
                        }
                        dirty.set(dirty.get() + op.bytes);
                        op.stage = FlyStage::Finish;
                    }
                    (FlyKind::Write, Backend::Memory) => op.stage = FlyStage::Finish,
                    (FlyKind::Commit, Backend::Filer { .. } | Backend::Memory) => {
                        op.stage = FlyStage::Finish;
                    }
                    (FlyKind::Commit, Backend::CacheDisk { dirty, disk, .. }) => {
                        // Claim the dirty pool once, before touching the
                        // disk — the same single `dirty.replace(0)` the
                        // async method performs (see handle_commit for
                        // why claiming first matters).
                        if !op.backend_entered {
                            op.backend_entered = true;
                            op.flush = dirty.replace(0);
                        }
                        if op.flush > 0 {
                            match disk.poll_write_stream(op.flush, &mut op.disk, waker_factory) {
                                None => return FlyStep::Parked,
                                Some((permit, xfer)) => {
                                    op.permit = Some(permit);
                                    op.stage = FlyStage::DiskXfer;
                                    return FlyStep::Sleep(xfer);
                                }
                            }
                        }
                        if !disk.poll_barrier(&mut op.disk, waker_factory) {
                            return FlyStep::Parked;
                        }
                        op.stage = FlyStage::Finish;
                    }
                },
                FlyStage::DiskXfer => {
                    let Backend::CacheDisk { dirty, disk, .. } = &self.backend else {
                        unreachable!("disk transfer only exists on the cache-disk backend")
                    };
                    disk.finish_write(op.flush, op.permit.take().expect("arm permit held"));
                    if op.kind == FlyKind::Write {
                        dirty.set(dirty.get().saturating_sub(op.flush));
                        dirty.set(dirty.get() + op.bytes);
                    }
                    op.stage = FlyStage::Finish;
                }
                FlyStage::Finish => {
                    self.ops.inc();
                    match op.kind {
                        FlyKind::Write => {
                            self.writes.inc();
                            self.write_bytes.add(op.bytes);
                            self.slim_writes.inc();
                            self.slim_write_bytes.add(op.bytes);
                        }
                        FlyKind::Commit => {
                            self.commits.inc();
                            self.slim_commits.inc();
                        }
                    }
                    // Counters first, slot release last: the async
                    // methods bump stats and then drop `_svc` on return.
                    op.slot = None;
                    op.stage = FlyStage::Done;
                    return FlyStep::Done;
                }
                FlyStage::Done => return FlyStep::Done,
            }
        }
    }

    /// Snapshot of the flyweight tier's shared counters.
    pub fn slim_stats(&self) -> SlimTierStats {
        SlimTierStats {
            clients: self.slim_clients.get(),
            ops: self.slim_ops.get(),
            writes: self.slim_writes.get(),
            write_bytes: self.slim_write_bytes.get(),
            commits: self.slim_commits.get(),
        }
    }

    /// Boots the server state and backend daemons without any transport;
    /// pair with [`NfsServer::attach_udp`] / [`NfsServer::attach_tcp`].
    pub fn new(sim: &Sim, config: ServerConfig) -> Rc<NfsServer> {
        let (backend, stability) = match config.backend {
            BackendConfig::Filer {
                nvram_capacity,
                checkpoint_interval,
                checkpoint_duration,
                checkpoint_offset,
            } => {
                let disk = DiskKind::Raid4.build(sim);
                let nvram = Nvram::new(sim, nvram_capacity, disk);
                let checkpoint = Rc::new(Gate::new());
                let taken = Rc::new(Counter::new());
                // Checkpoint daemon: periodically close the service gate,
                // like WAFL pausing while it writes a consistency point.
                {
                    let gate = Rc::clone(&checkpoint);
                    let sim2 = sim.clone();
                    let taken = Rc::clone(&taken);
                    sim.spawn(async move {
                        sim2.sleep(checkpoint_offset).await;
                        loop {
                            gate.close();
                            taken.inc();
                            sim2.sleep(checkpoint_duration).await;
                            gate.open();
                            sim2.sleep(checkpoint_interval).await;
                        }
                    });
                }
                (
                    Backend::Filer {
                        nvram,
                        checkpoint,
                        checkpoints_taken: taken,
                    },
                    StableHow::FileSync,
                )
            }
            BackendConfig::CacheDisk { dirty_cap, disk } => (
                Backend::CacheDisk {
                    dirty: Cell::new(0),
                    dirty_cap,
                    disk: disk.build(sim),
                    inline_flushes: Counter::new(),
                },
                StableHow::Unstable,
            ),
            BackendConfig::Memory => (Backend::Memory, StableHow::Unstable),
        };

        Rc::new(NfsServer {
            sim: sim.clone(),
            fs: Rc::new(FsState::new()),
            per_client: RefCell::new(Vec::new()),
            engine: ServiceEngine::with_weights(
                sim,
                config.concurrency,
                config.sched,
                config.client_weights.as_ref(),
            ),
            fixed_op_cost: config.fixed_op_cost,
            data_rate_bps: config.data_rate_bps,
            backend,
            verf: Cell::new(WriteVerf(0x0bad_cafe_0000_0001)),
            stability,
            write_error_after: config.write_error_after,
            ops: Counter::new(),
            writes: Counter::new(),
            write_bytes: Counter::new(),
            commits: Counter::new(),
            slim_clients: Cell::new(0),
            slim_ops: Counter::new(),
            slim_writes: Counter::new(),
            slim_write_bytes: Counter::new(),
            slim_commits: Counter::new(),
            name: config.name,
        })
    }

    /// One TCP connection's service loop: reassemble call records and feed
    /// each into the shared service path, replying on the same connection.
    async fn serve_conn(self: Rc<Self>, client: usize, conn: Rc<TcpConn>) {
        let mut records = RecordReader::new();
        loop {
            let bytes = match conn.recv_some().await {
                Ok(b) => b,
                Err(_) => return, // peer closed, reset, or went away
            };
            records.push(&bytes);
            while let Some(call) = records.next_record() {
                self.serve_one(client, call, ReplySink::Tcp(Rc::clone(&conn)));
            }
        }
    }

    /// The single service loop body shared by every transport: spawn a
    /// task that runs the call through [`NfsServer::process`] (where the
    /// scheduler orders it against every other client) and deliver the
    /// reply through the transport's framing.
    fn serve_one(self: &Rc<Self>, client: usize, call: DatagramPayload, sink: ReplySink) {
        let handler = Rc::clone(self);
        self.sim.clone().spawn(async move {
            if let Some(reply) = handler.process(client, call).await {
                sink.deliver(reply);
            }
        });
    }

    fn data_time(&self, bytes: u64) -> SimDuration {
        SimDuration((bytes * 1_000_000_000).div_ceil(self.data_rate_bps))
    }

    /// Executes one RPC call message and returns the reply to send, or
    /// `None` for junk that a real server would silently drop. Transport
    /// independent: the UDP dispatcher sends the reply as a datagram, the
    /// TCP service loop record-marks it onto the connection.
    async fn process(&self, client: usize, payload: DatagramPayload) -> Option<DatagramPayload> {
        let (hdr, mut args) = match decode_call(&payload) {
            Ok(x) => x,
            Err(_) => return None, // junk: drop, like a real server
        };
        if hdr.prog != NFS_PROGRAM {
            return Some(encode_reply_status(hdr.xid, ACCEPT_PROG_UNAVAIL, None));
        }
        if hdr.vers != NFS_V3 {
            return Some(encode_reply_status(hdr.xid, ACCEPT_PROG_MISMATCH, None));
        }
        self.ops.inc();
        self.client_stat(client, |c| c.ops += 1);
        // Queue delay is measured from here: the decoded request has
        // reached the service path and is waiting for the scheduler.
        let arrival = self.sim.now();
        let reply = match NfsProc3::from_u32(hdr.proc) {
            Some(NfsProc3::Null) => {
                let _svc = self.admit(client, OpClass::Meta, 0, arrival).await;
                self.sim.sleep(self.fixed_op_cost).await;
                encode_reply(hdr.xid, &0u32)
            }
            Some(NfsProc3::Write) => match Write3Args::decode(&mut args) {
                Ok(w) => self.handle_write(client, hdr.xid, w, arrival).await,
                Err(_) => encode_reply_status(hdr.xid, ACCEPT_GARBAGE_ARGS, None),
            },
            Some(NfsProc3::Commit) => match Commit3Args::decode(&mut args) {
                Ok(c) => self.handle_commit(client, hdr.xid, c, arrival).await,
                Err(_) => encode_reply_status(hdr.xid, ACCEPT_GARBAGE_ARGS, None),
            },
            Some(NfsProc3::Create) => match Create3Args::decode(&mut args) {
                Ok(c) => self.handle_create(client, hdr.xid, c, arrival).await,
                Err(_) => encode_reply_status(hdr.xid, ACCEPT_GARBAGE_ARGS, None),
            },
            Some(NfsProc3::Lookup) => match Lookup3Args::decode(&mut args) {
                Ok(l) => self.handle_lookup(client, hdr.xid, l, arrival).await,
                Err(_) => encode_reply_status(hdr.xid, ACCEPT_GARBAGE_ARGS, None),
            },
            Some(NfsProc3::Getattr) => match Getattr3Args::decode(&mut args) {
                Ok(g) => self.handle_getattr(client, hdr.xid, g, arrival).await,
                Err(_) => encode_reply_status(hdr.xid, ACCEPT_GARBAGE_ARGS, None),
            },
            Some(NfsProc3::Setattr) => match Setattr3Args::decode(&mut args) {
                Ok(a) => self.handle_setattr(client, hdr.xid, a, arrival).await,
                Err(_) => encode_reply_status(hdr.xid, ACCEPT_GARBAGE_ARGS, None),
            },
            Some(NfsProc3::Read) => match Read3Args::decode(&mut args) {
                Ok(r) => self.handle_read(client, hdr.xid, r, arrival).await,
                Err(_) => encode_reply_status(hdr.xid, ACCEPT_GARBAGE_ARGS, None),
            },
            None => encode_reply_status(hdr.xid, ACCEPT_PROC_UNAVAIL, None),
        };
        Some(reply)
    }

    /// Takes a service slot for one request, in scheduler order.
    async fn admit(&self, client: usize, class: OpClass, bytes: u64, arrival: SimTime) -> SvcSlot {
        self.engine
            .admit(ReqMeta {
                client,
                class,
                bytes,
                arrival,
            })
            .await
    }

    async fn handle_write(
        &self,
        client: usize,
        xid: u32,
        w: Write3Args,
        arrival: SimTime,
    ) -> DatagramPayload {
        // Checkpoint pause happens before service (the filer stops
        // answering during a consistency point).
        if let Backend::Filer { checkpoint, .. } = &self.backend {
            checkpoint.pass().await;
        }
        let _svc = self
            .admit(client, OpClass::Write, u64::from(w.count), arrival)
            .await;
        self.sim
            .sleep(self.fixed_op_cost + self.data_time(u64::from(w.count)))
            .await;

        if let Some(limit) = self.write_error_after {
            if self.write_bytes.get() + u64::from(w.count) > limit {
                return encode_reply(
                    xid,
                    &Write3Res {
                        status: NfsStat3::Nospc,
                        wcc: WccData::default(),
                        count: 0,
                        committed: StableHow::Unstable,
                        verf: WriteVerf::default(),
                    },
                );
            }
        }

        let before = self.fs.size_of(&w.file).unwrap_or(0);
        match self.backend {
            Backend::Filer { ref nvram, .. } => {
                nvram.admit(u64::from(w.count)).await;
            }
            Backend::CacheDisk {
                ref dirty,
                dirty_cap,
                ref disk,
                ref inline_flushes,
            } => {
                if dirty.get() + u64::from(w.count) > dirty_cap {
                    // bdflush pressure: flush half the cache inline.
                    let flush = dirty.get() / 2 + u64::from(w.count);
                    inline_flushes.inc();
                    disk.write_stream(flush).await;
                    dirty.set(dirty.get().saturating_sub(flush));
                }
                dirty.set(dirty.get() + u64::from(w.count));
            }
            Backend::Memory => {}
        }

        match self.fs.apply_write(&w.file, w.offset, w.count) {
            Ok(after) => {
                self.writes.inc();
                self.write_bytes.add(u64::from(w.count));
                self.client_stat(client, |c| {
                    c.writes += 1;
                    c.write_bytes += u64::from(w.count);
                });
                // Stability granted: at least what was asked for.
                let granted = match (self.stability, w.stable) {
                    (StableHow::Unstable, StableHow::Unstable) => StableHow::Unstable,
                    (StableHow::Unstable, asked) => {
                        // A sync write against the cache-disk server: flush
                        // through to disk before replying.
                        if let Backend::CacheDisk {
                            ref dirty,
                            ref disk,
                            ..
                        } = self.backend
                        {
                            disk.write_stream(dirty.get() + u64::from(w.count)).await;
                            dirty.set(0);
                        }
                        asked
                    }
                    (granted, _) => granted,
                };
                encode_reply(
                    xid,
                    &Write3Res::ok(
                        WccData::full(before, after),
                        w.count,
                        granted,
                        self.verf.get(),
                    ),
                )
            }
            Err(status) => encode_reply(
                xid,
                &Write3Res {
                    status,
                    wcc: WccData::default(),
                    count: 0,
                    committed: StableHow::Unstable,
                    verf: WriteVerf::default(),
                },
            ),
        }
    }

    async fn handle_commit(
        &self,
        client: usize,
        xid: u32,
        c: Commit3Args,
        arrival: SimTime,
    ) -> DatagramPayload {
        if let Backend::Filer { checkpoint, .. } = &self.backend {
            checkpoint.pass().await;
        }
        let _svc = self.admit(client, OpClass::Commit, 0, arrival).await;
        self.sim.sleep(self.fixed_op_cost).await;
        self.commits.inc();
        self.client_stat(client, |c| c.commits += 1);
        match self.backend {
            // Filer writes were FILE_SYNC; COMMIT is a cheap no-op.
            Backend::Filer { .. } | Backend::Memory => {}
            Backend::CacheDisk {
                ref dirty,
                ref disk,
                ..
            } => {
                // Claim the dirty pool before touching the disk:
                // concurrent COMMITs from a client fleet must each flush
                // only what the previous one left, not re-stream the
                // same bytes after queueing on the arm (which turns N
                // commits into O(N^2) disk work). A COMMIT that finds
                // the pool already claimed still waits out the in-flight
                // flush before replying — its caller's data may be on
                // the platter only once that flush completes.
                let d = dirty.replace(0);
                if d > 0 {
                    disk.write_stream(d).await;
                } else {
                    disk.barrier().await;
                }
            }
        }
        let after = self.fs.getattr(&c.file).ok();
        encode_reply(
            xid,
            &Commit3Res {
                status: NfsStat3::Ok,
                wcc: WccData {
                    before: None,
                    after,
                },
                verf: self.verf.get(),
            },
        )
    }

    async fn handle_create(
        &self,
        client: usize,
        xid: u32,
        c: Create3Args,
        arrival: SimTime,
    ) -> DatagramPayload {
        let _svc = self.admit(client, OpClass::Meta, 0, arrival).await;
        self.sim.sleep(self.fixed_op_cost).await;
        let (fh, attrs) = self.fs.create(&c.name);
        encode_reply(
            xid,
            &Create3Res {
                status: NfsStat3::Ok,
                file: Some(fh),
                attrs: Some(attrs),
            },
        )
    }

    async fn handle_lookup(
        &self,
        client: usize,
        xid: u32,
        l: Lookup3Args,
        arrival: SimTime,
    ) -> DatagramPayload {
        let _svc = self.admit(client, OpClass::Meta, 0, arrival).await;
        self.sim.sleep(self.fixed_op_cost).await;
        let res = match self.fs.lookup(&l.name) {
            Ok((fh, attrs)) => Lookup3Res {
                status: NfsStat3::Ok,
                file: Some(fh),
                attrs: Some(attrs),
            },
            Err(status) => Lookup3Res {
                status,
                file: None,
                attrs: None,
            },
        };
        encode_reply(xid, &res)
    }

    async fn handle_getattr(
        &self,
        client: usize,
        xid: u32,
        g: Getattr3Args,
        arrival: SimTime,
    ) -> DatagramPayload {
        let _svc = self.admit(client, OpClass::Meta, 0, arrival).await;
        self.sim.sleep(self.fixed_op_cost).await;
        let res = match self.fs.getattr(&g.file) {
            Ok(attrs) => Getattr3Res {
                status: NfsStat3::Ok,
                attrs: Some(attrs),
            },
            Err(status) => Getattr3Res {
                status,
                attrs: None,
            },
        };
        encode_reply(xid, &res)
    }

    async fn handle_setattr(
        &self,
        client: usize,
        xid: u32,
        a: Setattr3Args,
        arrival: SimTime,
    ) -> DatagramPayload {
        let _svc = self.admit(client, OpClass::Meta, 0, arrival).await;
        self.sim.sleep(self.fixed_op_cost).await;
        let before = self.fs.size_of(&a.file).unwrap_or(0);
        let res = match a.attrs.size {
            Some(size) => match self.fs.truncate(&a.file, size) {
                Ok(after) => Setattr3Res {
                    status: NfsStat3::Ok,
                    wcc: WccData::full(before, after),
                },
                Err(status) => Setattr3Res {
                    status,
                    wcc: WccData::default(),
                },
            },
            None => match self.fs.getattr(&a.file) {
                Ok(after) => Setattr3Res {
                    status: NfsStat3::Ok,
                    wcc: WccData::full(before, after),
                },
                Err(status) => Setattr3Res {
                    status,
                    wcc: WccData::default(),
                },
            },
        };
        encode_reply(xid, &res)
    }

    async fn handle_read(
        &self,
        client: usize,
        xid: u32,
        r: Read3Args,
        arrival: SimTime,
    ) -> DatagramPayload {
        let _svc = self
            .admit(client, OpClass::Meta, u64::from(r.count), arrival)
            .await;
        match self.fs.getattr(&r.file) {
            Ok(attrs) => {
                let available = attrs.size.saturating_sub(r.offset);
                let count = u64::from(r.count).min(available) as u32;
                self.sim
                    .sleep(self.fixed_op_cost + self.data_time(u64::from(count)))
                    .await;
                let eof = r.offset + u64::from(count) >= attrs.size;
                encode_reply(xid, &Read3Res::ok(attrs, count, eof))
            }
            Err(status) => {
                self.sim.sleep(self.fixed_op_cost).await;
                encode_reply(
                    xid,
                    &Read3Res {
                        status,
                        attrs: None,
                        count: 0,
                        eof: false,
                        data_len: 0,
                    },
                )
            }
        }
    }

    /// Simulates a server reboot: the write verifier changes, so clients
    /// must re-send uncommitted writes, and any cached dirty data is lost.
    pub fn reboot(&self) {
        let v = self.verf.get();
        self.verf.set(WriteVerf(v.0.wrapping_add(0x1000_0000)));
        if let Backend::CacheDisk { ref dirty, .. } = self.backend {
            dirty.set(0);
        }
    }

    /// The current write verifier.
    pub fn current_verf(&self) -> WriteVerf {
        self.verf.get()
    }

    /// Snapshot of server statistics.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            ops: self.ops.get(),
            writes: self.writes.get(),
            write_bytes: self.write_bytes.get(),
            commits: self.commits.get(),
            checkpoints: match &self.backend {
                Backend::Filer {
                    checkpoints_taken, ..
                } => checkpoints_taken.get(),
                _ => 0,
            },
            inline_flushes: match &self.backend {
                Backend::CacheDisk { inline_flushes, .. } => inline_flushes.get(),
                _ => 0,
            },
        }
    }

    /// Snapshot of per-client statistics, indexed by client id in
    /// attach order.
    pub fn per_client_stats(&self) -> Vec<PerClientStats> {
        let mut stats = self.per_client.borrow().clone();
        for (client, s) in stats.iter_mut().enumerate() {
            let (queue_delay, service) = self.engine.digests(client);
            s.queue_delay = queue_delay;
            s.service = service;
        }
        stats
    }

    /// The request scheduler's service engine (slots, queue, latency
    /// samples).
    pub fn service_engine(&self) -> &Rc<ServiceEngine> {
        &self.engine
    }

    /// NVRAM fill level, if this server has one.
    pub fn nvram_used(&self) -> Option<u64> {
        match &self.backend {
            Backend::Filer { nvram, .. } => Some(nvram.used()),
            _ => None,
        }
    }

    /// Server-cached dirty bytes, if this server write-caches.
    pub fn dirty_bytes(&self) -> Option<u64> {
        match &self.backend {
            Backend::CacheDisk { dirty, .. } => Some(dirty.get()),
            _ => None,
        }
    }
}
