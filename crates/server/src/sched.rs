//! Pluggable server request scheduling.
//!
//! The paper's counter-intuitive result — a *faster* server slows client
//! writes down — is a statement about service order, not bandwidth: what
//! the server answers first shapes how the client's dirty pages drain.
//! This module makes that order a policy. Every RPC handler passes through
//! a [`ServiceEngine`] that owns the server's service slots (the nfsd
//! thread pool / filer service engine) and asks a [`Scheduler`] which
//! queued request runs next:
//!
//! - [`Fifo`] — arrival order, bit-compatible with the semaphore the
//!   server used before this subsystem existed (asserted by the
//!   determinism tests). This stays the default: the paper's servers
//!   serve FIFO, and the reproduced figures must not move.
//! - [`Drr`] — deficit round robin across clients with byte-weighted
//!   quanta (Shreedhar & Varghese): each rotation a client's deficit
//!   grows by one quantum, and it may dispatch requests until the head
//!   request's byte cost exceeds the deficit. An 8 KB-write client and a
//!   32 KB-write client get equal *bytes*, not equal *requests*.
//! - [`ClassedDrr`] — DRR plus two priority classes per client (WRITE
//!   and metadata above COMMIT, whose disk flushes are the expensive
//!   tail) and a per-client in-flight quota, so one client with a deep
//!   RPC slot table cannot occupy every nfsd at once.
//! - [`Drr::weighted`] — DRR whose per-rotation top-up is scaled by a
//!   per-client [`WeightTable`] (the same table type the network
//!   fabric's `PortWrr` lanes use), so an SLA can hand one client a
//!   multiple of another's service share.
//!
//! The engine replicates the exact admission semantics of
//! [`nfsperf_sim::Semaphore`] so that `Fifo` is not merely equivalent but
//! *bit-identical*: a fast-path arrival may barge past a just-woken
//! waiter (which then re-queues at the back), and each slot release wakes
//! at most the head of the queue.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use nfsperf_sim::{Counter, Sim, SimDuration, SimTime};

pub use nfsperf_net::WeightTable;
pub use nfsperf_sim::LatencyDigest;

/// Byte cost floor: a zero-byte op (COMMIT, GETATTR) still occupies a
/// service slot, so DRR charges it as if it carried a small payload.
/// Without a floor, a client could pump unlimited metadata ops through a
/// single quantum.
pub const COST_FLOOR: u64 = 512;

/// Request class for scheduling purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// WRITE — carries payload bytes.
    Write,
    /// COMMIT — cheap to accept, expensive tail (disk flush on knfsd).
    Commit,
    /// Everything else (CREATE, LOOKUP, GETATTR, SETATTR, READ, NULL).
    Meta,
}

/// Scheduling metadata for one request.
#[derive(Debug, Clone, Copy)]
pub struct ReqMeta {
    /// Client id (attach order), as used by per-client accounting.
    pub client: usize,
    /// Request class.
    pub class: OpClass,
    /// Payload bytes the request carries (0 for metadata ops).
    pub bytes: u64,
    /// When the request reached the service queue.
    pub arrival: SimTime,
}

/// A queued admission request: scheduling metadata plus the woken/waker
/// handshake (the same shape as the simulator's `WaitNode`). The engine
/// parks the requesting task on its ticket; the scheduler hands tickets
/// back from `pick_next` and the engine wakes them.
pub struct Ticket {
    meta: Cell<ReqMeta>,
    woken: Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

/// Free-list bound for recycled tickets; admissions beyond it fall back
/// to plain allocation.
const TICKET_POOL_CAP: usize = 64;

thread_local! {
    /// Recycled tickets, so steady-state admission allocates nothing.
    /// Like the simulator's wait-node pool, `Ticket::new` only reuses a
    /// ticket whose strong count has fallen back to one (the pool's own
    /// reference): a scheduler queue still holding a clone can never
    /// see its ticket repurposed.
    static TICKET_POOL: RefCell<Vec<Rc<Ticket>>> = const { RefCell::new(Vec::new()) };
}

impl Ticket {
    fn new(meta: ReqMeta) -> Rc<Ticket> {
        TICKET_POOL.with(|p| {
            let mut free = p.borrow_mut();
            while let Some(t) = free.pop() {
                if Rc::strong_count(&t) == 1 {
                    t.meta.set(meta);
                    t.woken.set(false);
                    t.waker.borrow_mut().take();
                    return t;
                }
                // A holder is still alive somewhere; forget this one.
            }
            Rc::new(Ticket {
                meta: Cell::new(meta),
                woken: Cell::new(false),
                waker: RefCell::new(None),
            })
        })
    }

    /// Returns a retired ticket to the pool.
    fn recycle(t: Rc<Ticket>) {
        TICKET_POOL.with(|p| {
            let mut free = p.borrow_mut();
            if free.len() < TICKET_POOL_CAP {
                free.push(t);
            }
        });
    }

    /// The request's scheduling metadata.
    pub fn meta(&self) -> ReqMeta {
        self.meta.get()
    }

    fn wake(&self) {
        self.woken.set(true);
        if let Some(w) = self.waker.borrow_mut().take() {
            w.wake();
        }
    }

    /// Re-arms the handshake so the ticket can be queued again after a
    /// slot steal.
    fn rearm(&self) {
        self.woken.set(false);
    }

    /// Whether the engine has picked and woken this ticket (poll-style
    /// analogue of `TicketWait` completing).
    fn is_woken(&self) -> bool {
        self.woken.get()
    }

    /// Stores a waker for the next wake — the poll-style analogue of
    /// `TicketWait` returning `Poll::Pending`.
    fn park(&self, waker: Waker) {
        *self.waker.borrow_mut() = Some(waker);
    }
}

/// Future that parks a task until its ticket is picked and woken.
struct TicketWait {
    ticket: Rc<Ticket>,
}

impl Future for TicketWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.ticket.woken.get() {
            Poll::Ready(())
        } else {
            *self.ticket.waker.borrow_mut() = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// A request-ordering policy.
///
/// The [`ServiceEngine`] owns the slots; the scheduler owns the order.
/// `enqueue` admits a ticket to the queue, `pick_next` removes and
/// returns the next ticket to run (recording any grant state such as an
/// in-flight quota), and `on_complete` retires a request when its slot is
/// released. `try_grant`/`ungrant` bracket the engine's fast path and
/// slot-steal recovery; policies without admission state keep the
/// defaults.
pub trait Scheduler {
    /// Policy name for reports (`fifo`, `drr`, `classed-drr`).
    fn label(&self) -> &'static str;

    /// Admits a ticket to the queue.
    fn enqueue(&self, ticket: Rc<Ticket>);

    /// Removes and returns the next ticket to dispatch, or `None` if the
    /// queue is empty or every queued client is at its in-flight quota.
    /// Granting (quota accounting) happens here.
    fn pick_next(&self) -> Option<Rc<Ticket>>;

    /// Fast path: may `meta` start service immediately, bypassing the
    /// (empty) queue? On `true` the grant is recorded.
    fn try_grant(&self, _meta: &ReqMeta) -> bool {
        true
    }

    /// Reverts a grant whose slot was stolen before service started; the
    /// ticket re-enters the queue via `enqueue`.
    fn ungrant(&self, _meta: &ReqMeta) {}

    /// Retires a granted request when its service slot is released.
    fn on_complete(&self, _meta: &ReqMeta) {}

    /// Number of queued tickets.
    fn queued(&self) -> usize;
}

/// Arrival-order scheduling — the pre-subsystem semaphore behavior.
#[derive(Default)]
pub struct Fifo {
    queue: RefCell<VecDeque<Rc<Ticket>>>,
}

impl Scheduler for Fifo {
    fn label(&self) -> &'static str {
        "fifo"
    }

    fn enqueue(&self, ticket: Rc<Ticket>) {
        self.queue.borrow_mut().push_back(ticket);
    }

    fn pick_next(&self) -> Option<Rc<Ticket>> {
        self.queue.borrow_mut().pop_front()
    }

    fn queued(&self) -> usize {
        self.queue.borrow().len()
    }
}

/// Per-client scheduling state for the DRR core.
struct DrrClient {
    /// One FIFO per class, drained in class order (index 0 first).
    queues: Vec<VecDeque<Rc<Ticket>>>,
    /// Byte credit accumulated while waiting in the active ring.
    deficit: u64,
    /// Requests granted (picked or fast-pathed) and not yet completed.
    granted: usize,
    /// Whether the client is in the active ring.
    in_ring: bool,
}

impl DrrClient {
    fn has_work(&self) -> bool {
        self.queues.iter().any(|q| !q.is_empty())
    }
}

struct DrrInner {
    clients: Vec<DrrClient>,
    /// Round-robin ring of client ids with queued work.
    ring: VecDeque<usize>,
    queued: usize,
}

impl DrrInner {
    fn ensure(&mut self, client: usize, classes: usize) {
        while self.clients.len() <= client {
            self.clients.push(DrrClient {
                queues: vec![VecDeque::new(); classes],
                deficit: 0,
                granted: 0,
                in_ring: false,
            });
        }
    }
}

/// Deficit round robin core shared by [`Drr`] (one class, unlimited
/// quota) and [`ClassedDrr`] (two classes, finite quota).
struct DrrCore {
    label: &'static str,
    quantum: u64,
    quota: usize,
    classes: usize,
    /// When set, client `c`'s per-rotation top-up is `quantum ×
    /// weights.get(c)` — the SLA-table weighting; `None` is plain DRR.
    weights: Option<WeightTable>,
    inner: RefCell<DrrInner>,
}

impl DrrCore {
    fn new(label: &'static str, quantum: u64, quota: usize, classes: usize) -> DrrCore {
        assert!(quantum > 0, "DRR quantum must be positive");
        assert!(quota > 0, "a zero in-flight quota would deadlock");
        DrrCore {
            label,
            quantum,
            quota,
            classes,
            weights: None,
            inner: RefCell::new(DrrInner {
                clients: Vec::new(),
                ring: VecDeque::new(),
                queued: 0,
            }),
        }
    }

    fn topup(&self, client: usize) -> u64 {
        match &self.weights {
            Some(w) => self.quantum * w.get(client as u32),
            None => self.quantum,
        }
    }

    fn class_of(&self, class: OpClass) -> usize {
        if self.classes == 1 {
            0
        } else {
            match class {
                // COMMIT rides below WRITE/metadata: its knfsd service
                // time is a whole dirty-pool flush, so letting a COMMIT
                // backlog monopolize slots starves everyone's writes.
                OpClass::Commit => 1,
                OpClass::Write | OpClass::Meta => 0,
            }
        }
    }

    fn cost(bytes: u64) -> u64 {
        bytes.max(COST_FLOOR)
    }
}

impl Scheduler for DrrCore {
    fn label(&self) -> &'static str {
        self.label
    }

    fn enqueue(&self, ticket: Rc<Ticket>) {
        let meta = ticket.meta();
        let class = self.class_of(meta.class);
        let mut inner = self.inner.borrow_mut();
        inner.ensure(meta.client, self.classes);
        inner.clients[meta.client].queues[class].push_back(ticket);
        inner.queued += 1;
        if !inner.clients[meta.client].in_ring {
            inner.clients[meta.client].in_ring = true;
            inner.ring.push_back(meta.client);
        }
    }

    fn pick_next(&self) -> Option<Rc<Ticket>> {
        let mut inner = self.inner.borrow_mut();
        // Visits since the last top-up or ring change; once it spans the
        // whole ring, every queued client is quota-blocked.
        let mut blocked = 0usize;
        loop {
            let &client = inner.ring.front()?;
            if !inner.clients[client].has_work() {
                // Queue drained while the client kept its ring slot
                // (possible after an ungrant/re-enqueue shuffle): retire
                // it from the ring and forget its credit, as DRR does for
                // any idling flow.
                inner.ring.pop_front();
                inner.clients[client].in_ring = false;
                inner.clients[client].deficit = 0;
                blocked = 0;
                continue;
            }
            if inner.clients[client].granted >= self.quota {
                blocked += 1;
                if blocked >= inner.ring.len() {
                    return None;
                }
                inner.ring.rotate_left(1);
                continue;
            }
            let class = inner.clients[client]
                .queues
                .iter()
                .position(|q| !q.is_empty())
                .expect("has_work checked above");
            let cost = DrrCore::cost(inner.clients[client].queues[class][0].meta().bytes);
            if inner.clients[client].deficit < cost {
                inner.clients[client].deficit += self.topup(client);
                inner.ring.rotate_left(1);
                blocked = 0;
                continue;
            }
            let cl = &mut inner.clients[client];
            cl.deficit -= cost;
            cl.granted += 1;
            let ticket = cl.queues[class].pop_front().expect("non-empty class queue");
            inner.queued -= 1;
            if !inner.clients[client].has_work() {
                inner.ring.pop_front();
                inner.clients[client].in_ring = false;
                inner.clients[client].deficit = 0;
            }
            return Some(ticket);
        }
    }

    fn try_grant(&self, meta: &ReqMeta) -> bool {
        let mut inner = self.inner.borrow_mut();
        inner.ensure(meta.client, self.classes);
        if inner.clients[meta.client].granted < self.quota {
            inner.clients[meta.client].granted += 1;
            true
        } else {
            false
        }
    }

    fn ungrant(&self, meta: &ReqMeta) {
        let mut inner = self.inner.borrow_mut();
        let cl = &mut inner.clients[meta.client];
        cl.granted -= 1;
        // Refund the byte cost pick_next charged; the ticket is about to
        // re-enter the queue and would otherwise pay twice.
        cl.deficit += DrrCore::cost(meta.bytes);
    }

    fn on_complete(&self, meta: &ReqMeta) {
        let mut inner = self.inner.borrow_mut();
        inner.clients[meta.client].granted -= 1;
    }

    fn queued(&self) -> usize {
        self.inner.borrow().queued
    }
}

/// Deficit round robin across clients, byte-weighted quanta, no classes,
/// no in-flight quota.
pub struct Drr(DrrCore);

impl Drr {
    /// Creates a DRR scheduler with the given per-rotation byte quantum.
    pub fn new(quantum: u64) -> Drr {
        Drr(DrrCore::new("drr", quantum, usize::MAX, 1))
    }

    /// Creates a weighted DRR scheduler: client `c`'s per-rotation
    /// top-up is `quantum × weights.get(c)`.
    pub fn weighted(quantum: u64, weights: WeightTable) -> Drr {
        let mut core = DrrCore::new("wdrr", quantum, usize::MAX, 1);
        core.weights = Some(weights);
        Drr(core)
    }
}

impl Scheduler for Drr {
    fn label(&self) -> &'static str {
        self.0.label()
    }
    fn enqueue(&self, ticket: Rc<Ticket>) {
        self.0.enqueue(ticket);
    }
    fn pick_next(&self) -> Option<Rc<Ticket>> {
        self.0.pick_next()
    }
    fn try_grant(&self, meta: &ReqMeta) -> bool {
        self.0.try_grant(meta)
    }
    fn ungrant(&self, meta: &ReqMeta) {
        self.0.ungrant(meta)
    }
    fn on_complete(&self, meta: &ReqMeta) {
        self.0.on_complete(meta)
    }
    fn queued(&self) -> usize {
        self.0.queued()
    }
}

/// DRR with WRITE-above-COMMIT priority classes and a per-client
/// in-flight quota.
pub struct ClassedDrr(DrrCore);

impl ClassedDrr {
    /// Creates a classed DRR scheduler: `quantum` bytes of credit per
    /// rotation, at most `quota` requests per client in service at once.
    pub fn new(quantum: u64, quota: usize) -> ClassedDrr {
        ClassedDrr(DrrCore::new("classed-drr", quantum, quota, 2))
    }
}

impl Scheduler for ClassedDrr {
    fn label(&self) -> &'static str {
        self.0.label()
    }
    fn enqueue(&self, ticket: Rc<Ticket>) {
        self.0.enqueue(ticket);
    }
    fn pick_next(&self) -> Option<Rc<Ticket>> {
        self.0.pick_next()
    }
    fn try_grant(&self, meta: &ReqMeta) -> bool {
        self.0.try_grant(meta)
    }
    fn ungrant(&self, meta: &ReqMeta) {
        self.0.ungrant(meta)
    }
    fn on_complete(&self, meta: &ReqMeta) {
        self.0.on_complete(meta)
    }
    fn queued(&self) -> usize {
        self.0.queued()
    }
}

/// Scheduling policy selection, carried by `ServerConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Arrival order (the default; matches the paper's servers).
    #[default]
    Fifo,
    /// Deficit round robin across clients.
    Drr {
        /// Byte credit added per ring rotation.
        quantum: u64,
    },
    /// DRR with COMMIT-vs-WRITE classes and a per-client in-flight quota.
    ClassedDrr {
        /// Byte credit added per ring rotation.
        quantum: u64,
        /// Max requests per client in service at once.
        quota: usize,
    },
}

impl SchedPolicy {
    /// Default DRR quantum: one client's largest WRITE (32 KB) per
    /// rotation.
    pub const DEFAULT_QUANTUM: u64 = 32 * 1024;
    /// Default per-client in-flight quota for [`SchedPolicy::ClassedDrr`].
    pub const DEFAULT_QUOTA: usize = 2;

    /// DRR with the default quantum.
    pub fn drr() -> SchedPolicy {
        SchedPolicy::Drr {
            quantum: SchedPolicy::DEFAULT_QUANTUM,
        }
    }

    /// Classed DRR with the default quantum and quota.
    pub fn classed_drr() -> SchedPolicy {
        SchedPolicy::ClassedDrr {
            quantum: SchedPolicy::DEFAULT_QUANTUM,
            quota: SchedPolicy::DEFAULT_QUOTA,
        }
    }

    /// Policy name for reports and CSV cells.
    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Drr { .. } => "drr",
            SchedPolicy::ClassedDrr { .. } => "classed-drr",
        }
    }

    /// Parses a CLI policy name (`fifo`, `drr`, `classed-drr`), with the
    /// default parameters for the parameterized policies.
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        match s {
            "fifo" => Some(SchedPolicy::Fifo),
            "drr" => Some(SchedPolicy::drr()),
            "classed-drr" | "classed_drr" => Some(SchedPolicy::classed_drr()),
            _ => None,
        }
    }

    /// Builds the scheduler, upgrading a DRR policy to weighted DRR when
    /// a client weight table is supplied (FIFO ignores weights — there is
    /// no share to scale).
    fn build_weighted(&self, weights: Option<&WeightTable>) -> Box<dyn Scheduler> {
        match (*self, weights) {
            (SchedPolicy::Drr { quantum }, Some(w)) => Box::new(Drr::weighted(quantum, w.clone())),
            (SchedPolicy::Fifo, _) => Box::new(Fifo::default()),
            (SchedPolicy::Drr { quantum }, None) => Box::new(Drr::new(quantum)),
            (SchedPolicy::ClassedDrr { quantum, quota }, _) => {
                Box::new(ClassedDrr::new(quantum, quota))
            }
        }
    }
}

/// The server's service-slot pool plus its scheduling policy.
///
/// Admission follows the exact shape of [`nfsperf_sim::Semaphore`] so
/// that [`SchedPolicy::Fifo`] reproduces the pre-subsystem event order
/// bit for bit:
///
/// - fast path: a free slot with an empty queue is taken immediately
///   (this can barge past a woken-but-not-yet-running waiter, exactly as
///   the semaphore allowed);
/// - a released slot wakes at most one queued ticket (the scheduler's
///   pick), and a woken ticket that finds its slot stolen re-queues at
///   the back;
/// - `pending_wakes` tracks picks whose tasks have not yet run, so a
///   release never wakes two tickets for one slot.
pub struct ServiceEngine {
    sim: Sim,
    policy: SchedPolicy,
    sched: Box<dyn Scheduler>,
    slots: usize,
    free: Cell<usize>,
    pending_wakes: Cell<usize>,
    enqueued_bytes: Counter,
    served_bytes: Counter,
    queue_delay: RefCell<Vec<Vec<SimDuration>>>,
    service_lat: RefCell<Vec<Vec<SimDuration>>>,
    /// Latency samples are kept only for clients with an id below this
    /// cap. Unlimited by default (every client gets full digests, the
    /// pre-flyweight behavior); a megafleet caps it at the faithful-tier
    /// size so a million flyweight ids cannot materialize a million
    /// sample vectors.
    sample_cap: Cell<usize>,
}

impl ServiceEngine {
    /// Creates an engine with `slots` concurrent service slots.
    pub fn new(sim: &Sim, slots: usize, policy: SchedPolicy) -> Rc<ServiceEngine> {
        ServiceEngine::with_weights(sim, slots, policy, None)
    }

    /// Like [`ServiceEngine::new`], upgrading a DRR policy to weighted
    /// DRR when a per-client SLA weight table is supplied.
    pub fn with_weights(
        sim: &Sim,
        slots: usize,
        policy: SchedPolicy,
        weights: Option<&WeightTable>,
    ) -> Rc<ServiceEngine> {
        assert!(slots > 0, "a server needs at least one service slot");
        Rc::new(ServiceEngine {
            sim: sim.clone(),
            policy,
            sched: policy.build_weighted(weights),
            slots,
            free: Cell::new(slots),
            pending_wakes: Cell::new(0),
            enqueued_bytes: Counter::new(),
            served_bytes: Counter::new(),
            queue_delay: RefCell::new(Vec::new()),
            service_lat: RefCell::new(Vec::new()),
            sample_cap: Cell::new(usize::MAX),
        })
    }

    /// Caps per-client latency sampling to clients `0..cap`: clients at
    /// or above the cap (the flyweight tier) are served and scheduled
    /// normally but leave no per-client sample vectors behind.
    pub fn set_sample_cap(&self, cap: usize) {
        self.sample_cap.set(cap);
    }

    /// The configured policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// The policy's report label.
    pub fn label(&self) -> &'static str {
        self.sched.label()
    }

    /// Total service slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Requests currently in service.
    pub fn in_flight(&self) -> usize {
        self.slots - self.free.get()
    }

    /// Requests waiting for a slot.
    pub fn queued(&self) -> usize {
        self.sched.queued()
    }

    /// Payload bytes of every request admitted so far.
    pub fn enqueued_bytes(&self) -> u64 {
        self.enqueued_bytes.get()
    }

    /// Payload bytes of every request whose service completed.
    pub fn served_bytes(&self) -> u64 {
        self.served_bytes.get()
    }

    /// Queue-delay and service-latency digests for one client (zeroes if
    /// the client never queued).
    pub fn digests(&self, client: usize) -> (LatencyDigest, LatencyDigest) {
        let q = self.queue_delay.borrow();
        let s = self.service_lat.borrow();
        (
            q.get(client).map_or(LatencyDigest::default(), |v| LatencyDigest::of(v)),
            s.get(client).map_or(LatencyDigest::default(), |v| LatencyDigest::of(v)),
        )
    }

    /// Raw service-latency samples (arrival to completion) for one client.
    pub fn service_samples(&self, client: usize) -> Vec<SimDuration> {
        self.service_lat
            .borrow()
            .get(client)
            .cloned()
            .unwrap_or_default()
    }

    /// Acquires a service slot for `meta`, waiting in scheduler order.
    /// Dropping the returned [`SvcSlot`] releases the slot and dispatches
    /// the scheduler's next pick.
    pub async fn admit(self: &Rc<Self>, meta: ReqMeta) -> SvcSlot {
        self.enqueued_bytes.add(meta.bytes);
        // Fast path: free slot, empty queue, and the policy admits the
        // client directly (always true for FIFO — the semaphore's fast
        // path, barging included).
        if self.free.get() > 0 && self.sched.queued() == 0 && self.sched.try_grant(&meta) {
            self.take_slot(&meta);
            return SvcSlot {
                engine: Rc::clone(self),
                meta,
            };
        }
        let ticket = Ticket::new(meta);
        loop {
            self.sched.enqueue(Rc::clone(&ticket));
            // A new arrival can be eligible even while slots idle (e.g.
            // every other client is quota-blocked); under FIFO this never
            // fires — a slot only idles when the queue is empty.
            self.kick();
            TicketWait {
                ticket: Rc::clone(&ticket),
            }
            .await;
            ticket.rearm();
            self.pending_wakes.set(self.pending_wakes.get() - 1);
            if self.free.get() > 0 {
                self.take_slot(&meta);
                Ticket::recycle(ticket);
                return SvcSlot {
                    engine: Rc::clone(self),
                    meta,
                };
            }
            // A fast-path arrival stole the slot between our wake and our
            // poll: give the grant back and re-queue at the back, as a
            // semaphore waiter re-queues.
            self.sched.ungrant(&meta);
        }
    }

    /// Poll-style [`ServiceEngine::admit`] for taskless state machines:
    /// `Some(slot)` once admitted, `None` after parking a waker from
    /// `waker_factory` (call again when it fires). Every admission step
    /// — byte accounting, the fast-path grant, enqueue/kick, the
    /// post-wake free-slot re-check and ungrant-requeue on a stolen
    /// slot — replays the async method exactly, and both kinds of
    /// requester share the one scheduler queue, so mixed task/event
    /// traffic is served in the identical order.
    pub fn poll_admit(
        self: &Rc<Self>,
        meta: ReqMeta,
        st: &mut SvcAdmit,
        waker_factory: &mut dyn FnMut() -> Waker,
    ) -> Option<SvcSlot> {
        if !st.started {
            st.started = true;
            self.enqueued_bytes.add(meta.bytes);
            if self.free.get() > 0 && self.sched.queued() == 0 && self.sched.try_grant(&meta) {
                self.take_slot(&meta);
                return Some(SvcSlot {
                    engine: Rc::clone(self),
                    meta,
                });
            }
            let ticket = Ticket::new(meta);
            self.sched.enqueue(Rc::clone(&ticket));
            self.kick();
            st.ticket = Some(ticket);
        }
        loop {
            let ticket = st.ticket.as_ref().expect("SvcAdmit ticket state");
            if !ticket.is_woken() {
                ticket.park(waker_factory());
                return None;
            }
            ticket.rearm();
            self.pending_wakes.set(self.pending_wakes.get() - 1);
            if self.free.get() > 0 {
                if let Some(t) = st.ticket.take() {
                    Ticket::recycle(t);
                }
                self.take_slot(&meta);
                return Some(SvcSlot {
                    engine: Rc::clone(self),
                    meta,
                });
            }
            // A fast-path arrival stole the slot between our wake and our
            // poll: give the grant back and re-queue at the back.
            self.sched.ungrant(&meta);
            self.sched.enqueue(Rc::clone(ticket));
            self.kick();
        }
    }

    fn take_slot(&self, meta: &ReqMeta) {
        self.free.set(self.free.get() - 1);
        if meta.client < self.sample_cap.get() {
            let delay = self.sim.now().since(meta.arrival);
            record_sample(&self.queue_delay, meta.client, delay);
        }
    }

    /// Wakes scheduler picks while slots are free and not already spoken
    /// for by an earlier wake.
    fn kick(&self) {
        while self.free.get() > self.pending_wakes.get() {
            match self.sched.pick_next() {
                Some(ticket) => {
                    self.pending_wakes.set(self.pending_wakes.get() + 1);
                    ticket.wake();
                }
                None => break,
            }
        }
    }

    fn release(&self, meta: &ReqMeta) {
        self.served_bytes.add(meta.bytes);
        if meta.client < self.sample_cap.get() {
            let sojourn = self.sim.now().since(meta.arrival);
            record_sample(&self.service_lat, meta.client, sojourn);
        }
        self.sched.on_complete(meta);
        self.free.set(self.free.get() + 1);
        self.kick();
    }
}

fn record_sample(store: &RefCell<Vec<Vec<SimDuration>>>, client: usize, sample: SimDuration) {
    let mut store = store.borrow_mut();
    while store.len() <= client {
        store.push(Vec::new());
    }
    store[client].push(sample);
}

/// In-flight state for [`ServiceEngine::poll_admit`]; `Default` is the
/// not-yet-started state. Must be driven to admission once started — a
/// queued ticket holds scheduler state, just as a parked task does.
#[derive(Default)]
pub struct SvcAdmit {
    started: bool,
    ticket: Option<Rc<Ticket>>,
}

impl SvcAdmit {
    /// Resets to the not-yet-started state for reuse by the next RPC.
    pub fn reset(&mut self) {
        self.started = false;
        self.ticket = None;
    }
}

/// RAII service slot from [`ServiceEngine::admit`]; releases (and
/// dispatches the next pick) on drop.
#[must_use = "dropping the slot immediately would serve the request in zero slots"]
pub struct SvcSlot {
    engine: Rc<ServiceEngine>,
    meta: ReqMeta,
}

impl Drop for SvcSlot {
    fn drop(&mut self) {
        self.engine.release(&self.meta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::proptest::{check, CaseOutcome};
    use nfsperf_sim::{prop_assert, prop_assert_eq, Semaphore};

    fn meta(client: usize, class: OpClass, bytes: u64) -> ReqMeta {
        ReqMeta {
            client,
            class,
            bytes,
            arrival: SimTime::default(),
        }
    }

    /// Drains a scheduler by repeated pick, completing each pick
    /// immediately; returns the client ids in service order.
    fn drain(sched: &dyn Scheduler) -> Vec<usize> {
        let mut order = Vec::new();
        while let Some(t) = sched.pick_next() {
            order.push(t.meta().client);
            sched.on_complete(&t.meta());
        }
        order
    }

    /// The flyweight sample cap: clients at or above the cap are served
    /// normally but leave no latency vectors behind, so a million
    /// flyweight ids cost the engine nothing.
    #[test]
    fn sample_cap_skips_flyweight_latency_vectors() {
        let sim = Sim::new();
        let engine = ServiceEngine::new(&sim, 1, SchedPolicy::Fifo);
        engine.set_sample_cap(1);
        let e = Rc::clone(&engine);
        sim.run_until(async move {
            drop(e.admit(meta(0, OpClass::Write, 8192)).await);
            drop(e.admit(meta(999_983, OpClass::Write, 8192)).await);
        });
        assert_eq!(engine.service_samples(0).len(), 1);
        assert!(
            engine.service_samples(999_983).is_empty(),
            "capped client must not materialize a sample vector"
        );
        assert_eq!(
            engine.digests(999_983),
            (LatencyDigest::default(), LatencyDigest::default())
        );
        // The vectors never grew past the faithful tier.
        assert!(engine.service_lat.borrow().len() <= 1);
        assert!(engine.queue_delay.borrow().len() <= 1);
    }

    #[test]
    fn fifo_serves_in_arrival_order() {
        let sched = Fifo::default();
        for (client, bytes) in [(2usize, 8192u64), (0, 512), (1, 32768), (0, 8192)] {
            sched.enqueue(Ticket::new(meta(client, OpClass::Write, bytes)));
        }
        assert_eq!(drain(&sched), vec![2, 0, 1, 0]);
        assert_eq!(sched.queued(), 0);
    }

    /// DRR quantum accounting: with an 8 KB quantum, a client sending
    /// 32 KB writes is served once for every four services of a client
    /// sending 8 KB writes — equal bytes, not equal requests.
    #[test]
    fn drr_quantum_accounting_is_byte_weighted() {
        let sched = Drr::new(8192);
        for _ in 0..8 {
            sched.enqueue(Ticket::new(meta(0, OpClass::Write, 8192)));
        }
        for _ in 0..2 {
            sched.enqueue(Ticket::new(meta(1, OpClass::Write, 32768)));
        }
        assert_eq!(drain(&sched), vec![0, 0, 0, 0, 1, 0, 0, 0, 0, 1]);
    }

    /// Weighted DRR: an SLA table entry of 4 gives client 1 four quanta
    /// per rotation, so it drains four requests to client 0's one.
    #[test]
    fn weighted_drr_scales_the_topup_by_the_sla_table() {
        let sched = Drr::weighted(8192, WeightTable::new(vec![1, 4]));
        assert_eq!(sched.label(), "wdrr");
        for _ in 0..4 {
            sched.enqueue(Ticket::new(meta(0, OpClass::Write, 8192)));
        }
        for _ in 0..8 {
            sched.enqueue(Ticket::new(meta(1, OpClass::Write, 8192)));
        }
        assert_eq!(
            drain(&sched),
            vec![0, 1, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0],
            "client 1 earns 4x service per rotation"
        );
        // Clients beyond the table default to weight 1: plain DRR.
        let uniform = Drr::weighted(8192, WeightTable::uniform());
        for client in [5usize, 9] {
            for _ in 0..2 {
                uniform.enqueue(Ticket::new(meta(client, OpClass::Write, 8192)));
            }
        }
        assert_eq!(drain(&uniform), vec![5, 9, 5, 9]);
    }

    /// The DRR fairness bound: between two backlogged clients, served
    /// bytes never diverge by more than a quantum plus one max-size op.
    #[test]
    fn drr_prefix_byte_balance() {
        let sched = Drr::new(8192);
        for _ in 0..16 {
            sched.enqueue(Ticket::new(meta(0, OpClass::Write, 8192)));
        }
        for _ in 0..4 {
            sched.enqueue(Ticket::new(meta(1, OpClass::Write, 32768)));
        }
        let mut served = [0i64, 0i64];
        let mut picks = 0usize;
        while let Some(t) = sched.pick_next() {
            let m = t.meta();
            served[m.client] += m.bytes as i64;
            sched.on_complete(&m);
            picks += 1;
            // Only meaningful while both clients stay backlogged.
            if picks <= 16 {
                assert!(
                    (served[0] - served[1]).abs() <= 8192 + 32768,
                    "byte divergence {} after {picks} picks",
                    served[0] - served[1]
                );
            }
        }
        assert_eq!(served[0], 16 * 8192);
        assert_eq!(served[1], 4 * 32768);
    }

    #[test]
    fn classed_drr_enforces_in_flight_quota() {
        let sched = ClassedDrr::new(32768, 2);
        for _ in 0..5 {
            sched.enqueue(Ticket::new(meta(0, OpClass::Write, 8192)));
        }
        sched.enqueue(Ticket::new(meta(1, OpClass::Write, 8192)));

        let first = sched.pick_next().expect("slot 1");
        assert_eq!(first.meta().client, 0);
        let second = sched.pick_next().expect("slot 2");
        assert_eq!(second.meta().client, 0);
        // Client 0 is at quota: the next pick must skip to client 1.
        let third = sched.pick_next().expect("client 1 eligible");
        assert_eq!(third.meta().client, 1);
        // Everyone queued is now at quota or empty: no pick.
        assert!(sched.pick_next().is_none());
        assert_eq!(sched.queued(), 3);
        // Completing one of client 0's requests unblocks it.
        sched.on_complete(&first.meta());
        assert_eq!(sched.pick_next().expect("unblocked").meta().client, 0);
    }

    #[test]
    fn classed_drr_serves_writes_before_commit_backlog() {
        let sched = ClassedDrr::new(32768, 8);
        // A COMMIT backlog arrives first...
        for _ in 0..3 {
            sched.enqueue(Ticket::new(meta(0, OpClass::Commit, 0)));
        }
        // ...then a WRITE from the same client.
        sched.enqueue(Ticket::new(meta(0, OpClass::Write, 8192)));
        let first = sched.pick_next().expect("pick");
        assert_eq!(first.meta().class, OpClass::Write);
        // The backlog still drains afterwards.
        assert_eq!(
            (0..3)
                .map(|_| sched.pick_next().expect("commit").meta().class)
                .filter(|c| *c == OpClass::Commit)
                .count(),
            3
        );
    }

    #[test]
    fn fast_path_grant_counts_against_quota() {
        let sched = ClassedDrr::new(32768, 1);
        let m = meta(0, OpClass::Write, 8192);
        assert!(sched.try_grant(&m));
        assert!(!sched.try_grant(&m), "quota 1 must reject a second grant");
        sched.ungrant(&m);
        assert!(sched.try_grant(&m), "ungrant must return the quota");
        sched.on_complete(&m);
        assert!(sched.try_grant(&m));
    }

    /// One simulated client-service world: `ops` are (start_delay_us,
    /// service_us) pairs, all against a pool of `slots`. Returns each
    /// op's completion time in spawn order.
    fn run_ops_engine(slots: usize, policy: SchedPolicy, ops: &[(u64, u64)]) -> Vec<u64> {
        let sim = Sim::new();
        let engine = ServiceEngine::new(&sim, slots, policy);
        let done: Rc<RefCell<Vec<(usize, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut handles = Vec::new();
        for (i, &(delay, service)) in ops.iter().enumerate() {
            let sim2 = sim.clone();
            let engine = Rc::clone(&engine);
            let done = Rc::clone(&done);
            handles.push(sim.spawn(async move {
                sim2.sleep(SimDuration::from_micros(delay)).await;
                let m = ReqMeta {
                    client: i % 3,
                    class: OpClass::Write,
                    bytes: 8192,
                    arrival: sim2.now(),
                };
                let slot = engine.admit(m).await;
                sim2.sleep(SimDuration::from_micros(service)).await;
                drop(slot);
                done.borrow_mut().push((i, sim2.now().0));
            }));
        }
        sim.run_until(async move {
            for h in handles {
                h.await;
            }
        });
        let mut by_spawn = vec![0u64; ops.len()];
        for &(i, t) in done.borrow().iter() {
            by_spawn[i] = t;
        }
        by_spawn
    }

    /// The same world against the plain semaphore the server used before
    /// this subsystem.
    fn run_ops_semaphore(slots: usize, ops: &[(u64, u64)]) -> Vec<u64> {
        let sim = Sim::new();
        let sem = Rc::new(Semaphore::new(slots));
        let done: Rc<RefCell<Vec<(usize, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut handles = Vec::new();
        for (i, &(delay, service)) in ops.iter().enumerate() {
            let sim2 = sim.clone();
            let sem = Rc::clone(&sem);
            let done = Rc::clone(&done);
            handles.push(sim.spawn(async move {
                sim2.sleep(SimDuration::from_micros(delay)).await;
                let permit = sem.acquire().await;
                sim2.sleep(SimDuration::from_micros(service)).await;
                drop(permit);
                done.borrow_mut().push((i, sim2.now().0));
            }));
        }
        sim.run_until(async move {
            for h in handles {
                h.await;
            }
        });
        let mut by_spawn = vec![0u64; ops.len()];
        for &(i, t) in done.borrow().iter() {
            by_spawn[i] = t;
        }
        by_spawn
    }

    /// FIFO bit-compatibility: the engine must complete every op at the
    /// identical simulated nanosecond the raw semaphore did, including
    /// under simultaneous arrivals and slot barging.
    #[test]
    fn fifo_engine_is_bit_compatible_with_semaphore() {
        let patterns: &[&[(u64, u64)]] = &[
            &[(0, 100), (0, 100), (0, 100), (0, 100)],
            &[(0, 500), (10, 20), (10, 20), (400, 300), (401, 1)],
            &[(5, 50), (5, 50), (5, 50), (55, 10), (55, 10), (56, 200)],
            &[(0, 1), (1, 1), (2, 1), (3, 1000), (3, 1), (1000, 5)],
        ];
        for (slots, pattern) in [(1usize, 0usize), (2, 1), (3, 2), (2, 3)] {
            let ops = patterns[pattern];
            assert_eq!(
                run_ops_engine(slots, SchedPolicy::Fifo, ops),
                run_ops_semaphore(slots, ops),
                "slots={slots} pattern={pattern}"
            );
        }
    }

    #[test]
    fn engine_records_queue_delay_and_service_latency() {
        let sim = Sim::new();
        let engine = ServiceEngine::new(&sim, 1, SchedPolicy::Fifo);
        let e1 = Rc::clone(&engine);
        let e2 = Rc::clone(&engine);
        let s1 = sim.clone();
        let s2 = sim.clone();
        let a = sim.spawn(async move {
            let m = ReqMeta {
                client: 0,
                class: OpClass::Write,
                bytes: 100,
                arrival: s1.now(),
            };
            let slot = e1.admit(m).await;
            s1.sleep(SimDuration::from_micros(100)).await;
            drop(slot);
        });
        let b = sim.spawn(async move {
            let m = ReqMeta {
                client: 1,
                class: OpClass::Commit,
                bytes: 0,
                arrival: s2.now(),
            };
            let slot = e2.admit(m).await;
            s2.sleep(SimDuration::from_micros(50)).await;
            drop(slot);
        });
        sim.run_until(async move {
            a.await;
            b.await;
        });
        let (q0, s0) = engine.digests(0);
        let (q1, s1d) = engine.digests(1);
        assert_eq!(q0.p50, SimDuration::ZERO, "client 0 never queued");
        assert_eq!(s0.p50, SimDuration::from_micros(100));
        assert_eq!(q1.p50, SimDuration::from_micros(100), "client 1 waited out client 0");
        assert_eq!(s1d.p50, SimDuration::from_micros(150));
        assert_eq!(engine.enqueued_bytes(), 100);
        assert_eq!(engine.served_bytes(), 100);
        // Unknown clients report zeroes.
        assert_eq!(engine.digests(7), Default::default());
    }

    /// Shared harness for the two properties below: run a random arrival
    /// pattern through an engine, tracking per-client in-flight peaks.
    /// Ops are (client, arrival_us, service_us, bytes).
    fn run_property_world(
        policy: SchedPolicy,
        slots: usize,
        ops: &[(usize, u64, u64, u64)],
    ) -> (Vec<usize>, u64, u64) {
        let sim = Sim::new();
        let engine = ServiceEngine::new(&sim, slots, policy);
        let in_flight: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(vec![0; 8]));
        let peaks: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(vec![0; 8]));
        let mut handles = Vec::new();
        for &(client, arrival, service, bytes) in ops {
            let sim2 = sim.clone();
            let engine = Rc::clone(&engine);
            let in_flight = Rc::clone(&in_flight);
            let peaks = Rc::clone(&peaks);
            handles.push(sim.spawn(async move {
                sim2.sleep(SimDuration::from_micros(arrival)).await;
                let m = ReqMeta {
                    client,
                    class: if bytes % 2 == 1 {
                        OpClass::Commit
                    } else {
                        OpClass::Write
                    },
                    bytes,
                    arrival: sim2.now(),
                };
                let slot = engine.admit(m).await;
                {
                    let mut inf = in_flight.borrow_mut();
                    inf[client] += 1;
                    let mut pk = peaks.borrow_mut();
                    pk[client] = pk[client].max(inf[client]);
                }
                sim2.sleep(SimDuration::from_micros(service)).await;
                in_flight.borrow_mut()[client] -= 1;
                drop(slot);
            }));
        }
        let enq;
        let served;
        {
            let engine = Rc::clone(&engine);
            sim.run_until(async move {
                for h in handles {
                    h.await;
                }
            });
            enq = engine.enqueued_bytes();
            served = engine.served_bytes();
        }
        let peaks = peaks.borrow().clone();
        (peaks, enq, served)
    }

    fn gen_ops(g: &mut nfsperf_sim::proptest::Gen) -> Vec<(usize, u64, u64, u64)> {
        g.vec(1, 24, |g| {
            (
                g.usize_in(0, 3),
                g.u64_in(0, 200),
                g.u64_in(1, 80),
                g.u64_in(0, 40_000),
            )
        })
    }

    /// Property: for any arrival pattern, ClassedDrr never lets a client
    /// exceed its in-flight quota.
    #[test]
    fn prop_quota_never_exceeded() {
        check("prop_quota_never_exceeded", gen_ops, |ops| {
            let quota = 2;
            let (peaks, _, _) = run_property_world(
                SchedPolicy::ClassedDrr {
                    quantum: 16 * 1024,
                    quota,
                },
                4,
                ops,
            );
            for (client, &peak) in peaks.iter().enumerate() {
                prop_assert!(
                    peak <= quota,
                    "client {client} reached {peak} in flight (quota {quota})"
                );
            }
            CaseOutcome::Pass
        });
    }

    /// Property: total served bytes equals total enqueued bytes once the
    /// queue drains (conservation) — for every policy.
    #[test]
    fn prop_byte_conservation() {
        check("prop_byte_conservation", gen_ops, |ops| {
            for policy in [
                SchedPolicy::Fifo,
                SchedPolicy::drr(),
                SchedPolicy::classed_drr(),
            ] {
                let (_, enqueued, served) = run_property_world(policy, 3, ops);
                prop_assert_eq!(enqueued, served);
                let want: u64 = ops.iter().map(|&(_, _, _, b)| b).sum();
                prop_assert_eq!(enqueued, want);
            }
            CaseOutcome::Pass
        });
    }

    /// Quota-blocked picks must not deadlock idle slots: completions
    /// re-kick the scheduler.
    #[test]
    fn quota_block_resolves_on_completion() {
        let ops: Vec<(usize, u64, u64, u64)> =
            (0..10u64).map(|i| (0usize, 0u64, 50u64, 8192 * (i % 2))).collect();
        let (peaks, enq, served) = run_property_world(
            SchedPolicy::ClassedDrr {
                quantum: 16 * 1024,
                quota: 1,
            },
            4,
            &ops,
        );
        assert_eq!(enq, served, "all ops must eventually be served");
        assert!(peaks[0] <= 1);
    }
}
