//! Server-side file table: the minimal exported file system behind the
//! simulated NFS servers.

use std::cell::RefCell;
use std::collections::HashMap;

use nfsperf_nfs3::{Fattr3, FileHandle, NfsStat3};

/// Root directory file id.
pub const ROOT_FILEID: u64 = 1;

struct FileEntry {
    name: String,
    size: u64,
}

/// The exported tree: a single root directory of regular files.
pub struct FsState {
    files: RefCell<HashMap<u64, FileEntry>>,
    by_name: RefCell<HashMap<String, u64>>,
    next_id: std::cell::Cell<u64>,
}

impl Default for FsState {
    fn default() -> Self {
        FsState::new()
    }
}

impl FsState {
    /// Creates an empty export.
    pub fn new() -> FsState {
        FsState {
            files: RefCell::new(HashMap::new()),
            by_name: RefCell::new(HashMap::new()),
            next_id: std::cell::Cell::new(ROOT_FILEID + 1),
        }
    }

    /// The root directory handle clients mount.
    pub fn root_handle(&self) -> FileHandle {
        FileHandle::for_fileid(ROOT_FILEID)
    }

    /// Creates (or truncates, UNCHECKED-style) a file, returning its
    /// handle and attributes.
    pub fn create(&self, name: &str) -> (FileHandle, Fattr3) {
        let existing = self.by_name.borrow().get(name).copied();
        let id = if let Some(id) = existing {
            self.files
                .borrow_mut()
                .get_mut(&id)
                .expect("indexed file")
                .size = 0;
            id
        } else {
            let id = self.next_id.get();
            self.next_id.set(id + 1);
            self.files.borrow_mut().insert(
                id,
                FileEntry {
                    name: name.to_owned(),
                    size: 0,
                },
            );
            self.by_name.borrow_mut().insert(name.to_owned(), id);
            id
        };
        (FileHandle::for_fileid(id), Fattr3::regular(id, 0))
    }

    /// Resolves a name to a handle and attributes.
    pub fn lookup(&self, name: &str) -> Result<(FileHandle, Fattr3), NfsStat3> {
        let by_name = self.by_name.borrow();
        let id = *by_name.get(name).ok_or(NfsStat3::Noent)?;
        let files = self.files.borrow();
        let f = files.get(&id).ok_or(NfsStat3::Stale)?;
        Ok((FileHandle::for_fileid(id), Fattr3::regular(id, f.size)))
    }

    /// Returns attributes for a handle.
    pub fn getattr(&self, fh: &FileHandle) -> Result<Fattr3, NfsStat3> {
        let id = fh.fileid();
        if id == ROOT_FILEID {
            let mut a = Fattr3::regular(ROOT_FILEID, 4096);
            a.ftype = nfsperf_nfs3::Ftype3::Dir;
            return Ok(a);
        }
        let files = self.files.borrow();
        let f = files.get(&id).ok_or(NfsStat3::Stale)?;
        Ok(Fattr3::regular(id, f.size))
    }

    /// Sets a file's size (SETATTR truncate).
    pub fn truncate(&self, fh: &FileHandle, size: u64) -> Result<Fattr3, NfsStat3> {
        let id = fh.fileid();
        let mut files = self.files.borrow_mut();
        let f = files.get_mut(&id).ok_or(NfsStat3::Stale)?;
        f.size = size;
        Ok(Fattr3::regular(id, f.size))
    }

    /// Records a write, extending the file. Returns the new attributes.
    pub fn apply_write(
        &self,
        fh: &FileHandle,
        offset: u64,
        count: u32,
    ) -> Result<Fattr3, NfsStat3> {
        let id = fh.fileid();
        let mut files = self.files.borrow_mut();
        let f = files.get_mut(&id).ok_or(NfsStat3::Stale)?;
        f.size = f.size.max(offset + u64::from(count));
        Ok(Fattr3::regular(id, f.size))
    }

    /// Current size of the file behind `fh`.
    pub fn size_of(&self, fh: &FileHandle) -> Result<u64, NfsStat3> {
        let files = self.files.borrow();
        files
            .get(&fh.fileid())
            .map(|f| f.size)
            .ok_or(NfsStat3::Stale)
    }

    /// Number of regular files in the export.
    pub fn file_count(&self) -> usize {
        self.files.borrow().len()
    }

    /// Name of the file behind `fh`, if any (for reports).
    pub fn name_of(&self, fh: &FileHandle) -> Option<String> {
        self.files
            .borrow()
            .get(&fh.fileid())
            .map(|f| f.name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_lookup_getattr() {
        let fs = FsState::new();
        let (fh, attrs) = fs.create("bench.dat");
        assert_eq!(attrs.size, 0);
        let (fh2, a2) = fs.lookup("bench.dat").unwrap();
        assert_eq!(fh, fh2);
        assert_eq!(a2.size, 0);
        assert_eq!(fs.getattr(&fh).unwrap().fileid, fh.fileid());
        assert_eq!(fs.file_count(), 1);
        assert_eq!(fs.name_of(&fh).as_deref(), Some("bench.dat"));
    }

    #[test]
    fn lookup_missing_is_noent() {
        let fs = FsState::new();
        assert_eq!(fs.lookup("nope").unwrap_err(), NfsStat3::Noent);
    }

    #[test]
    fn stale_handle_rejected() {
        let fs = FsState::new();
        let bogus = FileHandle::for_fileid(999);
        assert_eq!(fs.getattr(&bogus).unwrap_err(), NfsStat3::Stale);
        assert_eq!(fs.apply_write(&bogus, 0, 10).unwrap_err(), NfsStat3::Stale);
    }

    #[test]
    fn writes_extend_size() {
        let fs = FsState::new();
        let (fh, _) = fs.create("f");
        fs.apply_write(&fh, 0, 4096).unwrap();
        fs.apply_write(&fh, 4096, 4096).unwrap();
        assert_eq!(fs.size_of(&fh).unwrap(), 8192);
        // Overlapping write does not shrink.
        fs.apply_write(&fh, 0, 100).unwrap();
        assert_eq!(fs.size_of(&fh).unwrap(), 8192);
    }

    #[test]
    fn recreate_truncates() {
        let fs = FsState::new();
        let (fh, _) = fs.create("f");
        fs.apply_write(&fh, 0, 4096).unwrap();
        let (fh2, attrs) = fs.create("f");
        assert_eq!(fh, fh2, "same name keeps its file id");
        assert_eq!(attrs.size, 0);
        assert_eq!(fs.size_of(&fh).unwrap(), 0);
    }

    #[test]
    fn truncate_sets_size() {
        let fs = FsState::new();
        let (fh, _) = fs.create("f");
        fs.apply_write(&fh, 0, 9000).unwrap();
        let a = fs.truncate(&fh, 100).unwrap();
        assert_eq!(a.size, 100);
    }

    #[test]
    fn root_is_a_directory() {
        let fs = FsState::new();
        let root = fs.root_handle();
        let a = fs.getattr(&root).unwrap();
        assert_eq!(a.ftype, nfsperf_nfs3::Ftype3::Dir);
    }
}
