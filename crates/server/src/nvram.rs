//! The filer's NVRAM write buffer.
//!
//! Incoming writes are acknowledged as soon as they are logged to NVRAM
//! (which is why the filer answers `FILE_SYNC` without touching disk); a
//! background drain empties the log to the RAID volume. When the log is
//! full, admissions stall at the drain rate — the regime the right-hand
//! side of the paper's Figure 7 shows once the benchmark file outgrows
//! client RAM plus NVRAM.

use std::cell::Cell;
use std::rc::Rc;

use nfsperf_sim::{Sim, WaitFuture, WaitQueue};

use crate::disk::DiskModel;

/// In-flight state for [`Nvram::poll_admit`]; `Default` is the
/// not-yet-started state.
#[derive(Default)]
pub struct NvramAdmit {
    started: bool,
    wait: Option<WaitFuture>,
}

impl NvramAdmit {
    /// Resets to the not-yet-started state for reuse by the next RPC.
    pub fn reset(&mut self) {
        self.started = false;
        self.wait = None;
    }
}

/// Drain granularity: how much the background task moves per disk write.
const DRAIN_CHUNK: u64 = 256 * 1024;

/// An NVRAM write log with background drain.
pub struct Nvram {
    capacity: u64,
    used: Cell<u64>,
    peak: Cell<u64>,
    space: WaitQueue,
    work: WaitQueue,
    total_admitted: Cell<u64>,
    full_stalls: Cell<u64>,
}

impl Nvram {
    /// Creates an NVRAM log of `capacity` bytes draining to `disk`, and
    /// spawns the drain task.
    pub fn new(sim: &Sim, capacity: u64, disk: Rc<DiskModel>) -> Rc<Nvram> {
        assert!(capacity > 0, "NVRAM capacity must be positive");
        let nvram = Rc::new(Nvram {
            capacity,
            used: Cell::new(0),
            peak: Cell::new(0),
            space: WaitQueue::new(),
            work: WaitQueue::new(),
            total_admitted: Cell::new(0),
            full_stalls: Cell::new(0),
        });
        let drain = Rc::clone(&nvram);
        sim.spawn(async move {
            drain.drain_loop(disk).await;
        });
        nvram
    }

    /// Logs `bytes` into NVRAM, stalling while the log is full.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the whole log capacity.
    pub async fn admit(&self, bytes: u64) {
        assert!(
            bytes <= self.capacity,
            "single admission {bytes} larger than NVRAM {}",
            self.capacity
        );
        if self.used.get() + bytes > self.capacity {
            self.full_stalls.set(self.full_stalls.get() + 1);
            while self.used.get() + bytes > self.capacity {
                self.space.wait().await;
            }
        }
        let u = self.used.get() + bytes;
        self.used.set(u);
        self.peak.set(self.peak.get().max(u));
        self.total_admitted.set(self.total_admitted.get() + bytes);
        self.work.wake_all();
    }

    /// Poll-style [`Nvram::admit`] for taskless state machines: `true`
    /// once the bytes are logged, `false` after parking a waker from
    /// `waker_factory` (call again when it fires). Stall accounting,
    /// the re-check loop against drain progress, and the drain-task
    /// kick replay the async method exactly; parked flyweights share
    /// the `space` queue with any parked tasks.
    pub fn poll_admit(
        &self,
        bytes: u64,
        st: &mut NvramAdmit,
        waker_factory: &mut dyn FnMut() -> std::task::Waker,
    ) -> bool {
        if !st.started {
            st.started = true;
            assert!(
                bytes <= self.capacity,
                "single admission {bytes} larger than NVRAM {}",
                self.capacity
            );
            if self.used.get() + bytes > self.capacity {
                self.full_stalls.set(self.full_stalls.get() + 1);
            }
        }
        if let Some(w) = st.wait.as_ref() {
            if !w.is_woken() {
                w.park(waker_factory());
                return false;
            }
            st.wait = None;
        }
        if self.used.get() + bytes > self.capacity {
            let w = self.space.wait();
            w.park(waker_factory());
            st.wait = Some(w);
            return false;
        }
        let u = self.used.get() + bytes;
        self.used.set(u);
        self.peak.set(self.peak.get().max(u));
        self.total_admitted.set(self.total_admitted.get() + bytes);
        self.work.wake_all();
        true
    }

    async fn drain_loop(&self, disk: Rc<DiskModel>) {
        loop {
            let used = self.used.get();
            if used == 0 {
                self.work.wait().await;
                continue;
            }
            let chunk = used.min(DRAIN_CHUNK);
            disk.write_stream(chunk).await;
            self.used.set(self.used.get() - chunk);
            self.space.wake_all();
        }
    }

    /// Bytes currently logged.
    pub fn used(&self) -> u64 {
        self.used.get()
    }

    /// Log capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Highest fill level seen.
    pub fn peak(&self) -> u64 {
        self.peak.get()
    }

    /// Total bytes ever admitted.
    pub fn total_admitted(&self) -> u64 {
        self.total_admitted.get()
    }

    /// Number of admissions that found the log full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::{SimDuration, SimTime};

    #[test]
    fn admissions_fit_without_stall() {
        let sim = Sim::new();
        let disk = Rc::new(DiskModel::new(&sim, 10_000_000, SimDuration::ZERO));
        let nv = Nvram::new(&sim, 1_000_000, disk);
        let n = Rc::clone(&nv);
        sim.run_until(async move {
            n.admit(500_000).await;
            // Fits immediately: no simulated time passes.
            assert_eq!(n.used(), 500_000);
        });
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(nv.full_stalls(), 0);
    }

    #[test]
    fn full_log_stalls_at_drain_rate() {
        let sim = Sim::new();
        // Drain at 1 MB/s so stalls are long and measurable.
        let disk = Rc::new(DiskModel::new(&sim, 1_000_000, SimDuration::ZERO));
        let nv = Nvram::new(&sim, 1_000_000, disk);
        let n = Rc::clone(&nv);
        sim.run_until(async move {
            n.admit(1_000_000).await; // fills the log
            n.admit(500_000).await; // must wait for 500 KB to drain
        });
        // 500 KB at 1 MB/s = 500 ms (drain chunks may overshoot slightly).
        assert!(
            sim.now() >= SimTime(450_000_000),
            "expected a long stall, got {}",
            sim.now()
        );
        assert_eq!(nv.full_stalls(), 1);
        assert_eq!(nv.total_admitted(), 1_500_000);
    }

    #[test]
    fn drains_to_empty() {
        let sim = Sim::new();
        let disk = Rc::new(DiskModel::new(&sim, 100_000_000, SimDuration::ZERO));
        let nv = Nvram::new(&sim, 10_000_000, Rc::clone(&disk));
        let n = Rc::clone(&nv);
        let s = sim.clone();
        sim.run_until(async move {
            n.admit(5_000_000).await;
            s.sleep(SimDuration::from_secs(1)).await;
        });
        assert_eq!(nv.used(), 0);
        assert_eq!(disk.bytes_written(), 5_000_000);
        assert_eq!(nv.peak(), 5_000_000);
    }

    #[test]
    #[should_panic(expected = "larger than NVRAM")]
    fn oversized_admission_panics() {
        let sim = Sim::new();
        let disk = Rc::new(DiskModel::new(&sim, 1_000_000, SimDuration::ZERO));
        let nv = Nvram::new(&sim, 1_000, disk);
        let n = Rc::clone(&nv);
        sim.run_until(async move {
            n.admit(2_000).await;
        });
    }
}
