//! Local ext2 write-path model — the Figure 1/7 baseline.
//!
//! Writes land in the page cache at memory-copy speed; a `bdflush`-style
//! daemon writes dirty pages to the (slow, multiword-DMA-crippled) IDE
//! disk in the background once the dirty threshold is crossed, and the
//! writer is throttled against the same `MemoryModel` the NFS client
//! uses once RAM fills. Unlike NFS, `close()` flushes nothing — the
//! asymmetry that makes Bonnie report separate write/flush/close numbers
//! (paper §2.3).

use std::cell::Cell;
use std::rc::Rc;

use nfsperf_kernel::{page, Kernel, PageSeg, SimFile, VfsError, VfsResult};
use nfsperf_server::DiskModel;
use nfsperf_sim::{SimDuration, WaitQueue};

/// How many pages bdflush writes per disk operation.
const WRITEBACK_BATCH_PAGES: u64 = 1024;

/// kupdate-style periodic writeback interval (Linux 2.4: 5 s).
const KUPDATE_INTERVAL: SimDuration = SimDuration::from_secs(5);

/// A mounted local ext2 file system with one open file.
pub struct Ext2Fs {
    kernel: Kernel,
    disk: Rc<DiskModel>,
    /// Pages dirty in the cache, not yet on disk.
    dirty_pages: Cell<u64>,
    /// Pages being written by bdflush right now.
    in_flight_pages: Cell<u64>,
    clean_event: WaitQueue,
}

impl Ext2Fs {
    /// Mounts the model and spawns its writeback daemon.
    pub fn mount(kernel: &Kernel) -> Rc<Ext2Fs> {
        let fs = Rc::new(Ext2Fs {
            kernel: kernel.clone(),
            disk: Rc::new(DiskModel::ide_udma_crippled(&kernel.sim)),
            dirty_pages: Cell::new(0),
            in_flight_pages: Cell::new(0),
            clean_event: WaitQueue::new(),
        });
        let daemon = Rc::clone(&fs);
        kernel.sim.spawn(async move {
            daemon.bdflush().await;
        });
        fs
    }

    /// Opens a fresh file for writing.
    pub fn create(self: &Rc<Self>, _name: &str) -> Ext2File {
        Ext2File {
            fs: Rc::clone(self),
            written: Cell::new(0),
            closed: Cell::new(false),
        }
    }

    /// Pages currently dirty (not yet on disk).
    pub fn dirty_pages(&self) -> u64 {
        self.dirty_pages.get()
    }

    /// Bytes the disk has absorbed.
    pub fn disk_bytes(&self) -> u64 {
        self.disk.bytes_written()
    }

    async fn bdflush(&self) {
        loop {
            self.kernel
                .mem
                .wait_for_writeback_work(KUPDATE_INTERVAL)
                .await;
            // Pace the daemon: over the background limit the wait above
            // returns immediately, and `flush_once` may find nothing to
            // do while fsync holds the batch — without a tick the daemon
            // would spin without advancing simulated time.
            self.kernel.sim.sleep(SimDuration::from_millis(1)).await;
            self.flush_once().await;
        }
    }

    /// Writes one batch of dirty pages to disk and unpins them.
    async fn flush_once(&self) {
        let todo = self.dirty_pages.get().min(WRITEBACK_BATCH_PAGES);
        if todo == 0 {
            return;
        }
        self.dirty_pages.set(self.dirty_pages.get() - todo);
        self.in_flight_pages.set(self.in_flight_pages.get() + todo);
        self.kernel
            .mem
            .move_pages(PageSeg::Dirty, PageSeg::Writeback, todo as usize);
        self.disk.write_stream(todo * page::PAGE_SIZE).await;
        self.in_flight_pages.set(self.in_flight_pages.get() - todo);
        self.kernel
            .mem
            .release_pages(PageSeg::Writeback, todo as usize);
        self.clean_event.wake_all();
    }

    async fn sync_all(&self) {
        // Drive writeback ourselves until nothing is dirty or in flight,
        // like fsync walking the buffer lists.
        loop {
            if self.dirty_pages.get() == 0 && self.in_flight_pages.get() == 0 {
                return;
            }
            if self.dirty_pages.get() > 0 {
                self.flush_once().await;
            } else {
                self.clean_event.wait().await;
            }
        }
    }
}

/// An open ext2 file.
pub struct Ext2File {
    fs: Rc<Ext2Fs>,
    written: Cell<u64>,
    closed: Cell<bool>,
}

impl SimFile for Ext2File {
    async fn write(&self, offset: u64, len: u64) -> VfsResult<u64> {
        if self.closed.get() {
            return Err(VfsError::Closed);
        }
        let kernel = &self.fs.kernel;
        kernel
            .cpus
            .work("sys_write", kernel.costs.write_syscall_fixed)
            .await;
        for _seg in nfsperf_kernel::split_into_pages(offset, len) {
            kernel.mem.pin_dirty_page().await;
            self.fs.dirty_pages.set(self.fs.dirty_pages.get() + 1);
            kernel
                .cpus
                .work("ext2_page_write", kernel.costs.ext2_page_write)
                .await;
        }
        self.written.set(self.written.get() + len);
        Ok(len)
    }

    async fn fsync(&self) -> VfsResult<()> {
        if self.closed.get() {
            return Err(VfsError::Closed);
        }
        self.fs.sync_all().await;
        Ok(())
    }

    async fn close(&self) -> VfsResult<()> {
        // ext2 leaves dirty data cached across close; only mark the file.
        self.closed.set(true);
        Ok(())
    }

    fn bytes_written(&self) -> u64 {
        self.written.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_kernel::{CostTable, KernelConfig, PAGE_SIZE};
    use nfsperf_sim::Sim;

    fn no_jitter_kernel(sim: &Sim, ram: u64) -> Kernel {
        let costs = CostTable {
            cpu_jitter_frac: 0.0,
            ..CostTable::default()
        };
        Kernel::new(
            sim,
            KernelConfig {
                ram_bytes: ram,
                costs,
                ..KernelConfig::default()
            },
        )
    }

    #[test]
    fn small_write_is_memory_speed() {
        let sim = Sim::new();
        let kernel = no_jitter_kernel(&sim, 256 << 20);
        let fs = Ext2Fs::mount(&kernel);
        let file = fs.create("t");
        let elapsed = sim.run_until({
            let s = sim.clone();
            async move {
                let t0 = s.now();
                file.write(0, 8192).await.unwrap();
                s.now().since(t0)
            }
        });
        // Syscall fixed + two page copies; far below a disk access.
        let expect = kernel.costs.write_syscall_fixed + kernel.costs.ext2_page_write * 2;
        assert_eq!(elapsed, expect);
    }

    #[test]
    fn writes_accumulate_dirty_pages() {
        let sim = Sim::new();
        let kernel = no_jitter_kernel(&sim, 256 << 20);
        let fs = Ext2Fs::mount(&kernel);
        let f2 = Rc::clone(&fs);
        sim.run_until(async move {
            let file = f2.create("t");
            for i in 0..10u64 {
                file.write(i * 8192, 8192).await.unwrap();
            }
            assert_eq!(f2.dirty_pages(), 20);
            assert_eq!(file.bytes_written(), 10 * 8192);
        });
        assert_eq!(kernel.mem.dirty_pages(), 20);
    }

    #[test]
    fn fsync_pushes_everything_to_disk() {
        let sim = Sim::new();
        let kernel = no_jitter_kernel(&sim, 256 << 20);
        let fs = Ext2Fs::mount(&kernel);
        let f2 = Rc::clone(&fs);
        sim.run_until(async move {
            let file = f2.create("t");
            for i in 0..16u64 {
                file.write(i * 8192, 8192).await.unwrap();
            }
            file.fsync().await.unwrap();
            assert_eq!(f2.dirty_pages(), 0);
            assert_eq!(f2.disk_bytes(), 16 * 8192);
        });
        assert_eq!(kernel.mem.dirty_pages(), 0);
    }

    #[test]
    fn close_does_not_flush() {
        let sim = Sim::new();
        let kernel = no_jitter_kernel(&sim, 256 << 20);
        let fs = Ext2Fs::mount(&kernel);
        let f2 = Rc::clone(&fs);
        sim.run_until(async move {
            let file = f2.create("t");
            file.write(0, 8192).await.unwrap();
            file.close().await.unwrap();
            assert_eq!(f2.dirty_pages(), 2, "dirty data survives close");
            assert_eq!(file.write(8192, 8192).await.unwrap_err(), VfsError::Closed);
            assert_eq!(file.fsync().await.unwrap_err(), VfsError::Closed);
        });
    }

    #[test]
    fn memory_pressure_throttles_to_disk_speed() {
        let sim = Sim::new();
        // Tiny RAM so the test runs fast: 4 MB.
        let kernel = no_jitter_kernel(&sim, 4 << 20);
        let fs = Ext2Fs::mount(&kernel);
        let f2 = Rc::clone(&fs);
        let (elapsed, bytes) = sim.run_until({
            let s = sim.clone();
            async move {
                let file = f2.create("t");
                let t0 = s.now();
                let total: u64 = 16 << 20; // 4x RAM
                let mut off = 0;
                while off < total {
                    file.write(off, 8192).await.unwrap();
                    off += 8192;
                }
                (s.now().since(t0), file.bytes_written())
            }
        });
        assert_eq!(bytes, 16 << 20);
        // Pure memory speed would take ~16MB / 200MBps = 84ms; the IDE
        // disk at 14 MB/s needs ~850ms for the overflow. Expect way more
        // than memory speed.
        assert!(
            elapsed > SimDuration::from_millis(500),
            "expected disk-bound run, got {elapsed}"
        );
        assert!(
            kernel.mem.throttle_events() > 0,
            "writer must have throttled"
        );
    }

    #[test]
    fn kupdate_flushes_eventually_without_pressure() {
        let sim = Sim::new();
        let kernel = no_jitter_kernel(&sim, 256 << 20);
        let fs = Ext2Fs::mount(&kernel);
        let f2 = Rc::clone(&fs);
        sim.run_until({
            let s = sim.clone();
            async move {
                let file = f2.create("t");
                file.write(0, PAGE_SIZE).await.unwrap();
                assert_eq!(f2.dirty_pages(), 1);
                // After the kupdate interval the page should hit disk.
                s.sleep(SimDuration::from_secs(6)).await;
                assert_eq!(f2.dirty_pages(), 0);
                assert_eq!(f2.disk_bytes(), PAGE_SIZE);
            }
        });
    }
}
