//! Counting-allocator proof that a steady-state flyweight RPC touches
//! the heap zero times.
//!
//! The taskless engine advances every RPC through slab events and
//! preallocated records: no future, no `Box`, no waker clone, no wire
//! buffer. This harness wraps the system allocator with a counter and
//! measures two virtual-time windows of different lengths after a
//! warmup long enough to grow every slab, free list, timer heap, and
//! latency pool to its steady capacity. Each `run_until` window pays
//! the same fixed cost (boxing its own root future); if an RPC cost
//! even one allocation, the 4×-longer window — carrying ~4× the RPCs —
//! would count more. Equality is the zero-per-RPC proof.

use std::alloc::{GlobalAlloc, Layout, System};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use nfsperf_fleet::{BehaviorModel, FlyTier, FlyTierConfig, GAP_QUANTILES};
use nfsperf_net::{Fabric, FabricConfig, NicSpec};
use nfsperf_server::{BackendConfig, NfsServer, ServerConfig};
use nfsperf_sim::{Sim, SimDuration, SimTime};

/// Counts every heap acquisition (alloc and realloc both; dealloc is
/// free of charge — a steady state that frees must also allocate).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_flyweight_rpc_allocates_nothing() {
    let sim = Sim::new();
    let server_nic = NicSpec::gigabit();
    let fabric = Rc::new(Fabric::new(&sim, FabricConfig::new(server_nic)));
    // Memory backend: no checkpoint pauses or disk flushes, so RPC
    // traffic is uniform in virtual time and the two windows carry
    // write counts proportional to their lengths.
    let server = NfsServer::new(
        &sim,
        ServerConfig {
            backend: BackendConfig::Memory,
            ..ServerConfig::netapp_f85()
        },
    );
    let model = BehaviorModel {
        gap_quantiles: std::array::from_fn(|i| SimDuration((i as u64 + 1) * 50_000)),
        write_wire_bytes: 8328,
        commit_wire_bytes: 136,
        write_payload: 8192,
        writes_per_commit: 16,
        window: 4,
    };
    let _ = GAP_QUANTILES; // model above spans the full quantile array
    let tier = FlyTier::launch(
        &sim,
        &server,
        &fabric,
        model,
        FlyTierConfig {
            // Far more writes than the windows consume: the client must
            // still be mid-stream when measurement ends.
            latency_stride: 1,
            ..FlyTierConfig::new(1, 1_000_000, server_nic)
        },
    );

    let run_to = |deadline: u64| {
        let s = sim.clone();
        sim.run_until(async move { s.sleep_until(SimTime(deadline)).await });
    };

    const MS: u64 = 1_000_000;
    // Warmup: ~1400 writes at the model's ~425 µs mean gap. Grows the
    // RPC slab, shadow free list, timer heap, payload pool, wait-node
    // pools, and the latency pool (capacity 2048 ≫ the ~240 more
    // samples the windows add) to their steady capacities — including
    // the `run_until` fixed path itself.
    run_to(600 * MS);

    let events_warm = sim.events();
    let a0 = allocs();
    run_to(620 * MS); // window 1: ~47 WRITE RPCs
    let a1 = allocs();
    let events_mid = sim.events();
    run_to(700 * MS); // window 2: ~188 WRITE RPCs
    let a2 = allocs();
    let events_end = sim.events();

    // Both windows made real progress.
    assert!(
        events_mid > events_warm + 100 && events_end > events_mid + 400,
        "windows carried RPC traffic: {events_warm} -> {events_mid} -> {events_end}"
    );
    // The 4×-longer window allocated no more than the short one: every
    // RPC in between rode entirely on recycled memory.
    assert_eq!(
        a1 - a0,
        a2 - a1,
        "steady-state RPCs allocated: short window {} vs long window {}",
        a1 - a0,
        a2 - a1
    );
    // And that shared fixed cost is only the `run_until` entry itself.
    assert!(
        a1 - a0 <= 8,
        "window fixed cost crept up: {} allocations",
        a1 - a0
    );
    drop(tier);
}
