//! Flyweight clients: the arrival process of a faithful NFS client
//! without the client.
//!
//! The faithful client stack (pages, `nfs_flushd`, request hash chains,
//! per-request locks) tops out around tens of concurrent machines per
//! simulation. What the *server* experiences, though, is only the wire:
//! a stream of WRITE and COMMIT datagrams with a particular inter-
//! departure distribution, datagram size, WRITE/COMMIT mix, and
//! concurrency window. [`model::calibrate`] measures exactly that from
//! one faithful client's transmit trace, and [`tier::FlyTier`] replays
//! it from ~64 bytes of state per client — so 10k–1M clients can hammer
//! one server through a real multi-stage switch fabric
//! ([`nfsperf_net::Fabric`]) while a handful of embedded faithful
//! clients keep paper fidelity.
//!
//! What stays real for a flyweight request: contention on the
//! aggregation and core uplinks, server-port and client-NIC drain
//! serialization (as per-client virtual clocks), the server's service
//! slots, NVRAM/dirty-cache backends, and checkpoint gates. What is
//! replayed from calibration: emission times, datagram sizes, the
//! WRITE:COMMIT ratio, and the outstanding-RPC window.

pub mod model;
pub mod tier;

pub use model::{calibrate, BehaviorModel, Calibration, CalibrationConfig, FlyOp, GAP_QUANTILES};
pub use tier::{FlyTier, FlyTierConfig, FlyTierRun, TierEngine};
