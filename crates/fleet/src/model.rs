//! Calibrating a behavioral client from a faithful client's wire trace.
//!
//! One faithful client runs the paper's sequential-write workload solo
//! against the target server; its NIC's departure log (`Nic::tx_events`)
//! is the tcpdump's-eye view of the write path. From it the model keeps
//! a 17-point quantile table of WRITE inter-departure gaps (replayed by
//! inverse-CDF sampling), the observed WRITE datagram size, the
//! WRITE:COMMIT ratio from mount counters, and the probe mount's RPC
//! slot-table size as the outstanding-RPC cap. Together that is what a
//! *server* experiences from a client — pacing, sizes, mix, and
//! concurrency — and therefore everything a flyweight needs to
//! reproduce.

use std::rc::Rc;

use nfsperf_client::{ClientTuning, MountConfig, NfsMount};
use nfsperf_kernel::{CostTable, Kernel, KernelConfig, SimFile};
use nfsperf_net::{Nic, NicSpec, Switch};
use nfsperf_server::{NfsServer, ServerConfig};
use nfsperf_sim::{Sim, SimDuration};
use nfsperf_sunrpc::Transport;

/// Points in the gap quantile table (quantiles 0/16, 1/16, …, 16/16).
pub const GAP_QUANTILES: usize = 17;

/// Which RPC a flyweight emits at a given sequence position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlyOp {
    /// An 8 KB-class WRITE call.
    Write,
    /// A COMMIT call (flush barrier, as at close).
    Commit,
}

/// The calibrated behavioral model: one per fleet, shared by every
/// flyweight (per-client state is just an RNG cursor into it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehaviorModel {
    /// WRITE inter-departure gap quantiles, evenly spaced from the 0th
    /// to the 100th percentile of the measured trace.
    pub gap_quantiles: [SimDuration; GAP_QUANTILES],
    /// UDP payload bytes of one WRITE call datagram as measured on the
    /// wire (NFS payload plus RPC/NFS framing).
    pub write_wire_bytes: usize,
    /// UDP payload bytes of one COMMIT-class (small) call datagram.
    pub commit_wire_bytes: usize,
    /// NFS payload bytes carried per WRITE.
    pub write_payload: u64,
    /// WRITEs per COMMIT, from the faithful client's mount counters.
    pub writes_per_commit: u32,
    /// Maximum outstanding RPCs a flyweight keeps in flight: the probe
    /// mount's RPC slot-table size (clamped to [2, 16]). A solo trace
    /// cannot observe this cap — the probe's NIC paces it below its slot
    /// limit — but under fleet contention the slot table is exactly what
    /// bounds a faithful client's share of the server queue, so the
    /// flyweight must carry the same cap to compete on equal terms.
    pub window: u32,
}

impl BehaviorModel {
    /// Draws one inter-departure gap by inverse-CDF sampling with linear
    /// interpolation between quantile points. `state` is the caller's
    /// SplitMix64 cursor.
    pub fn sample_gap(&self, state: &mut u64) -> SimDuration {
        let u = splitmix64(state);
        // 53 uniform mantissa bits in [0, 1).
        let f = (u >> 11) as f64 / (1u64 << 53) as f64;
        let pos = f * (GAP_QUANTILES - 1) as f64;
        let i = pos as usize;
        let frac = pos - i as f64;
        let lo = self.gap_quantiles[i].0 as f64;
        let hi = self.gap_quantiles[(i + 1).min(GAP_QUANTILES - 1)].0 as f64;
        SimDuration((lo + (hi - lo) * frac) as u64)
    }

    /// The RPC kind at sequence position `seq` of a client that writes
    /// `total_writes` WRITEs: blocks of `writes_per_commit` WRITEs each
    /// followed by a COMMIT, with a trailing COMMIT flushing any
    /// remainder (the close-time flush).
    pub fn op_at(&self, seq: u32, total_writes: u32) -> FlyOp {
        let block = self.writes_per_commit + 1;
        let k = seq % block;
        let writes_before = (seq / block) * self.writes_per_commit + k.min(self.writes_per_commit);
        if k == self.writes_per_commit || writes_before >= total_writes {
            FlyOp::Commit
        } else {
            FlyOp::Write
        }
    }

    /// Total RPCs a client emitting `total_writes` WRITEs sends,
    /// COMMITs included.
    pub fn total_ops(&self, total_writes: u32) -> u32 {
        total_writes + total_writes.div_ceil(self.writes_per_commit)
    }
}

/// SplitMix64: the flyweight per-client RNG. One `u64` of state, good
/// statistical quality for stream splitting, and cheap enough to keep a
/// million cursors.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Parameters of one calibration probe run.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Server the probe (and later the fleet) runs against.
    pub server: ServerConfig,
    /// The server's NIC (also the shared-uplink rate).
    pub server_nic: NicSpec,
    /// The probe client's NIC — must match the flyweights it calibrates.
    pub client_nic: NicSpec,
    /// Bytes the probe writes sequentially before closing.
    pub probe_bytes: u64,
    /// Kernel RNG seed for the probe machine.
    pub seed: u64,
    /// Client tuning (the patched client by default, matching the fleet
    /// sweep's assumption that the paper's fixes are in).
    pub tuning: ClientTuning,
}

impl CalibrationConfig {
    /// A 1 MiB UDP probe with the fleet sweep's defaults.
    pub fn new(server: ServerConfig, server_nic: NicSpec) -> CalibrationConfig {
        CalibrationConfig {
            server,
            server_nic,
            client_nic: NicSpec::fast_ethernet(),
            probe_bytes: 1 << 20,
            seed: 0x1f5,
            tuning: ClientTuning::full_patch(),
        }
    }
}

/// A calibration result: the model plus the raw measured gaps (sorted),
/// kept for tolerance tests and reports.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The fitted behavioral model.
    pub model: BehaviorModel,
    /// Measured WRITE inter-departure gaps, sorted ascending.
    pub gaps: Vec<SimDuration>,
}

/// Runs the probe world — one faithful client through a single-uplink
/// switch into the target server, writing `probe_bytes` and closing —
/// and fits a [`BehaviorModel`] to its transmit trace. Deterministic
/// for a given config.
pub fn calibrate(config: &CalibrationConfig) -> Calibration {
    let sim = Sim::new();
    let switch = Switch::new(&sim, config.server_nic, nfsperf_net::Path::default_latency());
    let server = NfsServer::new(&sim, config.server.clone());
    let kernel = Kernel::new(
        &sim,
        KernelConfig {
            ncpus: 2,
            ram_bytes: 256 << 20,
            // Client 0 of the fleet sweep's seed spread, so the probe is
            // the same machine the mixed fleet embeds.
            seed: config.seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            costs: CostTable::default(),
            mem: nfsperf_kernel::MemTuning::default(),
        },
    );
    let (cnic, crx) = Nic::new(&sim, "probe", config.client_nic);
    let (to_server, port_rx) = switch.attach(&cnic, config.client_nic);
    server.attach_udp(port_rx, to_server.reversed());
    let mount_config = MountConfig {
        tuning: config.tuning,
        transport: Transport::Udp,
        ..MountConfig::default()
    };
    let slots = mount_config.slots;
    let mount = NfsMount::mount(&kernel, to_server, crx, mount_config);

    let bytes = config.probe_bytes;
    let m2 = Rc::clone(&mount);
    sim.run_until(async move {
        let file = m2.create("probe.scratch").await.expect("create");
        let mut off = 0;
        while off < bytes {
            let n = 8192.min(bytes - off);
            file.write(off, n).await.expect("write");
            off += n;
        }
        file.close().await.expect("close");
    });

    let stats = mount.stats();
    let events = cnic.tx_events();
    // WRITE calls are the only datagrams whose payload exceeds the 8 KB
    // write unit; everything else (CREATE, COMMIT) is header-sized.
    let writes: Vec<(nfsperf_sim::SimTime, usize)> = events
        .iter()
        .copied()
        .filter(|(_, len)| *len >= 8192)
        .collect();
    assert!(
        writes.len() >= 2,
        "calibration probe must emit at least two WRITEs (wrote {bytes} bytes)"
    );
    let mut gaps: Vec<SimDuration> = writes.windows(2).map(|w| w[1].0.since(w[0].0)).collect();
    gaps.sort_unstable();

    let mut gap_quantiles = [SimDuration::ZERO; GAP_QUANTILES];
    for (k, q) in gap_quantiles.iter_mut().enumerate() {
        let idx = k * (gaps.len() - 1) / (GAP_QUANTILES - 1);
        *q = gaps[idx];
    }

    let commit_wire_bytes = events
        .iter()
        .filter(|(_, len)| *len < 8192)
        .map(|(_, len)| *len)
        .max()
        .unwrap_or(128);

    Calibration {
        model: BehaviorModel {
            gap_quantiles,
            write_wire_bytes: writes[0].1,
            commit_wire_bytes,
            write_payload: 8192,
            writes_per_commit: ((stats.write_rpcs / stats.commit_rpcs.max(1)).max(1)) as u32,
            window: (slots as u32).clamp(2, 16),
        },
        gaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model(wpc: u32) -> BehaviorModel {
        BehaviorModel {
            gap_quantiles: std::array::from_fn(|i| SimDuration((i as u64 + 1) * 1000)),
            write_wire_bytes: 8328,
            commit_wire_bytes: 128,
            write_payload: 8192,
            writes_per_commit: wpc,
            window: 4,
        }
    }

    #[test]
    fn op_sequence_interleaves_and_flushes_tail() {
        let m = toy_model(2);
        let kinds: Vec<FlyOp> = (0..m.total_ops(5)).map(|s| m.op_at(s, 5)).collect();
        assert_eq!(
            kinds,
            vec![
                FlyOp::Write,
                FlyOp::Write,
                FlyOp::Commit,
                FlyOp::Write,
                FlyOp::Write,
                FlyOp::Commit,
                FlyOp::Write,
                FlyOp::Commit,
            ]
        );
        assert_eq!(kinds.iter().filter(|k| **k == FlyOp::Write).count(), 5);
    }

    #[test]
    fn large_wpc_defers_commit_to_close() {
        let m = toy_model(128);
        // A 2-write client under wpc=128: two WRITEs, one close COMMIT.
        assert_eq!(m.total_ops(2), 3);
        assert_eq!(m.op_at(0, 2), FlyOp::Write);
        assert_eq!(m.op_at(1, 2), FlyOp::Write);
        assert_eq!(m.op_at(2, 2), FlyOp::Commit);
    }

    #[test]
    fn gap_sampling_stays_in_measured_range_and_is_deterministic() {
        let m = toy_model(2);
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..1000 {
            let g = m.sample_gap(&mut a);
            assert!(g >= m.gap_quantiles[0] && g <= m.gap_quantiles[GAP_QUANTILES - 1]);
            assert_eq!(g, m.sample_gap(&mut b));
        }
        // Distinct cursors diverge.
        let mut c = 43u64;
        let diverged = (0..100).any(|_| {
            let mut a2 = a;
            m.sample_gap(&mut c) != m.sample_gap(&mut a2)
        });
        assert!(diverged);
    }

    #[test]
    fn calibration_is_deterministic_and_plausible() {
        let cfg = CalibrationConfig {
            probe_bytes: 256 * 1024,
            ..CalibrationConfig::new(
                ServerConfig::netapp_f85(),
                NicSpec::gigabit(),
            )
        };
        let a = calibrate(&cfg);
        let b = calibrate(&cfg);
        assert_eq!(a.model, b.model);
        assert_eq!(a.gaps, b.gaps);
        assert!(a.model.write_wire_bytes > 8192, "WRITE carries framing");
        assert!(a.model.commit_wire_bytes < 8192);
        assert!(a.model.writes_per_commit >= 1);
        assert!((2..=16).contains(&a.model.window));
        assert!(a.model.gap_quantiles[0] > SimDuration::ZERO);
        assert!(a.model.gap_quantiles[0] <= a.model.gap_quantiles[GAP_QUANTILES - 1]);
    }
}
