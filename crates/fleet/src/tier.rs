//! The flyweight tier: up to a million behavioral clients in a slab.
//!
//! Per client the tier keeps one [`FlyClient`] record (~64 bytes: an RNG
//! cursor, an emission clock, three virtual NIC clocks, two timestamps,
//! two counters) — no pages, no flushd, no per-request locks, no NIC or
//! mount objects. Each RPC is a short-lived task chain: sleep to the
//! calibrated emission time, traverse the real aggregation and core
//! uplinks (queueing behind every other client, faithful ones included),
//! drain through the per-client server-port clock, run the server's
//! flyweight service path (real slots, NVRAM, checkpoints, dirty cache),
//! then unwind the reply the same way. Completion refills the client's
//! outstanding-RPC window, which emits the next requests — so the tier's
//! live-task count tracks in-flight RPCs, not client count.
//!
//! Per-client serialization that a real NIC would impose (receive drain
//! at the server port, transmit of the reply, receive at the client) is
//! modelled with virtual clocks: `free = max(now, free) + drain_time`,
//! exactly the arithmetic a dedicated `Nic` object's semaphore-plus-
//! sleep performs, without the object.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::task::Waker;

use nfsperf_net::{wire_bytes, Fabric, LaneAdmit, LinkDir, NicSpec};
use nfsperf_server::{FlyStep, FlyweightOp, NfsServer};
use nfsperf_sim::{mbps, EventHandlerId, Gate, LatencyDigest, Sim, SimDuration, SimTime};

use crate::model::{splitmix64, BehaviorModel, FlyOp};

/// UDP payload bytes of a WRITE reply (status + WCC + verifier framing).
const WRITE_REPLY_BYTES: usize = 160;
/// UDP payload bytes of a COMMIT reply.
const COMMIT_REPLY_BYTES: usize = 128;

/// One flyweight client's entire state. Kept `repr(C)` and packed into
/// a slab; the memory-accounting test holds its size (and the tier's
/// shared overhead amortized per client) under 256 bytes.
#[repr(C)]
#[derive(Clone)]
struct FlyClient {
    /// SplitMix64 cursor for gap sampling and start jitter.
    rng: u64,
    /// Next unconstrained emission time, ns.
    planned: u64,
    /// Server-port receive-drain virtual clock, ns.
    port_rx_free: u64,
    /// Server-port reply-transmit virtual clock, ns.
    port_tx_free: u64,
    /// Client-NIC receive-drain virtual clock, ns.
    cli_rx_free: u64,
    /// When the first RPC left, ns (throughput denominator).
    first_emit: u64,
    /// When the last reply finished draining, ns.
    finish: u64,
    /// RPCs emitted so far.
    emitted: u32,
    /// RPCs completed so far.
    completed: u32,
}

/// Which machinery advances each of the tier's RPCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierEngine {
    /// Two spawned tasks per RPC (the original engine): a request task
    /// that sleeps, traverses, and drains, handing off to a service
    /// task for the server wait and the reply unwind.
    Tasks,
    /// One slab record per RPC advanced by timed events straight off the
    /// executor's wheel — no future, no task, no per-RPC allocation.
    /// Every await point of the task engine maps to one event, and both
    /// engines share the same fabric/server wait queues, so runs are
    /// bit-identical (asserted in tests) while the steady state skips
    /// all task machinery.
    Events,
}

/// Parameters of one flyweight tier.
#[derive(Debug, Clone)]
pub struct FlyTierConfig {
    /// Number of flyweight clients.
    pub clients: u32,
    /// WRITEs each client emits (COMMITs are added per the model's
    /// ratio, plus the close-time flush).
    pub writes_per_client: u32,
    /// Each client's NIC spec (frames requests, drains replies).
    pub client_nic: NicSpec,
    /// The per-client server-port spec (normally the server NIC's rate).
    pub port_nic: NicSpec,
    /// Tier RNG seed; each client derives its own cursor.
    pub seed: u64,
    /// First emissions are jittered uniformly over this span — a million
    /// clients do not mount in the same nanosecond.
    pub start_spread: SimDuration,
    /// Record every `latency_stride`-th WRITE's client-observed RPC
    /// latency into the shared digest pool (1 = record all; raise it so
    /// a million clients share one bounded pool).
    pub latency_stride: u32,
    /// Upper bound on the model's outstanding-RPC window (`u32::MAX` to
    /// take the calibrated window as-is).
    pub window_cap: u32,
    /// Which machinery advances each RPC (events by default).
    pub engine: TierEngine,
}

impl FlyTierConfig {
    /// A tier of `clients` fast-Ethernet flyweights against a server
    /// port of `port_nic`, with stride and spread scaled to the tier
    /// size.
    pub fn new(clients: u32, writes_per_client: u32, port_nic: NicSpec) -> FlyTierConfig {
        FlyTierConfig {
            clients,
            writes_per_client,
            client_nic: NicSpec::fast_ethernet(),
            port_nic,
            seed: 0x1f5,
            // 2 µs of spread per client: 1k clients arrive inside 2 ms,
            // 1M inside 2 s — staggered, but fast enough to saturate.
            start_spread: SimDuration((clients as u64).max(1) * 2_000),
            latency_stride: (clients / 1024).max(1),
            window_cap: u32::MAX,
            engine: TierEngine::Events,
        }
    }
}

/// Everything measured from a finished tier.
#[derive(Debug, Clone)]
pub struct FlyTierRun {
    /// Each client's achieved throughput, MB/s, in client order.
    pub per_client_mbps: Vec<f64>,
    /// Client-observed WRITE RPC latency digest (strided shared pool).
    pub rpc_latency: LatencyDigest,
    /// Time from the first emission to the last completion.
    pub elapsed: SimDuration,
    /// Estimated resident bytes per client (slab + amortized shares).
    pub bytes_per_client: usize,
}

/// Resume point of one event-driven RPC: each variant names what the
/// record does when its next event dispatches. Stages mirror the task
/// engine's await points one-for-one, so both engines retire identical
/// event counts in identical order.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RpcStage {
    /// Waiting for the emission instant (`sleep_until(at)`).
    Start,
    /// Emission time reached: size the datagram, start admission.
    Launch,
    /// Queued for the aggregation uplink (request direction).
    AggAdmit,
    /// Aggregation wire time slept; release and move to the core.
    AggXfer,
    /// Queued for the core uplink (request direction).
    CoreAdmit,
    /// Core wire time slept; release and propagate.
    CoreXfer,
    /// Fabric latency slept; drain into the server port.
    PortDrain,
    /// Port drain slept; hand off to the service half.
    HandOff,
    /// Driving the server's flyweight op to completion.
    Service,
    /// Reply transmit clock slept; start the core reply admission.
    CoreRStart,
    /// Queued for the core uplink (reply direction).
    CoreRAdmit,
    /// Core reply wire time slept.
    CoreRXfer,
    /// Queued for the aggregation uplink (reply direction).
    AggRAdmit,
    /// Aggregation reply wire time slept.
    AggRXfer,
    /// Fabric latency slept; drain into the client NIC.
    CliDrain,
    /// Client drain slept; retire the RPC.
    Complete,
}

/// One in-flight event-driven RPC. Records live in a free-listed slab
/// sized by peak concurrent RPCs — the per-RPC state the task engine
/// kept in two spawned futures, without the futures. Transient like
/// those futures were, so (like them) not part of the tier's resident
/// per-client accounting.
struct FlyRpc {
    /// Owning client's tier index.
    idx: u32,
    /// The RPC's emission sequence number for that client.
    seq: u32,
    /// Free-list link (`u32::MAX` = end).
    next_free: u32,
    /// Wire bytes of the current datagram (request, then reply).
    wire: u32,
    /// UDP payload bytes of the current datagram.
    payload: u32,
    op: FlyOp,
    stage: RpcStage,
    /// When the request left the client (latency numerator start).
    emitted_at: SimTime,
    /// Admission scratch for the hop currently being traversed.
    lane: LaneAdmit,
    /// The server-side op, live from [`RpcStage::Service`] entry.
    srv: Option<FlyweightOp>,
    /// Shadow task-table slot standing in for the task the old engine
    /// would have spawned for the current half of this RPC (request,
    /// then service). Keeps the executor's slot-recycling sequence —
    /// and so the landing spot of any stale wake — identical across
    /// engines, which keeps deterministic event counts bit-identical.
    shadow: usize,
    /// Direct waker dispatching `step(record index)`, built once when
    /// the record first exists and reused by every park of every RPC
    /// that ever occupies it (the index never changes): parking is one
    /// waker clone, waking one ready-queue push.
    waker: Option<Waker>,
}

impl FlyRpc {
    fn vacant() -> FlyRpc {
        FlyRpc {
            idx: 0,
            seq: 0,
            next_free: u32::MAX,
            wire: 0,
            payload: 0,
            op: FlyOp::Write,
            stage: RpcStage::Start,
            emitted_at: SimTime::ZERO,
            lane: LaneAdmit::start(SimTime::ZERO),
            srv: None,
            shadow: 0,
            waker: None,
        }
    }
}

/// The RPC slab plus its free-list head.
struct RpcSlab {
    slots: Vec<FlyRpc>,
    free_head: u32,
}

/// A running flyweight tier. Create with [`FlyTier::launch`], then
/// `await` [`FlyTier::wait_done`] inside the simulation.
pub struct FlyTier {
    sim: Sim,
    server: Rc<NfsServer>,
    fabric: Rc<Fabric>,
    config: FlyTierConfig,
    model: BehaviorModel,
    window: u32,
    total_ops: u32,
    fabric_base: u32,
    server_base: usize,
    slab: RefCell<Vec<FlyClient>>,
    rpcs: RefCell<RpcSlab>,
    handler: Cell<EventHandlerId>,
    latencies: RefCell<Vec<SimDuration>>,
    lat_counter: Cell<u64>,
    clients_done: Cell<u32>,
    finished: Gate,
}

impl FlyTier {
    /// Registers `config.clients` flyweights with the fabric and the
    /// server (faithful clients must be attached first) and emits each
    /// client's first request at its jittered start time.
    pub fn launch(
        sim: &Sim,
        server: &Rc<NfsServer>,
        fabric: &Rc<Fabric>,
        model: BehaviorModel,
        config: FlyTierConfig,
    ) -> Rc<FlyTier> {
        assert!(config.clients > 0, "a tier needs at least one client");
        let fabric_base = fabric.alloc_ids(config.clients);
        let server_base = server.register_slim_clients(config.clients as usize);
        let spread = config.start_spread.0.max(1);
        let mut slab = Vec::with_capacity(config.clients as usize);
        for i in 0..config.clients {
            let mut seed = config
                .seed
                .wrapping_add((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let jitter = splitmix64(&mut seed) % spread;
            slab.push(FlyClient {
                rng: seed,
                planned: jitter,
                port_rx_free: 0,
                port_tx_free: 0,
                cli_rx_free: 0,
                first_emit: 0,
                finish: 0,
                emitted: 0,
                completed: 0,
            });
        }
        let window = model.window.min(config.window_cap).max(1);
        let total_ops = model.total_ops(config.writes_per_client);
        assert!(total_ops > 0, "clients must emit at least one RPC");
        let finished = Gate::new();
        finished.close();
        let tier = Rc::new(FlyTier {
            sim: sim.clone(),
            server: Rc::clone(server),
            fabric: Rc::clone(fabric),
            config,
            model,
            window,
            total_ops,
            fabric_base,
            server_base,
            slab: RefCell::new(slab),
            rpcs: RefCell::new(RpcSlab {
                slots: Vec::new(),
                free_head: u32::MAX,
            }),
            handler: Cell::new(sim.register_event_handler(Rc::new(|_| {}))),
            latencies: RefCell::new(Vec::new()),
            lat_counter: Cell::new(0),
            clients_done: Cell::new(0),
            finished,
        });
        if tier.config.engine == TierEngine::Events {
            let t = Rc::clone(&tier);
            tier.handler
                .set(sim.register_event_handler(Rc::new(move |data| t.step(data as u32))));
        }
        for i in 0..tier.config.clients {
            tier.try_emit(i);
        }
        tier
    }

    /// Resolves once every client has completed all of its RPCs.
    pub async fn wait_done(&self) {
        self.finished.pass().await;
    }

    /// Emits requests for client `idx` while its window has room: each
    /// emission claims the next planned departure time (never earlier
    /// than now) and advances the plan by a sampled gap. A COMMIT is a
    /// barrier — it waits for the client's in-flight WRITEs to drain,
    /// as the close-time flush does.
    fn try_emit(self: &Rc<Self>, idx: u32) {
        loop {
            let (seq, at) = {
                let mut slab = self.slab.borrow_mut();
                let c = &mut slab[idx as usize];
                if c.emitted >= self.total_ops {
                    return;
                }
                let inflight = c.emitted - c.completed;
                if inflight >= self.window {
                    return;
                }
                if self.model.op_at(c.emitted, self.config.writes_per_client) == FlyOp::Commit
                    && inflight > 0
                {
                    return;
                }
                let at = c.planned.max(self.sim.now().as_nanos());
                c.planned = at + self.model.sample_gap(&mut c.rng).0;
                if c.emitted == 0 {
                    c.first_emit = at;
                }
                let seq = c.emitted;
                c.emitted += 1;
                (seq, at)
            };
            match self.config.engine {
                TierEngine::Tasks => self.spawn_request(idx, seq, SimTime(at)),
                TierEngine::Events => {
                    // ≙ `spawn_request`: the shadow claims the task-table
                    // slot the request task would have, and the posted
                    // event sits in the same ready-queue position.
                    let r = self.alloc_rpc(idx, seq, SimTime(at));
                    self.rpcs.borrow_mut().slots[r as usize].shadow = self.sim.spawn_shadow();
                    self.sim.post_event(self.handler.get(), u64::from(r));
                }
            }
        }
    }

    /// Claims (or grows) an RPC record for one emission.
    fn alloc_rpc(&self, idx: u32, seq: u32, at: SimTime) -> u32 {
        let mut rpcs = self.rpcs.borrow_mut();
        let r = match rpcs.free_head {
            u32::MAX => {
                let r = rpcs.slots.len() as u32;
                let mut slot = FlyRpc::vacant();
                // Built once per record; the index (the waker's payload)
                // never changes, so every later RPC in this slot reuses it.
                slot.waker = Some(self.sim.direct_waker(self.handler.get(), r));
                rpcs.slots.push(slot);
                r
            }
            head => {
                rpcs.free_head = rpcs.slots[head as usize].next_free;
                head
            }
        };
        let rpc = &mut rpcs.slots[r as usize];
        rpc.idx = idx;
        rpc.seq = seq;
        rpc.next_free = u32::MAX;
        rpc.wire = 0;
        rpc.payload = 0;
        rpc.op = FlyOp::Write;
        rpc.stage = RpcStage::Start;
        rpc.emitted_at = at;
        rpc.lane = LaneAdmit::start(at);
        rpc.srv = None;
        r
    }

    /// Schedules RPC `data`'s next dispatch at `deadline` and returns
    /// `true`; returns `false` when the deadline is not in the future,
    /// in which case the caller continues inline — exactly the task
    /// engine's `Sleep`, which completes immediately without touching
    /// the wheel when its deadline has passed.
    fn sleep_then(&self, deadline: SimTime, data: u64) -> bool {
        if deadline > self.sim.now() {
            // Stage hops are never cancelled, so the timer can carry the
            // dispatch itself — no slab slot, no ready-queue round trip.
            self.sim.schedule_direct(deadline, self.handler.get(), data);
            true
        } else {
            false
        }
    }

    /// Advances one event-driven RPC until it parks in a wait queue,
    /// schedules its next dispatch, or retires. One dispatch of this
    /// handler corresponds to one poll of the task engine's request or
    /// service task, and every wait parks in the same fabric/server
    /// queues, so both engines interleave — and count events —
    /// identically.
    fn step(self: &Rc<Self>, r: u32) {
        let h = self.handler.get();
        let data = u64::from(r);
        let mut rpcs = self.rpcs.borrow_mut();
        let rpc = &mut rpcs.slots[r as usize];
        // Every park hands out a clone of the record's cached direct
        // waker: no slab arm, no generation — safe because each park is
        // woken at most once and the record cannot advance past the
        // parked stage until that wake dispatches.
        let waker = rpc.waker.clone().expect("rpc record waker");
        let mut wf = move || waker.clone();
        let flow = self.fabric_base + rpc.idx;
        let wire = |rpc: &FlyRpc| rpc.wire as usize;
        loop {
            match rpc.stage {
                RpcStage::Start => {
                    rpc.stage = RpcStage::Launch;
                    if rpc.emitted_at > self.sim.now() {
                        self.sim.schedule_direct(rpc.emitted_at, h, data);
                        return;
                    }
                }
                RpcStage::Launch => {
                    rpc.op = self.model.op_at(rpc.seq, self.config.writes_per_client);
                    let payload = match rpc.op {
                        FlyOp::Write => self.model.write_wire_bytes,
                        FlyOp::Commit => self.model.commit_wire_bytes,
                    };
                    rpc.payload = payload as u32;
                    rpc.wire = wire_bytes(payload, self.config.client_nic.mtu) as u32;
                    rpc.lane = LaneAdmit::start(self.sim.now());
                    rpc.stage = RpcStage::AggAdmit;
                }
                RpcStage::AggAdmit => {
                    let agg = self.fabric.agg_of(flow);
                    let w = wire(rpc);
                    if !agg.poll_admit(&mut rpc.lane, LinkDir::ToServer, flow, w, &mut wf) {
                        return;
                    }
                    rpc.stage = RpcStage::AggXfer;
                    let done = self.sim.now() + agg.spec().transfer_time(wire(rpc));
                    if self.sleep_then(done, data) {
                        return;
                    }
                }
                RpcStage::AggXfer => {
                    self.fabric
                        .agg_of(flow)
                        .finish_traverse(LinkDir::ToServer, rpc.payload as usize);
                    rpc.lane = LaneAdmit::start(self.sim.now());
                    rpc.stage = RpcStage::CoreAdmit;
                }
                RpcStage::CoreAdmit => {
                    let core = self.fabric.core();
                    let w = wire(rpc);
                    if !core.poll_admit(&mut rpc.lane, LinkDir::ToServer, flow, w, &mut wf) {
                        return;
                    }
                    rpc.stage = RpcStage::CoreXfer;
                    let done = self.sim.now() + core.spec().transfer_time(wire(rpc));
                    if self.sleep_then(done, data) {
                        return;
                    }
                }
                RpcStage::CoreXfer => {
                    self.fabric
                        .core()
                        .finish_traverse(LinkDir::ToServer, rpc.payload as usize);
                    rpc.stage = RpcStage::PortDrain;
                    let woke = self.sim.now() + self.fabric.latency();
                    if self.sleep_then(woke, data) {
                        return;
                    }
                }
                RpcStage::PortDrain => {
                    let drained =
                        self.advance_clock(rpc.idx, ClockId::PortRx, self.config.port_nic, wire(rpc));
                    rpc.stage = RpcStage::HandOff;
                    if self.sleep_then(drained, data) {
                        return;
                    }
                }
                RpcStage::HandOff => {
                    // ≙ `spawn_service`: the task engine hands the
                    // (possibly long) server-queue wait to a fresh task;
                    // mirror its ready-queue push with a posted event,
                    // and swap shadows in the task engine's order —
                    // service slot claimed first, request slot released
                    // when its task returns.
                    rpc.stage = RpcStage::Service;
                    let service_shadow = self.sim.spawn_shadow();
                    self.sim.post_event(h, data);
                    self.sim.drop_shadow(rpc.shadow);
                    rpc.shadow = service_shadow;
                    return;
                }
                RpcStage::Service => {
                    let client = self.server_base + rpc.idx as usize;
                    let op_kind = rpc.op;
                    let payload = self.model.write_payload;
                    let srv = rpc.srv.get_or_insert_with(|| match op_kind {
                        FlyOp::Write => self.server.begin_flyweight_write(client, payload),
                        FlyOp::Commit => self.server.begin_flyweight_commit(client),
                    });
                    loop {
                        match self.server.poll_flyweight(srv, &mut wf) {
                            FlyStep::Parked => return,
                            FlyStep::Sleep(d) => {
                                if d > SimDuration::ZERO {
                                    self.sim.schedule_direct(self.sim.now() + d, h, data);
                                    return;
                                }
                            }
                            FlyStep::Done => break,
                        }
                    }
                    rpc.srv = None;
                    let reply_payload = match rpc.op {
                        FlyOp::Write => WRITE_REPLY_BYTES,
                        FlyOp::Commit => COMMIT_REPLY_BYTES,
                    };
                    rpc.payload = reply_payload as u32;
                    rpc.wire = wire_bytes(reply_payload, self.config.port_nic.mtu) as u32;
                    let sent =
                        self.advance_clock(rpc.idx, ClockId::PortTx, self.config.port_nic, wire(rpc));
                    rpc.stage = RpcStage::CoreRStart;
                    if self.sleep_then(sent, data) {
                        return;
                    }
                }
                RpcStage::CoreRStart => {
                    rpc.lane = LaneAdmit::start(self.sim.now());
                    rpc.stage = RpcStage::CoreRAdmit;
                }
                RpcStage::CoreRAdmit => {
                    let core = self.fabric.core();
                    let w = wire(rpc);
                    if !core.poll_admit(&mut rpc.lane, LinkDir::ToClients, flow, w, &mut wf) {
                        return;
                    }
                    rpc.stage = RpcStage::CoreRXfer;
                    let done = self.sim.now() + core.spec().transfer_time(wire(rpc));
                    if self.sleep_then(done, data) {
                        return;
                    }
                }
                RpcStage::CoreRXfer => {
                    self.fabric
                        .core()
                        .finish_traverse(LinkDir::ToClients, rpc.payload as usize);
                    rpc.lane = LaneAdmit::start(self.sim.now());
                    rpc.stage = RpcStage::AggRAdmit;
                }
                RpcStage::AggRAdmit => {
                    let agg = self.fabric.agg_of(flow);
                    let w = wire(rpc);
                    if !agg.poll_admit(&mut rpc.lane, LinkDir::ToClients, flow, w, &mut wf) {
                        return;
                    }
                    rpc.stage = RpcStage::AggRXfer;
                    let done = self.sim.now() + agg.spec().transfer_time(wire(rpc));
                    if self.sleep_then(done, data) {
                        return;
                    }
                }
                RpcStage::AggRXfer => {
                    self.fabric
                        .agg_of(flow)
                        .finish_traverse(LinkDir::ToClients, rpc.payload as usize);
                    rpc.stage = RpcStage::CliDrain;
                    let woke = self.sim.now() + self.fabric.latency();
                    if self.sleep_then(woke, data) {
                        return;
                    }
                }
                RpcStage::CliDrain => {
                    let drained = self.advance_clock(
                        rpc.idx,
                        ClockId::CliRx,
                        self.config.client_nic,
                        wire(rpc),
                    );
                    rpc.stage = RpcStage::Complete;
                    if self.sleep_then(drained, data) {
                        return;
                    }
                }
                RpcStage::Complete => break,
            }
        }
        // Free the record before completing: `try_emit` inside
        // `complete` may immediately reuse it for this client's next
        // emission, and `complete` must see the slab borrow released.
        let (idx, seq, emitted_at, op, shadow) =
            (rpc.idx, rpc.seq, rpc.emitted_at, rpc.op, rpc.shadow);
        rpcs.slots[r as usize].next_free = rpcs.free_head;
        rpcs.free_head = r;
        drop(rpcs);
        self.complete(idx, seq, emitted_at, op);
        // The service task's slot is recycled only after its final poll
        // returned — i.e. after `complete` (and any emissions it
        // spawned) ran.
        self.sim.drop_shadow(shadow);
    }

    /// The request half of one RPC: wait for the emission instant, cross
    /// the aggregation and core uplinks, propagate, drain into the
    /// server port. Hands off to [`FlyTier::spawn_service`] so the
    /// (possibly long) queue wait at the server does not keep this
    /// larger future alive.
    fn spawn_request(self: &Rc<Self>, idx: u32, seq: u32, at: SimTime) {
        let tier = Rc::clone(self);
        self.sim.clone().spawn(async move {
            tier.sim.sleep_until(at).await;
            let op = tier.model.op_at(seq, tier.config.writes_per_client);
            let payload = match op {
                FlyOp::Write => tier.model.write_wire_bytes,
                FlyOp::Commit => tier.model.commit_wire_bytes,
            };
            let wire = wire_bytes(payload, tier.config.client_nic.mtu);
            let flow = tier.fabric_base + idx;
            let agg = tier.fabric.agg_of(flow);
            agg.traverse(flow, LinkDir::ToServer, wire, payload).await;
            drop(agg);
            tier.fabric
                .core()
                .traverse(flow, LinkDir::ToServer, wire, payload)
                .await;
            tier.sim.sleep(tier.fabric.latency()).await;
            let drained = tier.advance_clock(idx, ClockId::PortRx, tier.config.port_nic, wire);
            tier.sim.sleep_until(drained).await;
            tier.spawn_service(idx, seq, at, op);
        });
    }

    /// The service-and-reply half: run the server's flyweight path, then
    /// unwind the reply through the fabric back into the client.
    fn spawn_service(self: &Rc<Self>, idx: u32, seq: u32, emitted_at: SimTime, op: FlyOp) {
        let tier = Rc::clone(self);
        self.sim.clone().spawn(async move {
            let client = tier.server_base + idx as usize;
            let reply_payload = match op {
                FlyOp::Write => {
                    tier.server
                        .serve_flyweight_write(client, tier.model.write_payload)
                        .await;
                    WRITE_REPLY_BYTES
                }
                FlyOp::Commit => {
                    tier.server.serve_flyweight_commit(client).await;
                    COMMIT_REPLY_BYTES
                }
            };
            let wire = wire_bytes(reply_payload, tier.config.port_nic.mtu);
            let sent = tier.advance_clock(idx, ClockId::PortTx, tier.config.port_nic, wire);
            tier.sim.sleep_until(sent).await;
            let flow = tier.fabric_base + idx;
            tier.fabric
                .core()
                .traverse(flow, LinkDir::ToClients, wire, reply_payload)
                .await;
            tier.fabric
                .agg_of(flow)
                .traverse(flow, LinkDir::ToClients, wire, reply_payload)
                .await;
            tier.sim.sleep(tier.fabric.latency()).await;
            let drained = tier.advance_clock(idx, ClockId::CliRx, tier.config.client_nic, wire);
            tier.sim.sleep_until(drained).await;
            tier.complete(idx, seq, emitted_at, op);
        });
    }

    /// Advances one of a client's virtual NIC clocks by `spec`'s
    /// transfer time for `wire` bytes and returns the new free instant —
    /// `max(now, free) + drain`, the arithmetic of a serializing NIC.
    fn advance_clock(&self, idx: u32, clock: ClockId, spec: NicSpec, wire: usize) -> SimTime {
        let mut slab = self.slab.borrow_mut();
        let c = &mut slab[idx as usize];
        let cell = match clock {
            ClockId::PortRx => &mut c.port_rx_free,
            ClockId::PortTx => &mut c.port_tx_free,
            ClockId::CliRx => &mut c.cli_rx_free,
        };
        let free = (*cell).max(self.sim.now().as_nanos()) + spec.transfer_time(wire).0;
        *cell = free;
        SimTime(free)
    }

    fn complete(self: &Rc<Self>, idx: u32, _seq: u32, emitted_at: SimTime, op: FlyOp) {
        let now = self.sim.now();
        let finished_client = {
            let mut slab = self.slab.borrow_mut();
            let c = &mut slab[idx as usize];
            c.completed += 1;
            c.finish = now.as_nanos();
            c.completed == self.total_ops
        };
        if op == FlyOp::Write {
            let n = self.lat_counter.get();
            self.lat_counter.set(n + 1);
            if n.is_multiple_of(u64::from(self.config.latency_stride)) {
                self.latencies.borrow_mut().push(now.since(emitted_at));
            }
        }
        if finished_client {
            self.clients_done.set(self.clients_done.get() + 1);
            if self.clients_done.get() == self.config.clients {
                self.finished.open();
                // No RPC can arm another event now: break the
                // handler → tier reference cycle so the tier frees when
                // its caller drops it.
                self.sim.clear_event_handler(self.handler.get());
            }
        } else {
            self.try_emit(idx);
        }
    }

    /// Each client's achieved throughput (payload bytes over its own
    /// first-emission-to-last-reply span), MB/s.
    pub fn per_client_mbps(&self) -> Vec<f64> {
        let bytes = u64::from(self.config.writes_per_client) * self.model.write_payload;
        self.slab
            .borrow()
            .iter()
            .map(|c| mbps(bytes, SimTime(c.finish).since(SimTime(c.first_emit))))
            .collect()
    }

    /// Time from the tier's first emission to its last completion.
    pub fn elapsed(&self) -> SimDuration {
        let slab = self.slab.borrow();
        let first = slab.iter().map(|c| c.first_emit).min().unwrap_or(0);
        let last = slab.iter().map(|c| c.finish).max().unwrap_or(0);
        SimDuration(last.saturating_sub(first))
    }

    /// Digest of the strided client-observed WRITE RPC latencies.
    /// Sorts the shared pool in place (`of_mut`) instead of snapshotting
    /// it: percentiles are order-independent, and the megafleet render
    /// path calls this per cell — no reason to clone a pool that can be
    /// megabytes at a million clients.
    pub fn rpc_latency(&self) -> LatencyDigest {
        LatencyDigest::of_mut(&mut self.latencies.borrow_mut())
    }

    /// Estimated resident bytes per client: the slab record plus this
    /// client's amortized share of the shared latency pool, the model,
    /// and the fabric's per-stage state. The whole point of the tier —
    /// asserted ≤ 256 in tests and reported in the megafleet CSV.
    pub fn bytes_per_client(&self) -> usize {
        let n = self.config.clients as usize;
        let shared = self.latencies.borrow().capacity() * std::mem::size_of::<SimDuration>()
            + std::mem::size_of::<BehaviorModel>()
            + self.fabric.resident_bytes();
        std::mem::size_of::<FlyClient>() + shared.div_ceil(n)
    }

    /// The tier's measurements, bundled.
    pub fn run_summary(&self) -> FlyTierRun {
        FlyTierRun {
            per_client_mbps: self.per_client_mbps(),
            rpc_latency: self.rpc_latency(),
            elapsed: self.elapsed(),
            bytes_per_client: self.bytes_per_client(),
        }
    }
}

#[derive(Clone, Copy)]
enum ClockId {
    PortRx,
    PortTx,
    CliRx,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GAP_QUANTILES;
    use nfsperf_net::FabricConfig;
    use nfsperf_server::ServerConfig;

    fn toy_model() -> BehaviorModel {
        BehaviorModel {
            gap_quantiles: std::array::from_fn(|i| SimDuration((i as u64 + 1) * 50_000)),
            write_wire_bytes: 8328,
            commit_wire_bytes: 136,
            write_payload: 8192,
            writes_per_commit: 16,
            window: 4,
        }
    }

    fn run_tier_with(
        clients: u32,
        writes: u32,
        engine: TierEngine,
    ) -> (Rc<FlyTier>, Rc<NfsServer>, Sim) {
        let sim = Sim::new();
        let server_nic = NicSpec::gigabit();
        let fabric = Rc::new(Fabric::new(&sim, FabricConfig::new(server_nic)));
        let server = NfsServer::new(&sim, ServerConfig::netapp_f85());
        let tier = FlyTier::launch(
            &sim,
            &server,
            &fabric,
            toy_model(),
            FlyTierConfig {
                engine,
                ..FlyTierConfig::new(clients, writes, server_nic)
            },
        );
        let t2 = Rc::clone(&tier);
        sim.run_until(async move { t2.wait_done().await });
        (tier, server, sim)
    }

    fn run_tier(clients: u32, writes: u32) -> (Rc<FlyTier>, Rc<NfsServer>) {
        let (tier, server, _) = run_tier_with(clients, writes, TierEngine::Events);
        (tier, server)
    }

    #[test]
    fn tier_completes_and_accounts_every_write() {
        let (tier, server) = run_tier(64, 8);
        let slim = server.slim_stats();
        assert_eq!(slim.clients, 64);
        assert_eq!(slim.writes, 64 * 8);
        assert_eq!(slim.write_bytes, 64 * 8 * 8192);
        assert_eq!(slim.commits, 64, "8 writes under wpc=16: one close COMMIT each");
        let per = tier.per_client_mbps();
        assert_eq!(per.len(), 64);
        assert!(per.iter().all(|m| *m > 0.0));
        assert!(tier.rpc_latency().p99 > SimDuration::ZERO);
        // No faithful clients attached: the server kept zero per-client
        // stats entries for the whole tier.
        assert!(server.per_client_stats().is_empty());
    }

    /// The taskless event engine must be observationally identical to
    /// the two-task-per-RPC engine it replaces: same per-client
    /// throughputs, same elapsed virtual time, same latency digest,
    /// same server counters — and the same *event count*, since every
    /// task poll maps one-for-one onto a slab-event dispatch (the
    /// megafleet CSV records `sim.events()`, so byte-identity of
    /// committed results rides on this).
    #[test]
    fn event_and_task_engines_are_bit_identical() {
        for (clients, writes) in [(1, 3), (32, 4), (128, 8)] {
            let (ta, sa, ma) = run_tier_with(clients, writes, TierEngine::Tasks);
            let (te, se, me) = run_tier_with(clients, writes, TierEngine::Events);
            assert_eq!(ta.per_client_mbps(), te.per_client_mbps());
            assert_eq!(ta.elapsed(), te.elapsed());
            assert_eq!(ta.rpc_latency(), te.rpc_latency());
            assert_eq!(sa.slim_stats(), se.slim_stats());
            assert_eq!(ma.now(), me.now());
            assert_eq!(
                ma.events(),
                me.events(),
                "event-count parity broke at {clients} clients x {writes} writes"
            );
        }
    }

    #[test]
    fn tier_is_deterministic() {
        let (a, sa) = run_tier(32, 4);
        let (b, sb) = run_tier(32, 4);
        assert_eq!(a.per_client_mbps(), b.per_client_mbps());
        assert_eq!(a.elapsed(), b.elapsed());
        assert_eq!(a.rpc_latency(), b.rpc_latency());
        assert_eq!(sa.slim_stats(), sb.slim_stats());
    }

    #[test]
    fn flyweight_state_stays_under_256_bytes_per_client() {
        assert!(
            std::mem::size_of::<FlyClient>() <= 72,
            "FlyClient grew to {} bytes",
            std::mem::size_of::<FlyClient>()
        );
        let (tier, _server) = run_tier(10_000, 2);
        let per = tier.bytes_per_client();
        assert!(
            per <= 256,
            "flyweight tier costs {per} resident bytes per client"
        );
    }

    /// The flyweight tier's direct stage traversal must work unchanged
    /// when the fabric's ports run DRR instead of FIFO: every write is
    /// still accounted, per-flow state is retired after the run, and the
    /// per-client memory bound still holds with scheduler state included.
    #[test]
    fn tier_completes_through_a_drr_fabric() {
        let run = |policy: nfsperf_net::PortPolicy| {
            let sim = Sim::new();
            let server_nic = NicSpec::gigabit();
            let config = FabricConfig {
                port_sched: policy,
                ..FabricConfig::new(server_nic)
            };
            let fabric = Rc::new(Fabric::new(&sim, config));
            let server = NfsServer::new(&sim, ServerConfig::netapp_f85());
            let tier = FlyTier::launch(
                &sim,
                &server,
                &fabric,
                toy_model(),
                FlyTierConfig::new(512, 4, server_nic),
            );
            let t2 = Rc::clone(&tier);
            sim.run_until(async move { t2.wait_done().await });
            (tier, server, fabric)
        };
        let (tier, server, fabric) = run(nfsperf_net::PortPolicy::drr());
        let slim = server.slim_stats();
        assert_eq!(slim.clients, 512);
        assert_eq!(slim.writes, 512 * 4);
        assert_eq!(slim.write_bytes, 512 * 4 * 8192);
        assert!(tier.per_client_mbps().iter().all(|m| *m > 0.0));
        // Quiescent DRR retires per-flow state: entries are gone, so only
        // empty map/ring capacities linger — O(peak live flows), well
        // under the flyweight budget, never O(queued datagrams).
        let (_, _, fifo_fabric) = run(nfsperf_net::PortPolicy::Fifo);
        let slack = fabric.resident_bytes() - fifo_fabric.resident_bytes();
        assert!(
            slack < 512 * 256,
            "retired DRR fabric still holds {slack} bytes of scheduler state"
        );
        // Determinism holds under DRR too.
        let (tier2, server2, _) = run(nfsperf_net::PortPolicy::drr());
        assert_eq!(tier.per_client_mbps(), tier2.per_client_mbps());
        assert_eq!(server.slim_stats(), server2.slim_stats());
    }

    #[test]
    fn emission_gaps_stay_inside_the_calibrated_range_pre_contention() {
        // One client, unconstrained window: planned emissions must march
        // by sampled gaps inside the quantile range.
        let m = toy_model();
        let mut state = 7u64;
        let mut last = 0u64;
        for _ in 0..100 {
            let g = m.sample_gap(&mut state).0;
            assert!(g >= m.gap_quantiles[0].0 && g <= m.gap_quantiles[GAP_QUANTILES - 1].0);
            last += g;
        }
        assert!(last > 0);
    }
}
