//! QoS / unfair-workload sweep: one hog against N−1 well-behaved clients.
//!
//! The fleet sweep ([`crate::fleet`]) shows the fair case — identical
//! clients splitting one server evenly. This module asks what happens
//! when one client is built to take more than its share: a deep RPC slot
//! table (64 slots vs the victims' 16), large writes (32 KB vs 8 KB), a
//! gigabit NIC against the victims' 100bT, and a periodic `fsync` that
//! dumps a COMMIT backlog on the server. Under FIFO scheduling the hog's
//! queued requests stand in front of everyone else's at every service
//! slot, so victim throughput collapses and their tail latency inflates
//! by the full depth of the hog's backlog. Deficit round robin
//! ([`nfsperf_server::SchedPolicy::Drr`]) restores byte-fair service, and
//! [`nfsperf_server::SchedPolicy::ClassedDrr`] additionally keeps the
//! hog's COMMITs from occupying every service slot.
//!
//! Fairness is reported as Jain's index over *all* clients (hog
//! included); tails as the worst victim's server-side p99, compared
//! against a hog-free baseline run under the same policy.

use std::rc::Rc;

use nfsperf_client::{ClientTuning, MountConfig, NfsMount};
use nfsperf_kernel::{CostTable, Kernel, KernelConfig, SimFile};
use nfsperf_net::{Nic, NicSpec, Path, Switch};
use nfsperf_server::{NfsServer, PerClientStats, SchedPolicy, ServerConfig, ServerStats};
use nfsperf_sim::{mbps, runner, Sim, SimDuration};
use nfsperf_sunrpc::Transport;

use crate::fleet::jain_index;
use crate::render::ascii_table;
use crate::scenario::ServerKind;

/// One unfair-workload measurement's parameters.
#[derive(Debug, Clone)]
pub struct QosConfig {
    /// Server under test.
    pub server: ServerKind,
    /// Server request scheduling policy.
    pub sched: SchedPolicy,
    /// Number of well-behaved clients.
    pub victims: usize,
    /// Sequential bytes each victim writes (plus a flush-to-close).
    pub bytes_per_victim: u64,
    /// Whether the hog runs at all (`false` = the baseline world).
    pub hog: bool,
    /// The hog's RPC slot-table depth.
    pub hog_slots: usize,
    /// The hog's write transfer size.
    pub hog_wsize: u32,
    /// The hog calls `fsync` after every this many written bytes,
    /// dumping a COMMIT for its whole unstable backlog on the server.
    pub hog_fsync_every: u64,
    /// Base RNG seed; each client machine derives its own from it.
    pub seed: u64,
}

impl QosConfig {
    /// The standard unfair workload: `victims` patched 100bT clients
    /// against one gigabit hog with a deep slot table.
    pub fn new(server: ServerKind, sched: SchedPolicy, victims: usize, bytes: u64) -> QosConfig {
        QosConfig {
            server,
            sched,
            victims,
            bytes_per_victim: bytes,
            hog: true,
            hog_slots: 64,
            hog_wsize: 32 * 1024,
            hog_fsync_every: 4 << 20,
            seed: 0x0905,
        }
    }

    /// The hog-free baseline for the same world.
    pub fn baseline(&self) -> QosConfig {
        QosConfig {
            hog: false,
            ..self.clone()
        }
    }
}

/// Everything measured in one unfair-workload run.
#[derive(Debug, Clone)]
pub struct QosRun {
    /// Each victim's write-through-close throughput, MB/s, victim order.
    pub victim_mbps: Vec<f64>,
    /// The hog's server-side absorbed write rate over the victims'
    /// runtime, MB/s (0 without a hog).
    pub hog_mbps: f64,
    /// Jain fairness over every client, hog included.
    pub jain_all: f64,
    /// Jain fairness over the victims only.
    pub victim_jain: f64,
    /// Worst victim's server-side p99 queue delay.
    pub victim_queue_p99: SimDuration,
    /// Worst victim's server-side p99 service latency (arrival to
    /// completion).
    pub victim_svc_p99: SimDuration,
    /// Wall time until the last victim closed.
    pub elapsed: SimDuration,
    /// Aggregate server counters.
    pub server_stats: ServerStats,
    /// Per-client server counters: victims in order, then the hog last
    /// (when present).
    pub per_client_server: Vec<PerClientStats>,
}

/// Runs one unfair-workload measurement. Victims write sequentially and
/// close; the hog streams large writes with periodic fsyncs until the
/// last victim finishes. Deterministic for a given config.
pub fn run_qos(config: &QosConfig) -> QosRun {
    assert!(config.victims > 0, "the sweep needs victims to starve");
    let sim = Sim::new();
    let switch = Switch::new(&sim, config.server.nic_spec(), Path::default_latency());
    let server = NfsServer::new(
        &sim,
        ServerConfig {
            sched: config.sched,
            ..config.server.server_config()
        },
    );

    let machine = |i: usize, nic: NicSpec, mount: MountConfig| {
        let kernel = Kernel::new(
            &sim,
            KernelConfig {
                ncpus: 2,
                ram_bytes: 256 << 20,
                seed: config
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                costs: CostTable::default(),
                mem: nfsperf_kernel::MemTuning::default(),
            },
        );
        let (cnic, crx) = Nic::new(&sim, "client", nic);
        let (to_server, port_rx) = switch.attach(&cnic, nic);
        server.attach_udp(port_rx, to_server.reversed());
        NfsMount::mount(&kernel, to_server, crx, mount)
    };

    // Victims first (client ids 0..victims), hog last, so victim stats
    // are indexed by victim number.
    let victims: Vec<_> = (0..config.victims)
        .map(|i| {
            machine(
                i,
                NicSpec::fast_ethernet(),
                MountConfig {
                    tuning: ClientTuning::full_patch(),
                    transport: Transport::Udp,
                    ..MountConfig::default()
                },
            )
        })
        .collect();
    let hog = config.hog.then(|| {
        machine(
            config.victims,
            NicSpec::gigabit(),
            MountConfig {
                tuning: ClientTuning::full_patch(),
                transport: Transport::Udp,
                slots: config.hog_slots,
                wsize: config.hog_wsize,
                ..MountConfig::default()
            },
        )
    });

    let bytes = config.bytes_per_victim;
    let hog_wsize = u64::from(config.hog_wsize);
    let hog_fsync_every = config.hog_fsync_every;
    let s2 = sim.clone();
    let (elapsed, per_elapsed) = sim.run_until(async move {
        let t0 = s2.now();
        // The hog streams forever; it is dropped (mid-op) when the last
        // victim finishes and the main future returns.
        if let Some(hog) = hog {
            let sh = s2.clone();
            s2.spawn(async move {
                let file = hog.create("qos.hog").await.expect("hog create");
                let mut off = 0u64;
                loop {
                    file.write(off, hog_wsize).await.expect("hog write");
                    off += hog_wsize;
                    if off.is_multiple_of(hog_fsync_every) {
                        file.fsync().await.expect("hog fsync");
                    }
                    // Stay polite to the executor even if every write
                    // lands in cache without sleeping.
                    sh.sleep(SimDuration::from_micros(1)).await;
                }
            });
        }
        let workers: Vec<_> = victims
            .iter()
            .enumerate()
            .map(|(i, mount)| {
                let mount = Rc::clone(mount);
                let s3 = s2.clone();
                s2.spawn(async move {
                    let file = mount
                        .create(&format!("qos{i}.victim"))
                        .await
                        .expect("victim create");
                    let mut off = 0;
                    while off < bytes {
                        let n = 8192.min(bytes - off);
                        file.write(off, n).await.expect("victim write");
                        off += n;
                    }
                    file.close().await.expect("victim close");
                    s3.now().since(t0)
                })
            })
            .collect();
        let mut per = Vec::with_capacity(workers.len());
        for w in workers {
            per.push(w.await);
        }
        (s2.now().since(t0), per)
    });

    let victim_mbps: Vec<f64> = per_elapsed.iter().map(|e| mbps(bytes, *e)).collect();
    let per_client_server = server.per_client_stats();
    let hog_mbps = if config.hog {
        mbps(per_client_server[config.victims].write_bytes, elapsed)
    } else {
        0.0
    };
    let mut all = victim_mbps.clone();
    if config.hog {
        all.push(hog_mbps);
    }
    let victim_stats = &per_client_server[..config.victims];
    QosRun {
        jain_all: jain_index(&all),
        victim_jain: jain_index(&victim_mbps),
        victim_mbps,
        hog_mbps,
        victim_queue_p99: victim_stats
            .iter()
            .map(|c| c.queue_delay.p99)
            .max()
            .unwrap_or(SimDuration::ZERO),
        victim_svc_p99: victim_stats
            .iter()
            .map(|c| c.service.p99)
            .max()
            .unwrap_or(SimDuration::ZERO),
        elapsed,
        server_stats: server.stats(),
        per_client_server,
    }
}

/// One row of the QoS sweep: a hog run paired with its hog-free
/// baseline under the same policy.
#[derive(Debug, Clone)]
pub struct QosCell {
    /// Server under test.
    pub server: ServerKind,
    /// Scheduling policy.
    pub sched: SchedPolicy,
    /// Victim count.
    pub victims: usize,
    /// Mean victim throughput with the hog running, MB/s.
    pub victim_mean_mbps: f64,
    /// Slowest victim's throughput with the hog running, MB/s.
    pub victim_min_mbps: f64,
    /// The hog's absorbed write rate, MB/s.
    pub hog_mbps: f64,
    /// Jain fairness over all clients, hog included.
    pub jain_all: f64,
    /// Jain fairness over the victims only.
    pub victim_jain: f64,
    /// Worst victim's p99 service latency with the hog, ms.
    pub victim_p99_ms: f64,
    /// Worst victim's p99 service latency in the hog-free baseline, ms.
    pub baseline_p99_ms: f64,
    /// `victim_p99_ms / baseline_p99_ms` — how much of the tail the hog
    /// added. The mitigation target is ≤ 2×.
    pub p99_ratio: f64,
}

/// The full unfair-workload sweep.
#[derive(Debug, Clone)]
pub struct QosSweep {
    /// All cells, in (server, sched) order.
    pub rows: Vec<QosCell>,
    /// Victim count per cell.
    pub victims: usize,
    /// Bytes each victim wrote.
    pub bytes_per_victim: u64,
}

/// Folds a hog run and its hog-free baseline into one sweep row.
fn qos_row(
    server: ServerKind,
    sched: SchedPolicy,
    victims: usize,
    base: &QosRun,
    run: &QosRun,
) -> QosCell {
    let n = run.victim_mbps.len() as f64;
    let victim_p99_ms = run.victim_svc_p99.as_nanos() as f64 / 1e6;
    let baseline_p99_ms = base.victim_svc_p99.as_nanos() as f64 / 1e6;
    QosCell {
        server,
        sched,
        victims,
        victim_mean_mbps: run.victim_mbps.iter().sum::<f64>() / n,
        victim_min_mbps: run.victim_mbps.iter().copied().fold(f64::INFINITY, f64::min),
        hog_mbps: run.hog_mbps,
        jain_all: run.jain_all,
        victim_jain: run.victim_jain,
        victim_p99_ms,
        baseline_p99_ms,
        p99_ratio: if baseline_p99_ms > 0.0 {
            victim_p99_ms / baseline_p99_ms
        } else {
            1.0
        },
    }
}

/// Builds the *monolithic* work-list: one [`runner::Cell`] per
/// `(server, sched)` pair; each cell runs the hog-free baseline and the
/// hog world back to back (both inside the same worker).
///
/// Kept as the reference implementation for the phased list
/// ([`qos_run_cells`] + [`assemble_qos_rows`]), which produces identical
/// rows from twice as many half-size cells; `tests/runner.rs` proves the
/// equivalence property.
pub fn qos_cells(
    servers: &[ServerKind],
    scheds: &[SchedPolicy],
    victims: usize,
    bytes_per_victim: u64,
) -> Vec<runner::Cell<QosCell>> {
    let mut cells = Vec::new();
    for &server in servers {
        for &sched in scheds {
            cells.push(runner::Cell::new(
                format!("qos/{}/{}", server.label(), sched.label()),
                move || {
                    let config = QosConfig::new(server, sched, victims, bytes_per_victim);
                    let base = run_qos(&config.baseline());
                    let run = run_qos(&config);
                    qos_row(server, sched, victims, &base, &run)
                },
            ));
        }
    }
    cells
}

/// Builds the *phased* work-list: every `(server, sched)` pair
/// contributes two independent cells — the hog-free baseline world and
/// the hog world — so a pool of workers always has twice as many units
/// to pull from. Results pair back up in [`assemble_qos_rows`].
pub fn qos_run_cells(
    servers: &[ServerKind],
    scheds: &[SchedPolicy],
    victims: usize,
    bytes_per_victim: u64,
) -> Vec<runner::Cell<QosRun>> {
    let mut cells = Vec::new();
    for &server in servers {
        for &sched in scheds {
            let config = QosConfig::new(server, sched, victims, bytes_per_victim);
            let base = config.baseline();
            cells.push(runner::Cell::new(
                format!("qos/{}/{}/baseline", server.label(), sched.label()),
                move || run_qos(&base),
            ));
            cells.push(runner::Cell::new(
                format!("qos/{}/{}/hog", server.label(), sched.label()),
                move || run_qos(&config),
            ));
        }
    }
    cells
}

/// Pairs the phased results (work-list order: baseline then hog per
/// `(server, sched)`) back into sweep rows, identical to what the
/// monolithic [`qos_cells`] list returns.
pub fn assemble_qos_rows(
    servers: &[ServerKind],
    scheds: &[SchedPolicy],
    victims: usize,
    runs: Vec<QosRun>,
) -> Vec<QosCell> {
    assert_eq!(
        runs.len(),
        servers.len() * scheds.len() * 2,
        "one baseline + one hog run per (server, sched)"
    );
    let mut it = runs.into_iter();
    let mut rows = Vec::with_capacity(servers.len() * scheds.len());
    for &server in servers {
        for &sched in scheds {
            let base = it.next().expect("baseline run");
            let run = it.next().expect("hog run");
            rows.push(qos_row(server, sched, victims, &base, &run));
        }
    }
    rows
}

/// Runs the sweep on up to `jobs` worker threads: for every server ×
/// policy, one hog run and one hog-free baseline, phased as separate
/// cells so the pool always has work. Cells are independent worlds,
/// deterministic for a given input — rows (and the CSV) are
/// bit-identical at any `jobs` value.
pub fn qos_sweep(
    servers: &[ServerKind],
    scheds: &[SchedPolicy],
    victims: usize,
    bytes_per_victim: u64,
    jobs: usize,
) -> QosSweep {
    let runs = runner::run_cells(
        jobs,
        qos_run_cells(servers, scheds, victims, bytes_per_victim),
    );
    QosSweep {
        rows: assemble_qos_rows(servers, scheds, victims, runs),
        victims,
        bytes_per_victim,
    }
}

impl QosSweep {
    /// The sweep as CSV (also what [`QosSweep::write_csv`] writes).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "server,sched,victims,victim_mean_mbps,victim_min_mbps,hog_mbps,\
             jain_all,victim_jain,victim_p99_ms,baseline_p99_ms,p99_ratio\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3},{:.3},{:.4},{:.4},{:.3},{:.3},{:.2}\n",
                r.server.label(),
                r.sched.label(),
                r.victims,
                r.victim_mean_mbps,
                r.victim_min_mbps,
                r.hog_mbps,
                r.jain_all,
                r.victim_jain,
                r.victim_p99_ms,
                r.baseline_p99_ms,
                r.p99_ratio,
            ));
        }
        out
    }

    /// Writes the CSV to `path`.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Renders an ASCII table plus a starvation/mitigation verdict per
    /// server.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.server.label().to_owned(),
                    r.sched.label().to_owned(),
                    format!("{:.2}", r.victim_mean_mbps),
                    format!("{:.2}", r.victim_min_mbps),
                    format!("{:.2}", r.hog_mbps),
                    format!("{:.3}", r.jain_all),
                    format!("{:.2}", r.victim_p99_ms),
                    format!("{:.2}x", r.p99_ratio),
                ]
            })
            .collect();
        let mut out = ascii_table(
            &[
                "server",
                "sched",
                "victim MB/s",
                "min victim",
                "hog MB/s",
                "jain(all)",
                "victim p99 ms",
                "p99 vs base",
            ],
            &rows,
        );
        for r in &self.rows {
            if r.sched == SchedPolicy::Fifo {
                continue;
            }
            let fifo = self
                .rows
                .iter()
                .find(|f| f.server == r.server && f.sched == SchedPolicy::Fifo);
            if let Some(fifo) = fifo {
                out.push_str(&format!(
                    "{} + {}: victim share {:.2} -> {:.2} MB/s, jain {:.2} -> {:.2}, p99 {:.1}x -> {:.1}x baseline\n",
                    r.server.label(),
                    r.sched.label(),
                    fifo.victim_mean_mbps,
                    r.victim_mean_mbps,
                    fifo.jain_all,
                    r.jain_all,
                    fifo.p99_ratio,
                    r.p99_ratio,
                ));
            }
        }
        out
    }
}
