//! The paper's future-work experiment: concurrent writes from separate
//! client CPUs to separate files and separate servers.
//!
//! §3.5 closes with: removing the global kernel lock from the RPC layer
//! "will allow a system with multiple network interfaces to process more
//! than one RPC request at a time and allow concurrent writes to
//! separate files and to separate servers from separate client CPUs."
//! This module measures exactly that: aggregate memory-write throughput
//! of two writers, with the lock held versus released.

use std::rc::Rc;

use nfsperf_client::{ClientTuning, MountConfig, NfsMount};
use nfsperf_kernel::{Kernel, KernelConfig, SimFile};
use nfsperf_net::{Nic, NicSpec, Path};
use nfsperf_server::{NfsServer, ServerConfig};
use nfsperf_sim::{mbps, Sim};

/// Result of one concurrency measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrencyResult {
    /// Single-writer memory write throughput, MB/s.
    pub one_writer_mbps: f64,
    /// Aggregate throughput of two concurrent writers, MB/s.
    pub two_writers_mbps: f64,
}

impl ConcurrencyResult {
    /// Aggregate speedup of the second writer (2.0 = perfect scaling).
    pub fn scaling(&self) -> f64 {
        self.two_writers_mbps / self.one_writer_mbps
    }
}

/// Topology for the concurrent-writer experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Two files on one mount to one server.
    SharedServer,
    /// Two mounts to two independent servers (the multi-NIC future-work
    /// case; each mount gets its own slot table and path).
    SeparateServers,
}

fn build_world(sim: &Sim, tuning: ClientTuning, servers: usize) -> (Kernel, Vec<Rc<NfsMount>>) {
    let kernel = Kernel::new(sim, KernelConfig::default());
    let mut mounts = Vec::new();
    for i in 0..servers {
        let (cnic, crx) = Nic::new(sim, "client", NicSpec::gigabit());
        let (snic, srx) = Nic::new(
            sim,
            if i == 0 { "server0" } else { "server1" },
            NicSpec::gigabit(),
        );
        let to_server = Path::new(cnic, snic, Path::default_latency());
        NfsServer::spawn(sim, srx, to_server.reversed(), ServerConfig::netapp_f85());
        mounts.push(NfsMount::mount(
            &kernel,
            to_server,
            crx,
            MountConfig {
                tuning,
                ..MountConfig::default()
            },
        ));
    }
    (kernel, mounts)
}

async fn write_file(mount: Rc<NfsMount>, name: &str, bytes: u64) {
    let file = mount.create(name).await.expect("create");
    let mut off = 0;
    while off < bytes {
        file.write(off, 8192).await.expect("write");
        off += 8192;
    }
    // Memory-write measurement: leave flushing to the daemons, as the
    // paper's write-phase numbers do.
}

/// Measures one- and two-writer throughput for the tuning and topology.
pub fn concurrent_writers(
    tuning: ClientTuning,
    topology: Topology,
    bytes_per_writer: u64,
) -> ConcurrencyResult {
    // Single writer baseline.
    let one = {
        let sim = Sim::new();
        let (_kernel, mounts) = build_world(&sim, tuning, 1);
        let m = Rc::clone(&mounts[0]);
        let s2 = sim.clone();
        let elapsed = sim.run_until(async move {
            let t0 = s2.now();
            write_file(m, "w0", bytes_per_writer).await;
            s2.now().since(t0)
        });
        mbps(bytes_per_writer, elapsed)
    };

    // Two concurrent writers.
    let two = {
        let sim = Sim::new();
        let servers = match topology {
            Topology::SharedServer => 1,
            Topology::SeparateServers => 2,
        };
        let (_kernel, mounts) = build_world(&sim, tuning, servers);
        let m0 = Rc::clone(&mounts[0]);
        let m1 = Rc::clone(mounts.last().expect("at least one mount"));
        let s2 = sim.clone();
        let elapsed = sim.run_until(async move {
            let t0 = s2.now();
            let a = s2.spawn(async move { write_file(m0, "w0", bytes_per_writer).await });
            let b = s2.spawn(async move { write_file(m1, "w1", bytes_per_writer).await });
            a.await;
            b.await;
            s2.now().since(t0)
        });
        mbps(2 * bytes_per_writer, elapsed)
    };

    ConcurrencyResult {
        one_writer_mbps: one,
        two_writers_mbps: two,
    }
}

/// Runs the full future-work comparison: both topologies, lock held vs
/// released. Returns rows of `(label, result)`.
pub fn future_work_comparison(bytes_per_writer: u64) -> Vec<(&'static str, ConcurrencyResult)> {
    vec![
        (
            "shared server, BKL held",
            concurrent_writers(
                ClientTuning::hash_table(),
                Topology::SharedServer,
                bytes_per_writer,
            ),
        ),
        (
            "shared server, no lock",
            concurrent_writers(
                ClientTuning::full_patch(),
                Topology::SharedServer,
                bytes_per_writer,
            ),
        ),
        (
            "separate servers, BKL held",
            concurrent_writers(
                ClientTuning::hash_table(),
                Topology::SeparateServers,
                bytes_per_writer,
            ),
        ),
        (
            "separate servers, no lock",
            concurrent_writers(
                ClientTuning::full_patch(),
                Topology::SeparateServers,
                bytes_per_writer,
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_writers_add_throughput() {
        let r = concurrent_writers(
            ClientTuning::full_patch(),
            Topology::SeparateServers,
            2 << 20,
        );
        assert!(
            r.two_writers_mbps > r.one_writer_mbps,
            "a second writer must add aggregate throughput: {r:?}"
        );
        assert!(r.scaling() <= 2.05, "no superlinear scaling: {r:?}");
    }

    #[test]
    fn lock_release_improves_concurrent_scaling() {
        let held = concurrent_writers(
            ClientTuning::hash_table(),
            Topology::SeparateServers,
            2 << 20,
        );
        let free = concurrent_writers(
            ClientTuning::full_patch(),
            Topology::SeparateServers,
            2 << 20,
        );
        assert!(
            free.two_writers_mbps > held.two_writers_mbps,
            "releasing the BKL must raise aggregate throughput: held {held:?} free {free:?}"
        );
    }
}
