//! Network-QoS sweep: open-loop aggressors vs NFS victims at the uplink.
//!
//! The PR 4 QoS sweep showed the *server* scheduler restoring fairness —
//! but only for contention that reaches the server's service slots. When
//! the fight happens one hop earlier, at the shared switch uplink, a
//! server-side policy never sees the victims' datagrams at all: they
//! lost at the wire. This sweep contends the uplink directly. Victims
//! are ordinary closed-loop NFS clients writing through close; the
//! aggressors are **open-loop** traffic sources ([`crate::arrivals`])
//! attached to the same switch whose frames terminate in a sink — they
//! never touch the server, so every effect measured here is pure
//! network-port scheduling.
//!
//! The victims themselves are deliberately *unequal*: odd-indexed
//! victims mount aggressively (gigabit port, 32-deep slot table, 32 KB
//! wsize) while even-indexed ones mount meekly (100bT, 8 slots, the
//! paper's 8 KB wsize). A FIFO port serves whoever keeps the most bytes
//! queued, so once the aggressors deepen the backlog the aggressive
//! victims ride it and the meek ones starve — fairness *among the
//! victims* collapses along with fairness against the aggressors.
//!
//! Per cell we report victim goodput against an aggressor-free baseline,
//! Jain fairness over every flow (victims and aggressors), Jain over the
//! victims alone, and the uplink's own queue-delay p99 from the per-port
//! [`nfsperf_sim::LatencyDigest`] the scheduler refactor exposed.
//! `port-drr` is the headline: under FIFO an oversubscribing aggressor
//! mix owns the arrival order and victim Jain collapses below 0.6;
//! per-flow DRR at the port caps every backlogged flow at its fair
//! share, which both lifts the victims' aggregate and equalizes meek
//! and aggressive victims (victim Jain back to ~1.0) — the port stops
//! rewarding aggression. `port-wrr` shows the same machinery taking an
//! SLA: victims weighted 4, aggressors 1.

use std::cell::Cell;
use std::rc::Rc;

use nfsperf_client::{ClientTuning, MountConfig, NfsMount};
use nfsperf_kernel::{CostTable, Kernel, KernelConfig, SimFile};
use nfsperf_net::{LinkDir, Nic, NicSpec, Path, PortPolicy, Switch, WeightTable};
use nfsperf_server::NfsServer;
use nfsperf_sim::{mbps, runner, Sim, SimDuration};
use nfsperf_sunrpc::Transport;

use crate::arrivals::{OpenLoop, TrafficMix};
use crate::fleet::jain_index;
use crate::render::ascii_table;
use crate::scenario::ServerKind;

/// Aggressor frame payload: an 8 KB blast, fragmented on the wire like a
/// full-size NFS WRITE.
const AGGRESSOR_FRAME: usize = 8192;

/// Bounded source queue: an aggressor stops injecting while this many of
/// its frames are still in flight (a real edge NIC drops or backpressures
/// at a finite ring; an infinite queue would just measure allocator
/// throughput).
const SOURCE_QUEUE_FRAMES: u64 = 128;

/// Port-scheduler choice for a netqos cell (the weight table for WRR
/// depends on the cell's topology, so cells carry this tag and build the
/// concrete [`PortPolicy`] per run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetSched {
    /// Arrival order: the semaphore-era lane.
    Fifo,
    /// Per-flow deficit round robin, equal weights.
    Drr,
    /// Weighted DRR: victims weighted 4, aggressors 1.
    Wrr,
}

impl NetSched {
    /// Every policy, in sweep order.
    pub const ALL: [NetSched; 3] = [NetSched::Fifo, NetSched::Drr, NetSched::Wrr];

    /// CSV / CLI label.
    pub fn label(self) -> &'static str {
        match self {
            NetSched::Fifo => "port-fifo",
            NetSched::Drr => "port-drr",
            NetSched::Wrr => "port-wrr",
        }
    }

    /// Parses a CLI label (long or short form).
    pub fn parse(s: &str) -> Option<NetSched> {
        match s {
            "port-fifo" | "fifo" => Some(NetSched::Fifo),
            "port-drr" | "drr" => Some(NetSched::Drr),
            "port-wrr" | "wrr" => Some(NetSched::Wrr),
            _ => None,
        }
    }

    /// The concrete policy for a cell with `victims` NFS clients (flows
    /// `0..victims`) and `aggressors` open-loop sources (the flows after
    /// them, in attach order).
    pub fn build(self, victims: usize, aggressors: usize) -> PortPolicy {
        // One full-size fragmented frame per round: short rounds keep a
        // closed-loop victim's per-RPC wait near one round trip instead
        // of one multi-frame aggressor quantum.
        const QUANTUM: u64 = 9000;
        match self {
            NetSched::Fifo => PortPolicy::Fifo,
            NetSched::Drr => PortPolicy::Drr { quantum: QUANTUM },
            NetSched::Wrr => {
                let mut w = vec![4u32; victims];
                w.extend(std::iter::repeat_n(1u32, aggressors));
                PortPolicy::Wrr {
                    quantum: QUANTUM,
                    weights: WeightTable::new(w),
                }
            }
        }
    }
}

/// One netqos measurement's parameters.
#[derive(Debug, Clone)]
pub struct NetQosConfig {
    /// Server under test (its NIC rate is the uplink rate).
    pub server: ServerKind,
    /// Uplink port scheduler.
    pub sched: NetSched,
    /// Aggressor traffic shape.
    pub mix: TrafficMix,
    /// Number of closed-loop NFS victims.
    pub victims: usize,
    /// Sequential bytes each victim writes (plus a flush-to-close).
    pub bytes_per_victim: u64,
    /// Whether the aggressors run at all (`false` = the baseline world).
    pub aggressors: bool,
    /// Base RNG seed; victims and aggressor pacers derive theirs from it.
    pub seed: u64,
}

impl NetQosConfig {
    /// The standard cell: `victims` 100bT clients vs the mix's aggressors.
    pub fn new(
        server: ServerKind,
        sched: NetSched,
        mix: TrafficMix,
        victims: usize,
        bytes: u64,
    ) -> NetQosConfig {
        NetQosConfig {
            server,
            sched,
            mix,
            victims,
            bytes_per_victim: bytes,
            aggressors: true,
            seed: 0x0919,
        }
    }

    /// The aggressor-free baseline for the same world.
    pub fn baseline(&self) -> NetQosConfig {
        NetQosConfig {
            aggressors: false,
            ..self.clone()
        }
    }
}

/// Everything measured in one netqos run.
#[derive(Debug, Clone)]
pub struct NetQosRun {
    /// Each victim's write-through-close throughput, MB/s, victim order.
    pub victim_mbps: Vec<f64>,
    /// Each aggressor's sink-delivered throughput over the victims'
    /// runtime, MB/s (empty without aggressors).
    pub aggressor_mbps: Vec<f64>,
    /// Jain fairness over every flow: victims and aggressors.
    pub jain_all: f64,
    /// Jain fairness over the victims only.
    pub victim_jain: f64,
    /// Uplink to-server queue-delay p99 (time from lane arrival to slot
    /// grant, before the frame's own serialization).
    pub qdelay_p99: SimDuration,
    /// Wall time until the last victim closed.
    pub elapsed: SimDuration,
}

/// Runs one netqos measurement. Victims write sequentially and close;
/// aggressors inject open-loop until the last victim finishes.
/// Deterministic for a given config.
pub fn run_netqos(config: &NetQosConfig) -> NetQosRun {
    assert!(config.victims > 0, "the sweep needs victims to starve");
    let n_agg = if config.aggressors {
        config.mix.aggressors()
    } else {
        0
    };
    let policy = config.sched.build(config.victims, n_agg);
    let sim = Sim::new();
    let uplink_spec = config.server.nic_spec();
    let switch = Switch::with_port_sched(&sim, uplink_spec, Path::default_latency(), &policy);
    switch.uplink().set_queue_sampling(1);
    let server = NfsServer::new(&sim, config.server.server_config());

    // Victims first: flows 0..victims, matching NetSched::build's
    // weight-table layout.
    let victims: Vec<_> = (0..config.victims)
        .map(|i| {
            let kernel = Kernel::new(
                &sim,
                KernelConfig {
                    ncpus: 2,
                    ram_bytes: 256 << 20,
                    seed: config
                        .seed
                        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                    costs: CostTable::default(),
                    mem: nfsperf_kernel::MemTuning::default(),
                },
            );
            // Victims alternate between two classes: odd flows mount
            // aggressively (gigabit port, deep slot table, 32 KB wsize),
            // even flows meekly (100bT, shallow slots, the paper's 8 KB
            // wsize). A FIFO uplink serves whoever keeps the most
            // datagrams queued, so once aggressors deepen the backlog
            // the aggressive minority crowds the meek majority out;
            // per-flow DRR caps every flow at the same byte share
            // regardless of how hard it pushes.
            let strong = i % 2 == 1;
            let nic = if strong {
                NicSpec::gigabit()
            } else {
                NicSpec::fast_ethernet()
            };
            let (cnic, crx) = Nic::new(&sim, "client", nic);
            let (to_server, port_rx) = switch.attach(&cnic, nic);
            server.attach_udp(port_rx, to_server.reversed());
            NfsMount::mount(
                &kernel,
                to_server,
                crx,
                MountConfig {
                    tuning: ClientTuning::full_patch(),
                    transport: Transport::Udp,
                    wsize: if strong { 32 * 1024 } else { 8 * 1024 },
                    slots: if strong { 32 } else { 8 },
                    ..MountConfig::default()
                },
            )
        })
        .collect();

    // Aggressors next: each attaches a gigabit port whose server-side
    // receive queue drains into a counting sink — the server never sees
    // these flows, so all interference is at the uplink.
    let uplink_rate = uplink_spec.bandwidth_bps / 8;
    let mean_gap = config.mix.mean_epoch_gap(AGGRESSOR_FRAME, uplink_rate);
    type SinkCounts = (Rc<Cell<u64>>, Rc<Cell<u64>>);
    let delivered: Vec<SinkCounts> = (0..n_agg)
        .map(|_| (Rc::new(Cell::new(0u64)), Rc::new(Cell::new(0u64))))
        .collect();
    for (a, (frames, bytes)) in delivered.iter().enumerate() {
        let (anic, _arx) = Nic::new(&sim, "aggressor", NicSpec::gigabit());
        let (path, port_rx) = switch.attach(&anic, NicSpec::gigabit());
        let (frames, bytes) = (Rc::clone(frames), Rc::clone(bytes));
        let sink_frames = Rc::clone(&frames);
        sim.spawn(async move {
            while let Some(p) = port_rx.recv().await {
                sink_frames.set(sink_frames.get() + 1);
                bytes.set(bytes.get() + p.len() as u64);
            }
        });
        // Synchronized mixes share one gap stream so bursts coincide;
        // the hog mix paces each source independently.
        let gap_seed = if config.mix.synchronized() {
            config.seed ^ 0xA66
        } else {
            config.seed ^ 0xA66 ^ (0x9e37_79b9u64 * (a as u64 + 1))
        };
        let mut pacer = OpenLoop::new(gap_seed, mean_gap, config.mix.alpha());
        let burst = config.mix.burst_frames();
        let sim2 = sim.clone();
        sim.spawn(async move {
            let mut sent = 0u64;
            loop {
                // Finite source queue: hold injection while too many of
                // our frames are still queued at the uplink.
                while sent.saturating_sub(frames.get()) >= SOURCE_QUEUE_FRAMES {
                    sim2.sleep(SimDuration::from_micros(100)).await;
                }
                for _ in 0..burst {
                    path.send(vec![0u8; AGGRESSOR_FRAME]);
                    sent += 1;
                }
                sim2.sleep(pacer.next_gap()).await;
            }
        });
    }

    let bytes = config.bytes_per_victim;
    let s2 = sim.clone();
    let (elapsed, per_elapsed) = sim.run_until(async move {
        let t0 = s2.now();
        let workers: Vec<_> = victims
            .iter()
            .enumerate()
            .map(|(i, mount)| {
                let mount = Rc::clone(mount);
                let s3 = s2.clone();
                s2.spawn(async move {
                    let file = mount
                        .create(&format!("netqos{i}.victim"))
                        .await
                        .expect("victim create");
                    let mut off = 0;
                    while off < bytes {
                        let n = 8192.min(bytes - off);
                        file.write(off, n).await.expect("victim write");
                        off += n;
                    }
                    file.close().await.expect("victim close");
                    s3.now().since(t0)
                })
            })
            .collect();
        let mut per = Vec::with_capacity(workers.len());
        for w in workers {
            per.push(w.await);
        }
        (s2.now().since(t0), per)
    });

    let victim_mbps: Vec<f64> = per_elapsed.iter().map(|e| mbps(bytes, *e)).collect();
    let aggressor_mbps: Vec<f64> = delivered
        .iter()
        .map(|(_, bytes)| mbps(bytes.get(), elapsed))
        .collect();
    let mut all = victim_mbps.clone();
    all.extend_from_slice(&aggressor_mbps);
    NetQosRun {
        jain_all: jain_index(&all),
        victim_jain: jain_index(&victim_mbps),
        victim_mbps,
        aggressor_mbps,
        qdelay_p99: switch.uplink().queue_delay(LinkDir::ToServer).p99,
        elapsed,
    }
}

/// One row of the netqos sweep: an aggressor run paired with the
/// aggressor-free baseline under the same (server, sched).
#[derive(Debug, Clone)]
pub struct NetQosCell {
    /// Server under test.
    pub server: ServerKind,
    /// Uplink scheduler.
    pub sched: NetSched,
    /// Aggressor mix.
    pub mix: TrafficMix,
    /// Victim count.
    pub victims: usize,
    /// Aggressor count.
    pub aggressors: usize,
    /// Mean victim throughput with aggressors running, MB/s.
    pub victim_mean_mbps: f64,
    /// Mean victim throughput in the aggressor-free baseline, MB/s.
    pub base_victim_mbps: f64,
    /// Slowest victim's throughput with aggressors running, MB/s.
    pub victim_min_mbps: f64,
    /// Total aggressor sink-delivered rate, MB/s.
    pub aggressor_mbps: f64,
    /// Jain fairness over every flow, aggressors included.
    pub jain_all: f64,
    /// Jain fairness over the victims only.
    pub victim_jain: f64,
    /// Uplink queue-delay p99 with aggressors, ms.
    pub qdelay_p99_ms: f64,
    /// Uplink queue-delay p99 in the baseline, ms.
    pub base_qdelay_p99_ms: f64,
    /// `qdelay_p99_ms / base_qdelay_p99_ms` — queueing the mix added.
    pub qdelay_ratio: f64,
}

/// The full netqos sweep.
#[derive(Debug, Clone)]
pub struct NetQosSweep {
    /// All cells, in (server, sched, mix) order.
    pub rows: Vec<NetQosCell>,
    /// Victim count per cell.
    pub victims: usize,
    /// Bytes each victim wrote.
    pub bytes_per_victim: u64,
}

/// Folds an aggressor run and its baseline into one sweep row.
fn netqos_row(config: &NetQosConfig, base: &NetQosRun, run: &NetQosRun) -> NetQosCell {
    let n = run.victim_mbps.len() as f64;
    let qdelay_p99_ms = run.qdelay_p99.as_nanos() as f64 / 1e6;
    let base_qdelay_p99_ms = base.qdelay_p99.as_nanos() as f64 / 1e6;
    NetQosCell {
        server: config.server,
        sched: config.sched,
        mix: config.mix,
        victims: config.victims,
        aggressors: config.mix.aggressors(),
        victim_mean_mbps: run.victim_mbps.iter().sum::<f64>() / n,
        base_victim_mbps: base.victim_mbps.iter().sum::<f64>() / n,
        victim_min_mbps: run.victim_mbps.iter().copied().fold(f64::INFINITY, f64::min),
        aggressor_mbps: run.aggressor_mbps.iter().sum(),
        jain_all: run.jain_all,
        victim_jain: run.victim_jain,
        qdelay_p99_ms,
        base_qdelay_p99_ms,
        qdelay_ratio: if base_qdelay_p99_ms > 0.0 {
            qdelay_p99_ms / base_qdelay_p99_ms
        } else {
            1.0
        },
    }
}

/// Builds the phased work-list: per `(server, sched)` one aggressor-free
/// baseline cell (the baseline is mix-independent) plus one cell per mix.
/// Results pair back up in [`assemble_netqos_rows`].
pub fn netqos_run_cells(
    servers: &[ServerKind],
    scheds: &[NetSched],
    mixes: &[TrafficMix],
    victims: usize,
    bytes_per_victim: u64,
) -> Vec<runner::Cell<NetQosRun>> {
    let mut cells = Vec::new();
    for &server in servers {
        for &sched in scheds {
            let base = NetQosConfig::new(server, sched, TrafficMix::Hog, victims, bytes_per_victim)
                .baseline();
            cells.push(runner::Cell::new(
                format!("netqos/{}/{}/baseline", server.label(), sched.label()),
                move || run_netqos(&base),
            ));
            for &mix in mixes {
                let config = NetQosConfig::new(server, sched, mix, victims, bytes_per_victim);
                cells.push(runner::Cell::new(
                    format!(
                        "netqos/{}/{}/{}",
                        server.label(),
                        sched.label(),
                        mix.label()
                    ),
                    move || run_netqos(&config),
                ));
            }
        }
    }
    cells
}

/// Pairs the phased results (work-list order: baseline then one run per
/// mix, per `(server, sched)`) back into sweep rows.
pub fn assemble_netqos_rows(
    servers: &[ServerKind],
    scheds: &[NetSched],
    mixes: &[TrafficMix],
    victims: usize,
    bytes_per_victim: u64,
    runs: Vec<NetQosRun>,
) -> Vec<NetQosCell> {
    assert_eq!(
        runs.len(),
        servers.len() * scheds.len() * (mixes.len() + 1),
        "one baseline + one run per mix, per (server, sched)"
    );
    let mut it = runs.into_iter();
    let mut rows = Vec::new();
    for &server in servers {
        for &sched in scheds {
            let base = it.next().expect("baseline run");
            for &mix in mixes {
                let run = it.next().expect("mix run");
                let config = NetQosConfig::new(server, sched, mix, victims, bytes_per_victim);
                rows.push(netqos_row(&config, &base, &run));
            }
        }
    }
    rows
}

/// Runs the sweep on up to `jobs` worker threads. Cells are independent
/// deterministic worlds — rows (and the CSV) are bit-identical at any
/// `jobs` value.
pub fn netqos_sweep(
    servers: &[ServerKind],
    scheds: &[NetSched],
    mixes: &[TrafficMix],
    victims: usize,
    bytes_per_victim: u64,
    jobs: usize,
) -> NetQosSweep {
    let runs = runner::run_cells(
        jobs,
        netqos_run_cells(servers, scheds, mixes, victims, bytes_per_victim),
    );
    NetQosSweep {
        rows: assemble_netqos_rows(servers, scheds, mixes, victims, bytes_per_victim, runs),
        victims,
        bytes_per_victim,
    }
}

impl NetQosSweep {
    /// The sweep as CSV (also what [`NetQosSweep::write_csv`] writes).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "server,sched,mix,victims,aggressors,victim_mean_mbps,base_victim_mbps,\
             victim_min_mbps,aggressor_mbps,jain_all,victim_jain,qdelay_p99_ms,\
             base_qdelay_p99_ms,qdelay_ratio\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.4},{:.4},{:.3},{:.3},{:.2}\n",
                r.server.label(),
                r.sched.label(),
                r.mix.label(),
                r.victims,
                r.aggressors,
                r.victim_mean_mbps,
                r.base_victim_mbps,
                r.victim_min_mbps,
                r.aggressor_mbps,
                r.jain_all,
                r.victim_jain,
                r.qdelay_p99_ms,
                r.base_qdelay_p99_ms,
                r.qdelay_ratio,
            ));
        }
        out
    }

    /// Writes the CSV to `path`.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Renders an ASCII table plus a per-(server, mix) verdict comparing
    /// each fair policy against port-fifo.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.server.label().to_owned(),
                    r.sched.label().to_owned(),
                    r.mix.label().to_owned(),
                    format!("{:.2}", r.victim_mean_mbps),
                    format!("{:.2}", r.base_victim_mbps),
                    format!("{:.2}", r.aggressor_mbps),
                    format!("{:.3}", r.jain_all),
                    format!("{:.3}", r.victim_jain),
                    format!("{:.2}", r.qdelay_p99_ms),
                    format!("{:.2}x", r.qdelay_ratio),
                ]
            })
            .collect();
        let mut out = ascii_table(
            &[
                "server",
                "sched",
                "mix",
                "victim MB/s",
                "baseline",
                "aggr MB/s",
                "jain(all)",
                "jain(victims)",
                "qdelay p99 ms",
                "vs base",
            ],
            &rows,
        );
        for r in &self.rows {
            if r.sched == NetSched::Fifo {
                continue;
            }
            let fifo = self.rows.iter().find(|f| {
                f.server == r.server && f.mix == r.mix && f.sched == NetSched::Fifo
            });
            if let Some(fifo) = fifo {
                out.push_str(&format!(
                    "{} {} + {}: victim {:.2} -> {:.2} MB/s (baseline {:.2}), jain {:.2} -> {:.2}, victim jain {:.2} -> {:.2}, qdelay p99 {:.1}x -> {:.1}x base\n",
                    r.server.label(),
                    r.mix.label(),
                    r.sched.label(),
                    fifo.victim_mean_mbps,
                    r.victim_mean_mbps,
                    r.base_victim_mbps,
                    fifo.jain_all,
                    r.jain_all,
                    fifo.victim_jain,
                    r.victim_jain,
                    fifo.qdelay_ratio,
                    r.qdelay_ratio,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(sched: NetSched) -> NetQosConfig {
        NetQosConfig::new(ServerKind::Knfsd, sched, TrafficMix::Hog, 2, 256 * 1024)
    }

    #[test]
    fn netqos_runs_are_deterministic() {
        let a = run_netqos(&tiny(NetSched::Drr));
        let b = run_netqos(&tiny(NetSched::Drr));
        assert_eq!(a.victim_mbps, b.victim_mbps);
        assert_eq!(a.aggressor_mbps, b.aggressor_mbps);
        assert_eq!(a.qdelay_p99, b.qdelay_p99);
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn port_drr_protects_victims_the_fifo_lane_starves() {
        let fifo = run_netqos(&tiny(NetSched::Fifo));
        let drr = run_netqos(&tiny(NetSched::Drr));
        // Victim 0 mounts meekly (shallow slots, 8 KB wsize): FIFO lets
        // the aggressors and the aggressive victim crowd it out, DRR
        // guarantees it the same byte share as everyone else.
        let meek = |r: &NetQosRun| r.victim_mbps[0];
        assert!(
            meek(&drr) > 2.0 * meek(&fifo),
            "DRR meek victim {:.2} MB/s vs FIFO {:.2} MB/s",
            meek(&drr),
            meek(&fifo)
        );
        assert!(drr.victim_jain > fifo.victim_jain);
        assert!(drr.jain_all > fifo.jain_all);
    }

    #[test]
    fn baseline_world_has_no_aggressor_traffic() {
        let base = run_netqos(&tiny(NetSched::Fifo).baseline());
        assert!(base.aggressor_mbps.is_empty());
        assert_eq!(base.victim_mbps.len(), 2);
        assert!(base.victim_mbps.iter().all(|m| *m > 0.0));
    }

    #[test]
    fn sched_parse_build_roundtrip() {
        for s in NetSched::ALL {
            assert_eq!(NetSched::parse(s.label()), Some(s));
        }
        assert_eq!(NetSched::Fifo.build(3, 2), PortPolicy::Fifo);
        match NetSched::Wrr.build(2, 3) {
            PortPolicy::Wrr { weights, .. } => {
                assert_eq!(weights.get(0), 4);
                assert_eq!(weights.get(1), 4);
                assert_eq!(weights.get(2), 1);
                assert_eq!(weights.get(4), 1);
            }
            p => panic!("expected WRR, got {p:?}"),
        }
    }
}
