//! Fleet scale-out: N independent clients against one server.
//!
//! The paper's experiments aim a single client at each server, so the
//! knee of every curve is set by one client's write path. This module
//! asks the follow-on question ("Scouting the Path to a Million-Client
//! Server"): as identical clients are added behind one shared uplink,
//! where does aggregate throughput saturate, which resource sets the
//! ceiling, and how fairly is it divided?
//!
//! Each client is a whole machine — own CPUs, RAM, RNG seed, NIC, and
//! mount — attached to the server through a [`Switch`] whose uplink runs
//! at the server NIC's rate, so the fleet contends exactly where the
//! paper's hardware would have. Fairness is summarized with Jain's
//! index: `(Σx)² / (n·Σx²)`, 1.0 when every client gets an equal share.

use std::rc::Rc;

use nfsperf_client::{ClientTuning, MountConfig, NfsMount};
use nfsperf_kernel::{CostTable, Kernel, KernelConfig, SimFile};
use nfsperf_net::{LinkDir, Nic, NicSpec, Path, Switch};
use nfsperf_server::{NfsServer, PerClientStats, SchedPolicy, ServerConfig, ServerStats};
use nfsperf_sim::{mbps, runner, Sim, SimDuration};
use nfsperf_sunrpc::Transport;

use crate::render::ascii_table;
use crate::scenario::ServerKind;

/// The scaling sweep's client counts (1 → 32, doubling).
pub const FLEET_CLIENT_COUNTS: &[usize] = &[1, 2, 4, 8, 16, 32];

/// One fleet measurement's parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Server under test.
    pub server: ServerKind,
    /// RPC transport every client mounts over.
    pub transport: Transport,
    /// Number of independent client machines.
    pub clients: usize,
    /// Sequential bytes each client writes (plus a final flush-to-close).
    pub bytes_per_client: u64,
    /// Client tuning (the patched client, by default — the fleet question
    /// assumes the paper's single-client fixes are in).
    pub tuning: ClientTuning,
    /// Each client machine's NIC. Defaults to fast Ethernet: a fleet of
    /// 100bT clients fanning into the server's faster uplink is the
    /// topology where client count is an interesting variable at all —
    /// give every client a NIC as fast as the server's and the first one
    /// saturates the sweep on its own.
    pub client_nic: NicSpec,
    /// Base RNG seed; each client machine derives its own from it.
    pub seed: u64,
    /// Server request scheduling policy (FIFO by default — the fleet
    /// baseline measures the paper's arrival-order servers).
    pub sched: SchedPolicy,
}

impl FleetConfig {
    /// A fleet of patched 100bT clients with the default seed.
    pub fn new(
        server: ServerKind,
        transport: Transport,
        clients: usize,
        bytes_per_client: u64,
    ) -> FleetConfig {
        FleetConfig {
            server,
            transport,
            clients,
            bytes_per_client,
            tuning: ClientTuning::full_patch(),
            client_nic: NicSpec::fast_ethernet(),
            seed: 0x1f5,
            sched: SchedPolicy::Fifo,
        }
    }
}

/// Everything measured in one fleet run.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Client count (echoed from the config).
    pub clients: usize,
    /// Each client's write-through-close throughput, MB/s, in client order.
    pub per_client_mbps: Vec<f64>,
    /// Total bytes over the time the slowest client took, MB/s.
    pub aggregate_mbps: f64,
    /// Jain fairness index of `per_client_mbps`.
    pub jain: f64,
    /// Wall time until the last client closed.
    pub elapsed: SimDuration,
    /// Aggregate server counters.
    pub server_stats: ServerStats,
    /// Per-client server counters, in client order.
    pub per_client_server: Vec<PerClientStats>,
    /// Mean payload throughput on the shared uplink toward the server,
    /// MB/s.
    pub uplink_mbps: f64,
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`; 1.0 = perfectly fair,
/// `1/n` = one client got everything.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// The worst (largest) value of a per-client latency field, in
/// milliseconds — tail reporting follows the slowest client, the one a
/// fleet operator would page on.
fn worst_ms(stats: &[PerClientStats], field: impl Fn(&PerClientStats) -> SimDuration) -> f64 {
    stats
        .iter()
        .map(|c| field(c).as_nanos() as f64 / 1e6)
        .fold(0.0, f64::max)
}

/// Runs one fleet measurement: every client writes `bytes_per_client`
/// sequentially and closes (full flush), all concurrently, through one
/// shared uplink into one server. Deterministic for a given config.
pub fn run_fleet(config: &FleetConfig) -> FleetRun {
    assert!(config.clients > 0, "a fleet needs at least one client");
    let sim = Sim::new();
    // The shared uplink runs at the server NIC's rate: the fleet fights
    // for the same wire the paper's single client had to itself.
    let switch = Switch::new(&sim, config.server.nic_spec(), Path::default_latency());
    let server = NfsServer::new(
        &sim,
        ServerConfig {
            sched: config.sched,
            ..config.server.server_config()
        },
    );

    let mut mounts = Vec::new();
    for i in 0..config.clients {
        let kernel = Kernel::new(
            &sim,
            KernelConfig {
                ncpus: 2,
                ram_bytes: 256 << 20,
                // SplitMix-style spread so per-machine jitter streams are
                // distinct but reproducible.
                seed: config
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                costs: CostTable::default(),
                mem: nfsperf_kernel::MemTuning::default(),
            },
        );
        let (cnic, crx) = Nic::new(&sim, "client", config.client_nic);
        let (to_server, port_rx) = switch.attach(&cnic, config.client_nic);
        match config.transport {
            Transport::Udp => server.attach_udp(port_rx, to_server.reversed()),
            Transport::Tcp => server.attach_tcp(port_rx, to_server.reversed()),
        };
        mounts.push(NfsMount::mount(
            &kernel,
            to_server,
            crx,
            MountConfig {
                tuning: config.tuning,
                transport: config.transport,
                ..MountConfig::default()
            },
        ));
    }

    let bytes = config.bytes_per_client;
    let s2 = sim.clone();
    let (elapsed, per_elapsed) = sim.run_until(async move {
        let t0 = s2.now();
        let workers: Vec<_> = mounts
            .iter()
            .enumerate()
            .map(|(i, mount)| {
                let mount = Rc::clone(mount);
                let s3 = s2.clone();
                s2.spawn(async move {
                    let file = mount
                        .create(&format!("fleet{i}.scratch"))
                        .await
                        .expect("create");
                    let mut off = 0;
                    while off < bytes {
                        let n = 8192.min(bytes - off);
                        file.write(off, n).await.expect("write");
                        off += n;
                    }
                    file.close().await.expect("close");
                    s3.now().since(t0)
                })
            })
            .collect();
        let mut per = Vec::with_capacity(workers.len());
        for w in workers {
            per.push(w.await);
        }
        (s2.now().since(t0), per)
    });

    let per_client_mbps: Vec<f64> = per_elapsed.iter().map(|e| mbps(bytes, *e)).collect();
    FleetRun {
        clients: config.clients,
        jain: jain_index(&per_client_mbps),
        per_client_mbps,
        aggregate_mbps: mbps(bytes * config.clients as u64, elapsed),
        elapsed,
        server_stats: server.stats(),
        per_client_server: server.per_client_stats(),
        uplink_mbps: switch.uplink().throughput_mbps(LinkDir::ToServer),
    }
}

/// One row of the scaling sweep.
#[derive(Debug, Clone)]
pub struct FleetCell {
    /// Server under test.
    pub server: ServerKind,
    /// Mount transport.
    pub transport: Transport,
    /// Client count.
    pub clients: usize,
    /// Aggregate throughput, MB/s.
    pub aggregate_mbps: f64,
    /// Mean per-client throughput, MB/s.
    pub per_client_mean_mbps: f64,
    /// Slowest client's throughput, MB/s.
    pub per_client_min_mbps: f64,
    /// Jain fairness index.
    pub jain: f64,
    /// Worst client's median server-side service latency, ms.
    pub svc_p50_ms: f64,
    /// Worst client's p99 server-side service latency, ms.
    pub svc_p99_ms: f64,
}

/// The full scaling sweep: client counts × servers × transports.
#[derive(Debug, Clone)]
pub struct FleetSweep {
    /// All cells, in (server, transport, clients) order.
    pub rows: Vec<FleetCell>,
    /// Bytes each client wrote.
    pub bytes_per_client: u64,
}

/// Builds the sweep's work-list: one [`runner::Cell`] per
/// `(server, transport, clients)` triple, in sweep order.
pub fn fleet_cells(
    counts: &[usize],
    servers: &[ServerKind],
    transports: &[Transport],
    bytes_per_client: u64,
) -> Vec<runner::Cell<FleetCell>> {
    let mut cells = Vec::new();
    for &server in servers {
        for &transport in transports {
            for &clients in counts {
                cells.push(runner::Cell::new(
                    format!(
                        "fleet/{}/{}/c{}",
                        server.label(),
                        transport.label(),
                        clients
                    ),
                    move || {
                        let run = run_fleet(&FleetConfig::new(
                            server,
                            transport,
                            clients,
                            bytes_per_client,
                        ));
                        let n = run.per_client_mbps.len() as f64;
                        FleetCell {
                            server,
                            transport,
                            clients,
                            aggregate_mbps: run.aggregate_mbps,
                            per_client_mean_mbps: run.per_client_mbps.iter().sum::<f64>() / n,
                            per_client_min_mbps: run
                                .per_client_mbps
                                .iter()
                                .copied()
                                .fold(f64::INFINITY, f64::min),
                            jain: run.jain,
                            svc_p50_ms: worst_ms(&run.per_client_server, |c| c.service.p50),
                            svc_p99_ms: worst_ms(&run.per_client_server, |c| c.service.p99),
                        }
                    },
                ));
            }
        }
    }
    cells
}

/// Runs the sweep on up to `jobs` worker threads. Cells are fully
/// independent worlds, deterministic for a given
/// `(counts, servers, transports, bytes_per_client)` input — the rows
/// (and the CSV) are bit-identical at any `jobs` value.
pub fn fleet_sweep(
    counts: &[usize],
    servers: &[ServerKind],
    transports: &[Transport],
    bytes_per_client: u64,
    jobs: usize,
) -> FleetSweep {
    FleetSweep {
        rows: runner::run_cells(jobs, fleet_cells(counts, servers, transports, bytes_per_client)),
        bytes_per_client,
    }
}

impl FleetSweep {
    /// The `(clients, aggregate MB/s)` curve for one server × transport.
    pub fn series(&self, server: ServerKind, transport: Transport) -> Vec<(usize, f64)> {
        self.rows
            .iter()
            .filter(|r| r.server == server && r.transport == transport)
            .map(|r| (r.clients, r.aggregate_mbps))
            .collect()
    }

    /// The saturation knee of one curve: the largest client count that
    /// still bought ≥ 10% more aggregate throughput — past it, the
    /// ceiling (server or shared link), not client count, bounds the
    /// fleet. `None` if the curve never flattens within the sweep.
    pub fn knee(&self, server: ServerKind, transport: Transport) -> Option<usize> {
        let curve = self.series(server, transport);
        curve
            .windows(2)
            .find(|w| w[1].1 < w[0].1 * 1.10)
            .map(|w| w[0].0)
    }

    /// The sweep as CSV (also what [`FleetSweep::write_csv`] writes).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "server,transport,clients,aggregate_mbps,per_client_mean_mbps,per_client_min_mbps,jain,svc_p50_ms,svc_p99_ms\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3},{:.3},{:.4},{:.3},{:.3}\n",
                r.server.label(),
                r.transport.label(),
                r.clients,
                r.aggregate_mbps,
                r.per_client_mean_mbps,
                r.per_client_min_mbps,
                r.jain,
                r.svc_p50_ms,
                r.svc_p99_ms,
            ));
        }
        out
    }

    /// Writes the CSV to `path`.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Renders an ASCII table plus the per-curve saturation knees.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.server.label().to_owned(),
                    r.transport.label().to_owned(),
                    r.clients.to_string(),
                    format!("{:.1}", r.aggregate_mbps),
                    format!("{:.1}", r.per_client_mean_mbps),
                    format!("{:.1}", r.per_client_min_mbps),
                    format!("{:.3}", r.jain),
                    format!("{:.2}", r.svc_p99_ms),
                ]
            })
            .collect();
        let mut out = ascii_table(
            &[
                "server",
                "transport",
                "clients",
                "aggregate MB/s",
                "mean/client",
                "min/client",
                "jain",
                "svc p99 ms",
            ],
            &rows,
        );
        let mut curves: Vec<(ServerKind, Transport)> = Vec::new();
        for r in &self.rows {
            if !curves.contains(&(r.server, r.transport)) {
                curves.push((r.server, r.transport));
            }
        }
        for (server, transport) in curves {
            match self.knee(server, transport) {
                Some(knee) => out.push_str(&format!(
                    "{} over {}: saturates at {} client(s)\n",
                    server.label(),
                    transport.label(),
                    knee
                )),
                None => out.push_str(&format!(
                    "{} over {}: still scaling at the sweep's edge\n",
                    server.label(),
                    transport.label()
                )),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One client hogging everything: 1/n.
        assert!((jain_index(&[10.0, 0.0]) - 0.5).abs() < 1e-12);
        let skewed = jain_index(&[9.0, 1.0]);
        assert!(skewed > 0.5 && skewed < 1.0);
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let config = FleetConfig::new(ServerKind::Filer, Transport::Udp, 2, 1 << 20);
        let a = run_fleet(&config);
        let b = run_fleet(&config);
        assert_eq!(a.per_client_mbps, b.per_client_mbps);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.server_stats, b.server_stats);
        assert_eq!(a.per_client_server, b.per_client_server);
    }

    #[test]
    fn server_accounts_every_client() {
        let config = FleetConfig::new(ServerKind::Filer, Transport::Udp, 3, 1 << 20);
        let run = run_fleet(&config);
        assert_eq!(run.per_client_server.len(), 3);
        for (i, c) in run.per_client_server.iter().enumerate() {
            assert_eq!(c.write_bytes, 1 << 20, "client {i} bytes all arrived");
            assert!(c.ops > 0 && c.writes > 0);
        }
        let total: u64 = run.per_client_server.iter().map(|c| c.write_bytes).sum();
        assert_eq!(total, run.server_stats.write_bytes);
    }

    #[test]
    fn two_clients_beat_one_and_share_fairly() {
        let one = run_fleet(&FleetConfig::new(ServerKind::Filer, Transport::Udp, 1, 1 << 20));
        let two = run_fleet(&FleetConfig::new(ServerKind::Filer, Transport::Udp, 2, 1 << 20));
        assert!(
            two.aggregate_mbps > one.aggregate_mbps,
            "a second client must add aggregate throughput before the knee: {} vs {}",
            two.aggregate_mbps,
            one.aggregate_mbps
        );
        assert!(
            two.jain >= 0.9,
            "identical clients should share fairly, jain = {}",
            two.jain
        );
    }

    #[test]
    fn fleet_runs_over_tcp() {
        let run = run_fleet(&FleetConfig::new(ServerKind::Filer, Transport::Tcp, 2, 1 << 20));
        assert_eq!(run.per_client_server.len(), 2);
        for c in &run.per_client_server {
            assert_eq!(c.write_bytes, 1 << 20);
        }
        assert!(run.aggregate_mbps > 0.0);
    }

    #[test]
    fn sweep_rows_and_knee_reporting() {
        let sweep = fleet_sweep(&[1, 2], &[ServerKind::Filer], &[Transport::Udp], 1 << 20, 1);
        assert_eq!(sweep.rows.len(), 2);
        let csv = sweep.to_csv();
        assert!(csv.starts_with("server,transport,clients,aggregate_mbps"));
        assert_eq!(csv.lines().count(), 3);
        let rendered = sweep.render();
        assert!(rendered.contains("netapp-filer"));
        // Synthetic knee check on a hand-built sweep.
        let flat = FleetSweep {
            rows: vec![
                FleetCell {
                    server: ServerKind::Filer,
                    transport: Transport::Udp,
                    clients: 1,
                    aggregate_mbps: 30.0,
                    per_client_mean_mbps: 30.0,
                    per_client_min_mbps: 30.0,
                    jain: 1.0,
                    svc_p50_ms: 0.2,
                    svc_p99_ms: 0.5,
                },
                FleetCell {
                    server: ServerKind::Filer,
                    transport: Transport::Udp,
                    clients: 2,
                    aggregate_mbps: 55.0,
                    per_client_mean_mbps: 27.5,
                    per_client_min_mbps: 27.0,
                    jain: 1.0,
                    svc_p50_ms: 0.3,
                    svc_p99_ms: 0.8,
                },
                FleetCell {
                    server: ServerKind::Filer,
                    transport: Transport::Udp,
                    clients: 4,
                    aggregate_mbps: 56.0,
                    per_client_mean_mbps: 14.0,
                    per_client_min_mbps: 13.5,
                    jain: 1.0,
                    svc_p50_ms: 0.6,
                    svc_p99_ms: 1.4,
                },
            ],
            bytes_per_client: 1 << 20,
        };
        assert_eq!(flat.knee(ServerKind::Filer, Transport::Udp), Some(2));
    }
}
