//! Open-loop adversarial arrival processes.
//!
//! The fleet and QoS sweeps drive the server with *closed-loop* clients:
//! each client waits for its previous RPC before issuing the next, so
//! offered load self-limits to what the system absorbs. Production
//! traffic is not so polite. This module generates **open-loop**
//! arrivals — datagrams injected on a schedule that does not slow down
//! when the network backs up — with heavy-tailed (bounded Pareto/Lomax)
//! inter-arrival gaps, the burst-and-lull shape measured in enterprise
//! storage traces. Three canned mixes shape the aggressor side of the
//! [`crate::netqos`] sweep:
//!
//! * **hog-vs-victims** — two greedy sources streaming continuously with
//!   heavy-tailed pacing: the PR 4 hog, moved down to the wire.
//! * **incast** — many sources firing short synchronized bursts (the
//!   partition-aggregate pattern: one logical request fans out, all
//!   responses arrive at once).
//! * **sync-storm** — a few sources blasting long synchronized storms
//!   separated by heavy-tailed quiet spells (periodic checkpoint /
//!   backup traffic).
//!
//! Determinism: gaps come from [`SimRng`] streams seeded from the sweep
//! config, so a given config replays the identical arrival script.

use nfsperf_sim::{SimDuration, SimRng};

/// Bounded Pareto (Lomax) inter-arrival generator.
///
/// Gaps follow `scale * ((1-u)^(-1/alpha) - 1)` with `u` uniform in
/// `[0,1)`: a Lomax distribution with mean `scale / (alpha - 1)` for
/// `alpha > 1`. Smaller `alpha` means a heavier tail — long lulls
/// compensated by tight bursts at the same mean rate. Gaps are clamped
/// at 50x the mean so a single astronomical draw cannot stall a source
/// for the whole measurement.
pub struct OpenLoop {
    rng: SimRng,
    scale_ns: f64,
    alpha: f64,
    max_ns: f64,
}

impl OpenLoop {
    /// A generator with the given mean gap and tail index `alpha` (> 1).
    pub fn new(seed: u64, mean: SimDuration, alpha: f64) -> OpenLoop {
        assert!(alpha > 1.0, "Lomax needs alpha > 1 for a finite mean");
        let mean_ns = mean.0 as f64;
        OpenLoop {
            rng: SimRng::new(seed),
            scale_ns: mean_ns * (alpha - 1.0),
            alpha,
            max_ns: mean_ns * 50.0,
        }
    }

    /// Draws the next inter-arrival gap.
    pub fn next_gap(&mut self) -> SimDuration {
        let u = self.rng.uniform_f64();
        let raw = self.scale_ns * ((1.0 - u).powf(-1.0 / self.alpha) - 1.0);
        SimDuration(raw.min(self.max_ns) as u64)
    }
}

/// The adversarial traffic mixes the netqos sweep drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficMix {
    /// Two greedy continuous streamers, heavy-tailed pacing.
    Hog,
    /// Six sources, short synchronized bursts.
    Incast,
    /// Four sources, long synchronized storms, heaviest tail.
    Storm,
}

impl TrafficMix {
    /// Every mix, in sweep order.
    pub const ALL: [TrafficMix; 3] = [TrafficMix::Hog, TrafficMix::Incast, TrafficMix::Storm];

    /// CSV / CLI label.
    pub fn label(self) -> &'static str {
        match self {
            TrafficMix::Hog => "hog",
            TrafficMix::Incast => "incast",
            TrafficMix::Storm => "storm",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Option<TrafficMix> {
        match s {
            "hog" => Some(TrafficMix::Hog),
            "incast" => Some(TrafficMix::Incast),
            "storm" => Some(TrafficMix::Storm),
            _ => None,
        }
    }

    /// Number of aggressor sources.
    pub fn aggressors(self) -> usize {
        match self {
            TrafficMix::Hog => 2,
            TrafficMix::Incast => 6,
            TrafficMix::Storm => 4,
        }
    }

    /// Frames fired back-to-back per arrival epoch.
    pub fn burst_frames(self) -> usize {
        match self {
            TrafficMix::Hog => 1,
            TrafficMix::Incast => 16,
            TrafficMix::Storm => 64,
        }
    }

    /// Lomax tail index for the epoch gaps.
    pub fn alpha(self) -> f64 {
        match self {
            TrafficMix::Hog => 1.4,
            TrafficMix::Incast => 2.0,
            TrafficMix::Storm => 1.3,
        }
    }

    /// Offered load as a multiple of the bottleneck link's rate, summed
    /// over all sources — every mix oversubscribes the port.
    pub fn offered_factor(self) -> f64 {
        match self {
            TrafficMix::Hog => 2.0,
            TrafficMix::Incast => 2.0,
            TrafficMix::Storm => 3.0,
        }
    }

    /// Whether sources share one gap stream (bursts coincide) or each
    /// paces independently.
    pub fn synchronized(self) -> bool {
        !matches!(self, TrafficMix::Hog)
    }

    /// Mean gap between a single source's arrival epochs such that the
    /// mix's total offered load is `offered_factor` times a bottleneck
    /// draining `bottleneck_bytes_per_sec`, with `frame_bytes` payload
    /// per frame.
    pub fn mean_epoch_gap(self, frame_bytes: usize, bottleneck_bytes_per_sec: u64) -> SimDuration {
        let per_epoch = (self.aggressors() * self.burst_frames() * frame_bytes) as f64;
        let ns = per_epoch * 1e9 / (self.offered_factor() * bottleneck_bytes_per_sec as f64);
        SimDuration(ns as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_are_nonnegative_bounded_and_deterministic() {
        let mean = SimDuration::from_micros(500);
        let mut a = OpenLoop::new(42, mean, 1.4);
        let mut b = OpenLoop::new(42, mean, 1.4);
        for _ in 0..10_000 {
            let g = a.next_gap();
            assert_eq!(g, b.next_gap());
            assert!(g.0 <= mean.0 * 50);
        }
    }

    #[test]
    fn mean_gap_lands_near_the_configured_mean() {
        let mean = SimDuration::from_micros(500);
        for alpha in [1.3, 1.4, 2.0, 3.0] {
            let mut g = OpenLoop::new(7, mean, alpha);
            let n = 200_000u64;
            let total: u64 = (0..n).map(|_| g.next_gap().0).sum();
            let got = total as f64 / n as f64;
            let want = mean.0 as f64;
            // The 50x clamp shaves a little mass off the heaviest tails.
            assert!(
                got > want * 0.75 && got < want * 1.1,
                "alpha {alpha}: mean gap {got:.0} ns vs configured {want:.0} ns"
            );
        }
    }

    #[test]
    fn heavier_tails_produce_more_extreme_gaps_at_the_same_mean() {
        let mean = SimDuration::from_micros(500);
        // Count gaps past 30x the mean: Lomax(1.3) puts roughly ten
        // times the mass out there that Lomax(3.0) does.
        let tail_of = |alpha: f64| {
            let mut g = OpenLoop::new(11, mean, alpha);
            (0..50_000).filter(|_| g.next_gap().0 > mean.0 * 30).count()
        };
        assert!(tail_of(1.3) > 4 * tail_of(3.0));
    }

    #[test]
    fn mix_tables_are_consistent() {
        for mix in TrafficMix::ALL {
            assert_eq!(TrafficMix::parse(mix.label()), Some(mix));
            assert!(mix.aggressors() > 0 && mix.burst_frames() > 0);
            assert!(mix.alpha() > 1.0 && mix.offered_factor() > 1.0);
        }
        assert_eq!(TrafficMix::parse("nope"), None);
        // Offered-load arithmetic: gap such that rate = factor x link.
        let gap = TrafficMix::Hog.mean_epoch_gap(8192, 26_000_000);
        let rate = 2.0 * 8192.0 * 1e9 / gap.0 as f64;
        let want = 2.0 * 26_000_000.0;
        assert!((rate - want).abs() / want < 0.01);
    }
}
