//! Rendering helpers: CSV files, ASCII tables and quick line plots for
//! the figure runners.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One named data series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            name: name.into(),
            points,
        }
    }

    /// The y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }

    /// Largest y value (0 when empty).
    pub fn y_max(&self) -> f64 {
        self.points.iter().map(|(_, y)| *y).fold(0.0, f64::max)
    }
}

/// A figure: several series over a common x axis.
#[derive(Debug, Clone, Default)]
pub struct Sweep {
    /// The series, in legend order.
    pub series: Vec<Series>,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
}

impl Sweep {
    /// Renders the sweep as CSV: `x, <series 1>, <series 2>, ...`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", csv_escape(&self.x_label));
        for s in &self.series {
            let _ = write!(out, ",{}", csv_escape(&s.name));
        }
        out.push('\n');
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        for x in xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, ",{y:.3}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `path`.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// A quick fixed-width ASCII chart of all series (one symbol each).
    pub fn ascii_plot(&self, width: usize, height: usize) -> String {
        const SYMBOLS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut y_max = 0.0f64;
        for s in &self.series {
            for &(x, y) in &s.points {
                x_min = x_min.min(x);
                x_max = x_max.max(x);
                y_max = y_max.max(y);
            }
        }
        if !x_min.is_finite() || y_max <= 0.0 {
            return String::from("(empty plot)\n");
        }
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let sym = SYMBOLS[si % SYMBOLS.len()];
            for &(x, y) in &s.points {
                let xi = if x_max > x_min {
                    ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize
                } else {
                    0
                };
                let yi = (y / y_max * (height - 1) as f64).round() as usize;
                grid[height - 1 - yi.min(height - 1)][xi.min(width - 1)] = sym;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} (max {y_max:.1})", self.y_label);
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        let _ = writeln!(out, "+{}", "-".repeat(width));
        let _ = writeln!(out, " {} [{x_min:.0} .. {x_max:.0}]", self.x_label);
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "   {} = {}", SYMBOLS[si % SYMBOLS.len()], s.name);
        }
        out
    }
}

/// Escapes a CSV field (quotes when it contains separators).
fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Renders rows as a padded ASCII table.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+-{}-", "-".repeat(*w));
        }
        out.push_str("+\n");
    };
    line(&mut out);
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {:w$} ", h, w = widths[i]);
    }
    out.push_str("|\n");
    line(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "| {:w$} ", cell, w = widths[i]);
        }
        out.push_str("|\n");
    }
    line(&mut out);
    out
}

/// Writes arbitrary CSV rows (headers plus stringified cells) to `path`.
pub fn write_rows_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| csv_escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Sweep {
        Sweep {
            series: vec![
                Series::new("a", vec![(1.0, 10.0), (2.0, 20.0)]),
                Series::new("b", vec![(1.0, 5.0), (3.0, 15.0)]),
            ],
            x_label: "x".into(),
            y_label: "y".into(),
        }
    }

    #[test]
    fn csv_includes_all_xs_and_gaps() {
        let csv = sweep().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10.000,5.000");
        assert_eq!(lines[2], "2,20.000,");
        assert_eq!(lines[3], "3,,15.000");
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn series_helpers() {
        let s = Series::new("s", vec![(1.0, 3.0), (2.0, 9.0)]);
        assert_eq!(s.y_at(2.0), Some(9.0));
        assert_eq!(s.y_at(5.0), None);
        assert_eq!(s.y_max(), 9.0);
    }

    #[test]
    fn ascii_plot_renders() {
        let plot = sweep().ascii_plot(20, 5);
        assert!(plot.contains('*'));
        assert!(plot.contains("a"));
        assert!(plot.contains("+--------------------"));
    }

    #[test]
    fn ascii_plot_empty() {
        let empty = Sweep::default();
        assert_eq!(empty.ascii_plot(10, 5), "(empty plot)\n");
    }

    #[test]
    fn ascii_table_pads() {
        let t = ascii_table(
            &["name", "v"],
            &[
                vec!["filer".into(), "115".into()],
                vec!["linux".into(), "138".into()],
            ],
        );
        assert!(t.contains("| name  | v   |"));
        assert!(t.contains("| filer | 115 |"));
    }

    #[test]
    fn write_files() {
        let dir = std::env::temp_dir().join("nfsperf-render-test");
        let p = dir.join("t.csv");
        sweep().write_csv(&p).unwrap();
        let body = std::fs::read_to_string(&p).unwrap();
        assert!(body.starts_with("x,a,b"));
        write_rows_csv(&p, &["h"], &[vec!["1".into()]]).unwrap();
        let body = std::fs::read_to_string(&p).unwrap();
        assert_eq!(body, "h\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
