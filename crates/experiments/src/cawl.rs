//! CAWL regime sweep: client RAM × server speed × file size.
//!
//! The paper's Figures 1 and 7 show one slice of a bigger phase diagram:
//! application-observed write throughput is bimodal in how the benchmark
//! file compares to client memory. Below the dirty ratio (7/8 of RAM by
//! default) writes land in the page cache at memory speed and the server
//! only matters through reply processing; past it the writer is throttled
//! against writeback and throughput collapses to server speed. This
//! module sweeps all three axes — RAM {64 MB, 256 MB, 1 GB}, server
//! {filer, knfsd, fast prototype}, file size {½×, 1×, 2×, 4× RAM} —
//! under the [`ClientTuning::cawl`] client (full patch + foreground
//! throttling) and marks each cell's regime, reproducing the CAWL
//! cache-fit vs writeback-bound split with the knee at the dirty-ratio
//! boundary. It also re-tests the paper's counter-intuitive "faster
//! server, slower client" result in the cache-fit column.

use nfsperf_client::ClientTuning;
use nfsperf_sim::runner;

use crate::render::ascii_table;
use crate::scenario::{run_bonnie, Scenario, ServerKind};

/// RAM sizes for the full sweep.
pub const CAWL_RAM_SIZES: [u64; 3] = [64 << 20, 256 << 20, 1 << 30];

/// RAM sizes for the quick smoke sweep.
pub const CAWL_QUICK_RAM_SIZES: [u64; 1] = [16 << 20];

/// Servers for the full sweep.
pub const CAWL_SERVERS: [ServerKind; 3] =
    [ServerKind::Filer, ServerKind::Knfsd, ServerKind::Fast];

/// Servers for the quick smoke sweep.
pub const CAWL_QUICK_SERVERS: [ServerKind; 2] = [ServerKind::Filer, ServerKind::Fast];

/// File sizes as multiples of RAM, in halves: ½×, 1×, 2×, 4×.
pub const CAWL_FILE_HALVES: [u64; 4] = [1, 2, 4, 8];

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct CawlCell {
    /// Client RAM in bytes.
    pub ram_bytes: u64,
    /// Server under test.
    pub server: ServerKind,
    /// File size in units of RAM/2 (1 = ½×, 8 = 4×).
    pub file_halves: u64,
    /// Application-observed write-phase throughput, MB/s.
    pub app_mbps: f64,
    /// Throughput through the final flush, MB/s.
    pub flush_mbps: f64,
    /// Times a writer hit the dirty ratio.
    pub throttle_events: u64,
    /// Total time writers spent throttled, milliseconds.
    pub throttle_ms: f64,
    /// Peak pinned pages.
    pub peak_dirty_pages: usize,
    /// The client's dirty-page hard limit, in pages.
    pub hard_limit_pages: usize,
}

impl CawlCell {
    /// The file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.ram_bytes / 2 * self.file_halves
    }

    /// File size over RAM as a ratio (0.5, 1, 2, 4).
    pub fn file_over_ram(&self) -> f64 {
        self.file_halves as f64 / 2.0
    }

    /// Regime marker. A cell that throttled is writeback-bound: the
    /// writer pinned at the hard limit and collapsed to server speed. A
    /// cell whose whole file fits under the dirty ratio is cache-fit by
    /// construction. The remaining case — file bigger than the ratio
    /// but zero throttles — means concurrent background writeback
    /// drained fast enough that the writer never reached the limit
    /// (a fast server erases the knee entirely).
    pub fn regime(&self) -> &'static str {
        if self.throttle_events > 0 {
            "writeback-bound"
        } else if self.file_bytes() <= self.hard_limit_pages as u64 * nfsperf_kernel::PAGE_SIZE {
            "cache-fit"
        } else {
            "drain-keeps-up"
        }
    }
}

/// Runs one cell: a Bonnie sequential write of `file_halves × RAM/2`
/// bytes on a `ram_bytes` client against `server`, under the CAWL
/// client tuning. Deterministic for a given input.
pub fn run_cawl(ram_bytes: u64, server: ServerKind, file_halves: u64, seed: u64) -> CawlCell {
    let mut scenario = Scenario::new(ClientTuning::cawl(), server);
    scenario.ram_bytes = ram_bytes;
    scenario.seed = seed;
    scenario.record_latencies = false;
    let out = run_bonnie(&scenario, ram_bytes / 2 * file_halves);
    CawlCell {
        ram_bytes,
        server,
        file_halves,
        app_mbps: out.report.write_mbps(),
        flush_mbps: out.report.flush_mbps(),
        throttle_events: out.throttle_events,
        throttle_ms: out.throttle_time.as_nanos() as f64 / 1e6,
        peak_dirty_pages: out.peak_dirty_pages,
        hard_limit_pages: out.hard_limit_pages,
    }
}

/// Builds the work-list: one independent world per RAM × server × file
/// size, each deriving its own seed, in row order.
pub fn cawl_cells(
    rams: &[u64],
    servers: &[ServerKind],
    seed: u64,
) -> Vec<runner::Cell<CawlCell>> {
    let mut cells = Vec::new();
    let mut i = 0u64;
    for &ram in rams {
        for &server in servers {
            for &halves in &CAWL_FILE_HALVES {
                // SplitMix-style spread so per-cell jitter streams are
                // distinct but reproducible.
                let cell_seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1));
                i += 1;
                cells.push(runner::Cell::new(
                    format!(
                        "cawl/{}M/{}/{}x",
                        ram >> 20,
                        server.label(),
                        halves as f64 / 2.0
                    ),
                    move || run_cawl(ram, server, halves, cell_seed),
                ));
            }
        }
    }
    cells
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct CawlSweep {
    /// All cells in RAM × server × file-size order.
    pub rows: Vec<CawlCell>,
}

/// Runs the sweep on up to `jobs` worker threads. Cells are independent
/// worlds, deterministic for a given input — rows (and the CSV) are
/// bit-identical at any `jobs` value.
pub fn cawl_sweep(rams: &[u64], servers: &[ServerKind], jobs: usize) -> CawlSweep {
    CawlSweep {
        rows: runner::run_cells(jobs, cawl_cells(rams, servers, 0xCA31)),
    }
}

impl CawlSweep {
    /// The sweep as CSV (also what [`CawlSweep::write_csv`] writes).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "ram_mb,server,file_mb,file_over_ram,app_mbps,flush_mbps,\
             throttle_events,throttle_ms,peak_dirty_pages,hard_limit_pages,regime\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.1},{:.3},{:.3},{},{:.3},{},{},{}\n",
                r.ram_bytes >> 20,
                r.server.label(),
                r.file_bytes() >> 20,
                r.file_over_ram(),
                r.app_mbps,
                r.flush_mbps,
                r.throttle_events,
                r.throttle_ms,
                r.peak_dirty_pages,
                r.hard_limit_pages,
                r.regime(),
            ));
        }
        out
    }

    /// Writes the CSV to `path`.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Renders an ASCII table plus regime-knee and faster-server
    /// verdicts.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.ram_bytes >> 20),
                    r.server.label().to_owned(),
                    format!("{:.1}x", r.file_over_ram()),
                    format!("{:.2}", r.app_mbps),
                    format!("{:.2}", r.flush_mbps),
                    format!("{}", r.throttle_events),
                    format!("{:.1}", r.throttle_ms),
                    r.regime().to_owned(),
                ]
            })
            .collect();
        let mut out = ascii_table(
            &[
                "RAM MB",
                "server",
                "file/RAM",
                "app MB/s",
                "flush MB/s",
                "throttles",
                "throttle ms",
                "regime",
            ],
            &rows,
        );
        // Knee check: files under the dirty ratio (the ½× column) never
        // throttle, and a cell that does throttle pinned exactly at the
        // hard limit — the knee sits at the dirty-ratio boundary.
        let half_fit = self
            .rows
            .iter()
            .filter(|r| r.file_halves == 1)
            .all(|r| r.regime() == "cache-fit");
        let pinned_at_knee = self
            .rows
            .iter()
            .filter(|r| r.throttle_events > 0)
            .all(|r| r.peak_dirty_pages == r.hard_limit_pages);
        out.push_str(&format!(
            "knee at the dirty ratio: 0.5x cells cache-fit: {half_fit}; \
             throttled cells peak exactly at the hard limit: {pinned_at_knee}\n"
        ));
        // Where each server's knee shows up (first file multiple that
        // throttles), per RAM size.
        for &ram in &unique_rams(&self.rows) {
            for server in unique_servers(&self.rows) {
                let first = self
                    .rows
                    .iter()
                    .filter(|r| r.ram_bytes == ram && r.server == server)
                    .find(|r| r.throttle_events > 0);
                match first {
                    Some(r) => out.push_str(&format!(
                        "{}M {}: writeback-bound from {:.1}x RAM\n",
                        ram >> 20,
                        server.label(),
                        r.file_over_ram()
                    )),
                    None => out.push_str(&format!(
                        "{}M {}: drain keeps up at every file size (no knee)\n",
                        ram >> 20,
                        server.label()
                    )),
                }
            }
        }
        // The paper's "faster server, slower client": in the cache-fit
        // column the server only matters through reply processing, so a
        // faster server can cost the writer CPU.
        for &ram in &unique_rams(&self.rows) {
            let fit: Vec<&CawlCell> = self
                .rows
                .iter()
                .filter(|r| r.ram_bytes == ram && r.file_halves == 1)
                .collect();
            if fit.len() < 2 {
                continue;
            }
            let fastest_server = fit
                .iter()
                .max_by(|a, b| a.flush_mbps.total_cmp(&b.flush_mbps))
                .unwrap();
            let best_app = fit
                .iter()
                .max_by(|a, b| a.app_mbps.total_cmp(&b.app_mbps))
                .unwrap();
            out.push_str(&format!(
                "{}M cache-fit: best app rate on {} ({:.1} MB/s); fastest flusher {} \
                 ({:.1} MB/s app)\n",
                ram >> 20,
                best_app.server.label(),
                best_app.app_mbps,
                fastest_server.server.label(),
                fastest_server.app_mbps,
            ));
        }
        out
    }
}

/// The distinct RAM sizes present, in row order.
fn unique_rams(rows: &[CawlCell]) -> Vec<u64> {
    let mut rams = Vec::new();
    for r in rows {
        if !rams.contains(&r.ram_bytes) {
            rams.push(r.ram_bytes);
        }
    }
    rams
}

/// The distinct servers present, in row order.
fn unique_servers(rows: &[CawlCell]) -> Vec<ServerKind> {
    let mut servers = Vec::new();
    for r in rows {
        if !servers.contains(&r.server) {
            servers.push(r.server);
        }
    }
    servers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_geometry() {
        let cells = cawl_cells(&CAWL_QUICK_RAM_SIZES, &CAWL_QUICK_SERVERS, 1);
        assert_eq!(cells.len(), 2 * 4);
    }

    #[test]
    fn file_size_arithmetic() {
        let c = CawlCell {
            ram_bytes: 256 << 20,
            server: ServerKind::Filer,
            file_halves: 8,
            app_mbps: 0.0,
            flush_mbps: 0.0,
            throttle_events: 0,
            throttle_ms: 0.0,
            peak_dirty_pages: 0,
            hard_limit_pages: 0,
        };
        assert_eq!(c.file_bytes(), 1 << 30);
        assert_eq!(c.file_over_ram(), 4.0);
        assert_eq!(c.regime(), "drain-keeps-up");
        let fits = CawlCell {
            file_halves: 1,
            hard_limit_pages: 57_344,
            ..c.clone()
        };
        assert_eq!(fits.regime(), "cache-fit");
        let bound = CawlCell {
            throttle_events: 9,
            ..c.clone()
        };
        assert_eq!(bound.regime(), "writeback-bound");
    }
}
