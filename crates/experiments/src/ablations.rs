//! Ablations beyond the paper's exhibits: parameter sweeps over the
//! design choices DESIGN.md calls out.

use nfsperf_client::ClientTuning;
use nfsperf_server::BackendConfig;

use crate::render::{Series, Sweep};
use crate::scenario::{run_bonnie, write_throughput_mbps, Scenario, ServerKind};

/// Sweeps `MAX_REQUEST_SOFT`: how the stock flush limit trades spike
/// magnitude against spike frequency. Returns `(limit, write MB/s,
/// spikes)` per point.
pub fn soft_limit_sweep(limits: &[usize]) -> Vec<(usize, f64, usize)> {
    let size = 10 << 20;
    limits
        .iter()
        .map(|&limit| {
            let mut scenario = Scenario::new(ClientTuning::linux_2_4_4(), ServerKind::Filer);
            scenario.mount.soft_limit = limit;
            scenario.mount.hard_limit = limit.max(256) * 2;
            let out = run_bonnie(&scenario, size);
            let spikes = out.report.spikes(nfsperf_sim::SimDuration::from_millis(1));
            (limit, out.report.write_mbps(), spikes)
        })
        .collect()
}

/// Sweeps the RPC slot-table size with the patched client against the
/// filer: more slots feed the server harder but expose more reply work.
pub fn slot_table_sweep(slots: &[usize]) -> Sweep {
    let size = 10 << 20;
    let mut flush_points = Vec::new();
    let mut write_points = Vec::new();
    for &n in slots {
        let mut scenario = Scenario::new(ClientTuning::full_patch(), ServerKind::Filer);
        scenario.mount.slots = n;
        scenario.record_latencies = false;
        let out = run_bonnie(&scenario, size);
        write_points.push((n as f64, out.report.write_mbps()));
        flush_points.push((n as f64, out.report.flush_mbps()));
    }
    Sweep {
        series: vec![
            Series::new("write throughput", write_points),
            Series::new("through flush", flush_points),
        ],
        x_label: "RPC slot table size".into(),
        y_label: "throughput (MB/s)".into(),
    }
}

/// Jumbo-frame ablation (the paper's future work): write throughput and
/// fragment counts at MTU 1500 vs 9000.
pub struct MtuAblation {
    /// Write throughput at MTU 1500, MB/s.
    pub standard_mbps: f64,
    /// Write throughput at MTU 9000, MB/s.
    pub jumbo_mbps: f64,
    /// Fragments per WRITE RPC at MTU 1500.
    pub standard_frags_per_rpc: f64,
    /// Fragments per WRITE RPC at MTU 9000.
    pub jumbo_frags_per_rpc: f64,
}

/// Runs the MTU ablation (flush-bound 20 MB run against the filer).
pub fn mtu_ablation() -> MtuAblation {
    let size = 20 << 20;
    let mut standard = Scenario::new(ClientTuning::full_patch(), ServerKind::Filer);
    standard.record_latencies = false;
    let mut jumbo = standard.clone().with_jumbo_frames();
    jumbo.record_latencies = false;
    let s = run_bonnie(&standard, size);
    let j = run_bonnie(&jumbo, size);
    MtuAblation {
        standard_mbps: s.report.write_mbps(),
        jumbo_mbps: j.report.write_mbps(),
        standard_frags_per_rpc: s.fragments_sent as f64 / s.xprt_stats.calls.max(1) as f64,
        jumbo_frags_per_rpc: j.fragments_sent as f64 / j.xprt_stats.calls.max(1) as f64,
    }
}

/// Sweeps the filer's NVRAM size: how far past client RAM the high
/// throughput plateau of Figure 7 extends. File size fixed at 300 MB
/// (just past the client's 256 MB).
pub fn nvram_sweep(capacities: &[u64]) -> Vec<(u64, f64)> {
    let size = 300 << 20;
    capacities
        .iter()
        .map(|&cap| {
            let mut scenario = Scenario::new(ClientTuning::full_patch(), ServerKind::Filer);
            scenario.record_latencies = false;
            if let BackendConfig::Filer {
                ref mut nvram_capacity,
                ..
            } = scenario.server_config.backend
            {
                *nvram_capacity = cap;
            }
            (cap, write_throughput_mbps(&scenario, size))
        })
        .collect()
}

/// One versus two client CPUs under the lock-holding RPC layer: SMP is
/// where the BKL contention bites (paper §3.5).
pub struct CpuAblation {
    /// Memory write throughput on one CPU, MB/s.
    pub one_cpu_mbps: f64,
    /// On two CPUs.
    pub two_cpu_mbps: f64,
    /// Writer lock wait per call on one CPU, ns.
    pub one_cpu_wait_ns: u64,
    /// On two CPUs.
    pub two_cpu_wait_ns: u64,
}

/// Runs the CPU-count ablation (5 MB against the filer, BKL held).
pub fn cpu_ablation() -> CpuAblation {
    let size = 5 << 20;
    let run = |ncpus: usize| {
        let mut scenario = Scenario::new(ClientTuning::hash_table(), ServerKind::Filer);
        scenario.ncpus = ncpus;
        scenario.record_latencies = false;
        let out = run_bonnie(&scenario, size);
        let calls = (size / 8192).max(1);
        (
            out.report.write_mbps(),
            out.lock_stats.total_wait.as_nanos() / calls,
        )
    };
    let (one_mbps, one_wait) = run(1);
    let (two_mbps, two_wait) = run(2);
    CpuAblation {
        one_cpu_mbps: one_mbps,
        two_cpu_mbps: two_mbps,
        one_cpu_wait_ns: one_wait,
        two_cpu_wait_ns: two_wait,
    }
}

/// Sweeps the COMMIT threshold against the Linux server: too eager and
/// the disk seeks constantly; too lazy and memory stays pinned.
pub fn commit_threshold_sweep(thresholds: &[u64]) -> Vec<(u64, f64)> {
    let size = 20 << 20;
    thresholds
        .iter()
        .map(|&t| {
            let mut scenario = Scenario::new(ClientTuning::full_patch(), ServerKind::Knfsd);
            scenario.mount.commit_threshold = t;
            scenario.record_latencies = false;
            let out = run_bonnie(&scenario, size);
            (t, out.report.flush_mbps())
        })
        .collect()
}

/// Sweeps the mount's `wsize`: larger transfers amortise the per-RPC
/// `sock_sendmsg` cost (fewer, bigger datagrams) at the price of more
/// fragments per datagram.
pub fn wsize_sweep(wsizes: &[u32]) -> Vec<(u32, f64, f64)> {
    let size = 20 << 20;
    wsizes
        .iter()
        .map(|&w| {
            let mut scenario = Scenario::new(ClientTuning::full_patch(), ServerKind::Filer);
            scenario.mount.wsize = w;
            scenario.record_latencies = false;
            let out = run_bonnie(&scenario, size);
            (w, out.report.write_mbps(), out.report.flush_mbps())
        })
        .collect()
}

/// Compares the sequential and random-offset workloads across the two
/// request indexes: random writes rewrite pages, exercising the merge
/// path, and the sorted list hurts in both patterns.
pub struct WorkloadComparison {
    /// Mean write() latency, sequential workload, sorted list.
    pub seq_list_us: f64,
    /// Sequential, hash table.
    pub seq_hash_us: f64,
    /// Random offsets, sorted list.
    pub rand_list_us: f64,
    /// Random offsets, hash table.
    pub rand_hash_us: f64,
}

/// Runs the workload-pattern comparison (16 MB of writes over a 32 MB
/// region for the random case).
pub fn workload_comparison() -> WorkloadComparison {
    use nfsperf_bonnie::RandomConfig;

    let seq = |tuning: ClientTuning| {
        let mut s = Scenario::new(tuning, ServerKind::Filer);
        s.record_latencies = true;
        let out = run_bonnie(&s, 16 << 20);
        out.report.mean_latency().as_micros_f64()
    };
    let rand = |tuning: ClientTuning| {
        let scenario = Scenario::new(tuning, ServerKind::Filer);
        let out = crate::scenario::run_custom(&scenario, move |sim, file| async move {
            let config = RandomConfig::new(32 << 20, 16 << 20);
            nfsperf_bonnie::run_random(&sim, &file, &config).await
        });
        out.mean_latency().as_micros_f64()
    };
    WorkloadComparison {
        seq_list_us: seq(ClientTuning::no_flush()),
        seq_hash_us: seq(ClientTuning::hash_table()),
        rand_list_us: rand(ClientTuning::no_flush()),
        rand_hash_us: rand(ClientTuning::hash_table()),
    }
}
