//! UDP-versus-TCP transport ablation under packet loss.
//!
//! The paper's testbed ran NFS over UDP on a clean gigabit link, where
//! RPC-layer retransmission is nearly free. This sweep asks what that
//! choice costs when the link is *not* clean: each lost datagram over UDP
//! stalls a whole RPC until the 700 ms retransmit timer fires (and a
//! jumbo-frame write loses 9 KB per drop), while TCP recovers at segment
//! granularity with fast retransmit and a sub-second adaptive RTO.
//!
//! Three mounts — UDP, UDP with jumbo frames, TCP — run the same
//! write-then-flush workload at loss rates from 0 to 5%. At zero loss the
//! transports should be within a rounding error of each other (same CPU
//! costs, same BKL structure); as loss rises UDP's throughput collapses
//! and TCP's degrades gracefully.

use nfsperf_client::ClientTuning;
use nfsperf_sim::runner;
use nfsperf_sunrpc::Transport;

use crate::render::ascii_table;
use crate::scenario::{run_bonnie, RunOutput, Scenario, ServerKind};

/// Loss rates swept by [`transport_sweep`]'s callers: clean link, one in a
/// thousand, one in a hundred, one in twenty.
pub const LOSS_RATES: &[f64] = &[0.0, 0.001, 0.01, 0.05];

/// One (mount flavour, loss rate) cell of the sweep.
#[derive(Debug, Clone)]
pub struct TransportRow {
    /// Mount flavour: "udp", "udp+jumbo" or "tcp".
    pub label: &'static str,
    /// Client-side datagram loss probability.
    pub loss: f64,
    /// Sequential write throughput (dirtying pages, mostly async).
    pub write_mbps: f64,
    /// Flush throughput — the loss-sensitive number: every lost request
    /// or reply stalls completion.
    pub flush_mbps: f64,
    /// RPC-layer retransmissions (UDP timer fires; TCP connection replays).
    pub rpc_retransmits: u64,
    /// Datagrams dropped by the client NIC.
    pub drops: u64,
    /// TCP segment-level retransmissions (0 for UDP mounts).
    pub tcp_retransmits: u64,
    /// TCP fast retransmits out of those (triple duplicate ACK).
    pub tcp_fast_retransmits: u64,
}

/// The full sweep: one row per mount flavour per loss rate.
#[derive(Debug, Clone)]
pub struct TransportSweep {
    /// Rows grouped by flavour, loss ascending within each.
    pub rows: Vec<TransportRow>,
    /// Bytes written per run.
    pub file_size: u64,
}

/// The three mount flavours compared.
fn flavours() -> Vec<(&'static str, Scenario)> {
    let base = |transport| {
        let mut s = Scenario::new(ClientTuning::full_patch(), ServerKind::Filer)
            .with_transport(transport);
        s.record_latencies = false;
        s
    };
    vec![
        ("udp", base(Transport::Udp)),
        ("udp+jumbo", base(Transport::Udp).with_jumbo_frames()),
        ("tcp", base(Transport::Tcp)),
    ]
}

fn row(label: &'static str, loss: f64, out: &RunOutput) -> TransportRow {
    TransportRow {
        label,
        loss,
        write_mbps: out.report.write_mbps(),
        flush_mbps: out.report.flush_mbps(),
        rpc_retransmits: out.xprt_stats.retransmits,
        drops: out.client_drops,
        tcp_retransmits: out.tcp_stats.map_or(0, |t| t.retransmits),
        tcp_fast_retransmits: out.tcp_stats.map_or(0, |t| t.fast_retransmits),
    }
}

/// Builds the matrix's work-list: one [`runner::Cell`] per
/// `(flavour, loss)` pair, flavour-major like the rendered table.
pub fn transport_cells(file_size: u64, loss_rates: &[f64]) -> Vec<runner::Cell<TransportRow>> {
    let mut cells = Vec::new();
    for (label, scenario) in flavours() {
        for &loss in loss_rates {
            let scenario = scenario.clone();
            cells.push(runner::Cell::new(
                format!("transport/{label}/loss{loss}"),
                move || {
                    let out = run_bonnie(&scenario.with_loss(loss), file_size);
                    row(label, loss, &out)
                },
            ));
        }
    }
    cells
}

/// Runs the matrix on up to `jobs` worker threads: each flavour at each
/// loss rate, writing `file_size` bytes then flushing. Deterministic for
/// a fixed scenario seed at any `jobs` value.
pub fn transport_sweep(file_size: u64, loss_rates: &[f64], jobs: usize) -> TransportSweep {
    TransportSweep {
        rows: runner::run_cells(jobs, transport_cells(file_size, loss_rates)),
        file_size,
    }
}

impl TransportSweep {
    /// The row for a given flavour and loss rate, if present.
    pub fn cell(&self, label: &str, loss: f64) -> Option<&TransportRow> {
        self.rows
            .iter()
            .find(|r| r.label == label && r.loss == loss)
    }

    /// Renders the matrix as an ASCII table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    format!("{:.2}%", r.loss * 100.0),
                    format!("{:.1}", r.write_mbps),
                    format!("{:.1}", r.flush_mbps),
                    r.drops.to_string(),
                    r.rpc_retransmits.to_string(),
                    r.tcp_retransmits.to_string(),
                    r.tcp_fast_retransmits.to_string(),
                ]
            })
            .collect();
        ascii_table(
            &[
                "transport",
                "loss",
                "write MB/s",
                "flush MB/s",
                "drops",
                "rpc rexmit",
                "tcp rexmit",
                "fast rexmit",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_matrix() {
        let sweep = transport_sweep(1 << 20, &[0.0, 0.01], 1);
        assert_eq!(sweep.rows.len(), 6);
        for label in ["udp", "udp+jumbo", "tcp"] {
            for loss in [0.0, 0.01] {
                let r = sweep.cell(label, loss).expect("cell present");
                assert!(r.write_mbps > 0.0, "{label} at {loss} wrote nothing");
            }
        }
    }

    #[test]
    fn clean_link_never_drops_or_retransmits() {
        let sweep = transport_sweep(1 << 20, &[0.0], 1);
        for r in &sweep.rows {
            assert_eq!(r.drops, 0, "{}: drops on clean link", r.label);
            assert_eq!(r.rpc_retransmits, 0, "{}: rpc rexmit", r.label);
            assert_eq!(r.tcp_retransmits, 0, "{}: tcp rexmit", r.label);
        }
    }

    #[test]
    fn render_mentions_every_flavour() {
        let sweep = transport_sweep(1 << 20, &[0.0], 1);
        let table = sweep.render();
        assert!(table.contains("udp+jumbo"));
        assert!(table.contains("tcp"));
        assert!(table.contains("flush MB/s"));
    }
}
