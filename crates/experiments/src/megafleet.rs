//! Megafleet: 10k–1M flyweight clients plus an embedded faithful core.
//!
//! The fleet sweep ([`crate::fleet`]) answers "where does one server
//! saturate" for tens of full-fidelity clients. This module asks the
//! million-client version of the same question using the flyweight tier
//! (`nfsperf-fleet`): each cell calibrates a behavioral model from one
//! faithful probe against the target server, embeds a handful of real
//! clients among the flyweights for fidelity, and drives everything
//! through a two-tier switch fabric ([`nfsperf_net::Fabric`]) into one
//! server. Reported per cell: aggregate MB/s, per-tier Jain fairness,
//! the flyweights' client-observed WRITE p99, the faithful tier's
//! server-side service p99, deterministic event counts, and the
//! flyweight tier's resident bytes per client.

use std::rc::Rc;

use nfsperf_client::{ClientTuning, MountConfig, NfsMount};
use nfsperf_fleet::{calibrate, CalibrationConfig, FlyTier, FlyTierConfig, TierEngine};
use nfsperf_kernel::{CostTable, Kernel, KernelConfig, SimFile};
use nfsperf_net::{Fabric, FabricConfig, Nic, NicSpec};
use nfsperf_server::SlimTierStats;
use nfsperf_server::{NfsServer, PerClientStats, ServerStats};
use nfsperf_sim::{mbps, runner, Sim, SimDuration};
use nfsperf_sunrpc::Transport;

use crate::fleet::jain_index;
use crate::render::ascii_table;
use crate::scenario::ServerKind;

/// The full sweep's flyweight counts: 1k → 1M, a decade per step.
pub const MEGAFLEET_COUNTS: &[u32] = &[1_000, 10_000, 100_000, 1_000_000];

/// The quick sweep's counts (still covers the required 100k cell).
pub const MEGAFLEET_QUICK_COUNTS: &[u32] = &[1_000, 10_000, 100_000];

/// Faithful clients embedded in every mixed fleet.
pub const MEGAFLEET_FAITHFUL: usize = 4;

/// Bytes each client (both tiers) writes at a given fleet size. Scaled
/// down as the fleet grows so cell cost stays bounded while the offered
/// load still exceeds every server's capacity.
pub fn bytes_for_count(clients: u32, quick: bool) -> u64 {
    if quick {
        match clients {
            0..=1_000 => 128 << 10,
            1_001..=10_000 => 32 << 10,
            _ => 16 << 10,
        }
    } else {
        match clients {
            0..=1_000 => 512 << 10,
            1_001..=10_000 => 128 << 10,
            10_001..=100_000 => 32 << 10,
            _ => 8 << 10,
        }
    }
}

/// One megafleet measurement's parameters.
#[derive(Debug, Clone)]
pub struct MegaConfig {
    /// Server under test.
    pub server: ServerKind,
    /// Flyweight clients.
    pub flyweights: u32,
    /// Faithful clients embedded among them (attached first).
    pub faithful: usize,
    /// Sequential bytes every client — faithful and flyweight — writes.
    pub bytes_per_client: u64,
    /// Each client machine's NIC (both tiers).
    pub client_nic: NicSpec,
    /// Base RNG seed.
    pub seed: u64,
    /// Which machinery advances flyweight RPCs (events by default;
    /// `Tasks` keeps the original two-task engine for A/B checks).
    pub engine: TierEngine,
}

impl MegaConfig {
    /// A mixed fleet with the standard four faithful clients and the
    /// fleet sweep's client NIC and seed.
    pub fn new(server: ServerKind, flyweights: u32, bytes_per_client: u64) -> MegaConfig {
        MegaConfig {
            server,
            flyweights,
            faithful: MEGAFLEET_FAITHFUL,
            bytes_per_client,
            client_nic: NicSpec::fast_ethernet(),
            seed: 0x1f5,
            engine: TierEngine::Events,
        }
    }
}

/// Everything measured in one megafleet run.
#[derive(Debug, Clone)]
pub struct MegaRun {
    /// Flyweight count (echoed).
    pub flyweights: u32,
    /// Faithful count (echoed).
    pub faithful: usize,
    /// Total payload over the span from start to the last completion in
    /// either tier, MB/s.
    pub aggregate_mbps: f64,
    /// Each faithful client's throughput, MB/s.
    pub faithful_mbps: Vec<f64>,
    /// Each flyweight's throughput, MB/s.
    pub fly_mbps: Vec<f64>,
    /// Flyweights' client-observed WRITE RPC p99, ms.
    pub fly_rpc_p99_ms: f64,
    /// Worst faithful client's server-side service p99, ms.
    pub faithful_svc_p99_ms: f64,
    /// Deterministic retired-event count of the cell's simulation.
    pub events: u64,
    /// Flyweight tier resident bytes per client.
    pub bytes_per_client: usize,
    /// Wall time until both tiers finished.
    pub elapsed: SimDuration,
    /// Aggregate server counters.
    pub server_stats: ServerStats,
    /// Flyweight-tier shared server counters.
    pub slim_stats: SlimTierStats,
    /// Per-faithful-client server counters.
    pub faithful_server: Vec<PerClientStats>,
}

/// Runs one megafleet cell: calibrate a behavioral model against the
/// target server, build the fabric world with `faithful` real clients
/// attached first, launch the flyweight tier, and drive both tiers to
/// completion. Deterministic for a given config.
pub fn run_megafleet(config: &MegaConfig) -> MegaRun {
    assert!(config.flyweights > 0, "a megafleet needs flyweights");
    let server_config = config.server.server_config();
    let server_nic = config.server.nic_spec();

    // Calibration probe: its own world, one faithful client solo against
    // an identical server. The probe is fleet machine 0 — same seed
    // spread — so the model replays exactly the client the mixed fleet
    // embeds.
    let calibration = calibrate(&CalibrationConfig {
        client_nic: config.client_nic,
        seed: config.seed,
        ..CalibrationConfig::new(server_config.clone(), server_nic)
    });

    let sim = Sim::new();
    let fabric = Rc::new(Fabric::new(&sim, FabricConfig::new(server_nic)));
    let server = NfsServer::new(&sim, server_config);

    // Faithful clients attach first: fabric ids and server client ids
    // 0..faithful, so the flyweight ranges start right after them.
    let mut mounts = Vec::new();
    for i in 0..config.faithful {
        let kernel = Kernel::new(
            &sim,
            KernelConfig {
                ncpus: 2,
                ram_bytes: 256 << 20,
                seed: config
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)),
                costs: CostTable::default(),
                mem: nfsperf_kernel::MemTuning::default(),
            },
        );
        let (cnic, crx) = Nic::new(&sim, "client", config.client_nic);
        let (_id, to_server, port_rx) = fabric.attach(&cnic, config.client_nic);
        server.attach_udp(port_rx, to_server.reversed());
        mounts.push(NfsMount::mount(
            &kernel,
            to_server,
            crx,
            MountConfig {
                tuning: ClientTuning::full_patch(),
                transport: Transport::Udp,
                ..MountConfig::default()
            },
        ));
    }

    let writes_per_fly = (config.bytes_per_client / calibration.model.write_payload).max(1) as u32;
    let tier = FlyTier::launch(
        &sim,
        &server,
        &fabric,
        calibration.model.clone(),
        FlyTierConfig {
            client_nic: config.client_nic,
            seed: config.seed ^ 0x666c_7977_6569_6768, // distinct flyweight stream
            engine: config.engine,
            ..FlyTierConfig::new(config.flyweights, writes_per_fly, config.client_nic)
        },
    );

    let bytes = config.bytes_per_client;
    let s2 = sim.clone();
    let t2 = Rc::clone(&tier);
    let (elapsed, per_faithful) = sim.run_until(async move {
        let t0 = s2.now();
        let workers: Vec<_> = mounts
            .iter()
            .enumerate()
            .map(|(i, mount)| {
                let mount = Rc::clone(mount);
                let s3 = s2.clone();
                s2.spawn(async move {
                    let file = mount
                        .create(&format!("mega{i}.scratch"))
                        .await
                        .expect("create");
                    let mut off = 0;
                    while off < bytes {
                        let n = 8192.min(bytes - off);
                        file.write(off, n).await.expect("write");
                        off += n;
                    }
                    file.close().await.expect("close");
                    s3.now().since(t0)
                })
            })
            .collect();
        let mut per = Vec::with_capacity(workers.len());
        for w in workers {
            per.push(w.await);
        }
        t2.wait_done().await;
        (s2.now().since(t0), per)
    });

    let faithful_mbps: Vec<f64> = per_faithful.iter().map(|e| mbps(bytes, *e)).collect();
    let fly_mbps = tier.per_client_mbps();
    let faithful_server = server.per_client_stats();
    let faithful_svc_p99_ms = faithful_server
        .iter()
        .map(|c| c.service.p99.as_nanos() as f64 / 1e6)
        .fold(0.0, f64::max);
    let total_bytes = server.stats().write_bytes;
    MegaRun {
        flyweights: config.flyweights,
        faithful: config.faithful,
        aggregate_mbps: mbps(total_bytes, elapsed),
        faithful_mbps,
        fly_rpc_p99_ms: tier.rpc_latency().p99.as_nanos() as f64 / 1e6,
        faithful_svc_p99_ms,
        fly_mbps,
        events: sim.events(),
        bytes_per_client: tier.bytes_per_client(),
        elapsed,
        server_stats: server.stats(),
        slim_stats: server.slim_stats(),
        faithful_server,
    }
}

/// One row of the megafleet scaling sweep.
#[derive(Debug, Clone)]
pub struct MegaCell {
    /// Server under test.
    pub server: ServerKind,
    /// Flyweight count.
    pub flyweights: u32,
    /// Faithful count.
    pub faithful: usize,
    /// Aggregate throughput, MB/s.
    pub aggregate_mbps: f64,
    /// Mean flyweight throughput, MB/s.
    pub fly_mean_mbps: f64,
    /// Jain fairness across the flyweight tier.
    pub fly_jain: f64,
    /// Mean faithful throughput, MB/s.
    pub faithful_mean_mbps: f64,
    /// Jain fairness across the faithful tier.
    pub faithful_jain: f64,
    /// Flyweights' client-observed WRITE RPC p99, ms.
    pub fly_rpc_p99_ms: f64,
    /// Worst faithful client's service p99, ms.
    pub faithful_svc_p99_ms: f64,
    /// Deterministic event count of the cell.
    pub events: u64,
    /// Flyweight resident bytes per client.
    pub bytes_per_client: usize,
}

/// The megafleet scaling sweep: flyweight counts × servers.
#[derive(Debug, Clone)]
pub struct MegaSweep {
    /// All cells, in (server, flyweights) order.
    pub rows: Vec<MegaCell>,
    /// Whether the quick byte scaling was used.
    pub quick: bool,
}

/// Builds the sweep's work-list: one cell per (server, count) pair.
pub fn megafleet_cells(
    counts: &[u32],
    servers: &[ServerKind],
    quick: bool,
) -> Vec<runner::Cell<MegaCell>> {
    let mut cells = Vec::new();
    for &server in servers {
        for &flyweights in counts {
            cells.push(runner::Cell::new(
                format!("megafleet/{}/f{}", server.label(), flyweights),
                move || {
                    let bytes = bytes_for_count(flyweights, quick);
                    let run = run_megafleet(&MegaConfig::new(server, flyweights, bytes));
                    MegaCell {
                        server,
                        flyweights,
                        faithful: run.faithful,
                        aggregate_mbps: run.aggregate_mbps,
                        fly_mean_mbps: run.fly_mbps.iter().sum::<f64>()
                            / run.fly_mbps.len().max(1) as f64,
                        fly_jain: jain_index(&run.fly_mbps),
                        faithful_mean_mbps: run.faithful_mbps.iter().sum::<f64>()
                            / run.faithful_mbps.len().max(1) as f64,
                        faithful_jain: jain_index(&run.faithful_mbps),
                        fly_rpc_p99_ms: run.fly_rpc_p99_ms,
                        faithful_svc_p99_ms: run.faithful_svc_p99_ms,
                        events: run.events,
                        bytes_per_client: run.bytes_per_client,
                    }
                },
            ));
        }
    }
    cells
}

/// Runs the sweep on up to `jobs` workers; rows (and the CSV) are
/// bit-identical at any `jobs` value.
pub fn megafleet_sweep(counts: &[u32], servers: &[ServerKind], quick: bool, jobs: usize) -> MegaSweep {
    MegaSweep {
        rows: runner::run_cells(jobs, megafleet_cells(counts, servers, quick)),
        quick,
    }
}

impl MegaSweep {
    /// The `(flyweights, aggregate MB/s)` curve for one server.
    pub fn series(&self, server: ServerKind) -> Vec<(u32, f64)> {
        self.rows
            .iter()
            .filter(|r| r.server == server)
            .map(|r| (r.flyweights, r.aggregate_mbps))
            .collect()
    }

    /// The saturation knee of one server's curve: the largest fleet size
    /// that still bought ≥ 10% more aggregate throughput.
    pub fn knee(&self, server: ServerKind) -> Option<u32> {
        let curve = self.series(server);
        curve
            .windows(2)
            .find(|w| w[1].1 < w[0].1 * 1.10)
            .map(|w| w[0].0)
    }

    /// The sweep as CSV. `at_knee` marks each curve's knee row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "server,flyweights,faithful,aggregate_mbps,fly_mean_mbps,fly_jain,faithful_mean_mbps,faithful_jain,fly_rpc_p99_ms,faithful_svc_p99_ms,events,bytes_per_client,at_knee\n",
        );
        for r in &self.rows {
            let at_knee = self.knee(r.server) == Some(r.flyweights);
            out.push_str(&format!(
                "{},{},{},{:.3},{:.6},{:.4},{:.3},{:.4},{:.3},{:.3},{},{},{}\n",
                r.server.label(),
                r.flyweights,
                r.faithful,
                r.aggregate_mbps,
                r.fly_mean_mbps,
                r.fly_jain,
                r.faithful_mean_mbps,
                r.faithful_jain,
                r.fly_rpc_p99_ms,
                r.faithful_svc_p99_ms,
                r.events,
                r.bytes_per_client,
                if at_knee { "yes" } else { "" },
            ));
        }
        out
    }

    /// Writes the CSV to `path`.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Renders an ASCII table plus per-server knees.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.server.label().to_owned(),
                    r.flyweights.to_string(),
                    format!("{:.1}", r.aggregate_mbps),
                    format!("{:.6}", r.fly_mean_mbps),
                    format!("{:.3}", r.fly_jain),
                    format!("{:.2}", r.faithful_mean_mbps),
                    format!("{:.3}", r.faithful_jain),
                    format!("{:.2}", r.fly_rpc_p99_ms),
                    format!("{:.2}", r.faithful_svc_p99_ms),
                    r.bytes_per_client.to_string(),
                ]
            })
            .collect();
        let mut out = ascii_table(
            &[
                "server",
                "flyweights",
                "aggregate MB/s",
                "fly mean",
                "fly jain",
                "faithful mean",
                "faithful jain",
                "fly p99 ms",
                "svc p99 ms",
                "B/client",
            ],
            &rows,
        );
        let mut servers: Vec<ServerKind> = Vec::new();
        for r in &self.rows {
            if !servers.contains(&r.server) {
                servers.push(r.server);
            }
        }
        for server in servers {
            match self.knee(server) {
                Some(knee) => out.push_str(&format!(
                    "{}: saturates at {} flyweight(s)\n",
                    server.label(),
                    knee
                )),
                None => out.push_str(&format!(
                    "{}: still scaling at the sweep's edge\n",
                    server.label()
                )),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_megafleet_completes_and_accounts_both_tiers() {
        let run = run_megafleet(&MegaConfig::new(ServerKind::Filer, 64, 64 << 10));
        assert_eq!(run.faithful_mbps.len(), MEGAFLEET_FAITHFUL);
        assert_eq!(run.fly_mbps.len(), 64);
        assert!(run.aggregate_mbps > 0.0);
        assert!(run.fly_mbps.iter().all(|m| *m > 0.0));
        assert_eq!(run.slim_stats.clients, 64);
        assert_eq!(run.slim_stats.write_bytes, 64 * (64 << 10));
        // Every byte either tier wrote reached the server's counters.
        assert_eq!(
            run.server_stats.write_bytes,
            64 * (64 << 10) + MEGAFLEET_FAITHFUL as u64 * (64 << 10)
        );
        assert_eq!(run.faithful_server.len(), MEGAFLEET_FAITHFUL);
        // The ≤ 256 B/client bound amortizes shared state over the tier;
        // it is asserted at 10k clients in nfsperf-fleet's tests. Here
        // just check the accounting hook reports something sane.
        assert!(run.bytes_per_client > 0 && run.bytes_per_client < 4096);
        assert!(run.events > 0);
    }

    #[test]
    fn megafleet_run_is_deterministic() {
        let config = MegaConfig::new(ServerKind::Filer, 32, 32 << 10);
        let a = run_megafleet(&config);
        let b = run_megafleet(&config);
        assert_eq!(a.faithful_mbps, b.faithful_mbps);
        assert_eq!(a.fly_mbps, b.fly_mbps);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.events, b.events);
        assert_eq!(a.server_stats, b.server_stats);
    }

    /// The committed megafleet CSV (which records `events`) must not
    /// depend on which RPC engine drives the flyweight tier: in the
    /// mixed world — faithful kernel clients sharing fabric queues and
    /// server slots with the flyweights — the taskless engine must
    /// reproduce the task engine's run exactly, event count included.
    #[test]
    fn megafleet_is_identical_across_rpc_engines() {
        let mut config = MegaConfig::new(ServerKind::Filer, 48, 32 << 10);
        config.engine = TierEngine::Tasks;
        let a = run_megafleet(&config);
        config.engine = TierEngine::Events;
        let b = run_megafleet(&config);
        assert_eq!(a.faithful_mbps, b.faithful_mbps);
        assert_eq!(a.fly_mbps, b.fly_mbps);
        assert_eq!(a.fly_rpc_p99_ms, b.fly_rpc_p99_ms);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.events, b.events, "event-count parity broke");
        assert_eq!(a.server_stats, b.server_stats);
        assert_eq!(a.slim_stats, b.slim_stats);
    }

    /// The sweep CSV is byte-identical no matter how many worker
    /// threads ran the cells.
    #[test]
    fn sweep_csv_is_identical_across_jobs() {
        let serial = megafleet_sweep(&[16, 48], &[ServerKind::Filer], true, 1);
        let parallel = megafleet_sweep(&[16, 48], &[ServerKind::Filer], true, 4);
        assert_eq!(serial.to_csv(), parallel.to_csv());
    }

    #[test]
    fn sweep_csv_has_knee_and_memory_columns() {
        let sweep = megafleet_sweep(&[16, 64], &[ServerKind::Filer], true, 1);
        assert_eq!(sweep.rows.len(), 2);
        let csv = sweep.to_csv();
        assert!(csv.starts_with("server,flyweights,faithful,aggregate_mbps"));
        assert!(csv.contains("at_knee"));
        assert!(csv.contains("bytes_per_client"));
        assert_eq!(csv.lines().count(), 3);
        let rendered = sweep.render();
        assert!(rendered.contains("netapp-filer"));
    }
}
