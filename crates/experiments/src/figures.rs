//! The paper's evaluation, figure by figure and table by table.
//!
//! Each runner reproduces one exhibit from Section 3 of the paper and
//! returns the same data the paper plots; the `examples/` binaries render
//! them and EXPERIMENTS.md records paper-vs-measured.

use nfsperf_client::ClientTuning;
use nfsperf_sim::{runner, Histogram, SimDuration};

use crate::render::{Series, Sweep};
use crate::scenario::{run_bonnie, run_local, write_throughput_mbps, Scenario, ServerKind};

/// The paper's file-size sweep: 25 MB to 450 MB in 25 MB steps.
pub fn paper_file_sizes() -> Vec<u64> {
    (1..=18).map(|i| (i * 25) << 20).collect()
}

/// A reduced sweep for quick runs and CI.
pub fn quick_file_sizes() -> Vec<u64> {
    [50u64, 150, 250, 350, 450]
        .iter()
        .map(|m| m << 20)
        .collect()
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1 << 20) as f64
}

/// One `(file size MB, write MB/s)` measurement of figure 1/7: local
/// ext2 when `server` is `None`, else NFS against that server.
fn throughput_point(tuning: ClientTuning, server: Option<ServerKind>, size: u64) -> (f64, f64) {
    match server {
        None => (mb(size), run_local(size, false).write_mbps()),
        Some(kind) => (
            mb(size),
            write_throughput_mbps(&Scenario::new(tuning, kind), size),
        ),
    }
}

/// Folds the per-point results (work-list order: local, filer, knfsd
/// per size) back into the three-series sweep.
fn sweep_from_points(sizes_len: usize, points: &[(f64, f64)]) -> Sweep {
    const BACKENDS: usize = 3;
    assert_eq!(points.len(), sizes_len * BACKENDS, "3 backends per size");
    let mut local = Vec::with_capacity(sizes_len);
    let mut filer = Vec::with_capacity(sizes_len);
    let mut knfsd = Vec::with_capacity(sizes_len);
    for chunk in points.chunks_exact(BACKENDS) {
        local.push(chunk[0]);
        filer.push(chunk[1]);
        knfsd.push(chunk[2]);
    }
    Sweep {
        series: vec![
            Series::new("local ext2", local),
            Series::new("netapp filer", filer),
            Series::new("linux nfs server", knfsd),
        ],
        x_label: "file size (MB)".into(),
        y_label: "write throughput (MB/s)".into(),
    }
}

/// Figures 1 and 7 share a shape: local ext2 vs NFS on both servers,
/// write throughput against file size. Each `(size, backend)` point is
/// an isolated world, fanned across up to `jobs` worker threads; results
/// come back in work-list order, so the sweep (and its CSV) is
/// bit-identical at any `jobs` value.
pub fn throughput_sweep(tuning: ClientTuning, sizes: &[u64], jobs: usize) -> Sweep {
    let mut cells: Vec<runner::Cell<(f64, f64)>> = Vec::new();
    for &size in sizes {
        cells.push(runner::Cell::new(format!("figure/local/{}", mb(size)), move || {
            throughput_point(tuning, None, size)
        }));
        cells.push(runner::Cell::new(format!("figure/filer/{}", mb(size)), move || {
            throughput_point(tuning, Some(ServerKind::Filer), size)
        }));
        cells.push(runner::Cell::new(format!("figure/knfsd/{}", mb(size)), move || {
            throughput_point(tuning, Some(ServerKind::Knfsd), size)
        }));
    }
    let points = runner::run_cells(jobs, cells);
    sweep_from_points(sizes.len(), &points)
}

/// Figure 1: local vs NFS memory write performance with the **stock**
/// 2.4.4 client. NFS throughput stays pinned at network/server speed
/// while local writes run at memory speed until RAM is exhausted.
pub fn figure1(sizes: &[u64], jobs: usize) -> Sweep {
    throughput_sweep(ClientTuning::linux_2_4_4(), sizes, jobs)
}

/// Figure 7: the same sweep with the **fully patched** client. NFS write
/// throughput approaches local memory speed while RAM lasts, and the
/// filer sustains more than the Linux server past exhaustion.
pub fn figure7(sizes: &[u64], jobs: usize) -> Sweep {
    throughput_sweep(ClientTuning::full_patch(), sizes, jobs)
}

/// Result of a latency-trace experiment (Figures 2, 3 and 4).
pub struct LatencyTrace {
    /// Which configuration produced it.
    pub label: &'static str,
    /// Per-call `write()` latencies, in call order.
    pub latencies: Vec<SimDuration>,
    /// Mean latency over the whole run.
    pub mean: SimDuration,
    /// Mean excluding calls above 1 ms (the paper's comparison).
    pub mean_excluding_spikes: SimDuration,
    /// Calls above 1 ms.
    pub spikes: usize,
    /// Write-phase throughput, MB/s.
    pub write_mbps: f64,
}

fn latency_trace(label: &'static str, tuning: ClientTuning, size: u64) -> LatencyTrace {
    let scenario = Scenario::new(tuning, ServerKind::Filer);
    let out = run_bonnie(&scenario, size);
    let ms1 = SimDuration::from_millis(1);
    LatencyTrace {
        label,
        mean: out.report.mean_latency(),
        mean_excluding_spikes: out.report.mean_latency_excluding(ms1),
        spikes: out.report.spikes(ms1),
        write_mbps: out.report.write_mbps(),
        latencies: out.report.latencies,
    }
}

impl LatencyTrace {
    /// CSV rows: `call,latency_us`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("call,latency_us\n");
        for (i, l) in self.latencies.iter().enumerate() {
            out.push_str(&format!("{},{:.3}\n", i, l.as_micros_f64()));
        }
        out
    }

    /// Gaps between consecutive spikes (in calls) — the paper's "every 80
    /// to 90 system calls".
    pub fn spike_periods(&self, threshold: SimDuration) -> Vec<usize> {
        let spikes: Vec<usize> = self
            .latencies
            .iter()
            .enumerate()
            .filter(|(_, l)| **l > threshold)
            .map(|(i, _)| i)
            .collect();
        spikes.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

/// Figure 2: per-call latency of the stock client writing a 40 MB file
/// to the filer — periodic multi-millisecond spikes from the
/// `MAX_REQUEST_SOFT` flush-and-wait.
pub fn figure2() -> LatencyTrace {
    latency_trace("linux-2.4.4", ClientTuning::linux_2_4_4(), 40 << 20)
}

/// Figure 3: the same trace with flushing removed (100 MB file) — no
/// spikes, but latency climbs as the request list grows.
pub fn figure3() -> LatencyTrace {
    latency_trace("no-flush", ClientTuning::no_flush(), 100 << 20)
}

/// Figure 4: the hash-table client (100 MB file) — latency stays flat.
pub fn figure4() -> LatencyTrace {
    latency_trace("hash-table", ClientTuning::hash_table(), 100 << 20)
}

/// Result of a latency-histogram experiment (Figures 5 and 6).
pub struct HistogramPair {
    /// Which configuration produced it.
    pub label: &'static str,
    /// Latency histogram against the filer.
    pub filer: Histogram,
    /// Latency histogram against the Linux server.
    pub knfsd: Histogram,
    /// Mean latency against the filer.
    pub filer_mean: SimDuration,
    /// Mean latency against the Linux server.
    pub knfsd_mean: SimDuration,
    /// Maximum latency against the filer (excluding the first call, as
    /// the paper does).
    pub filer_max: SimDuration,
    /// Maximum latency against the Linux server (excluding the first
    /// call).
    pub knfsd_max: SimDuration,
}

/// One server's per-call latencies for a figure-5/6 histogram half.
fn histogram_half(tuning: ClientTuning, kind: ServerKind, size: u64) -> Vec<SimDuration> {
    run_bonnie(&Scenario::new(tuning, kind), size)
        .report
        .latencies
}

/// Combines the two halves' raw latencies into the rendered pair.
fn pair_from_latencies(
    label: &'static str,
    filer_lat: &[SimDuration],
    knfsd_lat: &[SimDuration],
) -> HistogramPair {
    // The paper excludes the first data point (cold-start, ~1 ms).
    let f_lat = &filer_lat[1..];
    let k_lat = &knfsd_lat[1..];
    HistogramPair {
        label,
        filer: Histogram::from_samples(SimDuration::from_micros(60), 8, f_lat),
        knfsd: Histogram::from_samples(SimDuration::from_micros(60), 8, k_lat),
        filer_mean: nfsperf_bonnie::mean(f_lat),
        knfsd_mean: nfsperf_bonnie::mean(k_lat),
        filer_max: f_lat.iter().copied().max().unwrap_or(SimDuration::ZERO),
        knfsd_max: k_lat.iter().copied().max().unwrap_or(SimDuration::ZERO),
    }
}

fn histogram_pair(label: &'static str, tuning: ClientTuning, size: u64) -> HistogramPair {
    let filer = histogram_half(tuning, ServerKind::Filer, size);
    let knfsd = histogram_half(tuning, ServerKind::Knfsd, size);
    pair_from_latencies(label, &filer, &knfsd)
}

impl HistogramPair {
    /// CSV rows: `bin_low_us,filer,knfsd` (last row is overflow).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bin_low_us,netapp_filer,linux_nfs_server\n");
        let w = self.filer.bin_width().as_micros();
        for (i, (f, k)) in self
            .filer
            .bins()
            .iter()
            .zip(self.knfsd.bins().iter())
            .enumerate()
        {
            out.push_str(&format!("{},{},{}\n", i as u64 * w, f, k));
        }
        out.push_str(&format!(
            "overflow,{},{}\n",
            self.filer.overflow(),
            self.knfsd.overflow()
        ));
        out
    }
}

/// Figure 5: latency histograms with the global kernel lock held across
/// `sock_sendmsg` (30 MB file). The *faster* server (the filer) shows
/// more slow calls.
pub fn figure5() -> HistogramPair {
    histogram_pair("normal (BKL held)", ClientTuning::hash_table(), 30 << 20)
}

/// Figure 6: the same histograms with the lock released around
/// `sock_sendmsg` — jitter collapses, minimum latency unchanged.
pub fn figure6() -> HistogramPair {
    histogram_pair("no lock", ClientTuning::full_patch(), 30 << 20)
}

/// Table 1: client memory write throughput (5 MB file) before and after
/// the lock modification, against both servers.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Filer, BKL held (paper: 115 MB/s).
    pub filer_normal: f64,
    /// Filer, lock released (paper: 140 MB/s).
    pub filer_no_lock: f64,
    /// Linux server, BKL held (paper: 138 MB/s).
    pub linux_normal: f64,
    /// Linux server, lock released (paper: 147 MB/s).
    pub linux_no_lock: f64,
}

/// Runs Table 1 (the paper's 5 MB file).
pub fn table1() -> Table1 {
    table1_sized(5 << 20)
}

/// Runs Table 1 at an arbitrary file size (tests use tiny files).
pub fn table1_sized(size: u64) -> Table1 {
    Table1 {
        filer_normal: write_throughput_mbps(
            &Scenario::new(ClientTuning::hash_table(), ServerKind::Filer),
            size,
        ),
        filer_no_lock: write_throughput_mbps(
            &Scenario::new(ClientTuning::full_patch(), ServerKind::Filer),
            size,
        ),
        linux_normal: write_throughput_mbps(
            &Scenario::new(ClientTuning::hash_table(), ServerKind::Knfsd),
            size,
        ),
        linux_no_lock: write_throughput_mbps(
            &Scenario::new(ClientTuning::full_patch(), ServerKind::Knfsd),
            size,
        ),
    }
}

/// The §3.5 comparison: memory write throughput against servers of
/// decreasing speed, with the stock (lock-holding) RPC layer, plus where
/// the writer's lock waits go.
pub struct SlowServerComparison {
    /// Memory write throughput against the filer, MB/s.
    pub filer_mbps: f64,
    /// Against the Linux server.
    pub knfsd_mbps: f64,
    /// Against the 100 Mb/s server.
    pub slow_mbps: f64,
    /// Fraction of all lock wait time blamed on the RPC transmit section
    /// (which contains `sock_sendmsg`) in the filer run.
    pub xmit_wait_fraction: f64,
    /// Sustained client network throughput during the filer run, MB/s.
    pub filer_net_mbps: f64,
    /// Sustained client network throughput during the knfsd run, MB/s.
    pub knfsd_net_mbps: f64,
}

/// One server's run of the §3.5 comparison, reduced to plain numbers.
#[derive(Debug, Clone, Copy)]
pub struct SlowRun {
    /// Memory write throughput, MB/s.
    pub write_mbps: f64,
    /// Sustained client network throughput, MB/s.
    pub net_mbps: f64,
    /// Fraction of all lock wait time blamed on the RPC transmit section.
    pub xmit_wait_fraction: f64,
}

/// Runs one server of the slow-server comparison (BKL held).
fn slow_server_run(kind: ServerKind, size: u64) -> SlowRun {
    let out = run_bonnie(&Scenario::new(ClientTuning::hash_table(), kind), size);
    let xmit_wait = out.lock_stats.wait_blamed_on("rpc_xmit").as_nanos() as f64;
    let total_wait = out.lock_stats.total_wait.as_nanos().max(1) as f64;
    SlowRun {
        write_mbps: out.report.write_mbps(),
        net_mbps: out.net_tx_mbps,
        xmit_wait_fraction: xmit_wait / total_wait,
    }
}

/// Folds the three per-server runs (filer, knfsd, slow) into the
/// comparison.
fn slow_server_from_runs(filer: SlowRun, knfsd: SlowRun, slow: SlowRun) -> SlowServerComparison {
    SlowServerComparison {
        filer_mbps: filer.write_mbps,
        knfsd_mbps: knfsd.write_mbps,
        slow_mbps: slow.write_mbps,
        xmit_wait_fraction: filer.xmit_wait_fraction,
        filer_net_mbps: filer.net_mbps,
        knfsd_net_mbps: knfsd.net_mbps,
    }
}

/// Runs the slow-server comparison (5 MB file, BKL held).
pub fn slow_server_comparison() -> SlowServerComparison {
    slow_server_comparison_sized(5 << 20)
}

/// [`slow_server_comparison`] at an arbitrary file size.
pub fn slow_server_comparison_sized(size: u64) -> SlowServerComparison {
    slow_server_from_runs(
        slow_server_run(ServerKind::Filer, size),
        slow_server_run(ServerKind::Knfsd, size),
        slow_server_run(ServerKind::Slow100, size),
    )
}

/// Table 1 in the CSV shape `nfsperf figures` writes.
pub fn table1_csv(t: &Table1) -> String {
    format!(
        "server,normal_mbps,no_lock_mbps\nnetapp-filer,{:.1},{:.1}\nlinux-nfs-server,{:.1},{:.1}\n",
        t.filer_normal, t.filer_no_lock, t.linux_normal, t.linux_no_lock
    )
}

/// The slow-server comparison in the CSV shape `nfsperf figures` writes.
pub fn slow_server_csv(c: &SlowServerComparison) -> String {
    format!(
        "server,write_mbps\nnetapp-filer,{:.1}\nlinux-nfs-server,{:.1}\nslow-100bt,{:.1}\n",
        c.filer_mbps, c.knfsd_mbps, c.slow_mbps
    )
}

/// File sizes for the fixed-size exhibits (figures 2–6, Table 1, the
/// slow-server comparison). Defaults are the paper's sizes; tests shrink
/// every field to run the full phased-vs-monolithic equivalence check on
/// tiny files.
#[derive(Debug, Clone, Copy)]
pub struct ExhibitSizes {
    /// Figure 2's file (paper: 40 MB).
    pub figure2_bytes: u64,
    /// Figure 3's file (paper: 100 MB).
    pub figure3_bytes: u64,
    /// Figure 4's file (paper: 100 MB).
    pub figure4_bytes: u64,
    /// Figures 5/6's file (paper: 30 MB).
    pub histogram_bytes: u64,
    /// Table 1's file (paper: 5 MB).
    pub table1_bytes: u64,
    /// The slow-server comparison's file (paper: 5 MB).
    pub slow_bytes: u64,
}

impl Default for ExhibitSizes {
    fn default() -> ExhibitSizes {
        ExhibitSizes {
            figure2_bytes: 40 << 20,
            figure3_bytes: 100 << 20,
            figure4_bytes: 100 << 20,
            histogram_bytes: 30 << 20,
            table1_bytes: 5 << 20,
            slow_bytes: 5 << 20,
        }
    }
}

impl ExhibitSizes {
    /// Every exhibit at the same (small) file size, for tests.
    pub fn uniform(bytes: u64) -> ExhibitSizes {
        ExhibitSizes {
            figure2_bytes: bytes,
            figure3_bytes: bytes,
            figure4_bytes: bytes,
            histogram_bytes: bytes,
            table1_bytes: bytes,
            slow_bytes: bytes,
        }
    }
}

/// One phased exhibit cell's result. [`assemble_exhibits`] consumes
/// these in work-list order; the variant encodes which kind of
/// measurement the cell was.
pub enum ExhibitPart {
    /// One `(size MB, MB/s)` throughput point of figure 1 or 7.
    Point((f64, f64)),
    /// One full latency trace (figures 2–4).
    Trace(LatencyTrace),
    /// One server's per-call latencies (half of figure 5 or 6).
    Latencies(Vec<SimDuration>),
    /// One Table 1 throughput entry.
    Mbps(f64),
    /// One server's slow-server-comparison run.
    Slow(SlowRun),
}

impl ExhibitPart {
    fn kind(&self) -> &'static str {
        match self {
            ExhibitPart::Point(_) => "Point",
            ExhibitPart::Trace(_) => "Trace",
            ExhibitPart::Latencies(_) => "Latencies",
            ExhibitPart::Mbps(_) => "Mbps",
            ExhibitPart::Slow(_) => "Slow",
        }
    }
}

/// The *phased* work-list behind `nfsperf figures` and
/// `examples/run_all`: every exhibit split into its independent
/// simulated worlds — one cell per figure-1/7 `(size, backend)` point,
/// per figure-5/6 server half, per Table 1 entry, and per slow-server
/// run — so a worker pool is never starved by one monolithic exhibit.
/// Results pair back up in [`assemble_exhibits`]; the CSVs are
/// byte-identical to the monolithic list
/// ([`monolithic_exhibit_cells_with`]) at any `--jobs` value.
pub fn exhibit_cells(sizes: &[u64]) -> Vec<runner::Cell<ExhibitPart>> {
    exhibit_cells_with(sizes, ExhibitSizes::default())
}

/// [`exhibit_cells`] with explicit fixed-exhibit sizes (tests use tiny
/// files).
pub fn exhibit_cells_with(sizes: &[u64], ex: ExhibitSizes) -> Vec<runner::Cell<ExhibitPart>> {
    let mut cells: Vec<runner::Cell<ExhibitPart>> = Vec::new();
    let point = |label: String, tuning: ClientTuning, server: Option<ServerKind>, size: u64| {
        runner::Cell::new(label, move || {
            ExhibitPart::Point(throughput_point(tuning, server, size))
        })
    };
    for &size in sizes {
        let t = ClientTuning::linux_2_4_4();
        cells.push(point(format!("figures/figure1/local/{}", mb(size)), t, None, size));
        cells.push(point(
            format!("figures/figure1/filer/{}", mb(size)),
            t,
            Some(ServerKind::Filer),
            size,
        ));
        cells.push(point(
            format!("figures/figure1/knfsd/{}", mb(size)),
            t,
            Some(ServerKind::Knfsd),
            size,
        ));
    }
    cells.push(runner::Cell::new("figures/figure2", move || {
        ExhibitPart::Trace(latency_trace(
            "linux-2.4.4",
            ClientTuning::linux_2_4_4(),
            ex.figure2_bytes,
        ))
    }));
    cells.push(runner::Cell::new("figures/figure3", move || {
        ExhibitPart::Trace(latency_trace(
            "no-flush",
            ClientTuning::no_flush(),
            ex.figure3_bytes,
        ))
    }));
    cells.push(runner::Cell::new("figures/figure4", move || {
        ExhibitPart::Trace(latency_trace(
            "hash-table",
            ClientTuning::hash_table(),
            ex.figure4_bytes,
        ))
    }));
    for (fig, tuning) in [
        ("figure5", ClientTuning::hash_table()),
        ("figure6", ClientTuning::full_patch()),
    ] {
        for kind in [ServerKind::Filer, ServerKind::Knfsd] {
            cells.push(runner::Cell::new(
                format!("figures/{fig}/{}", kind.label()),
                move || ExhibitPart::Latencies(histogram_half(tuning, kind, ex.histogram_bytes)),
            ));
        }
    }
    for (name, tuning, kind) in [
        ("filer/normal", ClientTuning::hash_table(), ServerKind::Filer),
        ("filer/no-lock", ClientTuning::full_patch(), ServerKind::Filer),
        ("linux/normal", ClientTuning::hash_table(), ServerKind::Knfsd),
        ("linux/no-lock", ClientTuning::full_patch(), ServerKind::Knfsd),
    ] {
        cells.push(runner::Cell::new(format!("figures/table1/{name}"), move || {
            ExhibitPart::Mbps(write_throughput_mbps(
                &Scenario::new(tuning, kind),
                ex.table1_bytes,
            ))
        }));
    }
    for &size in sizes {
        let t = ClientTuning::full_patch();
        cells.push(point(format!("figures/figure7/local/{}", mb(size)), t, None, size));
        cells.push(point(
            format!("figures/figure7/filer/{}", mb(size)),
            t,
            Some(ServerKind::Filer),
            size,
        ));
        cells.push(point(
            format!("figures/figure7/knfsd/{}", mb(size)),
            t,
            Some(ServerKind::Knfsd),
            size,
        ));
    }
    for kind in [ServerKind::Filer, ServerKind::Knfsd, ServerKind::Slow100] {
        cells.push(runner::Cell::new(
            format!("figures/slow_server/{}", kind.label()),
            move || ExhibitPart::Slow(slow_server_run(kind, ex.slow_bytes)),
        ));
    }
    cells
}

/// The pre-split *monolithic* work-list: one cell per whole exhibit,
/// each rendering `(file name, CSV body)` with its inner sweep run
/// serially. Kept as the reference implementation the phased list is
/// proven byte-identical against (`tests/runner.rs`).
pub fn monolithic_exhibit_cells_with(
    sizes: &[u64],
    ex: ExhibitSizes,
) -> Vec<runner::Cell<(&'static str, String)>> {
    let s1 = sizes.to_vec();
    let s7 = sizes.to_vec();
    vec![
        runner::Cell::new("figures/figure1", move || {
            ("figure1.csv", figure1(&s1, 1).to_csv())
        }),
        runner::Cell::new("figures/figure2", move || {
            (
                "figure2.csv",
                latency_trace("linux-2.4.4", ClientTuning::linux_2_4_4(), ex.figure2_bytes)
                    .to_csv(),
            )
        }),
        runner::Cell::new("figures/figure3", move || {
            (
                "figure3.csv",
                latency_trace("no-flush", ClientTuning::no_flush(), ex.figure3_bytes).to_csv(),
            )
        }),
        runner::Cell::new("figures/figure4", move || {
            (
                "figure4.csv",
                latency_trace("hash-table", ClientTuning::hash_table(), ex.figure4_bytes).to_csv(),
            )
        }),
        runner::Cell::new("figures/figure5", move || {
            (
                "figure5.csv",
                histogram_pair("normal (BKL held)", ClientTuning::hash_table(), ex.histogram_bytes)
                    .to_csv(),
            )
        }),
        runner::Cell::new("figures/figure6", move || {
            (
                "figure6.csv",
                histogram_pair("no lock", ClientTuning::full_patch(), ex.histogram_bytes).to_csv(),
            )
        }),
        runner::Cell::new("figures/table1", move || {
            ("table1.csv", table1_csv(&table1_sized(ex.table1_bytes)))
        }),
        runner::Cell::new("figures/figure7", move || {
            ("figure7.csv", figure7(&s7, 1).to_csv())
        }),
        runner::Cell::new("figures/slow_server", move || {
            (
                "slow_server.csv",
                slow_server_csv(&slow_server_comparison_sized(ex.slow_bytes)),
            )
        }),
    ]
}

/// Reassembles the phased results (in [`exhibit_cells_with`] work-list
/// order) into the `(file name, CSV body)` list the monolithic cells
/// produce — byte-identical, in the same file order.
///
/// # Panics
///
/// Panics when `parts` does not match the work-list shape for `sizes`.
pub fn assemble_exhibits(sizes: &[u64], parts: Vec<ExhibitPart>) -> Vec<(&'static str, String)> {
    let mut it = parts.into_iter();
    let mut next = |expect: &'static str| {
        let part = it.next().unwrap_or_else(|| panic!("missing exhibit part: expected {expect}"));
        let kind = part.kind();
        assert_eq!(kind, expect, "exhibit part mismatch: expected {expect}, got {kind}");
        part
    };
    let points = |n: usize, next: &mut dyn FnMut(&'static str) -> ExhibitPart| {
        (0..n * 3)
            .map(|_| match next("Point") {
                ExhibitPart::Point(p) => p,
                _ => unreachable!(),
            })
            .collect::<Vec<_>>()
    };
    let trace = |part: ExhibitPart| match part {
        ExhibitPart::Trace(t) => t,
        _ => unreachable!(),
    };
    let lats = |part: ExhibitPart| match part {
        ExhibitPart::Latencies(l) => l,
        _ => unreachable!(),
    };
    let mbps = |part: ExhibitPart| match part {
        ExhibitPart::Mbps(m) => m,
        _ => unreachable!(),
    };
    let slow = |part: ExhibitPart| match part {
        ExhibitPart::Slow(s) => s,
        _ => unreachable!(),
    };

    let fig1 = sweep_from_points(sizes.len(), &points(sizes.len(), &mut next));
    let fig2 = trace(next("Trace"));
    let fig3 = trace(next("Trace"));
    let fig4 = trace(next("Trace"));
    let (f5f, f5k) = (lats(next("Latencies")), lats(next("Latencies")));
    let (f6f, f6k) = (lats(next("Latencies")), lats(next("Latencies")));
    let t1 = Table1 {
        filer_normal: mbps(next("Mbps")),
        filer_no_lock: mbps(next("Mbps")),
        linux_normal: mbps(next("Mbps")),
        linux_no_lock: mbps(next("Mbps")),
    };
    let fig7 = sweep_from_points(sizes.len(), &points(sizes.len(), &mut next));
    let cmp = slow_server_from_runs(
        slow(next("Slow")),
        slow(next("Slow")),
        slow(next("Slow")),
    );
    assert!(it.next().is_none(), "unconsumed exhibit parts");

    vec![
        ("figure1.csv", fig1.to_csv()),
        ("figure2.csv", fig2.to_csv()),
        ("figure3.csv", fig3.to_csv()),
        ("figure4.csv", fig4.to_csv()),
        (
            "figure5.csv",
            pair_from_latencies("normal (BKL held)", &f5f, &f5k).to_csv(),
        ),
        (
            "figure6.csv",
            pair_from_latencies("no lock", &f6f, &f6k).to_csv(),
        ),
        ("table1.csv", table1_csv(&t1)),
        ("figure7.csv", fig7.to_csv()),
        ("slow_server.csv", slow_server_csv(&cmp)),
    ]
}
