//! The paper's evaluation, figure by figure and table by table.
//!
//! Each runner reproduces one exhibit from Section 3 of the paper and
//! returns the same data the paper plots; the `examples/` binaries render
//! them and EXPERIMENTS.md records paper-vs-measured.

use nfsperf_client::ClientTuning;
use nfsperf_sim::{runner, Histogram, SimDuration};

use crate::render::{Series, Sweep};
use crate::scenario::{run_bonnie, run_local, write_throughput_mbps, Scenario, ServerKind};

/// The paper's file-size sweep: 25 MB to 450 MB in 25 MB steps.
pub fn paper_file_sizes() -> Vec<u64> {
    (1..=18).map(|i| (i * 25) << 20).collect()
}

/// A reduced sweep for quick runs and CI.
pub fn quick_file_sizes() -> Vec<u64> {
    [50u64, 150, 250, 350, 450]
        .iter()
        .map(|m| m << 20)
        .collect()
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1 << 20) as f64
}

/// Figures 1 and 7 share a shape: local ext2 vs NFS on both servers,
/// write throughput against file size. Each `(size, backend)` point is
/// an isolated world, fanned across up to `jobs` worker threads; results
/// come back in work-list order, so the sweep (and its CSV) is
/// bit-identical at any `jobs` value.
pub fn throughput_sweep(tuning: ClientTuning, sizes: &[u64], jobs: usize) -> Sweep {
    const BACKENDS: usize = 3;
    let mut cells: Vec<runner::Cell<(f64, f64)>> = Vec::new();
    for &size in sizes {
        cells.push(runner::Cell::new(format!("figure/local/{}", mb(size)), move || {
            (mb(size), run_local(size, false).write_mbps())
        }));
        cells.push(runner::Cell::new(format!("figure/filer/{}", mb(size)), move || {
            (
                mb(size),
                write_throughput_mbps(&Scenario::new(tuning, ServerKind::Filer), size),
            )
        }));
        cells.push(runner::Cell::new(format!("figure/knfsd/{}", mb(size)), move || {
            (
                mb(size),
                write_throughput_mbps(&Scenario::new(tuning, ServerKind::Knfsd), size),
            )
        }));
    }
    let points = runner::run_cells(jobs, cells);
    let mut local = Vec::with_capacity(sizes.len());
    let mut filer = Vec::with_capacity(sizes.len());
    let mut knfsd = Vec::with_capacity(sizes.len());
    for chunk in points.chunks_exact(BACKENDS) {
        local.push(chunk[0]);
        filer.push(chunk[1]);
        knfsd.push(chunk[2]);
    }
    Sweep {
        series: vec![
            Series::new("local ext2", local),
            Series::new("netapp filer", filer),
            Series::new("linux nfs server", knfsd),
        ],
        x_label: "file size (MB)".into(),
        y_label: "write throughput (MB/s)".into(),
    }
}

/// Figure 1: local vs NFS memory write performance with the **stock**
/// 2.4.4 client. NFS throughput stays pinned at network/server speed
/// while local writes run at memory speed until RAM is exhausted.
pub fn figure1(sizes: &[u64], jobs: usize) -> Sweep {
    throughput_sweep(ClientTuning::linux_2_4_4(), sizes, jobs)
}

/// Figure 7: the same sweep with the **fully patched** client. NFS write
/// throughput approaches local memory speed while RAM lasts, and the
/// filer sustains more than the Linux server past exhaustion.
pub fn figure7(sizes: &[u64], jobs: usize) -> Sweep {
    throughput_sweep(ClientTuning::full_patch(), sizes, jobs)
}

/// Result of a latency-trace experiment (Figures 2, 3 and 4).
pub struct LatencyTrace {
    /// Which configuration produced it.
    pub label: &'static str,
    /// Per-call `write()` latencies, in call order.
    pub latencies: Vec<SimDuration>,
    /// Mean latency over the whole run.
    pub mean: SimDuration,
    /// Mean excluding calls above 1 ms (the paper's comparison).
    pub mean_excluding_spikes: SimDuration,
    /// Calls above 1 ms.
    pub spikes: usize,
    /// Write-phase throughput, MB/s.
    pub write_mbps: f64,
}

fn latency_trace(label: &'static str, tuning: ClientTuning, size: u64) -> LatencyTrace {
    let scenario = Scenario::new(tuning, ServerKind::Filer);
    let out = run_bonnie(&scenario, size);
    let ms1 = SimDuration::from_millis(1);
    LatencyTrace {
        label,
        mean: out.report.mean_latency(),
        mean_excluding_spikes: out.report.mean_latency_excluding(ms1),
        spikes: out.report.spikes(ms1),
        write_mbps: out.report.write_mbps(),
        latencies: out.report.latencies,
    }
}

impl LatencyTrace {
    /// CSV rows: `call,latency_us`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("call,latency_us\n");
        for (i, l) in self.latencies.iter().enumerate() {
            out.push_str(&format!("{},{:.3}\n", i, l.as_micros_f64()));
        }
        out
    }

    /// Gaps between consecutive spikes (in calls) — the paper's "every 80
    /// to 90 system calls".
    pub fn spike_periods(&self, threshold: SimDuration) -> Vec<usize> {
        let spikes: Vec<usize> = self
            .latencies
            .iter()
            .enumerate()
            .filter(|(_, l)| **l > threshold)
            .map(|(i, _)| i)
            .collect();
        spikes.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

/// Figure 2: per-call latency of the stock client writing a 40 MB file
/// to the filer — periodic multi-millisecond spikes from the
/// `MAX_REQUEST_SOFT` flush-and-wait.
pub fn figure2() -> LatencyTrace {
    latency_trace("linux-2.4.4", ClientTuning::linux_2_4_4(), 40 << 20)
}

/// Figure 3: the same trace with flushing removed (100 MB file) — no
/// spikes, but latency climbs as the request list grows.
pub fn figure3() -> LatencyTrace {
    latency_trace("no-flush", ClientTuning::no_flush(), 100 << 20)
}

/// Figure 4: the hash-table client (100 MB file) — latency stays flat.
pub fn figure4() -> LatencyTrace {
    latency_trace("hash-table", ClientTuning::hash_table(), 100 << 20)
}

/// Result of a latency-histogram experiment (Figures 5 and 6).
pub struct HistogramPair {
    /// Which configuration produced it.
    pub label: &'static str,
    /// Latency histogram against the filer.
    pub filer: Histogram,
    /// Latency histogram against the Linux server.
    pub knfsd: Histogram,
    /// Mean latency against the filer.
    pub filer_mean: SimDuration,
    /// Mean latency against the Linux server.
    pub knfsd_mean: SimDuration,
    /// Maximum latency against the filer (excluding the first call, as
    /// the paper does).
    pub filer_max: SimDuration,
    /// Maximum latency against the Linux server (excluding the first
    /// call).
    pub knfsd_max: SimDuration,
}

fn histogram_pair(label: &'static str, tuning: ClientTuning) -> HistogramPair {
    let size = 30 << 20;
    let filer_out = run_bonnie(&Scenario::new(tuning, ServerKind::Filer), size);
    let knfsd_out = run_bonnie(&Scenario::new(tuning, ServerKind::Knfsd), size);
    // The paper excludes the first data point (cold-start, ~1 ms).
    let f_lat = &filer_out.report.latencies[1..];
    let k_lat = &knfsd_out.report.latencies[1..];
    HistogramPair {
        label,
        filer: Histogram::from_samples(SimDuration::from_micros(60), 8, f_lat),
        knfsd: Histogram::from_samples(SimDuration::from_micros(60), 8, k_lat),
        filer_mean: nfsperf_bonnie::mean(f_lat),
        knfsd_mean: nfsperf_bonnie::mean(k_lat),
        filer_max: f_lat.iter().copied().max().unwrap_or(SimDuration::ZERO),
        knfsd_max: k_lat.iter().copied().max().unwrap_or(SimDuration::ZERO),
    }
}

impl HistogramPair {
    /// CSV rows: `bin_low_us,filer,knfsd` (last row is overflow).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bin_low_us,netapp_filer,linux_nfs_server\n");
        let w = self.filer.bin_width().as_micros();
        for (i, (f, k)) in self
            .filer
            .bins()
            .iter()
            .zip(self.knfsd.bins().iter())
            .enumerate()
        {
            out.push_str(&format!("{},{},{}\n", i as u64 * w, f, k));
        }
        out.push_str(&format!(
            "overflow,{},{}\n",
            self.filer.overflow(),
            self.knfsd.overflow()
        ));
        out
    }
}

/// Figure 5: latency histograms with the global kernel lock held across
/// `sock_sendmsg` (30 MB file). The *faster* server (the filer) shows
/// more slow calls.
pub fn figure5() -> HistogramPair {
    histogram_pair("normal (BKL held)", ClientTuning::hash_table())
}

/// Figure 6: the same histograms with the lock released around
/// `sock_sendmsg` — jitter collapses, minimum latency unchanged.
pub fn figure6() -> HistogramPair {
    histogram_pair("no lock", ClientTuning::full_patch())
}

/// Table 1: client memory write throughput (5 MB file) before and after
/// the lock modification, against both servers.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Filer, BKL held (paper: 115 MB/s).
    pub filer_normal: f64,
    /// Filer, lock released (paper: 140 MB/s).
    pub filer_no_lock: f64,
    /// Linux server, BKL held (paper: 138 MB/s).
    pub linux_normal: f64,
    /// Linux server, lock released (paper: 147 MB/s).
    pub linux_no_lock: f64,
}

/// Runs Table 1.
pub fn table1() -> Table1 {
    let size = 5 << 20;
    Table1 {
        filer_normal: write_throughput_mbps(
            &Scenario::new(ClientTuning::hash_table(), ServerKind::Filer),
            size,
        ),
        filer_no_lock: write_throughput_mbps(
            &Scenario::new(ClientTuning::full_patch(), ServerKind::Filer),
            size,
        ),
        linux_normal: write_throughput_mbps(
            &Scenario::new(ClientTuning::hash_table(), ServerKind::Knfsd),
            size,
        ),
        linux_no_lock: write_throughput_mbps(
            &Scenario::new(ClientTuning::full_patch(), ServerKind::Knfsd),
            size,
        ),
    }
}

/// The §3.5 comparison: memory write throughput against servers of
/// decreasing speed, with the stock (lock-holding) RPC layer, plus where
/// the writer's lock waits go.
pub struct SlowServerComparison {
    /// Memory write throughput against the filer, MB/s.
    pub filer_mbps: f64,
    /// Against the Linux server.
    pub knfsd_mbps: f64,
    /// Against the 100 Mb/s server.
    pub slow_mbps: f64,
    /// Fraction of all lock wait time blamed on the RPC transmit section
    /// (which contains `sock_sendmsg`) in the filer run.
    pub xmit_wait_fraction: f64,
    /// Sustained client network throughput during the filer run, MB/s.
    pub filer_net_mbps: f64,
    /// Sustained client network throughput during the knfsd run, MB/s.
    pub knfsd_net_mbps: f64,
}

/// Runs the slow-server comparison (5 MB file, BKL held).
pub fn slow_server_comparison() -> SlowServerComparison {
    let size = 5 << 20;
    let tuning = ClientTuning::hash_table();
    let filer = run_bonnie(&Scenario::new(tuning, ServerKind::Filer), size);
    let knfsd = run_bonnie(&Scenario::new(tuning, ServerKind::Knfsd), size);
    let slow = run_bonnie(&Scenario::new(tuning, ServerKind::Slow100), size);
    let xmit_wait = filer.lock_stats.wait_blamed_on("rpc_xmit").as_nanos() as f64;
    let total_wait = filer.lock_stats.total_wait.as_nanos().max(1) as f64;
    SlowServerComparison {
        filer_mbps: filer.report.write_mbps(),
        knfsd_mbps: knfsd.report.write_mbps(),
        slow_mbps: slow.report.write_mbps(),
        xmit_wait_fraction: xmit_wait / total_wait,
        filer_net_mbps: filer.net_tx_mbps,
        knfsd_net_mbps: knfsd.net_tx_mbps,
    }
}
