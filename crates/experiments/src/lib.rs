//! Experiment runners reproducing the paper's evaluation.
//!
//! [`figures`] has one runner per exhibit (Figures 1–7, Table 1, the
//! §3.5 slow-server comparison); [`ablations`] sweeps the design
//! parameters; [`transport`] compares UDP and TCP mounts under packet
//! loss; [`fleet`] scales client count against one shared server;
//! [`megafleet`] pushes that to 10k–1M flyweight clients through a
//! multi-stage fabric; [`scenario`] assembles worlds; [`render`] writes
//! CSVs and ASCII charts.

pub mod ablations;
pub mod arrivals;
pub mod cawl;
pub mod concurrency;
pub mod figures;
pub mod fleet;
pub mod megafleet;
pub mod netqos;
pub mod qos;
pub mod render;
pub mod scenario;
pub mod transport;

pub use ablations::{
    commit_threshold_sweep, cpu_ablation, mtu_ablation, nvram_sweep, slot_table_sweep,
    soft_limit_sweep, workload_comparison, wsize_sweep, CpuAblation, MtuAblation,
    WorkloadComparison,
};
pub use cawl::{
    cawl_cells, cawl_sweep, run_cawl, CawlCell, CawlSweep, CAWL_FILE_HALVES, CAWL_QUICK_RAM_SIZES,
    CAWL_QUICK_SERVERS, CAWL_RAM_SIZES, CAWL_SERVERS,
};
pub use concurrency::{concurrent_writers, future_work_comparison, ConcurrencyResult, Topology};
pub use fleet::{
    fleet_cells, fleet_sweep, jain_index, run_fleet, FleetCell, FleetConfig, FleetRun, FleetSweep,
    FLEET_CLIENT_COUNTS,
};
pub use megafleet::{
    bytes_for_count, megafleet_cells, megafleet_sweep, run_megafleet, MegaCell, MegaConfig,
    MegaRun, MegaSweep, MEGAFLEET_COUNTS, MEGAFLEET_FAITHFUL, MEGAFLEET_QUICK_COUNTS,
};
pub use figures::{
    figure1, figure2, figure3, figure4, figure5, figure6, figure7, paper_file_sizes,
    quick_file_sizes, slow_server_comparison, table1, throughput_sweep, HistogramPair,
    LatencyTrace, SlowServerComparison, Table1,
};
pub use arrivals::{OpenLoop, TrafficMix};
pub use netqos::{
    netqos_sweep, run_netqos, NetQosCell, NetQosConfig, NetQosRun, NetQosSweep, NetSched,
};
pub use qos::{
    assemble_qos_rows, qos_cells, qos_run_cells, qos_sweep, run_qos, QosCell, QosConfig, QosRun,
    QosSweep,
};
pub use render::{ascii_table, write_rows_csv, Series, Sweep};
pub use scenario::{
    run_bonnie, run_custom, run_local, run_local_with_ram, write_throughput_mbps, RunOutput,
    Scenario, ServerKind,
};
pub use transport::{transport_cells, transport_sweep, TransportRow, TransportSweep, LOSS_RATES};
