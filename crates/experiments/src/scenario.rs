//! Scenario builder: assembles a full world (client machine, network,
//! server) and runs the Bonnie benchmark in it.

use std::rc::Rc;

use nfsperf_bonnie::{BonnieConfig, BonnieReport};
use nfsperf_client::{ClientTuning, MountConfig, NfsFile, NfsMount};
use nfsperf_ext2::Ext2Fs;
use nfsperf_kernel::{CostTable, Kernel, KernelConfig, MemTuning};
use nfsperf_net::{Nic, NicSpec, Path};
use nfsperf_server::{NfsServer, ServerConfig, ServerStats};
use nfsperf_sim::{LockStats, ProfileRow, Sim};
use nfsperf_sunrpc::{Transport, XprtStats};
use nfsperf_tcp::TcpStats;

/// Which server the client mounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    /// The prototype Network Appliance F85.
    Filer,
    /// The four-way Linux knfsd on its bus-limited NIC.
    Knfsd,
    /// The generic server on 100 Mb/s Ethernet.
    Slow100,
    /// A faster-than-anything-in-the-paper prototype (memory-backed,
    /// wide concurrency) for the CAWL "faster server, slower client"
    /// re-test.
    Fast,
}

impl ServerKind {
    /// The server's configuration.
    pub fn server_config(self) -> ServerConfig {
        match self {
            ServerKind::Filer => ServerConfig::netapp_f85(),
            ServerKind::Knfsd => ServerConfig::linux_knfsd(),
            ServerKind::Slow100 => ServerConfig::slow_100bt(),
            ServerKind::Fast => ServerConfig::fast_prototype(),
        }
    }

    /// The server's NIC.
    pub fn nic_spec(self) -> NicSpec {
        match self {
            ServerKind::Filer => NicSpec::gigabit(),
            // The knfsd's Netgear GA 620T sits in a 32-bit/33 MHz PCI
            // slot; the paper observes ~26 MB/s sustained.
            ServerKind::Knfsd => NicSpec::bus_limited(26_000_000),
            ServerKind::Slow100 => NicSpec::fast_ethernet(),
            ServerKind::Fast => NicSpec::gigabit(),
        }
    }

    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ServerKind::Filer => "netapp-filer",
            ServerKind::Knfsd => "linux-nfs-server",
            ServerKind::Slow100 => "slow-100bt",
            ServerKind::Fast => "fast-prototype",
        }
    }
}

/// A complete experiment description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Server under test (for labels).
    pub server: ServerKind,
    /// Full server configuration (customisable for ablations).
    pub server_config: ServerConfig,
    /// Server NIC.
    pub server_nic: NicSpec,
    /// Client NIC (gigabit; jumbo for the MTU ablation).
    pub client_nic: NicSpec,
    /// Mount options including the client tuning.
    pub mount: MountConfig,
    /// Client RAM (the paper's client has 256 MB).
    pub ram_bytes: u64,
    /// Client CPUs (the paper's client is a dual P3).
    pub ncpus: usize,
    /// Client CPU cost table.
    pub costs: CostTable,
    /// Client dirty-memory thresholds (default: 2.4 `bdflush` ratios).
    pub mem: MemTuning,
    /// Deterministic seed.
    pub seed: u64,
    /// Record per-call latencies (disable for big sweeps).
    pub record_latencies: bool,
    /// Probability that a datagram transmitted by the client NIC is lost
    /// (requests and, over TCP, the client's ACKs). 0 everywhere except
    /// the transport loss sweep.
    pub loss: f64,
}

impl Scenario {
    /// The paper's test bed with the given tuning and server.
    pub fn new(tuning: ClientTuning, server: ServerKind) -> Scenario {
        Scenario {
            server,
            server_config: server.server_config(),
            server_nic: server.nic_spec(),
            client_nic: NicSpec::gigabit(),
            mount: MountConfig {
                tuning,
                ..MountConfig::default()
            },
            ram_bytes: 256 << 20,
            ncpus: 2,
            costs: CostTable::default(),
            mem: MemTuning::default(),
            seed: 0x1f5,
            record_latencies: true,
            loss: 0.0,
        }
    }

    /// Enables 9000-byte jumbo frames on both ends (the paper's proposed
    /// future work).
    pub fn with_jumbo_frames(mut self) -> Scenario {
        self.client_nic.mtu = 9000;
        self.server_nic.mtu = 9000;
        self
    }

    /// Mounts over the given RPC transport (default UDP).
    pub fn with_transport(mut self, transport: Transport) -> Scenario {
        self.mount.transport = transport;
        self
    }

    /// Drops each client-transmitted datagram with probability `loss`.
    pub fn with_loss(mut self, loss: f64) -> Scenario {
        self.loss = loss;
        self
    }

    /// The client tuning in use.
    pub fn tuning(&self) -> ClientTuning {
        self.mount.tuning
    }
}

/// Everything measured in one run.
pub struct RunOutput {
    /// The benchmark's own report.
    pub report: BonnieReport,
    /// Client mount counters.
    pub mount_stats: nfsperf_client::MountStats,
    /// RPC transport counters.
    pub xprt_stats: XprtStats,
    /// Server counters.
    pub server_stats: ServerStats,
    /// Global-kernel-lock contention stats.
    pub lock_stats: LockStats,
    /// Kernel execution profile, hottest first.
    pub profile: Vec<ProfileRow>,
    /// Mean payload throughput on the client's transmit side, MB/s.
    pub net_tx_mbps: f64,
    /// Largest gap between consecutive WRITE-sized (>= 4 KiB) datagram
    /// departures on the client wire — the paper's "the latency spikes do
    /// not appear in write requests on the wire" check.
    pub max_wire_gap: Option<nfsperf_sim::SimDuration>,
    /// IP fragments the client NIC generated.
    pub fragments_sent: u64,
    /// Peak dirty pages on the client.
    pub peak_dirty_pages: usize,
    /// Times the writer hit the memory hard limit.
    pub throttle_events: u64,
    /// Total time writers spent throttled (blocked or doing foreground
    /// writeback).
    pub throttle_time: nfsperf_sim::SimDuration,
    /// The client's dirty-page hard limit, in pages.
    pub hard_limit_pages: usize,
    /// Datagrams the client NIC dropped (zero unless `Scenario::loss`).
    pub client_drops: u64,
    /// TCP endpoint counters, when the mount ran over TCP.
    pub tcp_stats: Option<TcpStats>,
}

/// Runs the Bonnie sequential-write benchmark of `file_size` bytes under
/// the scenario. One fresh world per call; fully deterministic for a
/// given scenario.
pub fn run_bonnie(scenario: &Scenario, file_size: u64) -> RunOutput {
    let sim = Sim::new();
    let kernel = Kernel::new(
        &sim,
        KernelConfig {
            ncpus: scenario.ncpus,
            ram_bytes: scenario.ram_bytes,
            seed: scenario.seed,
            costs: scenario.costs.clone(),
            mem: scenario.mem,
        },
    );
    let (cnic, crx) = Nic::with_loss(&sim, "client", scenario.client_nic, scenario.loss, scenario.seed);
    let (snic, srx) = Nic::new(&sim, "server", scenario.server_nic);
    let to_server = Path::new(Rc::clone(&cnic), snic, Path::default_latency());
    let spawn_server = match scenario.mount.transport {
        Transport::Udp => NfsServer::spawn,
        Transport::Tcp => NfsServer::spawn_tcp,
    };
    let server = spawn_server(
        &sim,
        srx,
        to_server.reversed(),
        scenario.server_config.clone(),
    );
    let mount = NfsMount::mount(&kernel, to_server, crx, scenario.mount.clone());

    let config = BonnieConfig {
        record_latencies: scenario.record_latencies,
        ..BonnieConfig::new(file_size)
    };
    let m2 = Rc::clone(&mount);
    let s2 = sim.clone();
    let report = sim.run_until(async move {
        let file = m2.create("bonnie.scratch").await.expect("create");
        nfsperf_bonnie::run(&s2, &file, &config).await
    });

    RunOutput {
        report,
        mount_stats: mount.stats(),
        xprt_stats: mount.xprt().stats(),
        server_stats: server.stats(),
        lock_stats: kernel.bkl.stats(),
        profile: kernel.profiler.report(),
        net_tx_mbps: cnic.tx_throughput_mbps(),
        max_wire_gap: cnic.max_tx_gap(4096),
        fragments_sent: cnic.fragments_sent(),
        peak_dirty_pages: kernel.mem.peak_dirty_pages(),
        throttle_events: kernel.mem.throttle_events(),
        throttle_time: kernel.mem.throttle_time(),
        hard_limit_pages: kernel.mem.hard_limit(),
        client_drops: cnic.drops(),
        tcp_stats: mount.xprt().tcp().map(|x| x.tcp_stats()),
    }
}

/// Builds the scenario's world and runs an arbitrary workload closure
/// over the freshly created benchmark file (for non-sequential
/// workloads such as [`nfsperf_bonnie::run_random`]).
pub fn run_custom<F, Fut>(scenario: &Scenario, workload: F) -> BonnieReport
where
    F: FnOnce(Sim, NfsFile) -> Fut + 'static,
    Fut: std::future::Future<Output = BonnieReport> + 'static,
{
    let sim = Sim::new();
    let kernel = Kernel::new(
        &sim,
        KernelConfig {
            ncpus: scenario.ncpus,
            ram_bytes: scenario.ram_bytes,
            seed: scenario.seed,
            costs: scenario.costs.clone(),
            mem: scenario.mem,
        },
    );
    let (cnic, crx) = Nic::with_loss(&sim, "client", scenario.client_nic, scenario.loss, scenario.seed);
    let (snic, srx) = Nic::new(&sim, "server", scenario.server_nic);
    let to_server = Path::new(Rc::clone(&cnic), snic, Path::default_latency());
    let spawn_server = match scenario.mount.transport {
        Transport::Udp => NfsServer::spawn,
        Transport::Tcp => NfsServer::spawn_tcp,
    };
    let _server = spawn_server(
        &sim,
        srx,
        to_server.reversed(),
        scenario.server_config.clone(),
    );
    let mount = NfsMount::mount(&kernel, to_server, crx, scenario.mount.clone());
    let s2 = sim.clone();
    sim.run_until(async move {
        let file = mount.create("custom.scratch").await.expect("create");
        workload(s2, file).await
    })
}

/// Runs the benchmark against the local ext2 model (the Figure 1/7
/// baseline).
pub fn run_local(file_size: u64, record_latencies: bool) -> BonnieReport {
    run_local_with_ram(file_size, 256 << 20, record_latencies)
}

/// Like [`run_local`] with an explicit RAM size (for scaled-down tests).
pub fn run_local_with_ram(file_size: u64, ram_bytes: u64, record_latencies: bool) -> BonnieReport {
    let sim = Sim::new();
    let kernel = Kernel::new(
        &sim,
        KernelConfig {
            ram_bytes,
            ..KernelConfig::default()
        },
    );
    let fs = Ext2Fs::mount(&kernel);
    let config = BonnieConfig {
        record_latencies,
        ..BonnieConfig::new(file_size)
    };
    let s2 = sim.clone();
    sim.run_until(async move {
        let file = fs.create("bonnie.scratch");
        nfsperf_bonnie::run(&s2, &file, &config).await
    })
}

/// Convenience: run and return only write-phase throughput in MB/s.
pub fn write_throughput_mbps(scenario: &Scenario, file_size: u64) -> f64 {
    let mut scenario = scenario.clone();
    scenario.record_latencies = false;
    run_bonnie(&scenario, file_size).report.write_mbps()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_defaults_match_testbed() {
        let s = Scenario::new(ClientTuning::full_patch(), ServerKind::Filer);
        assert_eq!(s.ram_bytes, 256 << 20);
        assert_eq!(s.ncpus, 2);
        assert_eq!(s.mount.slots, 16);
        assert_eq!(s.tuning(), ClientTuning::full_patch());
    }

    #[test]
    fn jumbo_frames_set_both_mtus() {
        let s = Scenario::new(ClientTuning::full_patch(), ServerKind::Filer).with_jumbo_frames();
        assert_eq!(s.client_nic.mtu, 9000);
        assert_eq!(s.server_nic.mtu, 9000);
    }

    #[test]
    fn small_run_produces_consistent_output() {
        let s = Scenario::new(ClientTuning::full_patch(), ServerKind::Filer);
        let out = run_bonnie(&s, 1 << 20);
        assert_eq!(out.report.file_size, 1 << 20);
        assert_eq!(out.server_stats.write_bytes, 1 << 20);
        assert!(out.report.write_mbps() > 0.0);
        assert!(out.report.flush_mbps() <= out.report.write_mbps());
        assert_eq!(out.report.latencies.len(), 128);
        assert!(out.fragments_sent > 0);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let s = Scenario::new(ClientTuning::hash_table(), ServerKind::Filer);
        let a = run_bonnie(&s, 1 << 20);
        let b = run_bonnie(&s, 1 << 20);
        assert_eq!(a.report.latencies, b.report.latencies);
        assert_eq!(a.report.write_elapsed, b.report.write_elapsed);
    }

    #[test]
    fn different_seed_different_jitter() {
        let s1 = Scenario::new(ClientTuning::hash_table(), ServerKind::Filer);
        let s2 = Scenario {
            seed: 999,
            ..s1.clone()
        };
        let a = run_bonnie(&s1, 1 << 20);
        let b = run_bonnie(&s2, 1 << 20);
        assert_ne!(
            a.report.latencies, b.report.latencies,
            "CPU jitter should differ across seeds"
        );
    }

    #[test]
    fn local_run_is_memory_fast() {
        let report = run_local(4 << 20, false);
        assert!(
            report.write_mbps() > 100.0,
            "local writes should be memory speed, got {}",
            report.write_mbps()
        );
    }
}
