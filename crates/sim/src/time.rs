//! Simulated time.
//!
//! The simulator measures time in nanoseconds since the start of the run.
//! [`SimTime`] is an absolute instant and [`SimDuration`] a span; both are
//! thin wrappers around `u64` nanosecond counts so that arithmetic stays
//! exact and deterministic across platforms.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulated clock, in nanoseconds since start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the elapsed duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated time never runs
    /// backwards, so this indicates a bookkeeping bug in the caller.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// Returns the time as floating-point seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from floating-point seconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimDuration::from_secs_f64: invalid seconds {s}"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration as floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as floating-point milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as floating-point microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        assert_eq!(t.as_nanos(), 10_000);
        assert_eq!((t - SimTime::ZERO).as_micros(), 10);
        assert_eq!(
            (SimDuration::from_micros(4) * 3).as_micros(),
            12,
            "scalar multiply"
        );
        assert_eq!((SimDuration::from_micros(9) / 3).as_micros(), 3);
    }

    #[test]
    fn since_measures_elapsed() {
        let a = SimTime(100);
        let b = SimTime(350);
        assert_eq!(b.since(a).as_nanos(), 250);
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn since_panics_on_backwards_time() {
        let _ = SimTime(10).since(SimTime(20));
    }

    #[test]
    fn saturating_sub_clamps() {
        let d = SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(9));
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn float_conversions_round_trip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-12);
        assert!((d.as_millis_f64() - 1250.0).abs() < 1e-9);
    }
}
