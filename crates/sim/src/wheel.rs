//! Hierarchical timer wheel: the executor's pending-timer store.
//!
//! Replaces the original `BinaryHeap<Reverse<TimerEntry>>` on the
//! simulator's hottest path. Every `Sim::sleep` is one insert and one
//! pop; with tens of millions of timers per benchmark run the heap's
//! `O(log n)` sift and its comparator dominated the profile. The wheel
//! makes inserts `O(1)` and pops `O(levels)` with small constants:
//!
//! - 11 levels of 64 slots each (6 bits per level, 66 bits ≥ the full
//!   `u64` nanosecond clock); level `l` slots are `64^l` ns wide,
//! - one occupancy bitmask word per level, so "earliest non-empty slot"
//!   is a rotate plus a trailing-zeros count, never a scan,
//! - expiring slots above level 0 cascade their entries down; level-0
//!   slots are one nanosecond wide, so every entry in one holds the
//!   same deadline and a sort by registration sequence reproduces the
//!   heap's exact `(deadline, seq)` firing order bit for bit.
//!
//! The executor pops entries one at a time (each wake can re-arm
//! timers), so the wheel buffers the current expiring slot in
//! [`TimerWheel::pending`] and drains it before advancing. New
//! registrations always carry deadlines strictly after `now`, so they
//! can never tie with (or precede) the buffered batch.

/// Bits of the clock consumed per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels needed so `LEVELS * SLOT_BITS >= 64`.
const LEVELS: usize = 11;

/// One pending timer: fires at `deadline`; equal deadlines fire in
/// ascending `seq` (registration) order.
#[derive(Debug)]
pub struct WheelEntry<T> {
    /// Absolute deadline in nanoseconds.
    pub deadline: u64,
    /// Registration sequence number, unique per wheel.
    pub seq: u64,
    /// The registered payload (the executor stores a `Waker`).
    pub payload: T,
}

/// The wheel itself, generic over the payload so tests can model it
/// with plain integers.
///
/// Entries live by value in slab-style slot buffers: one flat
/// `[[Vec; SLOTS]; LEVELS]` array (no per-level heap spine) whose `Vec`
/// capacities are recycled through [`TimerWheel::scratch`] and
/// [`TimerWheel::pending`] instead of being freed on every drain —
/// steady-state operation performs no allocation at all once the
/// circulating buffers have grown to the working set.
pub struct TimerWheel<T> {
    /// `slots[level][slot]` holds entries whose deadline maps there
    /// relative to `horizon`.
    slots: Box<[[Vec<WheelEntry<T>>; SLOTS]; LEVELS]>,
    /// Per-level occupancy bitmasks; bit `s` set iff `slots[level][s]`
    /// is non-empty.
    occupied: [u64; LEVELS],
    /// The wheel's position: no stored entry's deadline is below it.
    horizon: u64,
    /// Entries of the currently expiring (level-0) slot, sorted by
    /// *descending* `seq` and drained from the back (ascending `seq`),
    /// so draining is a pop with no element shifting.
    pending: Vec<WheelEntry<T>>,
    /// Recycled empty buffer left in a slot's place when the slot is
    /// drained, so the slot's capacity survives the drain.
    scratch: Vec<WheelEntry<T>>,
    /// Live entry count (stored + still pending).
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel positioned at time zero.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            slots: Box::new(std::array::from_fn(|_| std::array::from_fn(|_| Vec::new()))),
            occupied: [0; LEVELS],
            horizon: 0,
            pending: Vec::new(),
            scratch: Vec::new(),
            len: 0,
        }
    }

    /// Number of timers waiting to fire.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The level at which `deadline` and the horizon first share a slot
    /// index: the highest 6-bit group where they differ. Picking the
    /// level from the XOR (rather than from the magnitude of the delay)
    /// guarantees the target slot is strictly ahead of the wheel's
    /// position at that level — a pure-delay rule can wrap a deadline
    /// like `horizon=63, deadline=4158` into a slot the wheel believes
    /// it has already passed.
    #[inline]
    fn level_for(xor: u64) -> usize {
        if xor == 0 {
            0
        } else {
            ((63 - xor.leading_zeros()) / SLOT_BITS) as usize
        }
    }

    #[inline]
    fn slot_index(deadline: u64, level: usize) -> usize {
        ((deadline >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
    }

    fn store(&mut self, entry: WheelEntry<T>) {
        debug_assert!(entry.deadline >= self.horizon, "timer below the horizon");
        let level = Self::level_for(entry.deadline ^ self.horizon);
        let slot = Self::slot_index(entry.deadline, level);
        self.slots[level][slot].push(entry);
        self.occupied[level] |= 1 << slot;
    }

    /// Registers a timer.
    ///
    /// `deadline` must be at or after the last popped entry's deadline
    /// (simulated time never runs backwards).
    pub fn push(&mut self, deadline: u64, seq: u64, payload: T) {
        self.store(WheelEntry {
            deadline,
            seq,
            payload,
        });
        self.len += 1;
    }

    /// Absolute start time of the next pass over `slot` at `level`,
    /// given the wheel's current position.
    #[inline]
    fn slot_start(&self, level: usize, slot: usize) -> u64 {
        let shift = SLOT_BITS as usize * level;
        let cur = self.horizon >> shift;
        let cur_slot = (cur & (SLOTS as u64 - 1)) as usize;
        let base = cur - cur_slot as u64;
        let passed = slot < cur_slot;
        (base + slot as u64 + if passed { SLOTS as u64 } else { 0 }) << shift
    }

    /// Earliest occupied slot of `level` as `(start_time, slot)`, if any.
    #[inline]
    fn earliest_slot(&self, level: usize) -> Option<(u64, usize)> {
        let mask = self.occupied[level];
        if mask == 0 {
            return None;
        }
        let shift = SLOT_BITS as usize * level;
        let cur_slot = ((self.horizon >> shift) & (SLOTS as u64 - 1)) as u32;
        // Rotate so the current slot is bit 0; the first set bit of the
        // rotated mask is then the next slot the wheel reaches.
        let rel = mask.rotate_right(cur_slot).trailing_zeros() as usize;
        let slot = (cur_slot as usize + rel) % SLOTS;
        Some((self.slot_start(level, slot), slot))
    }

    /// Removes and returns the earliest timer: smallest `(deadline,
    /// seq)` over everything pushed and not yet popped.
    pub fn pop(&mut self) -> Option<WheelEntry<T>> {
        if let Some(entry) = self.take_pending() {
            return Some(entry);
        }
        if self.len == 0 {
            return None;
        }
        loop {
            // The globally earliest entry lives in the occupied slot with
            // the smallest start time; on ties the *highest* level must
            // cascade first, since its slot may contain deadlines equal
            // to the lower level's (with earlier registration seqs).
            let mut best: Option<(u64, usize, usize)> = None;
            for level in 0..LEVELS {
                if let Some((start, slot)) = self.earliest_slot(level) {
                    match best {
                        Some((bs, _, _)) if bs < start => {}
                        _ => best = Some((start, level, slot)),
                    }
                }
            }
            let (start, level, slot) = best.expect("len > 0 but wheel empty");
            // Claim the slot's entries wholesale, leaving the recycled
            // scratch buffer (empty, capacity retained) in its place so
            // the drain frees nothing and the next store reallocates
            // nothing.
            let mut entries = std::mem::replace(
                &mut self.slots[level][slot],
                std::mem::take(&mut self.scratch),
            );
            self.occupied[level] &= !(1 << slot);
            // Advancing to the slot's start is safe: every stored entry
            // fires at or after it.
            debug_assert!(start >= self.horizon);
            self.horizon = start;
            if level == 0 {
                // One-nanosecond slot: every entry shares `start` as its
                // deadline; seq order is the heap's tie-break. Descending
                // sort so `take_pending` pops ascending from the back.
                if entries.len() > 1 {
                    entries.sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
                }
                debug_assert!(self.pending.is_empty());
                self.scratch = std::mem::replace(&mut self.pending, entries);
                return self.take_pending();
            }
            // Cascade the whole slot in one pass: relative to the new
            // horizon each entry's delta shrank below this level's span,
            // so each lands strictly lower and the loop terminates.
            for entry in entries.drain(..) {
                self.store(entry);
            }
            self.scratch = entries;
        }
    }

    fn take_pending(&mut self) -> Option<WheelEntry<T>> {
        let entry = self.pending.pop()?;
        self.len -= 1;
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimerWheel<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = wheel.pop() {
            out.push((e.deadline, e.seq));
        }
        out
    }

    #[test]
    fn empty_wheel_pops_none() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        assert!(w.is_empty());
        assert!(w.pop().is_none());
    }

    #[test]
    fn single_timer_round_trips() {
        let mut w = TimerWheel::new();
        w.push(1_000_000, 0, 7u32);
        let e = w.pop().unwrap();
        assert_eq!((e.deadline, e.seq, e.payload), (1_000_000, 0, 7));
        assert!(w.pop().is_none());
    }

    #[test]
    fn pops_in_deadline_order() {
        let mut w = TimerWheel::new();
        for (i, d) in [5_000u64, 10, 1 << 40, 64, 63, 4096, 1].iter().enumerate() {
            w.push(*d, i as u64, 0u32);
        }
        let fired: Vec<u64> = drain(&mut w).iter().map(|(d, _)| *d).collect();
        assert_eq!(fired, vec![1, 10, 63, 64, 4096, 5_000, 1 << 40]);
    }

    #[test]
    fn equal_deadlines_fire_in_seq_order() {
        let mut w = TimerWheel::new();
        for seq in 0..10u64 {
            w.push(777, seq, 0u32);
        }
        assert_eq!(
            drain(&mut w),
            (0..10).map(|s| (777, s)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn late_registration_with_earlier_seqless_deadline_still_sorts() {
        // A far timer registered first (low seq) cascades down next to a
        // near-in-time registration made later (high seq) for the same
        // deadline; seq must still break the tie.
        let mut w = TimerWheel::new();
        w.push(100_000, 0, 0u32); // registered early, far away
        w.push(50, 1, 0u32);
        assert_eq!(w.pop().unwrap().deadline, 50);
        // Now the wheel sits at 50; register the same deadline again
        // with a later seq.
        w.push(100_000, 2, 0u32);
        assert_eq!(drain(&mut w), vec![(100_000, 0), (100_000, 2)]);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut w = TimerWheel::new();
        w.push(10, 0, 0u32);
        w.push(20, 1, 0u32);
        assert_eq!(w.pop().unwrap().deadline, 10);
        // Push between pops, after the wheel advanced to 10.
        w.push(15, 2, 0u32);
        w.push(1 << 30, 3, 0u32);
        assert_eq!(w.pop().unwrap().deadline, 15);
        assert_eq!(w.pop().unwrap().deadline, 20);
        assert_eq!(w.pop().unwrap().deadline, 1 << 30);
        assert!(w.pop().is_none());
    }

    #[test]
    fn len_tracks_push_and_pop() {
        let mut w = TimerWheel::new();
        for i in 0..5u64 {
            w.push(100 + i, i, 0u32);
        }
        assert_eq!(w.len(), 5);
        w.pop();
        assert_eq!(w.len(), 4);
        drain(&mut w);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn huge_deadline_span() {
        let mut w = TimerWheel::new();
        w.push(u64::MAX - 1, 0, 0u32);
        w.push(1, 1, 0u32);
        assert_eq!(w.pop().unwrap().deadline, 1);
        assert_eq!(w.pop().unwrap().deadline, u64::MAX - 1);
    }

    #[test]
    fn payloads_drop_cleanly_when_wheel_dropped_mid_drain() {
        use std::rc::Rc;
        let tracker = Rc::new(());
        {
            let mut w = TimerWheel::new();
            for seq in 0..4u64 {
                w.push(9, seq, Rc::clone(&tracker));
            }
            let _ = w.pop(); // moves one entry out of the pending buffer
        }
        // 1 popped + 3 dropped with the wheel; no leaks or double-frees.
        assert_eq!(Rc::strong_count(&tracker), 1);
    }
}
