//! Hierarchical timer wheel: the executor's pending-timer store.
//!
//! Replaces the original `BinaryHeap<Reverse<TimerEntry>>` on the
//! simulator's hottest path. Every `Sim::sleep` is one insert and one
//! pop; with tens of millions of timers per benchmark run the heap's
//! `O(log n)` sift and its comparator dominated the profile. The wheel
//! makes inserts `O(1)` and pops `O(levels)` with small constants:
//!
//! - 11 levels of 64 slots each (6 bits per level, 66 bits ≥ the full
//!   `u64` nanosecond clock); level `l` slots are `64^l` ns wide,
//! - one occupancy bitmask word per level, so "earliest non-empty slot"
//!   is a rotate plus a trailing-zeros count, never a scan,
//! - expiring slots above level 0 cascade their entries down; level-0
//!   slots are one nanosecond wide, so every entry in one holds the
//!   same deadline and a sort by registration sequence reproduces the
//!   heap's exact `(deadline, seq)` firing order bit for bit.
//!
//! The executor pops entries one at a time (each wake can re-arm
//! timers), so the wheel buffers the current expiring slot in
//! [`TimerWheel::pending`] and drains it before advancing. New
//! registrations always carry deadlines strictly after `now`, so they
//! can never tie with (or precede) the buffered batch.

/// Bits of the clock consumed per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels needed so `LEVELS * SLOT_BITS >= 64`.
const LEVELS: usize = 11;

/// One pending timer: fires at `deadline`; equal deadlines fire in
/// ascending `seq` (registration) order.
#[derive(Debug)]
pub struct WheelEntry<T> {
    /// Absolute deadline in nanoseconds.
    pub deadline: u64,
    /// Registration sequence number, unique per wheel.
    pub seq: u64,
    /// The registered payload (the executor stores a `Waker`).
    pub payload: T,
}

/// The wheel itself, generic over the payload so tests can model it
/// with plain integers.
///
/// Entries live in one slab (`entries` plus a `free` index list); each
/// `slots[level][slot]` is just the head of an intrusive singly-linked
/// chain through the slab's `next` fields. Pushing links an index,
/// cascading relinks indices (no entry is moved or copied), and
/// draining a level-0 slot collects indices into the reused
/// [`TimerWheel::pending`] buffer — so once the slab and the two index
/// buffers have grown to the working set, steady-state operation
/// performs no allocation at all, no matter which slots the advancing
/// horizon touches next. (The previous per-slot `Vec` storage recycled
/// only one scratch buffer, so every first touch of a slot — and every
/// capacity redistribution after a drain — still allocated.)
pub struct TimerWheel<T> {
    /// Slab of entry records; `free` lists the vacant indices.
    entries: Vec<SlabEntry<T>>,
    free: Vec<u32>,
    /// `slots[level][slot]` holds the chain head (or [`NIL`]) of entries
    /// whose deadline maps there relative to `horizon`.
    slots: Box<[[u32; SLOTS]; LEVELS]>,
    /// Per-level occupancy bitmasks; bit `s` set iff `slots[level][s]`
    /// is non-empty.
    occupied: [u64; LEVELS],
    /// Bit `l` set iff `occupied[l] != 0`, so the pop scan visits only
    /// levels that hold timers (typically two or three of the eleven).
    level_mask: u16,
    /// The wheel's position: no stored entry's deadline is below it.
    horizon: u64,
    /// Indices of the currently expiring (level-0) slot, sorted by
    /// *descending* `seq` and drained from the back (ascending `seq`),
    /// so draining is a pop with no element shifting.
    pending: Vec<u32>,
    /// Live entry count (stored + still pending).
    len: usize,
}

/// Chain terminator / vacant-slot marker.
const NIL: u32 = u32::MAX;

/// One slab record: a [`WheelEntry`] plus its chain link. The payload
/// is an `Option` only so removal can move it out without unsafe code;
/// stored entries always hold `Some`.
struct SlabEntry<T> {
    deadline: u64,
    seq: u64,
    next: u32,
    payload: Option<T>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel positioned at time zero.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            entries: Vec::new(),
            free: Vec::new(),
            slots: Box::new([[NIL; SLOTS]; LEVELS]),
            occupied: [0; LEVELS],
            level_mask: 0,
            horizon: 0,
            pending: Vec::new(),
            len: 0,
        }
    }

    /// Number of timers waiting to fire.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The level at which `deadline` and the horizon first share a slot
    /// index: the highest 6-bit group where they differ. Picking the
    /// level from the XOR (rather than from the magnitude of the delay)
    /// guarantees the target slot is strictly ahead of the wheel's
    /// position at that level — a pure-delay rule can wrap a deadline
    /// like `horizon=63, deadline=4158` into a slot the wheel believes
    /// it has already passed.
    #[inline]
    fn level_for(xor: u64) -> usize {
        if xor == 0 {
            0
        } else {
            ((63 - xor.leading_zeros()) / SLOT_BITS) as usize
        }
    }

    #[inline]
    fn slot_index(deadline: u64, level: usize) -> usize {
        ((deadline >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
    }

    /// Links slab index `idx` into the slot its deadline maps to.
    fn store(&mut self, idx: u32) {
        let deadline = self.entries[idx as usize].deadline;
        debug_assert!(deadline >= self.horizon, "timer below the horizon");
        let level = Self::level_for(deadline ^ self.horizon);
        let slot = Self::slot_index(deadline, level);
        self.entries[idx as usize].next = self.slots[level][slot];
        self.slots[level][slot] = idx;
        self.occupied[level] |= 1 << slot;
        self.level_mask |= 1 << level;
    }

    /// Registers a timer.
    ///
    /// `deadline` must be at or after the last popped entry's deadline
    /// (simulated time never runs backwards).
    pub fn push(&mut self, deadline: u64, seq: u64, payload: T) {
        let entry = SlabEntry {
            deadline,
            seq,
            next: NIL,
            payload: Some(payload),
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.entries[idx as usize] = entry;
                idx
            }
            None => {
                let idx = u32::try_from(self.entries.len()).expect("timer slab overflow");
                self.entries.push(entry);
                idx
            }
        };
        self.store(idx);
        self.len += 1;
    }

    /// Absolute start time of the next pass over `slot` at `level`,
    /// given the wheel's current position.
    #[inline]
    fn slot_start(&self, level: usize, slot: usize) -> u64 {
        let shift = SLOT_BITS as usize * level;
        let cur = self.horizon >> shift;
        let cur_slot = (cur & (SLOTS as u64 - 1)) as usize;
        let base = cur - cur_slot as u64;
        let passed = slot < cur_slot;
        (base + slot as u64 + if passed { SLOTS as u64 } else { 0 }) << shift
    }

    /// Earliest occupied slot of `level` as `(start_time, slot)`, if any.
    #[inline]
    fn earliest_slot(&self, level: usize) -> Option<(u64, usize)> {
        let mask = self.occupied[level];
        if mask == 0 {
            return None;
        }
        let shift = SLOT_BITS as usize * level;
        let cur_slot = ((self.horizon >> shift) & (SLOTS as u64 - 1)) as u32;
        // Rotate so the current slot is bit 0; the first set bit of the
        // rotated mask is then the next slot the wheel reaches.
        let rel = mask.rotate_right(cur_slot).trailing_zeros() as usize;
        let slot = (cur_slot as usize + rel) % SLOTS;
        Some((self.slot_start(level, slot), slot))
    }

    /// Removes and returns the earliest timer: smallest `(deadline,
    /// seq)` over everything pushed and not yet popped.
    pub fn pop(&mut self) -> Option<WheelEntry<T>> {
        if let Some(entry) = self.take_pending() {
            return Some(entry);
        }
        if self.len == 0 {
            return None;
        }
        loop {
            // The globally earliest entry lives in the occupied slot with
            // the smallest start time; on ties the *highest* level must
            // cascade first, since its slot may contain deadlines equal
            // to the lower level's (with earlier registration seqs).
            let mut best: Option<(u64, usize, usize)> = None;
            let mut lvls = self.level_mask;
            while lvls != 0 {
                let level = lvls.trailing_zeros() as usize;
                lvls &= lvls - 1;
                if let Some((start, slot)) = self.earliest_slot(level) {
                    match best {
                        Some((bs, _, _)) if bs < start => {}
                        _ => best = Some((start, level, slot)),
                    }
                }
            }
            let (start, level, slot) = best.expect("len > 0 but wheel empty");
            // Claim the slot's whole chain and advance; every stored
            // entry fires at or after the slot's start.
            let mut head = std::mem::replace(&mut self.slots[level][slot], NIL);
            self.occupied[level] &= !(1 << slot);
            if self.occupied[level] == 0 {
                self.level_mask &= !(1 << level);
            }
            debug_assert!(start >= self.horizon);
            self.horizon = start;
            if level == 0 {
                // Single-entry slot — the overwhelmingly common case at
                // nanosecond granularity: return it without the pending
                // buffer round trip (push, sort check, pop).
                if self.entries[head as usize].next == NIL {
                    let slot = &mut self.entries[head as usize];
                    let entry = WheelEntry {
                        deadline: slot.deadline,
                        seq: slot.seq,
                        payload: slot.payload.take().expect("stored entry has a payload"),
                    };
                    self.free.push(head);
                    self.len -= 1;
                    return Some(entry);
                }
                // One-nanosecond slot: every entry shares `start` as its
                // deadline; seq order is the heap's tie-break. Descending
                // sort so `take_pending` pops ascending from the back.
                debug_assert!(self.pending.is_empty());
                while head != NIL {
                    self.pending.push(head);
                    head = self.entries[head as usize].next;
                }
                if self.pending.len() > 1 {
                    let entries = &self.entries;
                    self.pending
                        .sort_unstable_by_key(|&i| std::cmp::Reverse(entries[i as usize].seq));
                }
                return self.take_pending();
            }
            // Cascade the whole chain in one relink pass: relative to the
            // new horizon each entry's delta shrank below this level's
            // span, so each lands strictly lower and the loop terminates.
            // Payloads never move — only the `next` links change.
            while head != NIL {
                let next = self.entries[head as usize].next;
                self.store(head);
                head = next;
            }
        }
    }

    fn take_pending(&mut self) -> Option<WheelEntry<T>> {
        let idx = self.pending.pop()?;
        let slot = &mut self.entries[idx as usize];
        let entry = WheelEntry {
            deadline: slot.deadline,
            seq: slot.seq,
            payload: slot.payload.take().expect("pending entry has a payload"),
        };
        self.free.push(idx);
        self.len -= 1;
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimerWheel<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = wheel.pop() {
            out.push((e.deadline, e.seq));
        }
        out
    }

    #[test]
    fn empty_wheel_pops_none() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        assert!(w.is_empty());
        assert!(w.pop().is_none());
    }

    #[test]
    fn single_timer_round_trips() {
        let mut w = TimerWheel::new();
        w.push(1_000_000, 0, 7u32);
        let e = w.pop().unwrap();
        assert_eq!((e.deadline, e.seq, e.payload), (1_000_000, 0, 7));
        assert!(w.pop().is_none());
    }

    #[test]
    fn pops_in_deadline_order() {
        let mut w = TimerWheel::new();
        for (i, d) in [5_000u64, 10, 1 << 40, 64, 63, 4096, 1].iter().enumerate() {
            w.push(*d, i as u64, 0u32);
        }
        let fired: Vec<u64> = drain(&mut w).iter().map(|(d, _)| *d).collect();
        assert_eq!(fired, vec![1, 10, 63, 64, 4096, 5_000, 1 << 40]);
    }

    #[test]
    fn equal_deadlines_fire_in_seq_order() {
        let mut w = TimerWheel::new();
        for seq in 0..10u64 {
            w.push(777, seq, 0u32);
        }
        assert_eq!(
            drain(&mut w),
            (0..10).map(|s| (777, s)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn late_registration_with_earlier_seqless_deadline_still_sorts() {
        // A far timer registered first (low seq) cascades down next to a
        // near-in-time registration made later (high seq) for the same
        // deadline; seq must still break the tie.
        let mut w = TimerWheel::new();
        w.push(100_000, 0, 0u32); // registered early, far away
        w.push(50, 1, 0u32);
        assert_eq!(w.pop().unwrap().deadline, 50);
        // Now the wheel sits at 50; register the same deadline again
        // with a later seq.
        w.push(100_000, 2, 0u32);
        assert_eq!(drain(&mut w), vec![(100_000, 0), (100_000, 2)]);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut w = TimerWheel::new();
        w.push(10, 0, 0u32);
        w.push(20, 1, 0u32);
        assert_eq!(w.pop().unwrap().deadline, 10);
        // Push between pops, after the wheel advanced to 10.
        w.push(15, 2, 0u32);
        w.push(1 << 30, 3, 0u32);
        assert_eq!(w.pop().unwrap().deadline, 15);
        assert_eq!(w.pop().unwrap().deadline, 20);
        assert_eq!(w.pop().unwrap().deadline, 1 << 30);
        assert!(w.pop().is_none());
    }

    #[test]
    fn len_tracks_push_and_pop() {
        let mut w = TimerWheel::new();
        for i in 0..5u64 {
            w.push(100 + i, i, 0u32);
        }
        assert_eq!(w.len(), 5);
        w.pop();
        assert_eq!(w.len(), 4);
        drain(&mut w);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn huge_deadline_span() {
        let mut w = TimerWheel::new();
        w.push(u64::MAX - 1, 0, 0u32);
        w.push(1, 1, 0u32);
        assert_eq!(w.pop().unwrap().deadline, 1);
        assert_eq!(w.pop().unwrap().deadline, u64::MAX - 1);
    }

    #[test]
    fn payloads_drop_cleanly_when_wheel_dropped_mid_drain() {
        use std::rc::Rc;
        let tracker = Rc::new(());
        {
            let mut w = TimerWheel::new();
            for seq in 0..4u64 {
                w.push(9, seq, Rc::clone(&tracker));
            }
            let _ = w.pop(); // moves one entry out of the pending buffer
        }
        // 1 popped + 3 dropped with the wheel; no leaks or double-frees.
        assert_eq!(Rc::strong_count(&tracker), 1);
    }
}
