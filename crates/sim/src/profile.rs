//! In-tree micro-profiler for the sweep harness.
//!
//! The simulator is deterministic, but the harness around it is not —
//! wall-clock per cell and simulated-events-per-second are real-time
//! measurements of how fast the *measurement machinery* runs. This
//! module collects them without touching any experiment signature:
//!
//! - every [`crate::Sim`] adds its retired event count to a thread-local
//!   tally when `run_until` returns (and again at core drop, for any
//!   stragglers);
//! - [`crate::runner`] brackets each cell with [`take_thread_events`]
//!   and an [`std::time::Instant`], producing one [`CellStats`] per
//!   cell;
//! - [`BenchReport`] aggregates cells into per-sweep rows and renders
//!   `results/bench.json` (hand-rolled JSON — the workspace is
//!   hermetic, so no serde).
//!
//! None of these numbers feed back into any simulation result: CSVs
//! stay bit-identical whether or not profiling is read.

use std::cell::Cell;
use std::fmt::Write as _;
use std::time::Duration;

thread_local! {
    /// Simulator events retired on this thread since the last
    /// [`take_thread_events`] call.
    static THREAD_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Credits `n` simulator events to the current thread's tally. Called
/// by the executor when `run_until` returns and when a `Sim` world is
/// torn down.
pub fn note_sim_events(n: u64) {
    THREAD_EVENTS.with(|c| c.set(c.get() + n));
}

/// Returns and resets the current thread's event tally.
pub fn take_thread_events() -> u64 {
    THREAD_EVENTS.with(|c| c.replace(0))
}

/// Wall-clock and simulated-event cost of one executed sweep cell.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// The cell's label (for reports; not part of any CSV).
    pub label: String,
    /// Real time the cell took.
    pub wall: Duration,
    /// Simulator events (task polls + timer fires) the cell retired.
    pub events: u64,
}

impl CellStats {
    /// Simulated events per wall-clock second (0 for an instant cell).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// One benchmarked sweep: total wall-clock, events, and the jobs count
/// it ran under.
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Sweep name (`fleet`, `qos`, ...).
    pub name: String,
    /// Worker threads the sweep ran with.
    pub jobs: usize,
    /// Number of cells executed.
    pub cells: usize,
    /// End-to-end wall-clock for the sweep.
    pub wall: Duration,
    /// Total simulator events across all cells.
    pub events: u64,
}

impl SweepStats {
    /// Aggregates per-cell stats into one sweep row.
    ///
    /// `wall` is the end-to-end time (with parallelism it is less than
    /// the sum of the cells').
    pub fn from_cells(name: &str, jobs: usize, wall: Duration, cells: &[CellStats]) -> SweepStats {
        SweepStats {
            name: name.to_owned(),
            jobs,
            cells: cells.len(),
            wall,
            events: cells.iter().map(|c| c.events).sum(),
        }
    }

    /// Simulated events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// A full benchmark run: the rows behind `results/bench.json`.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// One row per (sweep, jobs) measurement, in run order.
    pub sweeps: Vec<SweepStats>,
}

impl BenchReport {
    /// Creates an empty report.
    pub fn new() -> BenchReport {
        BenchReport::default()
    }

    /// Appends one measured sweep.
    pub fn push(&mut self, s: SweepStats) {
        self.sweeps.push(s);
    }

    /// The wall-clock speedup of `name` at `jobs` over the same sweep's
    /// `jobs = 1` row, if both were measured.
    pub fn speedup(&self, name: &str, jobs: usize) -> Option<f64> {
        let serial = self
            .sweeps
            .iter()
            .find(|s| s.name == name && s.jobs == 1)?;
        let parallel = self.sweeps.iter().find(|s| s.name == name && s.jobs == jobs)?;
        let p = parallel.wall.as_secs_f64();
        (p > 0.0).then(|| serial.wall.as_secs_f64() / p)
    }

    /// Renders the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"sweeps\": [\n");
        for (i, s) in self.sweeps.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"jobs\": {}, \"cells\": {}, \
                 \"wall_secs\": {:.6}, \"events\": {}, \"events_per_sec\": {:.0}}}",
                json_escape(&s.name),
                s.jobs,
                s.cells,
                s.wall.as_secs_f64(),
                s.events,
                s.events_per_sec(),
            );
            out.push_str(if i + 1 < self.sweeps.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// An aligned plain-text table of the rows for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "sweep        jobs  cells   wall (s)      events    events/s\n",
        );
        for s in &self.sweeps {
            let _ = writeln!(
                out,
                "{:<12} {:>4} {:>6} {:>10.3} {:>11} {:>11.0}",
                s.name,
                s.jobs,
                s.cells,
                s.wall.as_secs_f64(),
                s.events,
                s.events_per_sec(),
            );
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_tally_accumulates_and_resets() {
        let _ = take_thread_events();
        note_sim_events(10);
        note_sim_events(5);
        assert_eq!(take_thread_events(), 15);
        assert_eq!(take_thread_events(), 0);
    }

    #[test]
    fn sim_runs_feed_the_tally() {
        use crate::{Sim, SimDuration};
        let _ = take_thread_events();
        {
            let sim = Sim::new();
            let s = sim.clone();
            sim.run_until(async move {
                s.sleep(SimDuration::from_micros(3)).await;
            });
        }
        assert!(take_thread_events() > 0, "a run retires events");
    }

    #[test]
    fn events_per_sec_handles_zero_wall() {
        let c = CellStats {
            label: "x".into(),
            wall: Duration::ZERO,
            events: 100,
        };
        assert_eq!(c.events_per_sec(), 0.0);
    }

    #[test]
    fn report_json_shape_and_speedup() {
        let mut r = BenchReport::new();
        let cells = [
            CellStats {
                label: "a".into(),
                wall: Duration::from_millis(10),
                events: 1000,
            },
            CellStats {
                label: "b".into(),
                wall: Duration::from_millis(30),
                events: 3000,
            },
        ];
        r.push(SweepStats::from_cells(
            "fleet",
            1,
            Duration::from_millis(40),
            &cells,
        ));
        r.push(SweepStats::from_cells(
            "fleet",
            4,
            Duration::from_millis(10),
            &cells,
        ));
        let json = r.to_json();
        assert!(json.contains("\"name\": \"fleet\""));
        assert!(json.contains("\"jobs\": 4"));
        assert!(json.contains("\"events\": 4000"));
        let speedup = r.speedup("fleet", 4).unwrap();
        assert!((speedup - 4.0).abs() < 1e-9, "speedup = {speedup}");
        assert!(r.speedup("qos", 4).is_none());
        assert!(r.render().contains("fleet"));
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
