//! In-tree micro-profiler for the sweep harness.
//!
//! The simulator is deterministic, but the harness around it is not —
//! wall-clock per cell and simulated-events-per-second are real-time
//! measurements of how fast the *measurement machinery* runs. This
//! module collects them without touching any experiment signature:
//!
//! - every [`crate::Sim`] adds its retired event count to a thread-local
//!   tally when `run_until` returns (and again at core drop, for any
//!   stragglers);
//! - [`crate::runner`] brackets each cell with [`take_thread_events`]
//!   and an [`std::time::Instant`], producing one [`CellStats`] per
//!   cell;
//! - [`BenchReport`] aggregates cells into per-sweep rows and renders
//!   `results/bench.json` (hand-rolled JSON — the workspace is
//!   hermetic, so no serde).
//!
//! None of these numbers feed back into any simulation result: CSVs
//! stay bit-identical whether or not profiling is read.

use std::cell::Cell;
use std::fmt::Write as _;
use std::time::Duration;

thread_local! {
    /// Simulator events retired on this thread since the last
    /// [`take_thread_events`] call.
    static THREAD_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Credits `n` simulator events to the current thread's tally. Called
/// by the executor when `run_until` returns and when a `Sim` world is
/// torn down.
pub fn note_sim_events(n: u64) {
    THREAD_EVENTS.with(|c| c.set(c.get() + n));
}

/// Returns and resets the current thread's event tally.
pub fn take_thread_events() -> u64 {
    THREAD_EVENTS.with(|c| c.replace(0))
}

/// Wall-clock and simulated-event cost of one executed sweep cell.
#[derive(Debug, Clone)]
pub struct CellStats {
    /// The cell's label (for reports; not part of any CSV).
    pub label: String,
    /// Real time the cell took.
    pub wall: Duration,
    /// Simulator events (task polls + timer fires) the cell retired.
    pub events: u64,
}

impl CellStats {
    /// Simulated events per wall-clock second (0 for an instant cell).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// One benchmarked sweep: total wall-clock, events, and the jobs count
/// it ran under.
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Sweep name (`fleet`, `qos`, ...).
    pub name: String,
    /// Worker threads the sweep ran with.
    pub jobs: usize,
    /// Number of cells executed.
    pub cells: usize,
    /// End-to-end wall-clock for the sweep.
    pub wall: Duration,
    /// Total simulator events across all cells.
    pub events: u64,
}

impl SweepStats {
    /// Aggregates per-cell stats into one sweep row.
    ///
    /// `wall` is the end-to-end time (with parallelism it is less than
    /// the sum of the cells').
    pub fn from_cells(name: &str, jobs: usize, wall: Duration, cells: &[CellStats]) -> SweepStats {
        SweepStats {
            name: name.to_owned(),
            jobs,
            cells: cells.len(),
            wall,
            events: cells.iter().map(|c| c.events).sum(),
        }
    }

    /// Simulated events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// A full benchmark run: the rows behind `results/bench.json`.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Hardware threads available on the host that ran the benchmark
    /// (`std::thread::available_parallelism`); `0` when unrecorded
    /// (reports written before the field existed). On a
    /// single-hardware-thread host `--jobs N` cannot speed anything up,
    /// so [`BenchReport::compare`] skips the jobs-speedup gate instead
    /// of flagging a bogus regression.
    pub host_parallelism: usize,
    /// One row per (sweep, jobs) measurement, in run order.
    pub sweeps: Vec<SweepStats>,
}

impl BenchReport {
    /// Creates an empty report.
    pub fn new() -> BenchReport {
        BenchReport::default()
    }

    /// Appends one measured sweep.
    pub fn push(&mut self, s: SweepStats) {
        self.sweeps.push(s);
    }

    /// The wall-clock speedup of `name` at `jobs` over the same sweep's
    /// `jobs = 1` row, if both were measured.
    ///
    /// `None` when either row is missing **or** either wall-clock is
    /// ~0 s (sub-resolution quick cells) — a zero denominator or
    /// numerator would report `inf` / `0x` for what is really "too fast
    /// to measure".
    pub fn speedup(&self, name: &str, jobs: usize) -> Option<f64> {
        let serial = self
            .sweeps
            .iter()
            .find(|s| s.name == name && s.jobs == 1)?;
        let parallel = self.sweeps.iter().find(|s| s.name == name && s.jobs == jobs)?;
        let s = serial.wall.as_secs_f64();
        let p = parallel.wall.as_secs_f64();
        (s > 0.0 && p > 0.0).then(|| s / p)
    }

    /// Renders the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"host_parallelism\": {},\n  \"sweeps\": [\n",
            self.host_parallelism
        );
        for (i, s) in self.sweeps.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"jobs\": {}, \"cells\": {}, \
                 \"wall_secs\": {:.6}, \"events\": {}, \"events_per_sec\": {:.0}}}",
                json_escape(&s.name),
                s.jobs,
                s.cells,
                s.wall.as_secs_f64(),
                s.events,
                s.events_per_sec(),
            );
            out.push_str(if i + 1 < self.sweeps.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON to `path` via a temporary sibling file and an
    /// atomic rename, so a crash mid-write can never leave a truncated
    /// report behind for a later `--against` run to choke on.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Parses a report previously written by [`BenchReport::write_json`].
    ///
    /// The scanner accepts exactly the shape [`BenchReport::to_json`]
    /// emits and rejects anything else with an error naming what is
    /// wrong — a truncated or corrupt baseline must fail loudly, not
    /// compare as garbage.
    pub fn parse_json(text: &str) -> Result<BenchReport, String> {
        let key = text
            .find("\"sweeps\"")
            .ok_or("not a bench report: missing \"sweeps\" key")?;
        let open = text[key..]
            .find('[')
            .ok_or("malformed report: no array after \"sweeps\"")?
            + key;
        let close = text[open..]
            .find(']')
            .ok_or("malformed report: unterminated sweeps array")?
            + open;
        let mut rest = &text[open + 1..close];
        let mut sweeps = Vec::new();
        while let Some(obj_open) = rest.find('{') {
            let obj_close = rest[obj_open..]
                .find('}')
                .ok_or("malformed report: unterminated sweep object")?
                + obj_open;
            sweeps.push(Self::parse_sweep(&rest[obj_open + 1..obj_close])?);
            rest = &rest[obj_close + 1..];
        }
        if sweeps.is_empty() {
            return Err("malformed report: no sweep rows".into());
        }
        // Optional for backward compatibility: baselines written before
        // the field default to 0 ("unrecorded"), never an error.
        let host_parallelism = match text.find("\"host_parallelism\":") {
            Some(at) => {
                let rest = text[at + "\"host_parallelism\":".len()..].trim_start();
                let end = rest
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(rest.len());
                rest[..end]
                    .parse()
                    .map_err(|_| "bad value for \"host_parallelism\"".to_string())?
            }
            None => 0,
        };
        Ok(BenchReport {
            host_parallelism,
            sweeps,
        })
    }

    fn parse_sweep(obj: &str) -> Result<SweepStats, String> {
        fn field<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
            let pat = format!("\"{key}\":");
            let at = obj
                .find(&pat)
                .ok_or_else(|| format!("sweep row missing \"{key}\""))?;
            let rest = obj[at + pat.len()..].trim_start();
            if let Some(s) = rest.strip_prefix('"') {
                let end = s
                    .find('"')
                    .ok_or_else(|| format!("unterminated string for \"{key}\""))?;
                return Ok(&s[..end]);
            }
            let end = rest.find(',').unwrap_or(rest.len());
            Ok(rest[..end].trim())
        }
        fn num<T: std::str::FromStr>(obj: &str, key: &str) -> Result<T, String> {
            let raw = field(obj, key)?;
            raw.parse()
                .map_err(|_| format!("bad value for \"{key}\": {raw:?}"))
        }
        let wall_secs: f64 = num(obj, "wall_secs")?;
        if !wall_secs.is_finite() || wall_secs < 0.0 {
            return Err(format!("bad value for \"wall_secs\": {wall_secs}"));
        }
        Ok(SweepStats {
            name: field(obj, "name")?.to_owned(),
            jobs: num(obj, "jobs")?,
            cells: num(obj, "cells")?,
            wall: Duration::from_secs_f64(wall_secs),
            events: num(obj, "events")?,
        })
    }

    /// Diffs this (fresh) report against a committed `baseline`:
    /// events/sec per `(sweep, jobs)` row and wall-clock speedup per
    /// sweep. A drop of more than `tolerance` (e.g. `0.30` = 30%) on
    /// either axis is a regression; rows without a baseline counterpart
    /// are reported but never fail.
    pub fn compare(&self, baseline: &BenchReport, tolerance: f64) -> BenchComparison {
        let mut out = BenchComparison::default();
        for cur in &self.sweeps {
            let Some(base) = baseline
                .sweeps
                .iter()
                .find(|b| b.name == cur.name && b.jobs == cur.jobs)
            else {
                out.lines.push(format!(
                    "{} @ jobs {}: no baseline row (skipped)",
                    cur.name, cur.jobs
                ));
                continue;
            };
            let (c, b) = (cur.events_per_sec(), base.events_per_sec());
            if b > 0.0 {
                out.lines.push(format!(
                    "{} @ jobs {}: {:.0} events/s vs baseline {:.0} ({:+.1}%)",
                    cur.name,
                    cur.jobs,
                    c,
                    b,
                    (c / b - 1.0) * 100.0
                ));
                if c < b * (1.0 - tolerance) {
                    out.regressions.push(format!(
                        "{} @ jobs {}: events/sec fell {:.1}% (tolerance {:.0}%)",
                        cur.name,
                        cur.jobs,
                        (1.0 - c / b) * 100.0,
                        tolerance * 100.0
                    ));
                }
            } else {
                out.lines.push(format!(
                    "{} @ jobs {}: baseline too fast to measure (skipped)",
                    cur.name, cur.jobs
                ));
            }
            if cur.jobs > 1 {
                if self.host_parallelism == 1 {
                    // One hardware thread: worker threads time-slice one
                    // core, so parallel speedup is physically impossible
                    // and gating on it would flag every run. Annotate
                    // instead of comparing.
                    out.lines.push(format!(
                        "{} @ jobs {}: speedup gate skipped \
                         (single-hardware-thread host)",
                        cur.name, cur.jobs
                    ));
                } else if let (Some(cs), Some(bs)) = (
                    self.speedup(&cur.name, cur.jobs),
                    baseline.speedup(&cur.name, cur.jobs),
                ) {
                    out.lines.push(format!(
                        "{} @ jobs {}: speedup {cs:.2}x vs baseline {bs:.2}x",
                        cur.name, cur.jobs
                    ));
                    if cs < bs * (1.0 - tolerance) {
                        out.regressions.push(format!(
                            "{} @ jobs {}: speedup fell {:.1}% (tolerance {:.0}%)",
                            cur.name,
                            cur.jobs,
                            (1.0 - cs / bs) * 100.0,
                            tolerance * 100.0
                        ));
                    }
                }
            }
        }
        out
    }

    /// An aligned plain-text table of the rows for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "sweep        jobs  cells   wall (s)      events    events/s\n",
        );
        for s in &self.sweeps {
            let _ = writeln!(
                out,
                "{:<12} {:>4} {:>6} {:>10.3} {:>11} {:>11.0}",
                s.name,
                s.jobs,
                s.cells,
                s.wall.as_secs_f64(),
                s.events,
                s.events_per_sec(),
            );
        }
        out
    }
}

/// Result of diffing a fresh [`BenchReport`] against a baseline.
#[derive(Debug, Clone, Default)]
pub struct BenchComparison {
    /// Human-readable per-row comparison lines.
    pub lines: Vec<String>,
    /// Drops past tolerance (empty means the comparison passed).
    pub regressions: Vec<String>,
}

impl BenchComparison {
    /// `true` when nothing regressed past tolerance.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Plain-text rendering: every comparison line, then regressions.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            let _ = writeln!(out, "bench: {l}");
        }
        for r in &self.regressions {
            let _ = writeln!(out, "bench REGRESSION: {r}");
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_tally_accumulates_and_resets() {
        let _ = take_thread_events();
        note_sim_events(10);
        note_sim_events(5);
        assert_eq!(take_thread_events(), 15);
        assert_eq!(take_thread_events(), 0);
    }

    #[test]
    fn sim_runs_feed_the_tally() {
        use crate::{Sim, SimDuration};
        let _ = take_thread_events();
        {
            let sim = Sim::new();
            let s = sim.clone();
            sim.run_until(async move {
                s.sleep(SimDuration::from_micros(3)).await;
            });
        }
        assert!(take_thread_events() > 0, "a run retires events");
    }

    #[test]
    fn events_per_sec_handles_zero_wall() {
        let c = CellStats {
            label: "x".into(),
            wall: Duration::ZERO,
            events: 100,
        };
        assert_eq!(c.events_per_sec(), 0.0);
    }

    #[test]
    fn report_json_shape_and_speedup() {
        let mut r = BenchReport::new();
        let cells = [
            CellStats {
                label: "a".into(),
                wall: Duration::from_millis(10),
                events: 1000,
            },
            CellStats {
                label: "b".into(),
                wall: Duration::from_millis(30),
                events: 3000,
            },
        ];
        r.push(SweepStats::from_cells(
            "fleet",
            1,
            Duration::from_millis(40),
            &cells,
        ));
        r.push(SweepStats::from_cells(
            "fleet",
            4,
            Duration::from_millis(10),
            &cells,
        ));
        let json = r.to_json();
        assert!(json.contains("\"name\": \"fleet\""));
        assert!(json.contains("\"jobs\": 4"));
        assert!(json.contains("\"events\": 4000"));
        let speedup = r.speedup("fleet", 4).unwrap();
        assert!((speedup - 4.0).abs() < 1e-9, "speedup = {speedup}");
        assert!(r.speedup("qos", 4).is_none());
        assert!(r.render().contains("fleet"));

        // Missing jobs-1 baseline: no speedup, not inf.
        let mut only_parallel = BenchReport::new();
        only_parallel.push(SweepStats::from_cells(
            "qos",
            4,
            Duration::from_millis(10),
            &cells,
        ));
        assert!(only_parallel.speedup("qos", 4).is_none());

        // ~0 s wall-clocks (quick cells below timer resolution) must
        // not divide to inf/NaN — both edges return None.
        let mut zero_serial = BenchReport::new();
        zero_serial.push(SweepStats::from_cells("z", 1, Duration::ZERO, &cells));
        zero_serial.push(SweepStats::from_cells(
            "z",
            4,
            Duration::from_millis(10),
            &cells,
        ));
        assert!(zero_serial.speedup("z", 4).is_none(), "0s serial -> None");
        let mut zero_parallel = BenchReport::new();
        zero_parallel.push(SweepStats::from_cells(
            "z",
            1,
            Duration::from_millis(10),
            &cells,
        ));
        zero_parallel.push(SweepStats::from_cells("z", 4, Duration::ZERO, &cells));
        assert!(zero_parallel.speedup("z", 4).is_none(), "0s parallel -> None");
    }

    fn sample_report() -> BenchReport {
        let cells = [
            CellStats {
                label: "a".into(),
                wall: Duration::from_millis(10),
                events: 1000,
            },
            CellStats {
                label: "b".into(),
                wall: Duration::from_millis(30),
                events: 3000,
            },
        ];
        let mut r = BenchReport::new();
        r.push(SweepStats::from_cells(
            "fleet",
            1,
            Duration::from_millis(40),
            &cells,
        ));
        r.push(SweepStats::from_cells(
            "fleet",
            4,
            Duration::from_millis(20),
            &cells,
        ));
        r
    }

    #[test]
    fn json_round_trips_through_parse() {
        let mut r = sample_report();
        r.host_parallelism = 8;
        let parsed = BenchReport::parse_json(&r.to_json()).expect("own JSON parses");
        assert_eq!(parsed.host_parallelism, 8);
        assert_eq!(parsed.sweeps.len(), r.sweeps.len());
        for (p, orig) in parsed.sweeps.iter().zip(&r.sweeps) {
            assert_eq!(p.name, orig.name);
            assert_eq!(p.jobs, orig.jobs);
            assert_eq!(p.cells, orig.cells);
            assert_eq!(p.events, orig.events);
            assert!((p.wall.as_secs_f64() - orig.wall.as_secs_f64()).abs() < 1e-5);
        }
    }

    #[test]
    fn parse_rejects_malformed_baselines() {
        for (text, why) in [
            ("", "empty"),
            ("not json at all", "garbage"),
            ("{\"sweeps\": []}", "no rows"),
            ("{\"sweeps\": [{\"name\": \"x\"}]}", "missing fields"),
            (
                "{\"sweeps\": [{\"name\": \"x\", \"jobs\": 1, \"cells\": 1, \
                 \"wall_secs\": -3.0, \"events\": 5}]}",
                "negative wall",
            ),
        ] {
            let err = BenchReport::parse_json(text);
            assert!(err.is_err(), "{why}: must be rejected");
        }
        // A mid-write truncation (what the atomic rename prevents) is
        // also rejected, never parsed as garbage.
        let full = sample_report().to_json();
        let truncated = &full[..full.len() / 2];
        assert!(BenchReport::parse_json(truncated).is_err());
    }

    #[test]
    fn compare_passes_identical_and_flags_slowdown() {
        let base = sample_report();
        let same = base.compare(&base, 0.30);
        assert!(same.passed(), "identical reports: {:?}", same.regressions);

        // An artificially 10x-slower build regresses past any sane
        // tolerance.
        let mut slow = base.clone();
        for s in &mut slow.sweeps {
            s.wall *= 10;
        }
        let diff = slow.compare(&base, 0.30);
        assert!(!diff.passed(), "10x slower must regress");
        assert!(diff.render().contains("REGRESSION"));

        // Rows with no baseline counterpart are skipped, not failed.
        let mut extra = base.clone();
        extra.push(SweepStats {
            name: "new-sweep".into(),
            jobs: 1,
            cells: 1,
            wall: Duration::from_millis(1),
            events: 10,
        });
        assert!(extra.compare(&base, 0.30).passed());
    }

    #[test]
    fn old_baselines_without_host_parallelism_still_parse() {
        let json = sample_report().to_json();
        let stripped = json.replace("  \"host_parallelism\": 0,\n", "");
        assert!(!stripped.contains("host_parallelism"));
        let parsed = BenchReport::parse_json(&stripped).expect("old shape parses");
        assert_eq!(parsed.host_parallelism, 0, "unrecorded defaults to 0");
    }

    #[test]
    fn single_thread_host_skips_speedup_gate() {
        let base = sample_report();
        // Serial events/sec intact, but the parallel row is as slow as
        // serial — on a multi-thread host this fails the speedup gate...
        let mut slow_parallel = base.clone();
        slow_parallel.sweeps[1].wall = slow_parallel.sweeps[0].wall;
        slow_parallel.sweeps[1].events = base.sweeps[0].events * 2;
        let gated = slow_parallel.compare(&base, 0.30);
        assert!(
            gated.regressions.iter().any(|r| r.contains("speedup")),
            "multi-thread host still gates speedup: {:?}",
            gated.regressions
        );
        // ...but a single-hardware-thread host cannot speed up at all:
        // the gate is skipped and annotated instead of failing.
        slow_parallel.host_parallelism = 1;
        let skipped = slow_parallel.compare(&base, 0.30);
        assert!(
            !skipped.regressions.iter().any(|r| r.contains("speedup")),
            "single-thread host must not gate speedup: {:?}",
            skipped.regressions
        );
        assert!(
            skipped
                .lines
                .iter()
                .any(|l| l.contains("single-hardware-thread")),
            "skip must be annotated: {:?}",
            skipped.lines
        );
    }

    #[test]
    fn write_json_is_atomic_and_replaces() {
        let dir = std::env::temp_dir().join(format!("nfsperf-bench-{}", std::process::id()));
        let path = dir.join("bench.json");
        let r = sample_report();
        r.write_json(&path).expect("first write");
        r.write_json(&path).expect("overwrite");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(BenchReport::parse_json(&text).is_ok());
        assert!(
            !dir.join("bench.json.tmp").exists(),
            "temp file must be renamed away"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
