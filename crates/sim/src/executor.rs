//! The discrete-event executor.
//!
//! [`Sim`] is a deterministic, single-threaded executor for `!Send` futures.
//! Tasks advance only by awaiting simulated time ([`Sim::sleep`]) or
//! synchronization primitives from [`crate::sync`]; real wall-clock time
//! never enters the model. Determinism is guaranteed by:
//!
//! - a FIFO ready queue (tasks run in wake order),
//! - a timer heap ordered by `(deadline, insertion sequence)`, and
//! - a seeded pseudo-random number generator ([`crate::rng::SimRng`]).
//!
//! The design mirrors classical process-oriented simulation: each simulated
//! thread of control (an application writer, `nfs_flushd`, a server service
//! loop, a disk) is an async task, and blocking kernel behaviour maps onto
//! `await` points.
//!
//! # Hot path
//!
//! Two structures sit under every simulated event and are built for the
//! single-threaded case:
//!
//! - the ready queue is a plain `VecDeque` behind an [`std::cell::UnsafeCell`]
//!   ([`ReadyQueue`]) rather than a `Mutex` — the `Waker` contract forces
//!   `Send + Sync`, but every waker in this executor is created and invoked
//!   on the simulator's own thread, so the lock was pure overhead;
//! - pending timers live in a hierarchical timer wheel
//!   ([`crate::wheel::TimerWheel`]) instead of a binary heap: `O(1)`
//!   registration, `O(levels)` pops, and the exact
//!   `(deadline, registration-seq)` firing order the heap gave.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use crate::profile;
use crate::time::{SimDuration, SimTime};
use crate::wheel::TimerWheel;

/// Identifier of a spawned task.
pub type TaskId = usize;

/// Ready-queue entries with this bit set are encoded slab events, not
/// task ids (the task table can never reach 2^63 slots). The remaining
/// bits carry the event's slot index (low 32) and generation (next 31).
const EVENT_TAG: usize = 1 << (usize::BITS - 1);
/// Ready-queue entries with this bit set (and [`EVENT_TAG`] clear) are
/// direct dispatches: a pre-encoded `(handler, data)` pair with no slab
/// slot and no generation, for parked waits that are woken exactly once
/// and never cancelled (see [`Sim::direct_waker`]).
const DIRECT_TAG: usize = 1 << (usize::BITS - 2);
/// Generations are 31 bits so a tagged `(gen, slot)` pair plus the tag
/// fits one ready-queue word.
const EVENT_GEN_MASK: u32 = 0x7fff_ffff;
/// Direct words carry the handler in bits 32..62, below [`DIRECT_TAG`].
const DIRECT_HANDLER_MAX: u32 = 1 << 30;
// The tagged encoding needs a 64-bit ready-queue word.
const _: () = assert!(usize::BITS == 64, "slab events need 64-bit usize");

#[inline]
fn encode_event(slot: u32, gen: u32) -> usize {
    EVENT_TAG | ((gen as usize) << 32) | slot as usize
}

#[inline]
fn encode_direct(handler: u32, data: u32) -> usize {
    DIRECT_TAG | ((handler as usize) << 32) | data as usize
}

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// The FIFO queue of task ids that have been woken and await polling.
///
/// This is the only piece of executor state a [`Waker`] touches, and
/// `Waker` requires `Send + Sync`, so it must present a shared-reference
/// API — but the simulator is single-threaded by construction: tasks are
/// `!Send`, every waker is created during a poll on the executor thread,
/// and [`crate::runner`] parallelizes only across whole `Sim` worlds,
/// each confined to one worker thread. A `Mutex` here is pure overhead on
/// the hottest path in the engine (every wake and every poll), so the
/// queue lives in an `UnsafeCell` with the single-thread invariant
/// asserted in debug builds.
struct ReadyQueue {
    queue: UnsafeCell<VecDeque<TaskId>>,
    /// The thread the owning `Sim` was created on; all pushes and pops
    /// must come from it.
    owner: std::thread::ThreadId,
}

// SAFETY: see the struct docs — all access is confined to `owner`. The
// executor never hands wakers to other threads (no I/O, no real timers),
// and a `Sim` cannot move threads because its core holds `Rc`s.
unsafe impl Send for ReadyQueue {}
unsafe impl Sync for ReadyQueue {}

impl Default for ReadyQueue {
    fn default() -> ReadyQueue {
        ReadyQueue {
            queue: UnsafeCell::new(VecDeque::new()),
            owner: std::thread::current().id(),
        }
    }
}

impl ReadyQueue {
    #[inline]
    fn assert_owner(&self) {
        debug_assert_eq!(
            std::thread::current().id(),
            self.owner,
            "Sim used from a thread other than the one that created it"
        );
    }

    #[inline]
    fn push(&self, id: TaskId) {
        self.assert_owner();
        // SAFETY: single-threaded access (asserted above); no reentrant
        // borrow — push/pop never call back into the queue.
        unsafe { (*self.queue.get()).push_back(id) };
    }

    #[inline]
    fn pop(&self) -> Option<TaskId> {
        self.assert_owner();
        // SAFETY: as in `push`.
        unsafe { (*self.queue.get()).pop_front() }
    }
}

/// Backing data for one task slot's waker.
///
/// Owned by [`SimCore::waker_data`] (one boxed instance per slot, alive
/// for the core's whole lifetime), so the waker vtable can be entirely
/// free of reference counting: `clone` copies the data pointer, `drop`
/// is a no-op, and `wake` pushes the slot id. Before this, every waker
/// operation paid an atomic `Arc` refcount — ~15% of the engine profile.
///
/// SAFETY contract (mirrors [`ReadyQueue`]): wakers built over this data
/// are only cloned, woken, and dropped on the core's own thread, and
/// never outlive the core — every holder (the timer wheel, wait nodes,
/// join states) lives inside a structure of the same simulated world.
struct WakerData {
    id: TaskId,
    ready: *const ReadyQueue,
}

static WAKER_VTABLE: RawWakerVTable = RawWakerVTable::new(
    // clone: identity — the data is owned by the core, not the waker.
    |data| RawWaker::new(data, &WAKER_VTABLE),
    // wake / wake_by_ref: reschedule the slot.
    |data| unsafe {
        let d = &*(data as *const WakerData);
        (*d.ready).push(d.id);
    },
    |data| unsafe {
        let d = &*(data as *const WakerData);
        (*d.ready).push(d.id);
    },
    // drop: no-op.
    |_| {},
);

/// Backing data for one event slot's waker (see [`ScheduledEvent`]).
///
/// `gen` is refreshed every time the slot is armed, so waking pushes the
/// generation current at arm time; a wake that races a completed or
/// cancelled arm pushes a stale generation and is dropped at dispatch.
/// The contract matches how every primitive in [`crate::sync`] behaves:
/// each parked waker is woken at most once per arm.
///
/// SAFETY contract: identical to [`WakerData`] — single-threaded use,
/// owned by the core, outlives every clone.
struct EventWakerData {
    slot: u32,
    gen: Cell<u32>,
    ready: *const ReadyQueue,
}

static EVENT_WAKER_VTABLE: RawWakerVTable = RawWakerVTable::new(
    // clone: identity — the data is owned by the core.
    |data| RawWaker::new(data, &EVENT_WAKER_VTABLE),
    // wake / wake_by_ref: push the tagged (slot, armed-gen) entry.
    |data| unsafe {
        let d = &*(data as *const EventWakerData);
        (*d.ready).push(encode_event(d.slot, d.gen.get()));
    },
    |data| unsafe {
        let d = &*(data as *const EventWakerData);
        (*d.ready).push(encode_event(d.slot, d.gen.get()));
    },
    // drop: no-op.
    |_| {},
);

/// Backing data for a direct waker: the ready-queue word is fully
/// encoded at creation, so waking is a single push — no slab slot, no
/// generation refresh, nothing to free at dispatch. Safe only under the
/// woken-at-most-once-per-park contract every primitive in
/// [`crate::sync`] (and the lane/server ticket handshakes built on the
/// same shape) provides: a parked direct waker fires once, and its owner
/// is guaranteed to still be parked at that stage when the dispatch
/// runs, so no generation check is needed.
///
/// SAFETY contract: identical to [`WakerData`] — single-threaded use,
/// owned by the core, outlives every waker clone.
struct DirectWakerData {
    word: usize,
    ready: *const ReadyQueue,
}

static DIRECT_WAKER_VTABLE: RawWakerVTable = RawWakerVTable::new(
    // clone: identity — the data is owned by the core.
    |data| RawWaker::new(data, &DIRECT_WAKER_VTABLE),
    // wake / wake_by_ref: push the pre-encoded word.
    |data| unsafe {
        let d = &*(data as *const DirectWakerData);
        (*d.ready).push(d.word);
    },
    |data| unsafe {
        let d = &*(data as *const DirectWakerData);
        (*d.ready).push(d.word);
    },
    // drop: no-op.
    |_| {},
);

/// What a wheel timer does when it fires: wake a task waker, or push an
/// already-encoded slab-event entry onto the ready queue.
///
/// Events must NOT arm timers through their slot waker: the cached waker
/// reads the slot's *current* generation at wake time, and a stale timer
/// left in the wheel by a cancelled arm would then resurrect whatever
/// event occupies the slot next (the ABA the generation counter exists
/// to prevent). `Event` snapshots `(slot, gen)` at registration instead.
enum TimerPayload {
    Task(Waker),
    Event(usize),
    /// Fire-and-forget timed dispatch: no slab slot, no generation, no
    /// ready-queue round trip — for schedulers that never cancel (the
    /// flyweight tier's stage hops). Fired directly off the wheel.
    Direct { handler: u32, data: u64 },
}

/// One generation-counted record in the event slab: which handler to
/// call with which payload, valid only while `gen` matches the handle
/// that armed it.
struct EventSlot {
    gen: Cell<u32>,
    handler: Cell<u32>,
    data: Cell<u64>,
}

/// Identifier of a registered event handler (see
/// [`Sim::register_event_handler`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHandlerId(u32);

/// A registered dispatch target: called with each armed event's payload.
pub type EventHandlerFn = Rc<dyn Fn(u64)>;

/// Handle to one armed slab event.
///
/// A `ScheduledEvent` is a `(slot, generation)` pair: dispatching or
/// cancelling the event bumps the slot's generation, so a stale handle
/// (or a stale ready-queue entry) can never fire a slot that has been
/// recycled for a different event — the classic ABA guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    slot: u32,
    gen: u32,
}

/// A slot in the task table. The free list is intrusive — vacant slots
/// link to the next free slot through the table itself, with the head in
/// [`SimCore::free_head`] — so claiming and releasing a slot (which the
/// flyweight tier does four times per RPC for its shadows) is one table
/// borrow, not a table borrow plus a side-vector borrow.
enum TaskSlot {
    /// Free; `next` is the previously freed slot (`NO_SLOT` ends the
    /// list). LIFO, exactly like the free vector it replaces, so slot
    /// recycling order — observable through where stale wakes land — is
    /// unchanged.
    Vacant { next: usize },
    /// A shadow occupant: no future to run, but a wake that reaches it
    /// still counts one retired event (see [`Sim::spawn_shadow`]).
    Shadow,
    /// A live task; the future is `None` only while being polled.
    Task(Option<LocalFuture>),
}

/// Free-list terminator for [`TaskSlot::Vacant`].
const NO_SLOT: usize = usize::MAX;

struct SimCore {
    now: Cell<SimTime>,
    timer_seq: Cell<u64>,
    timers: RefCell<TimerWheel<TimerPayload>>,
    tasks: RefCell<Vec<TaskSlot>>,
    /// One cached waker per task-table slot. A waker carries only the
    /// slot index and the ready queue, so it never goes stale: it is
    /// created when the slot first exists and reused across every poll
    /// of every task that ever occupies the slot. Before this cache each
    /// poll allocated a fresh `Arc` waker — the single largest
    /// allocation source in the engine.
    wakers: RefCell<Vec<Waker>>,
    /// Backing store for the slot wakers (see [`WakerData`]); boxed so
    /// the pointers baked into the wakers stay stable as the table grows.
    #[allow(clippy::vec_box)]
    waker_data: RefCell<Vec<Box<WakerData>>>,
    /// Head of the intrusive free list running through `tasks` (see
    /// [`TaskSlot::Vacant`]); `NO_SLOT` when the table is full.
    free_head: Cell<usize>,
    /// The timed-event slab: generation-counted single-shot records
    /// dispatched straight off the ready queue with no future, no task
    /// slot and no per-event allocation. Slots are recycled through
    /// `event_free`; each keeps a cached waker (over `event_waker_data`)
    /// for timer registration and for parking in sync primitives.
    event_slots: RefCell<Vec<EventSlot>>,
    event_free: RefCell<Vec<u32>>,
    event_wakers: RefCell<Vec<Waker>>,
    /// Boxed so the pointers baked into the event wakers stay stable as
    /// the slab grows (same pattern as `waker_data`).
    #[allow(clippy::vec_box)]
    event_waker_data: RefCell<Vec<Box<EventWakerData>>>,
    /// Backing store for direct wakers ([`Sim::direct_waker`]); append-
    /// only so the pointers baked into the wakers stay stable. Sized by
    /// the callers' own slab growth (one per flyweight RPC record), so
    /// it stops growing when they do.
    #[allow(clippy::vec_box)]
    direct_waker_data: RefCell<Vec<Box<DirectWakerData>>>,
    /// Registered dispatch targets; an event stores only an index here
    /// plus a `u64` payload, so dispatch is one dynamic call.
    event_handlers: RefCell<Vec<Option<EventHandlerFn>>>,
    ready: Arc<ReadyQueue>,
    /// Count of tasks currently being polled; used to catch re-entrancy.
    polling: Cell<usize>,
    /// Retired events (task polls + timer fires); feeds the
    /// micro-profiler's events/sec metric.
    events: Cell<u64>,
    /// Events already credited to the thread-local profiler tally.
    events_credited: Cell<u64>,
}

impl SimCore {
    /// Credits events retired since the last flush to the thread running
    /// this world, so the sweep runner can report per-cell events/sec
    /// without threading a counter through every experiment. Called when
    /// `run_until` returns — worlds whose daemon tasks hold `Rc` cycles
    /// back to the core may never drop, so crediting cannot wait for
    /// `Drop` alone.
    fn flush_events_to_profiler(&self) {
        let total = self.events.get();
        profile::note_sim_events(total - self.events_credited.get());
        self.events_credited.set(total);
    }
}

impl Drop for SimCore {
    fn drop(&mut self) {
        // Backstop for events retired outside any `run_until` call.
        self.flush_events_to_profiler();
    }
}

/// Handle to the simulator; cheap to clone and share between tasks.
///
/// # Examples
///
/// ```
/// use nfsperf_sim::{Sim, SimDuration};
///
/// let sim = Sim::new();
/// let out = sim.run_until({
///     let sim = sim.clone();
///     async move {
///         sim.sleep(SimDuration::from_micros(5)).await;
///         sim.now().as_nanos()
///     }
/// });
/// assert_eq!(out, 5_000);
/// ```
#[derive(Clone)]
pub struct Sim {
    core: Rc<SimCore>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates a fresh simulator with the clock at zero.
    pub fn new() -> Sim {
        Sim {
            core: Rc::new(SimCore {
                now: Cell::new(SimTime::ZERO),
                timer_seq: Cell::new(0),
                timers: RefCell::new(TimerWheel::new()),
                tasks: RefCell::new(Vec::new()),
                wakers: RefCell::new(Vec::new()),
                waker_data: RefCell::new(Vec::new()),
                free_head: Cell::new(NO_SLOT),
                event_slots: RefCell::new(Vec::new()),
                event_free: RefCell::new(Vec::new()),
                event_wakers: RefCell::new(Vec::new()),
                event_waker_data: RefCell::new(Vec::new()),
                direct_waker_data: RefCell::new(Vec::new()),
                event_handlers: RefCell::new(Vec::new()),
                ready: Arc::new(ReadyQueue::default()),
                polling: Cell::new(0),
                events: Cell::new(0),
                events_credited: Cell::new(0),
            }),
        }
    }

    /// Returns the current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    /// Registers a waker to fire at `deadline`.
    ///
    /// Used by [`Sleep`]; most code should call [`Sim::sleep`] instead.
    pub fn register_timer(&self, deadline: SimTime, waker: Waker) {
        let seq = self.core.timer_seq.get();
        self.core.timer_seq.set(seq + 1);
        self.core
            .timers
            .borrow_mut()
            .push(deadline.as_nanos(), seq, TimerPayload::Task(waker));
    }

    /// Registers a timer that pushes an encoded slab-event ready entry
    /// when it fires; shares the `(deadline, seq)` order with task
    /// timers. See [`TimerPayload`] for why the generation must be
    /// captured here rather than read at fire time.
    fn register_event_timer(&self, deadline: SimTime, code: usize) {
        let seq = self.core.timer_seq.get();
        self.core.timer_seq.set(seq + 1);
        self.core
            .timers
            .borrow_mut()
            .push(deadline.as_nanos(), seq, TimerPayload::Event(code));
    }

    /// Returns a future that completes after `dur` of simulated time.
    pub fn sleep(&self, dur: SimDuration) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline: self.now() + dur,
            registered: false,
        }
    }

    /// Returns a future that completes at the absolute instant `deadline`.
    ///
    /// Completes immediately if `deadline` is already in the past.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            registered: false,
        }
    }

    /// Spawns a background task, returning a handle to await its output.
    ///
    /// The task starts in the ready queue and first runs when the executor
    /// next drains it.
    pub fn spawn<T, F>(&self, fut: F) -> JoinHandle<T>
    where
        T: 'static,
        F: Future<Output = T> + 'static,
    {
        let state = Rc::new(RefCell::new(JoinState::<T> {
            result: None,
            waiter: None,
        }));
        let state2 = Rc::clone(&state);
        let wrapped: LocalFuture = Box::pin(async move {
            let out = fut.await;
            let mut st = state2.borrow_mut();
            st.result = Some(out);
            if let Some(w) = st.waiter.take() {
                w.wake();
            }
        });

        let id = self.insert_task(wrapped);
        self.core.ready.push(id);
        JoinHandle { state }
    }

    fn insert_task(&self, fut: LocalFuture) -> TaskId {
        self.insert_slot(TaskSlot::Task(Some(fut)))
    }

    /// Reserves a task-table slot with no future behind it.
    ///
    /// Taskless engines that replace spawned tasks one-for-one (the
    /// flyweight tier) use a shadow per replaced task so the table's
    /// slot-recycling sequence — and therefore which slot a *stale* wake
    /// lands on — is identical to the task engine's. A wake that reaches
    /// a live shadow retires one event, exactly as the spurious no-op
    /// poll of the replaced task did; without shadows those wakes land
    /// on free slots and the engines' deterministic event counts drift
    /// apart under load. Release with [`Sim::drop_shadow`] at the point
    /// the replaced task would have returned.
    pub fn spawn_shadow(&self) -> TaskId {
        self.insert_slot(TaskSlot::Shadow)
    }

    /// Frees a slot reserved by [`Sim::spawn_shadow`].
    pub fn drop_shadow(&self, id: TaskId) {
        let mut tasks = self.core.tasks.borrow_mut();
        debug_assert!(
            matches!(tasks.get(id), Some(TaskSlot::Shadow)),
            "drop_shadow on a non-shadow slot {id}"
        );
        tasks[id] = TaskSlot::Vacant {
            next: self.core.free_head.get(),
        };
        self.core.free_head.set(id);
    }

    fn insert_slot(&self, slot: TaskSlot) -> TaskId {
        let mut tasks = self.core.tasks.borrow_mut();
        let head = self.core.free_head.get();
        let id = if head != NO_SLOT {
            let TaskSlot::Vacant { next } = tasks[head] else {
                unreachable!("free-list head {head} not vacant");
            };
            self.core.free_head.set(next);
            tasks[head] = slot;
            head
        } else {
            tasks.push(slot);
            tasks.len() - 1
        };
        let mut wakers = self.core.wakers.borrow_mut();
        let mut waker_data = self.core.waker_data.borrow_mut();
        while wakers.len() <= id {
            let data = Box::new(WakerData {
                id: wakers.len(),
                ready: Arc::as_ptr(&self.core.ready),
            });
            let raw = RawWaker::new(&*data as *const WakerData as *const (), &WAKER_VTABLE);
            waker_data.push(data);
            // SAFETY: see `WakerData` — single-threaded use, data outlives
            // every waker clone.
            wakers.push(unsafe { Waker::from_raw(raw) });
        }
        id
    }

    /// Drives `main` to completion, running spawned tasks and advancing the
    /// simulated clock as needed, and returns its output.
    ///
    /// Background tasks that are still pending when `main` completes are
    /// dropped (daemons need no explicit shutdown).
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks: `main` is not finished but no
    /// task is runnable and no timer is pending.
    pub fn run_until<T, F>(&self, main: F) -> T
    where
        T: 'static,
        F: Future<Output = T> + 'static,
    {
        let handle = self.spawn(main);
        loop {
            self.drain_ready();
            if let Some(out) = handle.try_take() {
                self.core.flush_events_to_profiler();
                return out;
            }
            if !self.fire_next_timer() {
                panic!(
                    "simulation deadlock at t={}: main task pending, no runnable \
                     tasks and no timers",
                    self.now()
                );
            }
        }
    }

    /// Polls every woken task — and dispatches every fired slab event —
    /// until the ready queue is empty.
    fn drain_ready(&self) {
        while let Some(id) = self.core.ready.pop() {
            if id & EVENT_TAG != 0 {
                self.dispatch_event(id as u32, ((id >> 32) as u32) & EVENT_GEN_MASK);
            } else if id & DIRECT_TAG != 0 {
                self.dispatch_direct(id);
            } else {
                self.poll_task(id);
            }
        }
    }

    /// Dispatches one fired slab event: frees the slot, retires the
    /// event, and runs the handler. A generation mismatch means the
    /// event was cancelled (or its slot recycled) after the wake was
    /// queued; like a spurious task wake it is dropped without counting.
    fn dispatch_event(&self, slot: u32, gen: u32) {
        let (handler, data) = {
            let slots = self.core.event_slots.borrow();
            let s = match slots.get(slot as usize) {
                Some(s) => s,
                None => return,
            };
            if s.gen.get() != gen {
                return;
            }
            // Bump the generation before running anything: the handler
            // may re-arm this very slot for a new event.
            s.gen.set((gen + 1) & EVENT_GEN_MASK);
            (s.handler.get(), s.data.get())
        };
        self.core.event_free.borrow_mut().push(slot);
        self.core.events.set(self.core.events.get() + 1);
        let h = self.core.event_handlers.borrow()[handler as usize].clone();
        if let Some(h) = h {
            h(data);
        }
    }

    /// Dispatches one direct ready entry: retires the event and runs the
    /// handler with the word's payload. No slot to free, no generation
    /// to check — the encoding is complete in the word (see
    /// [`Sim::direct_waker`]).
    fn dispatch_direct(&self, word: usize) {
        self.core.events.set(self.core.events.get() + 1);
        let handler = (word >> 32) as u32 & (DIRECT_HANDLER_MAX - 1);
        let h = self.core.event_handlers.borrow()[handler as usize].clone();
        if let Some(h) = h {
            h(u64::from(word as u32));
        }
    }

    /// Advances the clock to the next timer and wakes it.
    ///
    /// Returns `false` if no timers are pending.
    fn fire_next_timer(&self) -> bool {
        let entry = match self.core.timers.borrow_mut().pop() {
            Some(e) => e,
            None => return false,
        };
        let deadline = SimTime(entry.deadline);
        debug_assert!(
            deadline >= self.now(),
            "timer in the past: {} < {}",
            deadline,
            self.now()
        );
        if deadline > self.now() {
            self.core.now.set(deadline);
        }
        self.core.events.set(self.core.events.get() + 1);
        match entry.payload {
            TimerPayload::Task(waker) => waker.wake(),
            TimerPayload::Event(code) => self.core.ready.push(code),
            // The ready queue is always drained empty before a timer
            // fires, so dispatching inline observes the exact order (and
            // event count) the push-pop round trip through the ready
            // queue would: one event for the fire above, one for the
            // dispatch here.
            TimerPayload::Direct { handler, data } => {
                self.core.events.set(self.core.events.get() + 1);
                let h = self.core.event_handlers.borrow()[handler as usize].clone();
                if let Some(h) = h {
                    h(data);
                }
            }
        }
        true
    }

    fn poll_task(&self, id: TaskId) {
        // Take the future out of the table so that the task may itself
        // spawn tasks (which re-borrows the table) while being polled.
        let fut = {
            let mut tasks = self.core.tasks.borrow_mut();
            match tasks.get_mut(id) {
                Some(TaskSlot::Shadow) => {
                    // A stale wake reached a recycled slot that a
                    // shadow now occupies: retire one event, exactly
                    // as the spurious no-op poll of the task that
                    // would have occupied this slot did.
                    drop(tasks);
                    self.core.events.set(self.core.events.get() + 1);
                    return;
                }
                Some(TaskSlot::Task(fut)) => match fut.take() {
                    Some(f) => f,
                    // Already being polled or already finished: spurious wake.
                    None => return,
                },
                _ => return,
            }
        };

        // Reuse the slot's cached waker: one refcount bump instead of an
        // `Arc` allocation per poll. Cloned (not borrowed) because the
        // polled task may spawn, which pushes new wakers.
        let waker = self.core.wakers.borrow()[id].clone();
        let mut cx = Context::from_waker(&waker);
        self.core.polling.set(self.core.polling.get() + 1);
        self.core.events.set(self.core.events.get() + 1);
        let mut fut = fut;
        let poll = fut.as_mut().poll(&mut cx);
        self.core.polling.set(self.core.polling.get() - 1);

        let mut tasks = self.core.tasks.borrow_mut();
        match poll {
            Poll::Ready(()) => {
                tasks[id] = TaskSlot::Vacant {
                    next: self.core.free_head.get(),
                };
                self.core.free_head.set(id);
            }
            Poll::Pending => {
                if let Some(TaskSlot::Task(slot)) = tasks.get_mut(id) {
                    *slot = Some(fut);
                }
            }
        }
    }

    /// Registers a dispatch target for slab events and returns its id.
    ///
    /// Handlers are registered once per subsystem (e.g. one per flyweight
    /// tier); each armed event then carries only the id plus a `u64`
    /// payload, so the steady-state path allocates nothing.
    pub fn register_event_handler(&self, handler: EventHandlerFn) -> EventHandlerId {
        let mut handlers = self.core.event_handlers.borrow_mut();
        handlers.push(Some(handler));
        EventHandlerId((handlers.len() - 1) as u32)
    }

    /// Drops a registered handler (events already armed for it are
    /// silently discarded at dispatch). Subsystems that capture `Rc`
    /// cycles back into the simulation call this when they finish, so
    /// their world can be reclaimed.
    pub fn clear_event_handler(&self, id: EventHandlerId) {
        self.core.event_handlers.borrow_mut()[id.0 as usize] = None;
    }

    /// Claims a free event slot and arms it with `(handler, data)`,
    /// refreshing the slot waker's generation snapshot.
    fn arm_event(&self, handler: EventHandlerId, data: u64) -> ScheduledEvent {
        let slot = match self.core.event_free.borrow_mut().pop() {
            Some(s) => s,
            None => {
                let mut slots = self.core.event_slots.borrow_mut();
                let slot = slots.len() as u32;
                slots.push(EventSlot {
                    gen: Cell::new(0),
                    handler: Cell::new(0),
                    data: Cell::new(0),
                });
                let mut wakers = self.core.event_wakers.borrow_mut();
                let mut waker_data = self.core.event_waker_data.borrow_mut();
                let boxed = Box::new(EventWakerData {
                    slot,
                    gen: Cell::new(0),
                    ready: Arc::as_ptr(&self.core.ready),
                });
                let raw = RawWaker::new(
                    &*boxed as *const EventWakerData as *const (),
                    &EVENT_WAKER_VTABLE,
                );
                waker_data.push(boxed);
                // SAFETY: see `EventWakerData` — single-threaded use,
                // data outlives every waker clone.
                wakers.push(unsafe { Waker::from_raw(raw) });
                slot
            }
        };
        let slots = self.core.event_slots.borrow();
        let s = &slots[slot as usize];
        let gen = s.gen.get();
        s.handler.set(handler.0);
        s.data.set(data);
        self.core.event_waker_data.borrow()[slot as usize]
            .gen
            .set(gen);
        ScheduledEvent { slot, gen }
    }

    /// Registers a timed dispatch of `handler(data)` at `deadline` with
    /// no way to cancel it: the timer carries the handler id and payload
    /// itself, touching neither the event slab nor the ready queue.
    /// Cheaper than [`Sim::schedule_event`] on hot paths that never
    /// cancel; identical event arithmetic (fire + dispatch).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is not in the future — there is no inline
    /// path; callers handle elapsed deadlines themselves.
    pub fn schedule_direct(&self, deadline: SimTime, handler: EventHandlerId, data: u64) {
        assert!(deadline > self.now(), "schedule_direct needs a future deadline");
        let seq = self.core.timer_seq.get();
        self.core.timer_seq.set(seq + 1);
        self.core.timers.borrow_mut().push(
            deadline.as_nanos(),
            seq,
            TimerPayload::Direct {
                handler: handler.0,
                data,
            },
        );
    }

    /// Arms a slab event that dispatches `handler(data)` at `deadline`
    /// — no future, no task, no allocation in steady state. A deadline
    /// at or before now dispatches on the next ready-queue drain.
    pub fn schedule_event(
        &self,
        deadline: SimTime,
        handler: EventHandlerId,
        data: u64,
    ) -> ScheduledEvent {
        let ev = self.arm_event(handler, data);
        if deadline > self.now() {
            self.register_event_timer(deadline, encode_event(ev.slot, ev.gen));
        } else {
            self.core.ready.push(encode_event(ev.slot, ev.gen));
        }
        ev
    }

    /// Arms a slab event that dispatches on the next ready-queue drain —
    /// the taskless analogue of [`Sim::spawn`]'s initial poll.
    pub fn post_event(&self, handler: EventHandlerId, data: u64) -> ScheduledEvent {
        let ev = self.arm_event(handler, data);
        self.core.ready.push(encode_event(ev.slot, ev.gen));
        ev
    }

    /// Arms a slab event and returns its waker, for parking in a sync
    /// primitive ([`crate::sync`]): when the primitive wakes it, the
    /// event dispatches. The waker must be woken at most once per arm
    /// (which every primitive in this crate guarantees).
    pub fn event_waker(&self, handler: EventHandlerId, data: u64) -> (ScheduledEvent, Waker) {
        let ev = self.arm_event(handler, data);
        let waker = self.core.event_wakers.borrow()[ev.slot as usize].clone();
        (ev, waker)
    }

    /// Builds a reusable waker that dispatches `handler(data)` each time
    /// it is woken — the zero-state spelling of [`Sim::event_waker`] for
    /// callers whose parks are woken exactly once and never cancelled
    /// (the flyweight tier's admission and service waits). The word is
    /// encoded once; waking is a single ready-queue push and dispatch
    /// touches no slab, so the waker can be built per long-lived record
    /// and cloned for every park over its lifetime.
    ///
    /// Created once per caller-side slot: the backing store is append-
    /// only (it must outlive every clone), so callers cache the waker,
    /// not recreate it per park.
    pub fn direct_waker(&self, handler: EventHandlerId, data: u32) -> Waker {
        assert!(
            handler.0 < DIRECT_HANDLER_MAX,
            "direct wakers carry 30-bit handler ids"
        );
        let boxed = Box::new(DirectWakerData {
            word: encode_direct(handler.0, data),
            ready: Arc::as_ptr(&self.core.ready),
        });
        let raw = RawWaker::new(
            &*boxed as *const DirectWakerData as *const (),
            &DIRECT_WAKER_VTABLE,
        );
        self.core.direct_waker_data.borrow_mut().push(boxed);
        // SAFETY: see `DirectWakerData` — single-threaded use, data
        // outlives every waker clone.
        unsafe { Waker::from_raw(raw) }
    }

    /// Cancels an armed event. Returns `true` if the event was still
    /// armed (it will now never dispatch); `false` if it had already
    /// dispatched or been cancelled — the ABA-safe no-op.
    pub fn cancel_event(&self, ev: ScheduledEvent) -> bool {
        let slots = self.core.event_slots.borrow();
        let s = match slots.get(ev.slot as usize) {
            Some(s) => s,
            None => return false,
        };
        if s.gen.get() != ev.gen {
            return false;
        }
        s.gen.set((ev.gen + 1) & EVENT_GEN_MASK);
        drop(slots);
        self.core.event_free.borrow_mut().push(ev.slot);
        true
    }

    /// Number of currently armed slab events. Mostly for tests.
    pub fn live_events(&self) -> usize {
        self.core.event_slots.borrow().len() - self.core.event_free.borrow().len()
    }

    /// Events retired so far: task polls plus timer fires plus slab
    /// event dispatches. The micro-profiler divides this by wall-clock
    /// for events/sec.
    pub fn events(&self) -> u64 {
        self.core.events.get()
    }

    /// Number of live (spawned, unfinished) tasks. Mostly for tests.
    pub fn live_tasks(&self) -> usize {
        self.core
            .tasks
            .borrow()
            .iter()
            .filter(|t| matches!(t, TaskSlot::Task(_)))
            .count()
    }
}

/// Future returned by [`Sim::sleep`] and [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            let deadline = self.deadline;
            self.sim.register_timer(deadline, cx.waker().clone());
            self.registered = true;
        }
        Poll::Pending
    }
}

struct JoinState<T> {
    result: Option<T>,
    /// The single task awaiting this handle (handles are not `Clone`,
    /// so at most one awaiter exists; re-polls just replace the waker).
    waiter: Option<Waker>,
}

/// Handle to a spawned task's eventual output.
///
/// Await it to block until the task finishes, or poll [`JoinHandle::try_take`]
/// from outside the executor.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Takes the task's output if it has finished, without blocking.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// Returns `true` once the task has finished (and the output has not
    /// yet been taken).
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(out) = st.result.take() {
            Poll::Ready(out)
        } else {
            st.waiter = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Yields once, letting every other ready task run before continuing.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        let s2 = sim.clone();
        let t = sim.run_until(async move {
            s2.sleep(SimDuration::from_millis(7)).await;
            s2.now()
        });
        assert_eq!(t.as_nanos(), 7_000_000);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let s2 = sim.clone();
        sim.run_until(async move {
            s2.sleep(SimDuration::ZERO).await;
            assert_eq!(s2.now(), SimTime::ZERO);
        });
    }

    #[test]
    fn sleep_until_past_deadline_is_noop() {
        let sim = Sim::new();
        let s2 = sim.clone();
        sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(10)).await;
            s2.sleep_until(SimTime(5)).await;
            assert_eq!(s2.now().as_nanos(), 10_000);
        });
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let order = Rc::clone(&order);
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(u64::from(3 - i))).await;
                order.borrow_mut().push(i);
            });
        }
        let s2 = sim.clone();
        sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(10)).await;
        });
        // Shorter sleeps finish first: i=2 slept 1us, i=1 slept 2us, i=0 3us.
        assert_eq!(*order.borrow(), vec![2, 1, 0]);
    }

    #[test]
    fn equal_deadlines_fire_in_registration_order() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4u32 {
            let order = Rc::clone(&order);
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(5)).await;
                order.borrow_mut().push(i);
            });
        }
        let s2 = sim.clone();
        sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(6)).await;
        });
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        let v = sim.run_until(async move {
            let h = s.spawn(async { 42 });
            h.await
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn join_handle_waits_for_sleeping_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let v = sim.run_until(async move {
            let s2 = s.clone();
            let h = s.spawn(async move {
                s2.sleep(SimDuration::from_millis(3)).await;
                s2.now().as_nanos()
            });
            h.await
        });
        assert_eq!(v, 3_000_000);
    }

    #[test]
    fn spawn_inside_task_works() {
        let sim = Sim::new();
        let s = sim.clone();
        let v = sim.run_until(async move {
            let inner = s.spawn(async { 7 });
            let s2 = s.clone();
            let outer = s.spawn(async move {
                let j = s2.spawn(async { 35 });
                j.await
            });
            inner.await + outer.await
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn yield_now_lets_others_run() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l1 = Rc::clone(&log);
        let l2 = Rc::clone(&log);
        sim.spawn(async move {
            l1.borrow_mut().push("a1");
            yield_now().await;
            l1.borrow_mut().push("a2");
        });
        sim.spawn(async move {
            l2.borrow_mut().push("b1");
            yield_now().await;
            l2.borrow_mut().push("b2");
        });
        let s2 = sim.clone();
        sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(1)).await;
        });
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn daemons_are_abandoned_after_main_completes() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn({
            let s = sim.clone();
            async move {
                loop {
                    s.sleep(SimDuration::from_secs(1)).await;
                }
            }
        });
        let t = sim.run_until(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            s.now()
        });
        assert_eq!(t.as_nanos(), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "simulation deadlock")]
    fn deadlock_detection() {
        let sim = Sim::new();
        sim.run_until(std::future::pending::<()>());
    }

    #[test]
    fn live_task_accounting() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let before = s.live_tasks();
            let h = s.spawn(async {});
            assert_eq!(s.live_tasks(), before + 1);
            h.await;
            assert_eq!(s.live_tasks(), before);
        });
    }

    type EventLog = Rc<RefCell<Vec<(u64, u64)>>>;

    /// Registers a handler that appends `(now, data)` to a shared log.
    fn logging_handler(sim: &Sim) -> (EventHandlerId, EventLog) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let s = sim.clone();
        let h = sim.register_event_handler(Rc::new(move |data| {
            l.borrow_mut().push((s.now().as_nanos(), data));
        }));
        (h, log)
    }

    #[test]
    fn events_fire_in_deadline_order() {
        let sim = Sim::new();
        let (h, log) = logging_handler(&sim);
        let s = sim.clone();
        sim.run_until(async move {
            s.schedule_event(SimTime(300), h, 3);
            s.schedule_event(SimTime(100), h, 1);
            s.schedule_event(SimTime(200), h, 2);
            s.sleep(SimDuration::from_nanos(400)).await;
        });
        assert_eq!(*log.borrow(), vec![(100, 1), (200, 2), (300, 3)]);
        assert_eq!(sim.live_events(), 0);
    }

    #[test]
    fn past_deadline_dispatches_without_advancing_clock() {
        let sim = Sim::new();
        let (h, log) = logging_handler(&sim);
        let s = sim.clone();
        sim.run_until(async move {
            s.sleep(SimDuration::from_nanos(500)).await;
            s.schedule_event(SimTime(100), h, 7);
            s.post_event(h, 8);
            yield_now().await;
        });
        assert_eq!(*log.borrow(), vec![(500, 7), (500, 8)]);
    }

    #[test]
    fn event_dispatch_counts_one_engine_event() {
        // Parity with the task engine: a timer-armed event costs one
        // fire (wheel pop) + one dispatch, exactly like sleep's
        // fire + poll; a posted event costs one dispatch like a poll.
        let sim = Sim::new();
        let (h, _log) = logging_handler(&sim);
        let s = sim.clone();
        sim.run_until(async move {
            let base = s.events();
            s.post_event(h, 0);
            yield_now().await;
            assert_eq!(s.events() - base, 2); // 1 dispatch + 1 yield poll
        });
    }

    #[test]
    fn cancel_prevents_dispatch_and_frees_slot() {
        let sim = Sim::new();
        let (h, log) = logging_handler(&sim);
        let s = sim.clone();
        sim.run_until(async move {
            let ev = s.schedule_event(SimTime(100), h, 1);
            assert_eq!(s.live_events(), 1);
            assert!(s.cancel_event(ev));
            assert_eq!(s.live_events(), 0);
            assert!(!s.cancel_event(ev), "double cancel must be a no-op");
            // The timer still fires (and counts), but the generation
            // mismatch makes the dispatch a silent no-op.
            s.sleep(SimDuration::from_nanos(200)).await;
        });
        assert!(log.borrow().is_empty());
    }

    #[test]
    fn cancelled_slot_reuse_does_not_resurrect_old_event() {
        let sim = Sim::new();
        let (h, log) = logging_handler(&sim);
        let s = sim.clone();
        sim.run_until(async move {
            let ev = s.schedule_event(SimTime(100), h, 1);
            assert!(s.cancel_event(ev));
            // Re-arm the same slot with a later deadline. The stale
            // timer fires first; its generation is dead so nothing
            // happens until the fresh event's own timer fires.
            let ev2 = s.schedule_event(SimTime(300), h, 2);
            assert_eq!(ev2.slot, ev.slot, "free list should reuse the slot");
            s.sleep(SimDuration::from_nanos(400)).await;
        });
        assert_eq!(*log.borrow(), vec![(300, 2)]);
    }

    #[test]
    fn event_waker_parks_until_woken() {
        let sim = Sim::new();
        let (h, log) = logging_handler(&sim);
        let s = sim.clone();
        sim.run_until(async move {
            let (_ev, waker) = s.event_waker(h, 9);
            s.sleep(SimDuration::from_nanos(50)).await;
            assert!(log.borrow().is_empty());
            waker.wake();
            yield_now().await;
            assert_eq!(*log.borrow(), vec![(50, 9)]);
        });
    }

    #[test]
    fn cleared_handler_discards_pending_events() {
        let sim = Sim::new();
        let (h, log) = logging_handler(&sim);
        let s = sim.clone();
        sim.run_until(async move {
            s.schedule_event(SimTime(100), h, 1);
            s.clear_event_handler(h);
            s.sleep(SimDuration::from_nanos(200)).await;
        });
        assert!(log.borrow().is_empty());
    }

    #[test]
    fn events_interleave_deterministically_with_tasks() {
        let run = || {
            let sim = Sim::new();
            let (h, log) = logging_handler(&sim);
            let s = sim.clone();
            sim.run_until(async move {
                for i in 0..8u64 {
                    s.schedule_event(SimTime(10 * i), h, i);
                }
                let l2 = {
                    let (h2, l2) = logging_handler(&s);
                    s.schedule_event(SimTime(35), h2, 100);
                    l2
                };
                s.sleep(SimDuration::from_nanos(200)).await;
                let snap = l2.borrow().clone();
                snap
            });
            let fired = log.borrow().clone();
            (fired, sim.events())
        };
        assert_eq!(run(), run());
    }

    /// One step of the randomized slab-lifecycle interpreter: indexes
    /// refer to the script's table of previously armed events.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum SlabOp {
        Schedule { delay: u64, data: u64 },
        Post { data: u64 },
        Cancel { target: usize },
        Run { nanos: u64 },
    }

    impl crate::proptest::Shrink for SlabOp {
        fn shrink_candidates(&self) -> Vec<SlabOp> {
            match *self {
                SlabOp::Schedule { delay, data } => delay
                    .shrink_candidates()
                    .into_iter()
                    .map(|d| SlabOp::Schedule { delay: d, data })
                    .collect(),
                SlabOp::Post { .. } => Vec::new(),
                SlabOp::Cancel { target } => target
                    .shrink_candidates()
                    .into_iter()
                    .map(|t| SlabOp::Cancel { target: t })
                    .collect(),
                SlabOp::Run { nanos } => nanos
                    .shrink_candidates()
                    .into_iter()
                    .map(|n| SlabOp::Run { nanos: n })
                    .collect(),
            }
        }
    }

    /// ABA / use-after-cancel property (ISSUE 10 S3): over random
    /// schedule/cancel/fire interleavings, every armed event dispatches
    /// exactly once with its own payload unless cancelled first, a
    /// cancelled event never dispatches even when its slot is re-armed
    /// (generation guard), and cancel-after-fire reports `false`.
    #[test]
    fn prop_event_slab_generations_survive_reuse() {
        use crate::proptest::{check, CaseOutcome};
        use crate::{prop_assert, prop_assert_eq};

        check(
            "event_slab_generations_survive_reuse",
            |g| {
                g.vec(1, 48, |g| match g.u8_in(0, 3) {
                    0 => SlabOp::Schedule {
                        delay: g.u64_in(0, 400),
                        data: g.any_u32() as u64,
                    },
                    1 => SlabOp::Post {
                        data: g.any_u32() as u64,
                    },
                    2 => SlabOp::Cancel {
                        target: g.usize_in(0, 63),
                    },
                    _ => SlabOp::Run {
                        nanos: g.u64_in(0, 600),
                    },
                })
            },
            |script| {
                let sim = Sim::new();
                let (h, log) = logging_handler(&sim);
                let s = sim.clone();
                let script = script.clone();
                // Expected-to-fire set, maintained by the reference
                // interpreter: data -> armed deadline.
                let outcome = sim.run_until(async move {
                    let mut armed: Vec<(ScheduledEvent, u64, u64)> = Vec::new(); // (ev, data, deadline)
                    let mut expected: Vec<(u64, u64)> = Vec::new();
                    let mut cancelled: Vec<u64> = Vec::new();
                    // Payloads are re-keyed to a unique counter so the
                    // reference interpreter can match fires to arms.
                    let mut next_data: u64 = 0;
                    for op in script {
                        match op {
                            SlabOp::Schedule { delay, data: _ } => {
                                let data = next_data;
                                next_data += 1;
                                let at = s.now() + SimDuration::from_nanos(delay);
                                let ev = s.schedule_event(at, h, data);
                                armed.push((ev, data, at.as_nanos()));
                            }
                            SlabOp::Post { data: _ } => {
                                let data = next_data;
                                next_data += 1;
                                let ev = s.post_event(h, data);
                                armed.push((ev, data, s.now().as_nanos()));
                            }
                            SlabOp::Cancel { target } => {
                                if armed.is_empty() {
                                    continue;
                                }
                                let (ev, data, deadline) = armed[target % armed.len()];
                                let already_fired =
                                    log.borrow().iter().any(|&(_, d)| d == data);
                                let already_cancelled = cancelled.contains(&data);
                                let ok = s.cancel_event(ev);
                                if ok {
                                    cancelled.push(data);
                                } else if !already_fired && !already_cancelled {
                                    return CaseOutcome::Fail(format!(
                                        "cancel of live unfired event {data} (deadline \
                                         {deadline}) returned false"
                                    ));
                                }
                            }
                            SlabOp::Run { nanos } => {
                                s.sleep(SimDuration::from_nanos(nanos)).await;
                            }
                        }
                    }
                    // Drain everything still pending.
                    s.sleep(SimDuration::from_nanos(1_000)).await;
                    for (_, data, deadline) in &armed {
                        if !cancelled.contains(data) {
                            expected.push((*deadline, *data));
                        }
                    }
                    let mut fired = log.borrow().clone();
                    fired.sort_unstable();
                    expected.sort_unstable();
                    // Non-cancelled events must each fire exactly once at
                    // their deadline; cancelled ones never.
                    prop_assert_eq!(fired, expected);
                    for data in &cancelled {
                        prop_assert!(
                            !log.borrow().iter().any(|(_, d)| d == data),
                            "cancelled event {data} dispatched"
                        );
                    }
                    // All slots must recycle.
                    prop_assert_eq!(s.live_events(), 0);
                    CaseOutcome::Pass
                });
                outcome
            },
        );
    }
}
