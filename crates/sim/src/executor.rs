//! The discrete-event executor.
//!
//! [`Sim`] is a deterministic, single-threaded executor for `!Send` futures.
//! Tasks advance only by awaiting simulated time ([`Sim::sleep`]) or
//! synchronization primitives from [`crate::sync`]; real wall-clock time
//! never enters the model. Determinism is guaranteed by:
//!
//! - a FIFO ready queue (tasks run in wake order),
//! - a timer heap ordered by `(deadline, insertion sequence)`, and
//! - a seeded pseudo-random number generator ([`crate::rng::SimRng`]).
//!
//! The design mirrors classical process-oriented simulation: each simulated
//! thread of control (an application writer, `nfs_flushd`, a server service
//! loop, a disk) is an async task, and blocking kernel behaviour maps onto
//! `await` points.
//!
//! # Hot path
//!
//! Two structures sit under every simulated event and are built for the
//! single-threaded case:
//!
//! - the ready queue is a plain `VecDeque` behind an [`std::cell::UnsafeCell`]
//!   ([`ReadyQueue`]) rather than a `Mutex` — the `Waker` contract forces
//!   `Send + Sync`, but every waker in this executor is created and invoked
//!   on the simulator's own thread, so the lock was pure overhead;
//! - pending timers live in a hierarchical timer wheel
//!   ([`crate::wheel::TimerWheel`]) instead of a binary heap: `O(1)`
//!   registration, `O(levels)` pops, and the exact
//!   `(deadline, registration-seq)` firing order the heap gave.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use crate::profile;
use crate::time::{SimDuration, SimTime};
use crate::wheel::TimerWheel;

/// Identifier of a spawned task.
pub type TaskId = usize;

type LocalFuture = Pin<Box<dyn Future<Output = ()> + 'static>>;

/// The FIFO queue of task ids that have been woken and await polling.
///
/// This is the only piece of executor state a [`Waker`] touches, and
/// `Waker` requires `Send + Sync`, so it must present a shared-reference
/// API — but the simulator is single-threaded by construction: tasks are
/// `!Send`, every waker is created during a poll on the executor thread,
/// and [`crate::runner`] parallelizes only across whole `Sim` worlds,
/// each confined to one worker thread. A `Mutex` here is pure overhead on
/// the hottest path in the engine (every wake and every poll), so the
/// queue lives in an `UnsafeCell` with the single-thread invariant
/// asserted in debug builds.
struct ReadyQueue {
    queue: UnsafeCell<VecDeque<TaskId>>,
    /// The thread the owning `Sim` was created on; all pushes and pops
    /// must come from it.
    owner: std::thread::ThreadId,
}

// SAFETY: see the struct docs — all access is confined to `owner`. The
// executor never hands wakers to other threads (no I/O, no real timers),
// and a `Sim` cannot move threads because its core holds `Rc`s.
unsafe impl Send for ReadyQueue {}
unsafe impl Sync for ReadyQueue {}

impl Default for ReadyQueue {
    fn default() -> ReadyQueue {
        ReadyQueue {
            queue: UnsafeCell::new(VecDeque::new()),
            owner: std::thread::current().id(),
        }
    }
}

impl ReadyQueue {
    #[inline]
    fn assert_owner(&self) {
        debug_assert_eq!(
            std::thread::current().id(),
            self.owner,
            "Sim used from a thread other than the one that created it"
        );
    }

    #[inline]
    fn push(&self, id: TaskId) {
        self.assert_owner();
        // SAFETY: single-threaded access (asserted above); no reentrant
        // borrow — push/pop never call back into the queue.
        unsafe { (*self.queue.get()).push_back(id) };
    }

    #[inline]
    fn pop(&self) -> Option<TaskId> {
        self.assert_owner();
        // SAFETY: as in `push`.
        unsafe { (*self.queue.get()).pop_front() }
    }
}

/// Backing data for one task slot's waker.
///
/// Owned by [`SimCore::waker_data`] (one boxed instance per slot, alive
/// for the core's whole lifetime), so the waker vtable can be entirely
/// free of reference counting: `clone` copies the data pointer, `drop`
/// is a no-op, and `wake` pushes the slot id. Before this, every waker
/// operation paid an atomic `Arc` refcount — ~15% of the engine profile.
///
/// SAFETY contract (mirrors [`ReadyQueue`]): wakers built over this data
/// are only cloned, woken, and dropped on the core's own thread, and
/// never outlive the core — every holder (the timer wheel, wait nodes,
/// join states) lives inside a structure of the same simulated world.
struct WakerData {
    id: TaskId,
    ready: *const ReadyQueue,
}

static WAKER_VTABLE: RawWakerVTable = RawWakerVTable::new(
    // clone: identity — the data is owned by the core, not the waker.
    |data| RawWaker::new(data, &WAKER_VTABLE),
    // wake / wake_by_ref: reschedule the slot.
    |data| unsafe {
        let d = &*(data as *const WakerData);
        (*d.ready).push(d.id);
    },
    |data| unsafe {
        let d = &*(data as *const WakerData);
        (*d.ready).push(d.id);
    },
    // drop: no-op.
    |_| {},
);

/// A slot in the task table.
struct TaskSlot {
    future: Option<LocalFuture>,
}

struct SimCore {
    now: Cell<SimTime>,
    timer_seq: Cell<u64>,
    timers: RefCell<TimerWheel<Waker>>,
    tasks: RefCell<Vec<Option<TaskSlot>>>,
    /// One cached waker per task-table slot. A waker carries only the
    /// slot index and the ready queue, so it never goes stale: it is
    /// created when the slot first exists and reused across every poll
    /// of every task that ever occupies the slot. Before this cache each
    /// poll allocated a fresh `Arc` waker — the single largest
    /// allocation source in the engine.
    wakers: RefCell<Vec<Waker>>,
    /// Backing store for the slot wakers (see [`WakerData`]); boxed so
    /// the pointers baked into the wakers stay stable as the table grows.
    #[allow(clippy::vec_box)]
    waker_data: RefCell<Vec<Box<WakerData>>>,
    free_slots: RefCell<Vec<TaskId>>,
    ready: Arc<ReadyQueue>,
    /// Count of tasks currently being polled; used to catch re-entrancy.
    polling: Cell<usize>,
    /// Retired events (task polls + timer fires); feeds the
    /// micro-profiler's events/sec metric.
    events: Cell<u64>,
    /// Events already credited to the thread-local profiler tally.
    events_credited: Cell<u64>,
}

impl SimCore {
    /// Credits events retired since the last flush to the thread running
    /// this world, so the sweep runner can report per-cell events/sec
    /// without threading a counter through every experiment. Called when
    /// `run_until` returns — worlds whose daemon tasks hold `Rc` cycles
    /// back to the core may never drop, so crediting cannot wait for
    /// `Drop` alone.
    fn flush_events_to_profiler(&self) {
        let total = self.events.get();
        profile::note_sim_events(total - self.events_credited.get());
        self.events_credited.set(total);
    }
}

impl Drop for SimCore {
    fn drop(&mut self) {
        // Backstop for events retired outside any `run_until` call.
        self.flush_events_to_profiler();
    }
}

/// Handle to the simulator; cheap to clone and share between tasks.
///
/// # Examples
///
/// ```
/// use nfsperf_sim::{Sim, SimDuration};
///
/// let sim = Sim::new();
/// let out = sim.run_until({
///     let sim = sim.clone();
///     async move {
///         sim.sleep(SimDuration::from_micros(5)).await;
///         sim.now().as_nanos()
///     }
/// });
/// assert_eq!(out, 5_000);
/// ```
#[derive(Clone)]
pub struct Sim {
    core: Rc<SimCore>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates a fresh simulator with the clock at zero.
    pub fn new() -> Sim {
        Sim {
            core: Rc::new(SimCore {
                now: Cell::new(SimTime::ZERO),
                timer_seq: Cell::new(0),
                timers: RefCell::new(TimerWheel::new()),
                tasks: RefCell::new(Vec::new()),
                wakers: RefCell::new(Vec::new()),
                waker_data: RefCell::new(Vec::new()),
                free_slots: RefCell::new(Vec::new()),
                ready: Arc::new(ReadyQueue::default()),
                polling: Cell::new(0),
                events: Cell::new(0),
                events_credited: Cell::new(0),
            }),
        }
    }

    /// Returns the current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    /// Registers a waker to fire at `deadline`.
    ///
    /// Used by [`Sleep`]; most code should call [`Sim::sleep`] instead.
    pub fn register_timer(&self, deadline: SimTime, waker: Waker) {
        let seq = self.core.timer_seq.get();
        self.core.timer_seq.set(seq + 1);
        self.core
            .timers
            .borrow_mut()
            .push(deadline.as_nanos(), seq, waker);
    }

    /// Returns a future that completes after `dur` of simulated time.
    pub fn sleep(&self, dur: SimDuration) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline: self.now() + dur,
            registered: false,
        }
    }

    /// Returns a future that completes at the absolute instant `deadline`.
    ///
    /// Completes immediately if `deadline` is already in the past.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            registered: false,
        }
    }

    /// Spawns a background task, returning a handle to await its output.
    ///
    /// The task starts in the ready queue and first runs when the executor
    /// next drains it.
    pub fn spawn<T, F>(&self, fut: F) -> JoinHandle<T>
    where
        T: 'static,
        F: Future<Output = T> + 'static,
    {
        let state = Rc::new(RefCell::new(JoinState::<T> {
            result: None,
            waiter: None,
        }));
        let state2 = Rc::clone(&state);
        let wrapped: LocalFuture = Box::pin(async move {
            let out = fut.await;
            let mut st = state2.borrow_mut();
            st.result = Some(out);
            if let Some(w) = st.waiter.take() {
                w.wake();
            }
        });

        let id = self.insert_task(wrapped);
        self.core.ready.push(id);
        JoinHandle { state }
    }

    fn insert_task(&self, fut: LocalFuture) -> TaskId {
        let mut tasks = self.core.tasks.borrow_mut();
        let id = if let Some(id) = self.core.free_slots.borrow_mut().pop() {
            tasks[id] = Some(TaskSlot { future: Some(fut) });
            id
        } else {
            tasks.push(Some(TaskSlot { future: Some(fut) }));
            tasks.len() - 1
        };
        let mut wakers = self.core.wakers.borrow_mut();
        let mut waker_data = self.core.waker_data.borrow_mut();
        while wakers.len() <= id {
            let data = Box::new(WakerData {
                id: wakers.len(),
                ready: Arc::as_ptr(&self.core.ready),
            });
            let raw = RawWaker::new(&*data as *const WakerData as *const (), &WAKER_VTABLE);
            waker_data.push(data);
            // SAFETY: see `WakerData` — single-threaded use, data outlives
            // every waker clone.
            wakers.push(unsafe { Waker::from_raw(raw) });
        }
        id
    }

    /// Drives `main` to completion, running spawned tasks and advancing the
    /// simulated clock as needed, and returns its output.
    ///
    /// Background tasks that are still pending when `main` completes are
    /// dropped (daemons need no explicit shutdown).
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks: `main` is not finished but no
    /// task is runnable and no timer is pending.
    pub fn run_until<T, F>(&self, main: F) -> T
    where
        T: 'static,
        F: Future<Output = T> + 'static,
    {
        let handle = self.spawn(main);
        loop {
            self.drain_ready();
            if let Some(out) = handle.try_take() {
                self.core.flush_events_to_profiler();
                return out;
            }
            if !self.fire_next_timer() {
                panic!(
                    "simulation deadlock at t={}: main task pending, no runnable \
                     tasks and no timers",
                    self.now()
                );
            }
        }
    }

    /// Polls every woken task until the ready queue is empty.
    fn drain_ready(&self) {
        while let Some(id) = self.core.ready.pop() {
            self.poll_task(id);
        }
    }

    /// Advances the clock to the next timer and wakes it.
    ///
    /// Returns `false` if no timers are pending.
    fn fire_next_timer(&self) -> bool {
        let entry = match self.core.timers.borrow_mut().pop() {
            Some(e) => e,
            None => return false,
        };
        let deadline = SimTime(entry.deadline);
        debug_assert!(
            deadline >= self.now(),
            "timer in the past: {} < {}",
            deadline,
            self.now()
        );
        if deadline > self.now() {
            self.core.now.set(deadline);
        }
        self.core.events.set(self.core.events.get() + 1);
        entry.payload.wake();
        true
    }

    fn poll_task(&self, id: TaskId) {
        // Take the future out of the table so that the task may itself
        // spawn tasks (which re-borrows the table) while being polled.
        let fut = {
            let mut tasks = self.core.tasks.borrow_mut();
            match tasks.get_mut(id) {
                Some(Some(slot)) => match slot.future.take() {
                    Some(f) => f,
                    // Already being polled or already finished: spurious wake.
                    None => return,
                },
                _ => return,
            }
        };

        // Reuse the slot's cached waker: one refcount bump instead of an
        // `Arc` allocation per poll. Cloned (not borrowed) because the
        // polled task may spawn, which pushes new wakers.
        let waker = self.core.wakers.borrow()[id].clone();
        let mut cx = Context::from_waker(&waker);
        self.core.polling.set(self.core.polling.get() + 1);
        self.core.events.set(self.core.events.get() + 1);
        let mut fut = fut;
        let poll = fut.as_mut().poll(&mut cx);
        self.core.polling.set(self.core.polling.get() - 1);

        let mut tasks = self.core.tasks.borrow_mut();
        match poll {
            Poll::Ready(()) => {
                tasks[id] = None;
                self.core.free_slots.borrow_mut().push(id);
            }
            Poll::Pending => {
                if let Some(Some(slot)) = tasks.get_mut(id) {
                    slot.future = Some(fut);
                }
            }
        }
    }

    /// Events retired so far: task polls plus timer fires. The
    /// micro-profiler divides this by wall-clock for events/sec.
    pub fn events(&self) -> u64 {
        self.core.events.get()
    }

    /// Number of live (spawned, unfinished) tasks. Mostly for tests.
    pub fn live_tasks(&self) -> usize {
        self.core
            .tasks
            .borrow()
            .iter()
            .filter(|t| t.is_some())
            .count()
    }
}

/// Future returned by [`Sim::sleep`] and [`Sim::sleep_until`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            let deadline = self.deadline;
            self.sim.register_timer(deadline, cx.waker().clone());
            self.registered = true;
        }
        Poll::Pending
    }
}

struct JoinState<T> {
    result: Option<T>,
    /// The single task awaiting this handle (handles are not `Clone`,
    /// so at most one awaiter exists; re-polls just replace the waker).
    waiter: Option<Waker>,
}

/// Handle to a spawned task's eventual output.
///
/// Await it to block until the task finishes, or poll [`JoinHandle::try_take`]
/// from outside the executor.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Takes the task's output if it has finished, without blocking.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// Returns `true` once the task has finished (and the output has not
    /// yet been taken).
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(out) = st.result.take() {
            Poll::Ready(out)
        } else {
            st.waiter = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Yields once, letting every other ready task run before continuing.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_clock() {
        let sim = Sim::new();
        let s2 = sim.clone();
        let t = sim.run_until(async move {
            s2.sleep(SimDuration::from_millis(7)).await;
            s2.now()
        });
        assert_eq!(t.as_nanos(), 7_000_000);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let s2 = sim.clone();
        sim.run_until(async move {
            s2.sleep(SimDuration::ZERO).await;
            assert_eq!(s2.now(), SimTime::ZERO);
        });
    }

    #[test]
    fn sleep_until_past_deadline_is_noop() {
        let sim = Sim::new();
        let s2 = sim.clone();
        sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(10)).await;
            s2.sleep_until(SimTime(5)).await;
            assert_eq!(s2.now().as_nanos(), 10_000);
        });
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let order = Rc::clone(&order);
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(u64::from(3 - i))).await;
                order.borrow_mut().push(i);
            });
        }
        let s2 = sim.clone();
        sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(10)).await;
        });
        // Shorter sleeps finish first: i=2 slept 1us, i=1 slept 2us, i=0 3us.
        assert_eq!(*order.borrow(), vec![2, 1, 0]);
    }

    #[test]
    fn equal_deadlines_fire_in_registration_order() {
        let sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4u32 {
            let order = Rc::clone(&order);
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_micros(5)).await;
                order.borrow_mut().push(i);
            });
        }
        let s2 = sim.clone();
        sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(6)).await;
        });
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new();
        let s = sim.clone();
        let v = sim.run_until(async move {
            let h = s.spawn(async { 42 });
            h.await
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn join_handle_waits_for_sleeping_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let v = sim.run_until(async move {
            let s2 = s.clone();
            let h = s.spawn(async move {
                s2.sleep(SimDuration::from_millis(3)).await;
                s2.now().as_nanos()
            });
            h.await
        });
        assert_eq!(v, 3_000_000);
    }

    #[test]
    fn spawn_inside_task_works() {
        let sim = Sim::new();
        let s = sim.clone();
        let v = sim.run_until(async move {
            let inner = s.spawn(async { 7 });
            let s2 = s.clone();
            let outer = s.spawn(async move {
                let j = s2.spawn(async { 35 });
                j.await
            });
            inner.await + outer.await
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn yield_now_lets_others_run() {
        let sim = Sim::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l1 = Rc::clone(&log);
        let l2 = Rc::clone(&log);
        sim.spawn(async move {
            l1.borrow_mut().push("a1");
            yield_now().await;
            l1.borrow_mut().push("a2");
        });
        sim.spawn(async move {
            l2.borrow_mut().push("b1");
            yield_now().await;
            l2.borrow_mut().push("b2");
        });
        let s2 = sim.clone();
        sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(1)).await;
        });
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn daemons_are_abandoned_after_main_completes() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn({
            let s = sim.clone();
            async move {
                loop {
                    s.sleep(SimDuration::from_secs(1)).await;
                }
            }
        });
        let t = sim.run_until(async move {
            s.sleep(SimDuration::from_millis(1)).await;
            s.now()
        });
        assert_eq!(t.as_nanos(), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "simulation deadlock")]
    fn deadlock_detection() {
        let sim = Sim::new();
        sim.run_until(std::future::pending::<()>());
    }

    #[test]
    fn live_task_accounting() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let before = s.live_tasks();
            let h = s.spawn(async {});
            assert_eq!(s.live_tasks(), before + 1);
            h.await;
            assert_eq!(s.live_tasks(), before);
        });
    }
}
