//! Deterministic discrete-event simulation engine for the `nfsperf`
//! reproduction of *Linux NFS Client Write Performance* (Lever & Honeyman,
//! 2002).
//!
//! Every component of the reproduced system — the client's write path and
//! `nfs_flushd` daemon, the RPC transport, the network links, the servers
//! and their disks — runs as an async task on the single-threaded executor
//! in [`executor`]. Tasks advance only through simulated time, so whole
//! benchmark runs covering hundreds of simulated seconds finish in
//! milliseconds of real time and are bit-for-bit reproducible.
//!
//! # Example
//!
//! ```
//! use nfsperf_sim::{Sim, SimDuration};
//!
//! let sim = Sim::new();
//! let elapsed = sim.run_until({
//!     let sim = sim.clone();
//!     async move {
//!         sim.sleep(SimDuration::from_millis(3)).await;
//!         sim.now()
//!     }
//! });
//! assert_eq!(elapsed.as_nanos(), 3_000_000);
//! ```

pub mod executor;
pub mod metrics;
pub mod profile;
pub mod proptest;
pub mod rng;
pub mod runner;
pub mod select;
pub mod sync;
pub mod time;
pub mod wheel;

pub use executor::{
    yield_now, EventHandlerId, JoinHandle, ScheduledEvent, Sim, Sleep, TaskId, YieldNow,
};
pub use metrics::{
    mbps, mean, percentile, ByteMeter, Counter, Histogram, LatencyDigest, ProfileRow, Profiler,
    Trace,
};
pub use profile::{BenchComparison, BenchReport, CellStats, SweepStats};
pub use rng::SimRng;
pub use runner::{default_jobs, run_cells, run_cells_profiled, Cell};
pub use select::{select2, Either};
pub use sync::{
    channel, Gate, GatePass, LockGuard, LockStats, Receiver, SemAcquire, SemPermit, Semaphore,
    Sender, SimLock, WaitFuture, WaitQueue,
};
pub use time::{SimDuration, SimTime};
