//! A minimal in-tree property-testing driver.
//!
//! Replaces the external `proptest` crate so the workspace builds and
//! tests fully offline. It keeps the three features the test suite
//! actually relies on:
//!
//! 1. **Seeded case generation** — every case draws its inputs from a
//!    [`SimRng`] seeded deterministically from a base seed, so a run is
//!    bit-reproducible.
//! 2. **Shrinking on failure** — when a case fails, the driver walks
//!    [`Shrink::shrink_candidates`] greedily toward a minimal failing
//!    input before reporting.
//! 3. **Failure-seed reporting** — the panic message names the exact
//!    per-case seed; re-running with `NFSPERF_PROPTEST_SEED=<seed>`
//!    (optionally `NFSPERF_PROPTEST_CASES=1`) replays that case first.
//!
//! A property is a closure returning [`CaseOutcome`]; the
//! [`prop_assert!`](crate::prop_assert), [`prop_assert_eq!`](crate::prop_assert_eq)
//! and [`prop_assume!`](crate::prop_assume) macros mirror the upstream
//! crate's vocabulary. Example:
//!
//! ```
//! use nfsperf_sim::proptest::{check, CaseOutcome};
//! use nfsperf_sim::{prop_assert, prop_assert_eq};
//!
//! check("doubling_is_even", |g| g.u64_in(0, 1 << 30), |&v| {
//!     prop_assert_eq!((v * 2) % 2, 0);
//!     CaseOutcome::Pass
//! });
//! ```

use std::fmt::Debug;

use crate::rng::{splitmix64, SimRng};

/// Default number of cases per property (override with
/// `NFSPERF_PROPTEST_CASES`).
pub const DEFAULT_CASES: u32 = 256;

/// Default base seed (override with `NFSPERF_PROPTEST_SEED`). Fixed so CI
/// runs are identical everywhere; change it locally to explore new inputs.
pub const DEFAULT_SEED: u64 = 0x5EED_BA5E_1813_2002;

/// Result of evaluating a property on one generated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The property held.
    Pass,
    /// The input failed a precondition (`prop_assume!`); the case is
    /// regenerated and does not count toward the case budget.
    Reject,
    /// The property failed with this message.
    Fail(String),
}

/// Driver configuration, normally read from the environment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of (non-rejected) cases to run.
    pub cases: u32,
    /// Base seed; case 0 uses it verbatim, later cases use a SplitMix64
    /// stream derived from it.
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: DEFAULT_CASES,
            seed: DEFAULT_SEED,
            max_shrink_iters: 4096,
        }
    }
}

impl Config {
    /// Reads `NFSPERF_PROPTEST_CASES` / `NFSPERF_PROPTEST_SEED`, falling
    /// back to the defaults.
    pub fn from_env() -> Config {
        let mut c = Config::default();
        if let Ok(v) = std::env::var("NFSPERF_PROPTEST_CASES") {
            if let Ok(n) = v.parse() {
                c.cases = n;
            }
        }
        if let Ok(v) = std::env::var("NFSPERF_PROPTEST_SEED") {
            let parsed = v
                .strip_prefix("0x")
                .map_or_else(|| v.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok());
            if let Some(s) = parsed {
                c.seed = s;
            }
        }
        c
    }
}

/// Typed random-input generator handed to the generation closure.
///
/// Wraps one per-case [`SimRng`]; all draws are deterministic in the case
/// seed. Integer ranges are half-open (`lo..hi`), matching the upstream
/// `proptest` range syntax the suite was written against.
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: SimRng::new(seed),
        }
    }

    /// Any `u64`.
    pub fn any_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Any `u32`.
    pub fn any_u32(&mut self) -> u32 {
        self.rng.next_u64() as u32
    }

    /// Any `u8`.
    pub fn any_u8(&mut self) -> u8 {
        self.rng.next_u64() as u8
    }

    /// Any `bool`.
    pub fn any_bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.uniform_u64(lo, hi)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.uniform_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `u8` in `[lo, hi)`.
    pub fn u8_in(&mut self, lo: u8, hi: u8) -> u8 {
        self.rng.uniform_u64(u64::from(lo), u64::from(hi)) as u8
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.uniform_u64(lo as u64, hi as u64) as usize
    }

    /// Byte vector with length uniform in `[min_len, max_len)`.
    pub fn bytes(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| self.any_u8()).collect()
    }

    /// Vector of `len in [min_len, max_len)` elements drawn by `f`.
    pub fn vec<T>(&mut self, min_len: usize, max_len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }

    /// ASCII lowercase string with length uniform in `[min_len, max_len)`
    /// (the `"[a-z]{m,n}"` pattern).
    pub fn lowercase_string(&mut self, min_len: usize, max_len: usize) -> String {
        let len = self.usize_in(min_len, max_len);
        (0..len)
            .map(|_| char::from(b'a' + self.u8_in(0, 26)))
            .collect()
    }

    /// Unicode string of printable characters with char-count uniform in
    /// `[min_len, max_len)` (the `"\\PC{m,n}"` pattern): mixes ASCII with
    /// multi-byte code points so UTF-8 length != char count.
    pub fn unicode_string(&mut self, min_len: usize, max_len: usize) -> String {
        let len = self.usize_in(min_len, max_len);
        (0..len)
            .map(|_| match self.u8_in(0, 4) {
                // Printable ASCII.
                0 | 1 => char::from(self.u8_in(0x20, 0x7F)),
                // Latin-1 supplement and friends (2-byte UTF-8).
                2 => char::from_u32(0xA1 + u32::from(self.u8_in(0, 0x5E))).unwrap(),
                // CJK block (3-byte UTF-8).
                _ => char::from_u32(0x4E00 + u32::from(self.any_u8())).unwrap(),
            })
            .collect()
    }
}

/// Types that can propose strictly "smaller" candidate values for
/// shrinking. Candidates need not satisfy a property's preconditions —
/// the driver skips candidates the property rejects.
pub trait Shrink: Sized + Clone {
    /// Candidate simpler values, most aggressive first.
    fn shrink_candidates(&self) -> Vec<Self>;
}

macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v / 2 != 0 {
                        out.push(v / 2);
                    }
                    out.push(v - 1);
                }
                out.dedup();
                out
            }
        }
    )*};
}
impl_shrink_uint!(u8, u16, u32, u64, usize);

impl Shrink for bool {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for String {
    fn shrink_candidates(&self) -> Vec<Self> {
        let chars: Vec<char> = self.chars().collect();
        let n = chars.len();
        let mut out = Vec::new();
        if n > 0 {
            out.push(String::new());
            out.push(chars[..n / 2].iter().collect());
            out.push(chars[n / 2..].iter().collect());
            out.push(chars[..n - 1].iter().collect());
            // Simplify the first non-'a' character.
            if let Some(i) = chars.iter().position(|&c| c != 'a') {
                let mut simpler = chars.clone();
                simpler[i] = 'a';
                out.push(simpler.into_iter().collect());
            }
        }
        out.retain(|s| s != self);
        out.dedup();
        out
    }
}

impl<T: Shrink> Shrink for Vec<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        let n = self.len();
        let mut out: Vec<Vec<T>> = Vec::new();
        if n > 0 {
            out.push(Vec::new());
            if n > 1 {
                out.push(self[..n / 2].to_vec());
                out.push(self[n / 2..].to_vec());
            }
            // Drop single elements (bounded so huge vectors shrink fast
            // via the halving candidates above instead).
            for i in 0..n.min(8) {
                let mut v = self.clone();
                v.remove(i);
                out.push(v);
            }
            // Shrink individual elements in place.
            for i in 0..n.min(8) {
                for cand in self[i].shrink_candidates() {
                    let mut v = self.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Shrink),+> Shrink for ($($name,)+) {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink_candidates() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )+};
}
impl_shrink_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Runs `prop` against `config.cases` inputs drawn by `gen`.
///
/// Panics (failing the enclosing `#[test]`) on the first property
/// violation, after shrinking, with the per-case seed needed to replay it.
pub fn check_with<T, G, P>(config: &Config, name: &str, gen: G, prop: P)
where
    T: Shrink + Debug,
    G: Fn(&mut Gen) -> T,
    P: Fn(&T) -> CaseOutcome,
{
    let mut seed_stream = config.seed;
    let mut ran = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases) * 16 + 64;
    while ran < config.cases {
        assert!(
            attempts < max_attempts,
            "property '{name}': too many rejected cases \
             ({attempts} attempts for {ran} accepted) — loosen prop_assume! \
             or generate inputs that satisfy the precondition directly"
        );
        let case_seed = if attempts == 0 {
            config.seed
        } else {
            splitmix64(&mut seed_stream)
        };
        attempts += 1;
        let value = gen(&mut Gen::new(case_seed));
        match prop(&value) {
            CaseOutcome::Pass => ran += 1,
            CaseOutcome::Reject => continue,
            CaseOutcome::Fail(msg) => {
                let (minimal, min_msg, steps) =
                    shrink_failure(config, &prop, value, msg);
                panic!(
                    "property '{name}' failed (case {ran}, seed {case_seed:#018x}):\n  \
                     {min_msg}\n  minimal failing input (after {steps} shrink steps): \
                     {minimal:?}\n  replay: NFSPERF_PROPTEST_SEED={case_seed:#x} \
                     NFSPERF_PROPTEST_CASES=1 cargo test {name}"
                );
            }
        }
    }
}

/// [`check_with`] using [`Config::from_env`].
pub fn check<T, G, P>(name: &str, gen: G, prop: P)
where
    T: Shrink + Debug,
    G: Fn(&mut Gen) -> T,
    P: Fn(&T) -> CaseOutcome,
{
    check_with(&Config::from_env(), name, gen, prop);
}

/// Greedy descent: repeatedly adopt the first shrink candidate that still
/// fails, until no candidate fails or the iteration budget runs out.
fn shrink_failure<T, P>(config: &Config, prop: &P, start: T, msg: String) -> (T, String, u32)
where
    T: Shrink + Debug,
    P: Fn(&T) -> CaseOutcome,
{
    let mut current = start;
    let mut current_msg = msg;
    let mut iters = 0u32;
    let mut steps = 0u32;
    'outer: loop {
        for cand in current.shrink_candidates() {
            if iters >= config.max_shrink_iters {
                break 'outer;
            }
            iters += 1;
            if let CaseOutcome::Fail(m) = prop(&cand) {
                current = cand;
                current_msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, current_msg, steps)
}

/// Asserts a condition inside a property; on failure the enclosing
/// property returns [`CaseOutcome::Fail`] with the stringified condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return $crate::proptest::CaseOutcome::Fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return $crate::proptest::CaseOutcome::Fail(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Asserts equality inside a property (see [`prop_assert!`](crate::prop_assert)).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return $crate::proptest::CaseOutcome::Fail(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Declares a precondition: inputs that fail it are regenerated rather
/// than counted as failures.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::proptest::CaseOutcome::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Config {
        Config {
            cases: 64,
            seed: 42,
            max_shrink_iters: 4096,
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        // Count via an outer cell: closures are Fn, so use RefCell.
        let counter = std::cell::Cell::new(0u32);
        check_with(
            &quick(),
            "tautology",
            |g| g.any_u64(),
            |_| {
                counter.set(counter.get() + 1);
                CaseOutcome::Pass
            },
        );
        seen += counter.get();
        assert_eq!(seen, 64);
    }

    #[test]
    fn same_seed_generates_same_inputs() {
        let collect = |seed: u64| {
            let vals = std::cell::RefCell::new(Vec::new());
            check_with(
                &Config {
                    cases: 16,
                    seed,
                    max_shrink_iters: 0,
                },
                "collect",
                |g| g.any_u64(),
                |&v| {
                    vals.borrow_mut().push(v);
                    CaseOutcome::Pass
                },
            );
            vals.into_inner()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn failure_shrinks_to_minimal_and_reports_seed() {
        let err = std::panic::catch_unwind(|| {
            check_with(
                &quick(),
                "ints_below_1000",
                |g| g.u64_in(0, 1 << 40),
                |&v| {
                    prop_assert!(v < 1000, "v was {v}");
                    CaseOutcome::Pass
                },
            );
        })
        .expect_err("property must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a String");
        // Greedy halving + decrement lands exactly on the boundary.
        assert!(
            msg.contains("minimal failing input (after"),
            "no shrink report in: {msg}"
        );
        assert!(msg.contains(": 1000\n"), "not shrunk to 1000: {msg}");
        assert!(
            msg.contains("NFSPERF_PROPTEST_SEED=0x"),
            "no replay seed in: {msg}"
        );
    }

    #[test]
    fn reported_seed_replays_the_failure() {
        // Find a failing case seed, then verify running with it as the
        // base seed fails on case 0 (attempts == 0 uses the seed verbatim).
        let prop = |v: &u64| {
            if *v % 97 == 13 {
                CaseOutcome::Fail("hit".into())
            } else {
                CaseOutcome::Pass
            }
        };
        let err = std::panic::catch_unwind(|| {
            check_with(
                &Config {
                    cases: 10_000,
                    seed: 1,
                    max_shrink_iters: 0,
                },
                "mod97",
                |g| g.any_u64(),
                prop,
            );
        })
        .expect_err("must eventually fail");
        let msg = err.downcast_ref::<String>().unwrap().clone();
        let seed_hex = msg
            .split("seed 0x")
            .nth(1)
            .and_then(|s| s.split(')').next())
            .expect("seed in message");
        let seed = u64::from_str_radix(seed_hex, 16).unwrap();
        let replay = std::panic::catch_unwind(|| {
            check_with(
                &Config {
                    cases: 1,
                    seed,
                    max_shrink_iters: 0,
                },
                "mod97-replay",
                |g| g.any_u64(),
                prop,
            );
        });
        assert!(replay.is_err(), "replay with reported seed must fail");
        let replay_msg = replay
            .unwrap_err()
            .downcast_ref::<String>()
            .unwrap()
            .clone();
        assert!(
            replay_msg.contains("case 0"),
            "replay must fail on the first case: {replay_msg}"
        );
    }

    #[test]
    fn assume_rejects_without_consuming_cases() {
        let accepted = std::cell::Cell::new(0u32);
        check_with(
            &quick(),
            "assume_even",
            |g| g.any_u64(),
            |&v| {
                prop_assume!(v % 2 == 0);
                accepted.set(accepted.get() + 1);
                CaseOutcome::Pass
            },
        );
        assert_eq!(accepted.get(), 64);
    }

    #[test]
    fn impossible_assume_panics_with_diagnosis() {
        let err = std::panic::catch_unwind(|| {
            check_with(
                &quick(),
                "never",
                |g| g.any_u64(),
                |_| CaseOutcome::Reject,
            );
        })
        .expect_err("must give up");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("too many rejected cases"), "{msg}");
    }

    #[test]
    fn vec_shrinking_reaches_small_witness() {
        // Fails whenever the vector contains an element >= 100; minimal
        // witness is the single-element vector [100].
        let err = std::panic::catch_unwind(|| {
            check_with(
                &quick(),
                "all_small",
                |g| g.vec(0, 50, |g| g.u64_in(0, 1 << 20)),
                |v: &Vec<u64>| {
                    prop_assert!(v.iter().all(|&x| x < 100));
                    CaseOutcome::Pass
                },
            );
        })
        .expect_err("must fail");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("[100]"), "not minimal: {msg}");
    }

    #[test]
    fn string_generators_respect_shape() {
        check_with(
            &quick(),
            "string_shapes",
            |g| (g.lowercase_string(1, 33), g.unicode_string(0, 257)),
            |(lower, uni)| {
                prop_assert!(!lower.is_empty() && lower.len() <= 32);
                prop_assert!(lower.bytes().all(|b| b.is_ascii_lowercase()));
                prop_assert!(uni.chars().count() <= 256);
                CaseOutcome::Pass
            },
        );
    }
}
