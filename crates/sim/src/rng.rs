//! Deterministic randomness for the simulator.
//!
//! All stochastic elements of the model (CPU cost jitter, service-time
//! variation) draw from a single seeded generator so that every run with
//! the same seed reproduces bit-identically. This is deliberately the
//! opposite of the paper's experience on real hardware (Section 2.2 laments
//! large run-to-run variation on Linux); determinism is what lets our test
//! suite assert on the shapes the paper could only eyeball.
//!
//! The generator is an in-tree xoshiro256++ (Blackman & Vigna) seeded by a
//! SplitMix64 expansion of a 64-bit seed. Owning the implementation keeps
//! the workspace hermetic (no registry access needed to build) and pins the
//! exact output stream: a dependency upgrade can never silently reshuffle
//! every figure. The first outputs for seed 42 are frozen by a golden test
//! below.

use std::cell::RefCell;

use crate::time::SimDuration;

/// SplitMix64 step: expands a 64-bit seed into an arbitrarily long,
/// well-mixed stream. Used only for seeding [`Xoshiro256pp`] and for
/// deriving per-case seeds in the property-test driver.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core state. 256 bits, period 2^256 - 1, passes BigCrush.
#[derive(Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn from_seed(seed: u64) -> Xoshiro256pp {
        // SplitMix64 seeding is the construction the xoshiro authors
        // recommend: it guarantees the all-zero state is unreachable and
        // decorrelates nearby seeds.
        let mut sm = seed;
        Xoshiro256pp {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A seeded pseudo-random source with interior mutability.
pub struct SimRng {
    rng: RefCell<Xoshiro256pp>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            rng: RefCell::new(Xoshiro256pp::from_seed(seed)),
        }
    }

    /// Next raw 64-bit output of the underlying xoshiro256++ stream.
    ///
    /// Exposed so tests can pin golden values and the property-test driver
    /// can build typed generators without a second RNG implementation.
    #[inline]
    pub fn next_u64(&self) -> u64 {
        self.rng.borrow_mut().next_u64()
    }

    /// Uniform integer in `[lo, hi)`, free of modulo bias (Lemire's
    /// widening-multiply rejection method).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_u64(&self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let range = hi - lo;
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(range);
        let mut low = m as u64;
        if low < range {
            // Rejection threshold: 2^64 mod range.
            let t = range.wrapping_neg() % range;
            while low < t {
                x = self.next_u64();
                m = u128::from(x) * u128::from(range);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn uniform_f64(&self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&self, p: f64) -> bool {
        self.uniform_f64() < p
    }

    /// Applies multiplicative jitter to a duration: the result is uniform
    /// in `[d * (1 - frac), d * (1 + frac)]`.
    ///
    /// Models the small per-operation variation (cache state, interrupt
    /// skew) that makes real latency histograms spread rather than spike.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `[0, 1]`.
    pub fn jitter(&self, d: SimDuration, frac: f64) -> SimDuration {
        assert!(
            (0.0..=1.0).contains(&frac),
            "jitter fraction {frac} out of range"
        );
        if frac == 0.0 || d == SimDuration::ZERO {
            return d;
        }
        let scale = 1.0 + frac * (self.uniform_f64() * 2.0 - 1.0);
        SimDuration((d.as_nanos() as f64 * scale).round() as u64)
    }

    /// Exponentially distributed duration with the given mean, truncated at
    /// ten times the mean to keep tails bounded and deterministic-friendly.
    pub fn exponential(&self, mean: SimDuration) -> SimDuration {
        if mean == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        // Inverse-CDF sampling; clamp u away from 0 to avoid ln(0).
        let u = self.uniform_f64().max(1e-12);
        let draw = -(u.ln()) * mean.as_nanos() as f64;
        let capped = draw.min(mean.as_nanos() as f64 * 10.0);
        SimDuration(capped.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = SimRng::new(42);
        let b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let a = SimRng::new(1);
        let b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn jitter_stays_in_band() {
        let rng = SimRng::new(7);
        let base = SimDuration::from_micros(100);
        for _ in 0..1000 {
            let j = rng.jitter(base, 0.1);
            assert!(j.as_nanos() >= 90_000, "{j} below band");
            assert!(j.as_nanos() <= 110_000, "{j} above band");
        }
    }

    #[test]
    fn jitter_zero_fraction_is_identity() {
        let rng = SimRng::new(7);
        let base = SimDuration::from_micros(100);
        assert_eq!(rng.jitter(base, 0.0), base);
        assert_eq!(rng.jitter(SimDuration::ZERO, 0.5), SimDuration::ZERO);
    }

    #[test]
    fn chance_extremes() {
        let rng = SimRng::new(3);
        for _ in 0..50 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let rng = SimRng::new(11);
        let mean = SimDuration::from_micros(100);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.exponential(mean).as_nanos()).sum();
        let avg = sum as f64 / n as f64;
        // Truncation at 10x shaves ~0.05% off; allow 5% tolerance.
        assert!((avg - 100_000.0).abs() < 5_000.0, "mean {avg}ns");
    }

    #[test]
    fn exponential_zero_mean() {
        let rng = SimRng::new(11);
        assert_eq!(rng.exponential(SimDuration::ZERO), SimDuration::ZERO);
    }

    /// Golden regression: the first eight raw outputs for seed 42, frozen.
    /// Every figure in the repo descends from this stream; if a refactor
    /// changes it, this test fails before any exhibit silently shifts.
    #[test]
    fn golden_values_seed_42() {
        let rng = SimRng::new(42);
        let got: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(got, GOLDEN_SEED_42, "xoshiro256++ stream changed");
    }

    /// Computed once from this implementation and frozen; matches the
    /// reference xoshiro256++ with SplitMix64(42) seeding.
    const GOLDEN_SEED_42: [u64; 8] = [
        0xD076_4D4F_4476_689F,
        0x519E_4174_576F_3791,
        0xFBE0_7CFB_0C24_ED8C,
        0xB37D_9F60_0CD8_35B8,
        0xCB23_1C38_7484_6A73,
        0x968D_9F00_4E50_DE7D,
        0x2017_18FF_221A_3556,
        0x9AE9_4E07_0ED8_CB46,
    ];

    /// Chi-squared-style bucket uniformity for `uniform_u64`: 64 buckets,
    /// 64 Ki draws. With expected 1024 per bucket, the chi-squared statistic
    /// over 63 degrees of freedom lies below 110 with overwhelming
    /// probability for a uniform source (p ~ 2e-4 of a false alarm; the
    /// stream is fixed, so this either always passes or always fails).
    #[test]
    fn uniform_u64_bucket_uniformity() {
        let rng = SimRng::new(0xC0FFEE);
        const BUCKETS: usize = 64;
        const DRAWS: usize = 64 * 1024;
        let mut counts = [0u64; BUCKETS];
        for _ in 0..DRAWS {
            counts[rng.uniform_u64(0, BUCKETS as u64) as usize] += 1;
        }
        let expected = (DRAWS / BUCKETS) as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 110.0, "chi-squared {chi2} too large for uniformity");
        assert!(chi2 > 30.0, "chi-squared {chi2} suspiciously small");
    }

    /// `uniform_f64` stays in [0, 1) and fills the unit interval evenly.
    #[test]
    fn uniform_f64_in_unit_interval_and_even() {
        let rng = SimRng::new(99);
        let mut deciles = [0u32; 10];
        for _ in 0..10_000 {
            let v = rng.uniform_f64();
            assert!((0.0..1.0).contains(&v), "{v} outside [0,1)");
            deciles[(v * 10.0) as usize] += 1;
        }
        for (i, &c) in deciles.iter().enumerate() {
            assert!((800..1200).contains(&c), "decile {i} count {c} skewed");
        }
    }

    /// The jitter band is actually *covered*: over many draws the observed
    /// min and max approach the band edges, so the band test above isn't
    /// passing merely because the generator collapsed to the centre.
    #[test]
    fn jitter_band_is_covered() {
        let rng = SimRng::new(5);
        let base = SimDuration::from_micros(100);
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for _ in 0..10_000 {
            let j = rng.jitter(base, 0.1).as_nanos();
            lo = lo.min(j);
            hi = hi.max(j);
        }
        assert!(lo <= 90_500, "observed min {lo} never nears lower edge");
        assert!(hi >= 109_500, "observed max {hi} never nears upper edge");
    }

    /// Lemire rejection really removes modulo bias: a range just above a
    /// power of two is the worst case, and the two halves must balance.
    #[test]
    fn uniform_u64_no_gross_modulo_bias() {
        let rng = SimRng::new(17);
        let range = (1u64 << 33) + 1;
        let mid = range / 2;
        let mut below = 0u32;
        const N: u32 = 20_000;
        for _ in 0..N {
            if rng.uniform_u64(0, range) < mid {
                below += 1;
            }
        }
        let frac = f64::from(below) / f64::from(N);
        assert!((0.48..0.52).contains(&frac), "half-split {frac} biased");
    }

    #[test]
    fn uniform_u64_single_element_range() {
        let rng = SimRng::new(1);
        for _ in 0..32 {
            assert_eq!(rng.uniform_u64(7, 8), 7);
        }
    }
}
