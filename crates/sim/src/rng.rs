//! Deterministic randomness for the simulator.
//!
//! All stochastic elements of the model (CPU cost jitter, service-time
//! variation) draw from a single seeded generator so that every run with
//! the same seed reproduces bit-identically. This is deliberately the
//! opposite of the paper's experience on real hardware (Section 2.2 laments
//! large run-to-run variation on Linux); determinism is what lets our test
//! suite assert on the shapes the paper could only eyeball.

use std::cell::RefCell;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// A seeded pseudo-random source with interior mutability.
pub struct SimRng {
    rng: RefCell<SmallRng>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            rng: RefCell::new(SmallRng::seed_from_u64(seed)),
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_u64(&self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.rng.borrow_mut().gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform_f64(&self) -> f64 {
        self.rng.borrow_mut().gen_range(0.0..1.0)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&self, p: f64) -> bool {
        self.uniform_f64() < p
    }

    /// Applies multiplicative jitter to a duration: the result is uniform
    /// in `[d * (1 - frac), d * (1 + frac)]`.
    ///
    /// Models the small per-operation variation (cache state, interrupt
    /// skew) that makes real latency histograms spread rather than spike.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `[0, 1]`.
    pub fn jitter(&self, d: SimDuration, frac: f64) -> SimDuration {
        assert!(
            (0.0..=1.0).contains(&frac),
            "jitter fraction {frac} out of range"
        );
        if frac == 0.0 || d == SimDuration::ZERO {
            return d;
        }
        let scale = 1.0 + frac * (self.uniform_f64() * 2.0 - 1.0);
        SimDuration((d.as_nanos() as f64 * scale).round() as u64)
    }

    /// Exponentially distributed duration with the given mean, truncated at
    /// ten times the mean to keep tails bounded and deterministic-friendly.
    pub fn exponential(&self, mean: SimDuration) -> SimDuration {
        if mean == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        // Inverse-CDF sampling; clamp u away from 0 to avoid ln(0).
        let u = self.uniform_f64().max(1e-12);
        let draw = -(u.ln()) * mean.as_nanos() as f64;
        let capped = draw.min(mean.as_nanos() as f64 * 10.0);
        SimDuration(capped.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = SimRng::new(42);
        let b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1_000_000), b.uniform_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let a = SimRng::new(1);
        let b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.uniform_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.uniform_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn jitter_stays_in_band() {
        let rng = SimRng::new(7);
        let base = SimDuration::from_micros(100);
        for _ in 0..1000 {
            let j = rng.jitter(base, 0.1);
            assert!(j.as_nanos() >= 90_000, "{j} below band");
            assert!(j.as_nanos() <= 110_000, "{j} above band");
        }
    }

    #[test]
    fn jitter_zero_fraction_is_identity() {
        let rng = SimRng::new(7);
        let base = SimDuration::from_micros(100);
        assert_eq!(rng.jitter(base, 0.0), base);
        assert_eq!(rng.jitter(SimDuration::ZERO, 0.5), SimDuration::ZERO);
    }

    #[test]
    fn chance_extremes() {
        let rng = SimRng::new(3);
        for _ in 0..50 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let rng = SimRng::new(11);
        let mean = SimDuration::from_micros(100);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.exponential(mean).as_nanos()).sum();
        let avg = sum as f64 / n as f64;
        // Truncation at 10x shaves ~0.05% off; allow 5% tolerance.
        assert!((avg - 100_000.0).abs() < 5_000.0, "mean {avg}ns");
    }

    #[test]
    fn exponential_zero_mean() {
        let rng = SimRng::new(11);
        assert_eq!(rng.exponential(SimDuration::ZERO), SimDuration::ZERO);
    }
}
