//! Synchronization primitives for simulated tasks.
//!
//! All primitives here are FIFO-fair and deterministic:
//!
//! - [`WaitQueue`] — a kernel-style wait queue (condition variable).
//! - [`SimLock`] — a sleeping mutex with wait/hold accounting, used to model
//!   the Linux 2.4 global kernel lock. Hold time is attributed to a caller
//!   supplied label so that contention can be profiled the way the paper
//!   profiles the BKL text section.
//! - [`Semaphore`] — counting semaphore (RPC slot tables, CPUs, disks).
//! - [`Gate`] — a barrier that can be closed to stall passers (used for the
//!   filer's checkpoint pauses).
//! - [`channel`] — an unbounded single-consumer queue (NIC receive queues).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::Sim;
use crate::time::{SimDuration, SimTime};

/// A single parked waiter.
///
/// `woken` is the handshake: the waker side sets it and wakes the stored
/// [`Waker`]; the waiting future observes it on its next poll.
struct WaitNode {
    woken: Cell<bool>,
    cancelled: Cell<bool>,
    waker: RefCell<Option<Waker>>,
}

impl WaitNode {
    fn new() -> Rc<WaitNode> {
        Rc::new(WaitNode {
            woken: Cell::new(false),
            cancelled: Cell::new(false),
            waker: RefCell::new(None),
        })
    }

    fn wake(&self) {
        self.woken.set(true);
        if let Some(w) = self.waker.borrow_mut().take() {
            w.wake();
        }
    }
}

/// Free list of [`WaitNode`]s, so a park/wake cycle stops costing one
/// `Rc` allocation per wait on the engine's hottest blocking paths
/// (wait queues, the BKL, RPC slot semaphores, NIC channels).
///
/// A node handed back by a wake may still be referenced by its
/// not-yet-dropped [`WaitFuture`]; [`NodePool::get`] only recycles nodes
/// whose strong count has fallen back to one (the pool's own reference),
/// so a live future can never observe its node being reused.
#[derive(Default)]
struct NodePool {
    free: RefCell<Vec<Rc<WaitNode>>>,
}

/// Free-list bound; parks beyond this fall back to plain allocation.
const NODE_POOL_CAP: usize = 64;

impl NodePool {
    fn get(&self) -> Rc<WaitNode> {
        let mut free = self.free.borrow_mut();
        while let Some(node) = free.pop() {
            if Rc::strong_count(&node) == 1 {
                node.woken.set(false);
                node.cancelled.set(false);
                node.waker.borrow_mut().take();
                return node;
            }
            // The paired future is still alive; forget this node.
        }
        WaitNode::new()
    }

    fn put(&self, node: Rc<WaitNode>) {
        let mut free = self.free.borrow_mut();
        if free.len() < NODE_POOL_CAP {
            free.push(node);
        }
    }
}

/// A FIFO wait queue, analogous to a kernel `wait_queue_head_t`.
///
/// Waiters must re-check their predicate after waking:
///
/// ```
/// use nfsperf_sim::{Sim, WaitQueue};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let sim = Sim::new();
/// let queue = Rc::new(WaitQueue::new());
/// let flag = Rc::new(Cell::new(false));
/// let (q, f) = (Rc::clone(&queue), Rc::clone(&flag));
/// let waiter = sim.spawn(async move {
///     while !f.get() {
///         q.wait().await;
///     }
/// });
/// let (q, f) = (queue, flag);
/// sim.run_until(async move {
///     f.set(true);
///     q.wake_all();
///     waiter.await
/// });
/// ```
#[derive(Default)]
pub struct WaitQueue {
    waiters: RefCell<VecDeque<Rc<WaitNode>>>,
    pool: NodePool,
}

impl WaitQueue {
    /// Creates an empty queue.
    pub fn new() -> WaitQueue {
        WaitQueue::default()
    }

    /// Parks the calling task until the next [`WaitQueue::wake_one`] or
    /// [`WaitQueue::wake_all`] that reaches it.
    ///
    /// The waiter is registered immediately (at future construction), so a
    /// wake issued after `wait()` returns but before the first poll is not
    /// lost.
    pub fn wait(&self) -> WaitFuture {
        let node = self.pool.get();
        self.waiters.borrow_mut().push_back(Rc::clone(&node));
        WaitFuture { node }
    }

    /// Wakes the longest-waiting task, if any. Returns `true` if one was
    /// woken.
    pub fn wake_one(&self) -> bool {
        let mut waiters = self.waiters.borrow_mut();
        while let Some(node) = waiters.pop_front() {
            if node.cancelled.get() {
                self.pool.put(node);
                continue;
            }
            node.wake();
            self.pool.put(node);
            return true;
        }
        false
    }

    /// Wakes every waiting task.
    pub fn wake_all(&self) {
        let mut waiters = self.waiters.borrow_mut();
        for node in waiters.drain(..) {
            if !node.cancelled.get() {
                node.wake();
            }
            self.pool.put(node);
        }
    }

    /// Number of tasks currently parked.
    pub fn len(&self) -> usize {
        self.waiters
            .borrow()
            .iter()
            .filter(|n| !n.cancelled.get())
            .count()
    }

    /// Returns `true` if no task is parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`WaitQueue::wait`].
pub struct WaitFuture {
    node: Rc<WaitNode>,
}

impl WaitFuture {
    /// Returns `true` once the wake reached this waiter.
    ///
    /// Poll-style (taskless) callers use this instead of `await`: park a
    /// waker with [`WaitFuture::park`], and when it fires re-check the
    /// guarded predicate, exactly like a task would after its poll.
    pub fn is_woken(&self) -> bool {
        self.node.woken.get()
    }

    /// Stores `waker` to be fired by the queue's next wake of this node
    /// — the poll-style analogue of returning `Poll::Pending` from
    /// [`Future::poll`]. Callers must check [`WaitFuture::is_woken`]
    /// first; parking an already-woken node would strand the waker.
    pub fn park(&self, waker: Waker) {
        *self.node.waker.borrow_mut() = Some(waker);
    }
}

impl Future for WaitFuture {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.node.woken.get() {
            Poll::Ready(())
        } else {
            *self.node.waker.borrow_mut() = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

impl Drop for WaitFuture {
    fn drop(&mut self) {
        // A dropped waiter must not swallow a wake that was already
        // delivered to it; there is no queue reference here, so the node is
        // merely marked. `woken && !polled` races cannot occur in practice
        // because the simulator is single-threaded and waits are not
        // cancelled by the workloads, but the flag keeps `wake_one` from
        // targeting dead nodes.
        self.node.cancelled.set(true);
    }
}

/// Accumulated contention statistics for a [`SimLock`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LockStats {
    /// Total successful acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that had to wait.
    pub contended: u64,
    /// Total time spent waiting to acquire.
    pub total_wait: SimDuration,
    /// Longest single wait.
    pub max_wait: SimDuration,
    /// Total time the lock was held.
    pub total_hold: SimDuration,
    /// Wait time attributed to the label of the holder at enqueue time.
    pub wait_by_holder: Vec<(&'static str, SimDuration)>,
    /// Hold time per acquiring label.
    pub hold_by_label: Vec<(&'static str, SimDuration)>,
}

impl LockStats {
    /// Wait time attributed to holders with label `label`.
    pub fn wait_blamed_on(&self, label: &str) -> SimDuration {
        self.wait_by_holder
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, d)| *d)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Hold time accumulated by acquirers with label `label`.
    pub fn held_by(&self, label: &str) -> SimDuration {
        self.hold_by_label
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, d)| *d)
            .unwrap_or(SimDuration::ZERO)
    }
}

struct LockWaiter {
    node: Rc<WaitNode>,
    enqueued_at: SimTime,
    /// Label of whoever held the lock when this waiter parked; the wait is
    /// blamed on them, mirroring how the paper attributes BKL wait time to
    /// the `sock_sendmsg` section.
    blamed: &'static str,
    label: &'static str,
}

struct LockInner {
    /// `Some(label)` while held.
    holder: Option<&'static str>,
    acquired_at: SimTime,
    waiters: VecDeque<LockWaiter>,
    stats: StatsAccum,
}

#[derive(Default)]
struct StatsAccum {
    acquisitions: u64,
    contended: u64,
    total_wait: u64,
    max_wait: u64,
    total_hold: u64,
    wait_by_holder: Vec<(&'static str, u64)>,
    hold_by_label: Vec<(&'static str, u64)>,
}

fn bump(vec: &mut Vec<(&'static str, u64)>, label: &'static str, ns: u64) {
    for (l, v) in vec.iter_mut() {
        if *l == label {
            *v += ns;
            return;
        }
    }
    vec.push((label, ns));
}

/// A sleeping, FIFO-fair mutex with contention accounting.
///
/// Models the Linux 2.4 global kernel lock: tasks sleep while waiting, the
/// lock is handed off directly to the longest waiter, and every hold is
/// attributed to a static label (`"nfs_commit_write"`, `"sock_sendmsg"`, …)
/// so contention can be broken down afterwards via [`SimLock::stats`].
pub struct SimLock {
    sim: Sim,
    inner: RefCell<LockInner>,
    pool: NodePool,
}

impl SimLock {
    /// Creates an unlocked lock.
    pub fn new(sim: &Sim) -> SimLock {
        SimLock {
            sim: sim.clone(),
            inner: RefCell::new(LockInner {
                holder: None,
                acquired_at: SimTime::ZERO,
                waiters: VecDeque::new(),
                stats: StatsAccum::default(),
            }),
            pool: NodePool::default(),
        }
    }

    /// Acquires the lock, sleeping FIFO-fair behind earlier waiters.
    ///
    /// `label` names the critical section for the accounting in
    /// [`SimLock::stats`].
    pub async fn lock(self: &Rc<Self>, label: &'static str) -> LockGuard {
        let node = {
            let mut inner = self.inner.borrow_mut();
            if inner.holder.is_none() && inner.waiters.is_empty() {
                inner.holder = Some(label);
                inner.acquired_at = self.sim.now();
                inner.stats.acquisitions += 1;
                return LockGuard {
                    lock: Rc::clone(self),
                };
            }
            let node = self.pool.get();
            let blamed = inner.holder.unwrap_or("<queued>");
            inner.waiters.push_back(LockWaiter {
                node: Rc::clone(&node),
                enqueued_at: self.sim.now(),
                blamed,
                label,
            });
            node
        };
        WaitFuture { node }.await;
        // Ownership was handed off by the releasing guard; `holder` and the
        // statistics were already updated there.
        LockGuard {
            lock: Rc::clone(self),
        }
    }

    /// Returns `true` if the lock is currently held.
    pub fn is_locked(&self) -> bool {
        self.inner.borrow().holder.is_some()
    }

    /// Snapshot of the accumulated contention statistics.
    pub fn stats(&self) -> LockStats {
        let inner = self.inner.borrow();
        let s = &inner.stats;
        LockStats {
            acquisitions: s.acquisitions,
            contended: s.contended,
            total_wait: SimDuration(s.total_wait),
            max_wait: SimDuration(s.max_wait),
            total_hold: SimDuration(s.total_hold),
            wait_by_holder: s
                .wait_by_holder
                .iter()
                .map(|&(l, v)| (l, SimDuration(v)))
                .collect(),
            hold_by_label: s
                .hold_by_label
                .iter()
                .map(|&(l, v)| (l, SimDuration(v)))
                .collect(),
        }
    }

    /// Resets the statistics (e.g. after warm-up).
    pub fn reset_stats(&self) {
        self.inner.borrow_mut().stats = StatsAccum::default();
    }

    fn unlock(&self) {
        let mut inner = self.inner.borrow_mut();
        let now = self.sim.now();
        let held_for = now.since(inner.acquired_at).as_nanos();
        let label = inner.holder.expect("SimLock::unlock called while not held");
        inner.stats.total_hold += held_for;
        bump(&mut inner.stats.hold_by_label, label, held_for);

        // Direct handoff to the longest waiter, skipping cancelled nodes.
        loop {
            match inner.waiters.pop_front() {
                Some(w) if w.node.cancelled.get() => self.pool.put(w.node),
                Some(w) => {
                    let waited = now.since(w.enqueued_at).as_nanos();
                    inner.stats.acquisitions += 1;
                    inner.stats.contended += 1;
                    inner.stats.total_wait += waited;
                    inner.stats.max_wait = inner.stats.max_wait.max(waited);
                    bump(&mut inner.stats.wait_by_holder, w.blamed, waited);
                    inner.holder = Some(w.label);
                    inner.acquired_at = now;
                    w.node.wake();
                    self.pool.put(w.node);
                    return;
                }
                None => {
                    inner.holder = None;
                    return;
                }
            }
        }
    }
}

/// RAII guard for [`SimLock`]; releases (and hands off) on drop.
pub struct LockGuard {
    lock: Rc<SimLock>,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

/// A FIFO counting semaphore.
///
/// Used for RPC transport slot tables, CPU pools, and disk arms. Permits
/// may be released from a different task than the one that acquired them
/// (see [`SemPermit::forget`] and [`Semaphore::release_one`]).
pub struct Semaphore {
    permits: Cell<usize>,
    queue: WaitQueue,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: Cell::new(permits),
            queue: WaitQueue::new(),
        }
    }

    /// Acquires one permit, sleeping FIFO-fair until one is available.
    pub async fn acquire(self: &Rc<Self>) -> SemPermit {
        // Fast path: free permit and nobody queued ahead of us.
        if self.permits.get() > 0 && self.queue.is_empty() {
            self.permits.set(self.permits.get() - 1);
            return SemPermit {
                sem: Rc::clone(self),
                live: true,
            };
        }
        loop {
            // Each `release_one` wakes exactly the head waiter, so being
            // woken means it is our turn; re-checking only the permit count
            // (not queue emptiness) avoids re-queueing behind later waiters
            // and losing the wake.
            self.queue.wait().await;
            if self.permits.get() > 0 {
                self.permits.set(self.permits.get() - 1);
                return SemPermit {
                    sem: Rc::clone(self),
                    live: true,
                };
            }
        }
    }

    /// Takes a permit if one is free, without waiting.
    pub fn try_acquire(self: &Rc<Self>) -> Option<SemPermit> {
        if self.permits.get() > 0 && self.queue.is_empty() {
            self.permits.set(self.permits.get() - 1);
            Some(SemPermit {
                sem: Rc::clone(self),
                live: true,
            })
        } else {
            None
        }
    }

    /// Returns one permit to the pool (pairs with [`SemPermit::forget`]).
    pub fn release_one(&self) {
        self.permits.set(self.permits.get() + 1);
        self.queue.wake_one();
    }

    /// Poll-style [`Semaphore::acquire`] for taskless state machines.
    ///
    /// Call with a fresh [`SemAcquire`] state; returns `Some(permit)` when
    /// the permit is taken, or `None` after parking a waker from
    /// `waker_factory` (call again when it fires). The waiting discipline
    /// — fast path only before the first park, then re-checking only the
    /// permit count on each wake — is byte-for-byte the discipline of the
    /// async method, and both kinds of waiter share one FIFO queue.
    ///
    /// The factory is only invoked when the machine actually parks, so
    /// fast-path acquisitions arm no event.
    pub fn poll_acquire(
        self: &Rc<Self>,
        st: &mut SemAcquire,
        waker_factory: &mut dyn FnMut() -> Waker,
    ) -> Option<SemPermit> {
        if st.wait.is_none() {
            // Fast path: free permit and nobody queued ahead of us.
            if self.permits.get() > 0 && self.queue.is_empty() {
                self.permits.set(self.permits.get() - 1);
                return Some(SemPermit {
                    sem: Rc::clone(self),
                    live: true,
                });
            }
            let w = self.queue.wait();
            w.park(waker_factory());
            st.wait = Some(w);
            return None;
        }
        loop {
            let w = st.wait.as_ref().expect("SemAcquire wait state");
            if !w.is_woken() {
                w.park(waker_factory());
                return None;
            }
            st.wait = None;
            if self.permits.get() > 0 {
                self.permits.set(self.permits.get() - 1);
                return Some(SemPermit {
                    sem: Rc::clone(self),
                    live: true,
                });
            }
            st.wait = Some(self.queue.wait());
        }
    }

    /// Currently free permits.
    pub fn available(&self) -> usize {
        self.permits.get()
    }

    /// Number of tasks queued for a permit.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }
}

/// RAII permit from a [`Semaphore`].
pub struct SemPermit {
    sem: Rc<Semaphore>,
    live: bool,
}

impl SemPermit {
    /// Consumes the permit without releasing it; some other party must call
    /// [`Semaphore::release_one`] later (e.g. the RPC reply handler
    /// releasing the slot the sender acquired).
    pub fn forget(mut self) {
        self.live = false;
    }
}

impl Drop for SemPermit {
    fn drop(&mut self) {
        if self.live {
            self.sem.release_one();
        }
    }
}

/// A gate that can be closed to stall everyone calling [`Gate::pass`].
///
/// Models service pauses such as the filer's file-system checkpoints.
#[derive(Default)]
pub struct Gate {
    closed: Cell<bool>,
    queue: WaitQueue,
}

impl Gate {
    /// Creates an open gate.
    pub fn new() -> Gate {
        Gate::default()
    }

    /// Closes the gate; subsequent [`Gate::pass`] calls block.
    pub fn close(&self) {
        self.closed.set(true);
    }

    /// Opens the gate and releases all blocked passers.
    pub fn open(&self) {
        self.closed.set(false);
        self.queue.wake_all();
    }

    /// Returns `true` while the gate is closed.
    pub fn is_closed(&self) -> bool {
        self.closed.get()
    }

    /// Waits until the gate is open (returns immediately if it is).
    pub async fn pass(&self) {
        while self.closed.get() {
            self.queue.wait().await;
        }
    }

    /// Poll-style [`Gate::pass`] for taskless state machines: `true` once
    /// through the gate, `false` after parking a waker from
    /// `waker_factory` (call again when it fires). Replicates the async
    /// `while closed { wait().await }` loop — including re-registering
    /// behind later arrivals if the gate closed again before the wake was
    /// observed — and shares the same FIFO queue as async passers.
    pub fn poll_pass(&self, st: &mut GatePass, waker_factory: &mut dyn FnMut() -> Waker) -> bool {
        if let Some(w) = st.wait.as_ref() {
            if !w.is_woken() {
                w.park(waker_factory());
                return false;
            }
            st.wait = None;
        }
        if !self.closed.get() {
            return true;
        }
        let w = self.queue.wait();
        w.park(waker_factory());
        st.wait = Some(w);
        false
    }
}

/// In-flight state for [`Semaphore::poll_acquire`]; `Default` is the
/// not-yet-started state. Dropping it mid-wait cancels the queue slot,
/// exactly as dropping the async future would.
#[derive(Default)]
pub struct SemAcquire {
    wait: Option<WaitFuture>,
}

impl SemAcquire {
    /// Resets to the not-yet-started state for reuse by the next RPC.
    pub fn reset(&mut self) {
        self.wait = None;
    }
}

/// In-flight state for [`Gate::poll_pass`]; see [`SemAcquire`].
#[derive(Default)]
pub struct GatePass {
    wait: Option<WaitFuture>,
}

impl GatePass {
    /// Resets to the not-yet-started state for reuse by the next RPC.
    pub fn reset(&mut self) {
        self.wait = None;
    }
}

struct ChanInner<T> {
    queue: VecDeque<T>,
    recv_waiters: WaitQueue,
    senders: usize,
}

/// Creates an unbounded single-consumer channel.
///
/// Multiple [`Sender`]s may feed one [`Receiver`]; `recv` returns `None`
/// once every sender is dropped and the queue is drained.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(RefCell::new(ChanInner {
        queue: VecDeque::new(),
        recv_waiters: WaitQueue::new(),
        senders: 1,
    }));
    (
        Sender {
            inner: Rc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// Sending half of [`channel`].
pub struct Sender<T> {
    inner: Rc<RefCell<ChanInner<T>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.borrow_mut().senders += 1;
        Sender {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.senders -= 1;
        if inner.senders == 0 {
            inner.recv_waiters.wake_all();
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a value and wakes the receiver.
    pub fn send(&self, value: T) {
        let mut inner = self.inner.borrow_mut();
        inner.queue.push_back(value);
        inner.recv_waiters.wake_one();
    }
}

/// Receiving half of [`channel`].
pub struct Receiver<T> {
    inner: Rc<RefCell<ChanInner<T>>>,
}

impl<T> Receiver<T> {
    /// Awaits the next value; `None` when all senders are gone and the
    /// queue is empty.
    pub async fn recv(&self) -> Option<T> {
        loop {
            {
                let mut inner = self.inner.borrow_mut();
                if let Some(v) = inner.queue.pop_front() {
                    return Some(v);
                }
                if inner.senders == 0 {
                    return None;
                }
            }
            let fut = self.inner.borrow().recv_waiters.wait();
            fut.await;
        }
    }

    /// Takes a value if one is queued, without waiting.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.borrow_mut().queue.pop_front()
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use std::rc::Rc;

    #[test]
    fn wait_queue_wake_one_is_fifo() {
        let sim = Sim::new();
        let q = Rc::new(WaitQueue::new());
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let q = Rc::clone(&q);
            let log = Rc::clone(&log);
            sim.spawn(async move {
                q.wait().await;
                log.borrow_mut().push(i);
            });
        }
        let s = sim.clone();
        let q2 = Rc::clone(&q);
        sim.run_until(async move {
            s.sleep(SimDuration::from_micros(1)).await;
            assert_eq!(q2.len(), 3);
            q2.wake_one();
            s.sleep(SimDuration::from_micros(1)).await;
            q2.wake_all();
            s.sleep(SimDuration::from_micros(1)).await;
        });
        assert_eq!(*log.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn wake_one_returns_false_when_empty() {
        let q = WaitQueue::new();
        assert!(!q.wake_one());
        assert!(q.is_empty());
    }

    #[test]
    fn lock_is_fifo_and_counts_contention() {
        let sim = Sim::new();
        let lock = Rc::new(SimLock::new(&sim));
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let lock = Rc::clone(&lock);
            let log = Rc::clone(&log);
            let s = sim.clone();
            sim.spawn(async move {
                let _g = lock.lock("worker").await;
                log.borrow_mut().push(i);
                s.sleep(SimDuration::from_micros(10)).await;
            });
        }
        let s = sim.clone();
        sim.run_until(async move {
            s.sleep(SimDuration::from_micros(100)).await;
        });
        assert_eq!(*log.borrow(), vec![0, 1, 2]);
        let stats = lock.stats();
        assert_eq!(stats.acquisitions, 3);
        assert_eq!(stats.contended, 2);
        // Waiter 1 waits 10us, waiter 2 waits 20us.
        assert_eq!(stats.total_wait.as_micros(), 30);
        assert_eq!(stats.max_wait.as_micros(), 20);
        assert_eq!(stats.total_hold.as_micros(), 30);
    }

    #[test]
    fn lock_blames_wait_on_holder_label() {
        let sim = Sim::new();
        let lock = Rc::new(SimLock::new(&sim));
        {
            let lock = Rc::clone(&lock);
            let s = sim.clone();
            sim.spawn(async move {
                let _g = lock.lock("sendmsg").await;
                s.sleep(SimDuration::from_micros(50)).await;
            });
        }
        {
            let lock = Rc::clone(&lock);
            let s = sim.clone();
            sim.spawn(async move {
                // Arrive while "sendmsg" holds the lock.
                s.sleep(SimDuration::from_micros(5)).await;
                let _g = lock.lock("writer").await;
            });
        }
        let s = sim.clone();
        sim.run_until(async move {
            s.sleep(SimDuration::from_micros(200)).await;
        });
        let stats = lock.stats();
        assert_eq!(stats.wait_blamed_on("sendmsg").as_micros(), 45);
        assert_eq!(stats.wait_blamed_on("writer").as_micros(), 0);
        assert_eq!(stats.held_by("sendmsg").as_micros(), 50);
    }

    #[test]
    fn lock_uncontended_fast_path() {
        let sim = Sim::new();
        let lock = Rc::new(SimLock::new(&sim));
        let l2 = Rc::clone(&lock);
        sim.run_until(async move {
            for _ in 0..5 {
                let _g = l2.lock("solo").await;
            }
        });
        let stats = lock.stats();
        assert_eq!(stats.acquisitions, 5);
        assert_eq!(stats.contended, 0);
        assert_eq!(stats.total_wait, SimDuration::ZERO);
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let sim = Sim::new();
        let sem = Rc::new(Semaphore::new(2));
        let peak = Rc::new(Cell::new(0usize));
        let cur = Rc::new(Cell::new(0usize));
        let done = Rc::new(Cell::new(0usize));
        for _ in 0..5 {
            let sem = Rc::clone(&sem);
            let peak = Rc::clone(&peak);
            let cur = Rc::clone(&cur);
            let done = Rc::clone(&done);
            let s = sim.clone();
            sim.spawn(async move {
                let _p = sem.acquire().await;
                cur.set(cur.get() + 1);
                peak.set(peak.get().max(cur.get()));
                s.sleep(SimDuration::from_micros(10)).await;
                cur.set(cur.get() - 1);
                done.set(done.get() + 1);
            });
        }
        let s = sim.clone();
        sim.run_until(async move {
            s.sleep(SimDuration::from_micros(100)).await;
        });
        // Regression check for a lost-wakeup bug: a woken waiter must not
        // re-queue behind later waiters and strand the permit.
        assert_eq!(done.get(), 5, "all queued acquirers must complete");
        assert_eq!(peak.get(), 2);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn semaphore_single_permit_serial_handoff() {
        let sim = Sim::new();
        let sem = Rc::new(Semaphore::new(1));
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4u32 {
            let sem = Rc::clone(&sem);
            let order = Rc::clone(&order);
            let s = sim.clone();
            sim.spawn(async move {
                let _p = sem.acquire().await;
                order.borrow_mut().push(i);
                s.sleep(SimDuration::from_micros(10)).await;
            });
        }
        let s = sim.clone();
        sim.run_until(async move {
            s.sleep(SimDuration::from_micros(200)).await;
        });
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
        assert_eq!(sem.available(), 1);
    }

    #[test]
    fn semaphore_forget_and_manual_release() {
        let sim = Sim::new();
        let sem = Rc::new(Semaphore::new(1));
        let s2 = Rc::clone(&sem);
        sim.run_until(async move {
            let p = s2.acquire().await;
            p.forget();
            assert_eq!(s2.available(), 0);
            s2.release_one();
            assert_eq!(s2.available(), 1);
        });
    }

    #[test]
    fn semaphore_try_acquire() {
        let sim = Sim::new();
        let sem = Rc::new(Semaphore::new(1));
        let s2 = Rc::clone(&sem);
        sim.run_until(async move {
            let p = s2.try_acquire().expect("first try succeeds");
            assert!(s2.try_acquire().is_none());
            drop(p);
            assert!(s2.try_acquire().is_some());
        });
    }

    #[test]
    fn gate_blocks_while_closed() {
        let sim = Sim::new();
        let gate = Rc::new(Gate::new());
        gate.close();
        let passed = Rc::new(Cell::new(false));
        {
            let gate = Rc::clone(&gate);
            let passed = Rc::clone(&passed);
            sim.spawn(async move {
                gate.pass().await;
                passed.set(true);
            });
        }
        let s = sim.clone();
        let g2 = Rc::clone(&gate);
        let p2 = Rc::clone(&passed);
        sim.run_until(async move {
            s.sleep(SimDuration::from_micros(10)).await;
            assert!(!p2.get(), "gate should hold the passer");
            g2.open();
            s.sleep(SimDuration::from_micros(1)).await;
            assert!(p2.get());
        });
    }

    #[test]
    fn channel_delivers_in_order() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        {
            let s = sim.clone();
            sim.spawn(async move {
                for i in 0..4 {
                    tx.send(i);
                    s.sleep(SimDuration::from_micros(1)).await;
                }
            });
        }
        let got = sim.run_until(async move {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn channel_try_recv_and_len() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        sim.run_until(async move {
            assert!(rx.try_recv().is_none());
            tx.send(9);
            assert_eq!(rx.len(), 1);
            assert_eq!(rx.try_recv(), Some(9));
            assert!(rx.is_empty());
        });
    }

    #[test]
    fn channel_clone_sender_keeps_open() {
        let sim = Sim::new();
        let (tx, rx) = channel::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        let s = sim.clone();
        sim.run_until(async move {
            let h = s.spawn(async move {
                tx2.send(1);
                drop(tx2);
            });
            h.await;
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, None);
        });
    }
}
