//! A minimal two-way select for simulator tasks.

use std::future::Future;
use std::pin::pin;
use std::task::Poll;

/// Which of the two futures finished first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future won.
    Left(A),
    /// The second future won.
    Right(B),
}

/// Awaits whichever of two futures completes first, dropping the loser.
///
/// If both are ready on the same poll, the left future wins. Both futures
/// must tolerate being dropped before completion (all primitives in this
/// crate do).
pub async fn select2<A, B>(a: A, b: B) -> Either<A::Output, B::Output>
where
    A: Future,
    B: Future,
{
    let mut a = pin!(a);
    let mut b = pin!(b);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(va) = a.as_mut().poll(cx) {
            return Poll::Ready(Either::Left(va));
        }
        if let Poll::Ready(vb) = b.as_mut().poll(cx) {
            return Poll::Ready(Either::Right(vb));
        }
        Poll::Pending
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimDuration};

    #[test]
    fn left_wins_when_faster() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.run_until(async move {
            let fast = s.sleep(SimDuration::from_micros(1));
            let slow = s.sleep(SimDuration::from_micros(10));
            select2(
                async move {
                    fast.await;
                    1
                },
                async move {
                    slow.await;
                    2
                },
            )
            .await
        });
        assert_eq!(out, Either::Left(1));
        assert_eq!(sim.now().as_nanos(), 1_000);
    }

    #[test]
    fn right_wins_when_faster() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.run_until(async move {
            let slow = s.sleep(SimDuration::from_micros(10));
            let fast = s.sleep(SimDuration::from_micros(1));
            select2(
                async move {
                    slow.await;
                    1u32
                },
                async move {
                    fast.await;
                    2u32
                },
            )
            .await
        });
        assert_eq!(out, Either::Right(2));
    }

    #[test]
    fn simultaneous_prefers_left() {
        let sim = Sim::new();
        let s = sim.clone();
        let out = sim.run_until(async move {
            let a = s.sleep(SimDuration::from_micros(5));
            let b = s.sleep(SimDuration::from_micros(5));
            select2(
                async move {
                    a.await;
                    'a'
                },
                async move {
                    b.await;
                    'b'
                },
            )
            .await
        });
        assert_eq!(out, Either::Left('a'));
    }
}
