//! Parallel deterministic sweep runner.
//!
//! Every experiment in this workspace is a *sweep*: a list of mutually
//! independent cells, each of which builds its own isolated [`crate::Sim`]
//! world, runs it to completion, and reduces it to a row of plain data.
//! Cells share nothing — no simulator, no RNG, no task state — so the
//! only ordering that matters is the order results are *collected* in.
//!
//! [`run_cells`] exploits that: a scoped-thread pool (hermetic
//! `std::thread::scope`, no external executor) pulls cells off a shared
//! work-list by index and writes each result back into the slot with
//! the same index. Collection order is therefore the work-list order
//! regardless of worker count or OS scheduling, and the CSV a sweep
//! renders is **bit-identical to the serial run** at any `--jobs`
//! value. Parallelism exists only *across* whole simulated worlds,
//! never within one; each `Sim` stays single-threaded and `!Send`,
//! constructed and dropped entirely inside its worker.
//!
//! The pool also brackets every cell with the micro-profiler
//! ([`crate::profile`]): per-cell wall-clock and simulated-event counts
//! come back as [`CellStats`] for `nfsperf bench` and
//! `results/bench.json`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::profile::{self, CellStats};

/// One unit of sweep work: a label (for profiling reports) plus the
/// closure that builds, runs, and reduces an isolated simulation.
pub struct Cell<T> {
    /// Human-readable cell name, e.g. `fleet/filer/udp/c8`.
    pub label: String,
    run: Box<dyn FnOnce() -> T + Send>,
}

impl<T> Cell<T> {
    /// Creates a cell.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'static) -> Cell<T> {
        Cell {
            label: label.into(),
            run: Box::new(run),
        }
    }
}

/// Reads the default worker count: `NFSPERF_JOBS` if set and positive,
/// else the machine's available parallelism, else 1.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("NFSPERF_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs every cell and returns the results in work-list order,
/// discarding profiling data. See [`run_cells_profiled`].
pub fn run_cells<T: Send>(jobs: usize, cells: Vec<Cell<T>>) -> Vec<T> {
    run_cells_profiled(jobs, cells).0
}

/// Runs every cell on up to `jobs` worker threads and returns
/// `(results, per-cell stats)`, both in work-list order.
///
/// With `jobs <= 1` (or one cell) everything runs on the calling
/// thread, in order — the serial baseline. Results are identical
/// either way; only the wall-clock in the stats differs.
///
/// # Panics
///
/// A panicking cell propagates: the pool finishes joining and then
/// re-panics on the calling thread (via `std::thread::scope`).
pub fn run_cells_profiled<T: Send>(jobs: usize, cells: Vec<Cell<T>>) -> (Vec<T>, Vec<CellStats>) {
    let n = cells.len();
    if jobs <= 1 || n <= 1 {
        let mut results = Vec::with_capacity(n);
        let mut stats = Vec::with_capacity(n);
        for cell in cells {
            let (result, stat) = run_one(cell);
            results.push(result);
            stats.push(stat);
        }
        return (results, stats);
    }

    let work: Vec<Mutex<Option<Cell<T>>>> =
        cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let done: Vec<Mutex<Option<(T, CellStats)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = work[i]
                    .lock()
                    .expect("cell slot poisoned")
                    .take()
                    .expect("cell claimed twice");
                let out = run_one(cell);
                *done[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    let mut results = Vec::with_capacity(n);
    let mut stats = Vec::with_capacity(n);
    for slot in done {
        let (result, stat) = slot
            .into_inner()
            .expect("result slot poisoned")
            .expect("worker exited without storing a result");
        results.push(result);
        stats.push(stat);
    }
    (results, stats)
}

fn run_one<T>(cell: Cell<T>) -> (T, CellStats) {
    let label = cell.label;
    let _ = profile::take_thread_events();
    let start = Instant::now();
    let result = (cell.run)();
    let wall = start.elapsed();
    let events = profile::take_thread_events();
    (
        result,
        CellStats {
            label,
            wall,
            events,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimDuration};

    /// A miniature "sweep cell": its own Sim world reduced to a number.
    fn sim_cell(idx: u64) -> u64 {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            for _ in 0..idx + 1 {
                s.sleep(SimDuration::from_micros(idx + 1)).await;
            }
            s.now().as_nanos() + idx
        })
    }

    #[test]
    fn serial_runs_in_order() {
        let cells: Vec<Cell<u64>> = (0..5)
            .map(|i| Cell::new(format!("c{i}"), move || sim_cell(i)))
            .collect();
        let serial = run_cells(1, cells);
        assert_eq!(serial.len(), 5);
        for (i, v) in serial.iter().enumerate() {
            assert_eq!(*v, sim_cell(i as u64));
        }
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let make = || -> Vec<Cell<u64>> {
            (0..16)
                .map(|i| Cell::new(format!("c{i}"), move || sim_cell(i)))
                .collect()
        };
        let serial = run_cells(1, make());
        for jobs in [2, 4, 8, 32] {
            assert_eq!(run_cells(jobs, make()), serial, "jobs = {jobs}");
        }
    }

    #[test]
    fn more_jobs_than_cells_is_fine() {
        let cells = vec![Cell::new("only", || 42u32)];
        assert_eq!(run_cells(16, cells), vec![42]);
    }

    #[test]
    fn empty_worklist_returns_empty() {
        let cells: Vec<Cell<u32>> = Vec::new();
        assert!(run_cells(4, cells).is_empty());
    }

    #[test]
    fn profiled_run_reports_labels_and_events() {
        let cells: Vec<Cell<u64>> = (0..3)
            .map(|i| Cell::new(format!("cell-{i}"), move || sim_cell(i)))
            .collect();
        let (results, stats) = run_cells_profiled(2, cells);
        assert_eq!(results.len(), 3);
        assert_eq!(stats.len(), 3);
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.label, format!("cell-{i}"));
            assert!(s.events > 0, "cell {i} retired no events");
        }
    }

    // `std::thread::scope` re-panics with its own payload, so no
    // `expected =` here — the contract is only that the panic escapes.
    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let cells: Vec<Cell<u32>> = (0..4)
            .map(|i| {
                Cell::new(format!("c{i}"), move || {
                    if i == 2 {
                        panic!("cell exploded");
                    }
                    i
                })
            })
            .collect();
        let _ = run_cells(2, cells);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    /// A cell that dies mid-run must not leak its half-counted events
    /// into the next cell profiled on the same thread: `run_one` resets
    /// the thread tally at cell *start*, not only at cell end.
    #[test]
    fn aborted_cell_leaves_no_stale_tally() {
        // An aborting cell: it retires simulated events and then panics,
        // so its profiling bracket never reaches the end-of-cell take.
        let doomed: Vec<Cell<u32>> = vec![Cell::new("doomed", || {
            profile::note_sim_events(1_000_000);
            panic!("cell aborted mid-run");
        })];
        let escaped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = run_cells(1, doomed);
        }));
        assert!(escaped.is_err(), "doomed cell must panic");

        // A clean cell profiled afterwards on this same thread must
        // count only its own events, not the aborted cell's million.
        let (_, stats) = run_cells_profiled(1, vec![Cell::new("clean", || sim_cell(0))]);
        assert!(
            stats[0].events > 0 && stats[0].events < 1_000_000,
            "stale tally leaked into clean cell: {} events",
            stats[0].events
        );
    }
}
