//! Measurement infrastructure: counters, traces, histograms and a
//! profiler.
//!
//! These mirror the instruments the paper uses on the real kernel:
//!
//! - [`Trace`] ↔ `do_gettimeofday()` timestamps logged around a code
//!   section (Figures 2–4 are latency-vs-call-count traces),
//! - [`Histogram`] ↔ the latency histograms of Figures 5 and 6,
//! - [`Profiler`] ↔ the sample-driven kernel execution profiler used to
//!   find `nfs_find_request` and the BKL text section,
//! - [`ByteMeter`] ↔ on-the-wire throughput measurement.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Default, Debug)]
pub struct Counter {
    value: Cell<u64>,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.set(self.value.get() + n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.get()
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.set(0);
    }
}

/// A time-stamped sample trace.
///
/// Records `(when, value)` pairs; the figure runners use it for per-call
/// latency traces.
pub struct Trace<T> {
    samples: RefCell<Vec<(SimTime, T)>>,
}

impl<T> Default for Trace<T> {
    fn default() -> Self {
        Trace {
            samples: RefCell::new(Vec::new()),
        }
    }
}

impl<T: Clone> Trace<T> {
    /// Creates an empty trace.
    pub fn new() -> Trace<T> {
        Trace::default()
    }

    /// Appends a sample.
    pub fn record(&self, at: SimTime, value: T) {
        self.samples.borrow_mut().push((at, value));
    }

    /// Copies out all samples.
    pub fn samples(&self) -> Vec<(SimTime, T)> {
        self.samples.borrow().clone()
    }

    /// Copies out only the values, in record order.
    pub fn values(&self) -> Vec<T> {
        self.samples
            .borrow()
            .iter()
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.borrow().len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all samples.
    pub fn clear(&self) {
        self.samples.borrow_mut().clear();
    }
}

/// A fixed-bin histogram over durations, like Figures 5 and 6.
///
/// Bin `i` covers `[i * bin_width, (i + 1) * bin_width)`; durations past
/// the last bin land in the overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bin_width: SimDuration,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    total: SimDuration,
    min: Option<SimDuration>,
    max: SimDuration,
}

impl Histogram {
    /// Creates a histogram of `bins` bins of width `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero or `bins` is zero.
    pub fn new(bin_width: SimDuration, bins: usize) -> Histogram {
        assert!(bin_width > SimDuration::ZERO, "bin width must be positive");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            bin_width,
            bins: vec![0; bins],
            overflow: 0,
            count: 0,
            total: SimDuration::ZERO,
            min: None,
            max: SimDuration::ZERO,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let idx = (d.as_nanos() / self.bin_width.as_nanos()) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.total += d;
        self.max = self.max.max(d);
        self.min = Some(self.min.map_or(d, |m| m.min(d)));
    }

    /// Builds a histogram directly from samples.
    pub fn from_samples(bin_width: SimDuration, bins: usize, samples: &[SimDuration]) -> Histogram {
        let mut h = Histogram::new(bin_width, bins);
        for &s in samples {
            h.record(s);
        }
        h
    }

    /// Per-bin counts (without the overflow bucket).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// Count of samples past the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples ([`SimDuration::ZERO`] when empty).
    pub fn mean(&self) -> SimDuration {
        match self.total.as_nanos().checked_div(self.count) {
            Some(ns) => SimDuration(ns),
            None => SimDuration::ZERO,
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<SimDuration> {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Fraction of samples at or above `threshold` (by bin lower edge for
    /// binned samples; overflow counts as above everything).
    pub fn fraction_slower_than(&self, threshold: SimDuration) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let first_bin = (threshold.as_nanos() / self.bin_width.as_nanos()) as usize;
        let slow: u64 = self.bins.iter().skip(first_bin).sum::<u64>() + self.overflow;
        slow as f64 / self.count as f64
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        for (i, &n) in self.bins.iter().enumerate() {
            let lo = self.bin_width * i as u64;
            let bar = "#".repeat(((n * 50) / peak) as usize);
            writeln!(f, "{:>10} | {:>7} {}", format!("{lo}"), n, bar)?;
        }
        if self.overflow > 0 {
            writeln!(f, "{:>10} | {:>7}", ">", self.overflow)?;
        }
        Ok(())
    }
}

/// Per-label accumulated execution time, mimicking a sampling kernel
/// profiler's per-function histogram.
#[derive(Default)]
pub struct Profiler {
    entries: RefCell<HashMap<&'static str, ProfEntry>>,
}

#[derive(Default, Clone, Copy, Debug)]
struct ProfEntry {
    ns: u64,
    hits: u64,
}

/// One row of a profiler report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// The code-section label.
    pub label: &'static str,
    /// Accumulated execution time.
    pub time: SimDuration,
    /// Number of times the section ran.
    pub hits: u64,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Charges `d` of execution time to `label`.
    pub fn charge(&self, label: &'static str, d: SimDuration) {
        let mut entries = self.entries.borrow_mut();
        let e = entries.entry(label).or_default();
        e.ns += d.as_nanos();
        e.hits += 1;
    }

    /// Accumulated time for `label`.
    pub fn time_in(&self, label: &str) -> SimDuration {
        self.entries
            .borrow()
            .get(label)
            .map(|e| SimDuration(e.ns))
            .unwrap_or(SimDuration::ZERO)
    }

    /// Number of times `label` was charged.
    pub fn hits(&self, label: &str) -> u64 {
        self.entries
            .borrow()
            .get(label)
            .map(|e| e.hits)
            .unwrap_or(0)
    }

    /// All rows, hottest first (ties broken by label for determinism).
    pub fn report(&self) -> Vec<ProfileRow> {
        let mut rows: Vec<ProfileRow> = self
            .entries
            .borrow()
            .iter()
            .map(|(&label, e)| ProfileRow {
                label,
                time: SimDuration(e.ns),
                hits: e.hits,
            })
            .collect();
        rows.sort_by(|a, b| b.time.cmp(&a.time).then(a.label.cmp(b.label)));
        rows
    }

    /// The hottest label, if anything was charged.
    pub fn hottest(&self) -> Option<ProfileRow> {
        self.report().into_iter().next()
    }

    /// Clears all accumulated time.
    pub fn reset(&self) {
        self.entries.borrow_mut().clear();
    }
}

/// Measures bytes moved over time, e.g. on-the-wire network throughput.
#[derive(Default, Debug)]
pub struct ByteMeter {
    bytes: Cell<u64>,
    first: Cell<Option<SimTime>>,
    last: Cell<SimTime>,
}

impl ByteMeter {
    /// Creates a zeroed meter.
    pub fn new() -> ByteMeter {
        ByteMeter::default()
    }

    /// Records `n` bytes moved at time `at`.
    pub fn record(&self, at: SimTime, n: u64) {
        self.bytes.set(self.bytes.get() + n);
        if self.first.get().is_none() {
            self.first.set(Some(at));
        }
        self.last.set(self.last.get().max(at));
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Mean throughput in bytes/second between first and last sample
    /// (zero if fewer than two distinct instants were seen).
    pub fn throughput_bps(&self) -> f64 {
        match self.first.get() {
            Some(first) if self.last.get() > first => {
                self.bytes.get() as f64 / (self.last.get() - first).as_secs_f64()
            }
            _ => 0.0,
        }
    }

    /// Mean throughput in megabytes/second (decimal MB, as the paper
    /// reports).
    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_bps() / 1e6
    }

    /// Resets the meter.
    pub fn reset(&self) {
        self.bytes.set(0);
        self.first.set(None);
        self.last.set(SimTime::ZERO);
    }
}

/// Converts a byte count moved in `elapsed` into MB/s (decimal megabytes,
/// matching the paper's "MBps").
pub fn mbps(bytes: u64, elapsed: SimDuration) -> f64 {
    if elapsed == SimDuration::ZERO {
        return 0.0;
    }
    bytes as f64 / elapsed.as_secs_f64() / 1e6
}

/// Mean of a latency series ([`SimDuration::ZERO`] when empty), rounded
/// to the nearest nanosecond. Plain `total / len` floors toward zero,
/// which biases decile means (and anything derived from them) low by up
/// to 1 ns per sample.
pub fn mean(samples: &[SimDuration]) -> SimDuration {
    if samples.is_empty() {
        return SimDuration::ZERO;
    }
    let total: u64 = samples.iter().map(|d| d.as_nanos()).sum();
    let len = samples.len() as u64;
    SimDuration((total + len / 2) / len)
}

/// Nearest-rank percentile of a latency series, `p` in `[0, 100]`
/// ([`SimDuration::ZERO`] when empty). `percentile(s, 50.0)` is the
/// median; `percentile(s, 99.0)` the usual tail-latency p99.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(samples: &[SimDuration], p: f64) -> SimDuration {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if samples.is_empty() {
        return SimDuration::ZERO;
    }
    let mut sorted: Vec<SimDuration> = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    // Nearest-rank: smallest value with at least p% of samples <= it.
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// p50/p99/p999 summary of a latency series.
///
/// [`LatencyDigest::of`] sorts the series **once** and reads all three
/// ranks from the same sorted copy; the naive three `percentile` calls
/// it replaces each cloned and re-sorted the full sample vector, which
/// dominated end-of-run reporting for servers with millions of samples.
/// [`LatencyDigest::of_mut`] goes further and sorts in place — zero
/// allocation — for callers that own their samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyDigest {
    /// Median.
    pub p50: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// 99.9th percentile.
    pub p999: SimDuration,
}

impl LatencyDigest {
    /// Digests a series, copying and sorting it once.
    pub fn of(samples: &[SimDuration]) -> LatencyDigest {
        let mut sorted: Vec<SimDuration> = samples.to_vec();
        LatencyDigest::of_mut(&mut sorted)
    }

    /// Digests a series by sorting it in place (no allocation).
    pub fn of_mut(samples: &mut [SimDuration]) -> LatencyDigest {
        samples.sort_unstable();
        LatencyDigest {
            p50: pick_sorted(samples, 50.0),
            p99: pick_sorted(samples, 99.0),
            p999: pick_sorted(samples, 99.9),
        }
    }
}

/// Nearest-rank pick from an already-sorted series; the exact formula
/// of [`percentile`], so digests match three independent calls bit for
/// bit.
#[inline]
fn pick_sorted(sorted: &[SimDuration], p: f64) -> SimDuration {
    if sorted.is_empty() {
        return SimDuration::ZERO;
    }
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn trace_records_in_order() {
        let t = Trace::new();
        t.record(SimTime(1), 10u32);
        t.record(SimTime(2), 20u32);
        assert_eq!(t.values(), vec![10, 20]);
        assert_eq!(t.len(), 2);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(SimDuration::from_micros(60), 8);
        h.record(SimDuration::from_micros(10)); // bin 0
        h.record(SimDuration::from_micros(60)); // bin 1
        h.record(SimDuration::from_micros(119)); // bin 1
        h.record(SimDuration::from_millis(19)); // overflow
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), SimDuration::from_millis(19));
        assert_eq!(h.min(), Some(SimDuration::from_micros(10)));
    }

    #[test]
    fn histogram_mean() {
        let h = Histogram::from_samples(
            SimDuration::from_micros(10),
            4,
            &[SimDuration::from_micros(10), SimDuration::from_micros(30)],
        );
        assert_eq!(h.mean(), SimDuration::from_micros(20));
    }

    #[test]
    fn histogram_fraction_slower() {
        let h = Histogram::from_samples(
            SimDuration::from_micros(100),
            10,
            &[
                SimDuration::from_micros(50),
                SimDuration::from_micros(150),
                SimDuration::from_micros(250),
                SimDuration::from_millis(5),
            ],
        );
        assert!((h.fraction_slower_than(SimDuration::from_micros(100)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_stats() {
        let h = Histogram::new(SimDuration::from_micros(1), 1);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), None);
        assert_eq!(h.fraction_slower_than(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn profiler_ranks_hottest_first() {
        let p = Profiler::new();
        p.charge("nfs_find_request", SimDuration::from_micros(500));
        p.charge("nfs_find_request", SimDuration::from_micros(500));
        p.charge("memcpy", SimDuration::from_micros(100));
        let report = p.report();
        assert_eq!(report[0].label, "nfs_find_request");
        assert_eq!(report[0].time.as_micros(), 1000);
        assert_eq!(report[0].hits, 2);
        assert_eq!(p.hottest().unwrap().label, "nfs_find_request");
        assert_eq!(p.time_in("memcpy").as_micros(), 100);
        assert_eq!(p.hits("memcpy"), 1);
        assert_eq!(p.time_in("absent"), SimDuration::ZERO);
    }

    #[test]
    fn byte_meter_throughput() {
        let m = ByteMeter::new();
        m.record(SimTime(0), 500_000);
        m.record(SimTime(1_000_000_000), 500_000);
        assert_eq!(m.bytes(), 1_000_000);
        assert!((m.throughput_mbps() - 1.0).abs() < 1e-9);
        m.reset();
        assert_eq!(m.bytes(), 0);
        assert_eq!(m.throughput_bps(), 0.0);
    }

    #[test]
    fn mbps_helper() {
        assert!((mbps(10_000_000, SimDuration::from_secs(1)) - 10.0).abs() < 1e-9);
        assert_eq!(mbps(10, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn digest_matches_three_percentile_calls() {
        let rng = crate::rng::SimRng::new(0xd1e5);
        let samples: Vec<SimDuration> = (0..1000)
            .map(|_| SimDuration::from_nanos(rng.next_u64() % 1_000_000))
            .collect();
        let d = LatencyDigest::of(&samples);
        assert_eq!(d.p50, percentile(&samples, 50.0));
        assert_eq!(d.p99, percentile(&samples, 99.0));
        assert_eq!(d.p999, percentile(&samples, 99.9));
    }

    #[test]
    fn digest_of_empty_is_zero() {
        assert_eq!(LatencyDigest::of(&[]), LatencyDigest::default());
    }

    #[test]
    fn digest_of_mut_sorts_in_place() {
        let mut samples = vec![
            SimDuration::from_nanos(30),
            SimDuration::from_nanos(10),
            SimDuration::from_nanos(20),
        ];
        let d = LatencyDigest::of_mut(&mut samples);
        assert_eq!(d.p50, SimDuration::from_nanos(20));
        assert!(samples.windows(2).all(|w| w[0] <= w[1]));
    }
}
