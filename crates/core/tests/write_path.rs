//! Behavioural tests for the NFS client write path against live simulated
//! servers: the paper's three defects and their fixes, observed directly.

use std::rc::Rc;

use nfsperf_client::{ClientTuning, MountConfig, NfsFile, NfsMount, MAX_REQUEST_SOFT};
use nfsperf_kernel::{CostTable, Kernel, KernelConfig, PageSeg, SimFile};
use nfsperf_net::{Nic, NicSpec, Path};
use nfsperf_server::{NfsServer, ServerConfig};
use nfsperf_sim::{Sim, SimDuration};

struct World {
    sim: Sim,
    kernel: Kernel,
    mount: Rc<NfsMount>,
    server: Rc<NfsServer>,
}

fn world(tuning: ClientTuning, server_config: ServerConfig, server_nic: NicSpec) -> World {
    let sim = Sim::new();
    let costs = CostTable {
        cpu_jitter_frac: 0.0,
        ..CostTable::default()
    };
    let kernel = Kernel::new(
        &sim,
        KernelConfig {
            costs,
            ..KernelConfig::default()
        },
    );
    let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit());
    let (snic, srx) = Nic::new(&sim, "server", server_nic);
    let to_server = Path::new(cnic, snic, Path::default_latency());
    let server = NfsServer::spawn(&sim, srx, to_server.reversed(), server_config);
    let mount = NfsMount::mount(
        &kernel,
        to_server,
        crx,
        MountConfig {
            tuning,
            ..MountConfig::default()
        },
    );
    World {
        sim,
        kernel,
        mount,
        server,
    }
}

/// Runs a sequential 8 KiB-chunk write of `total` bytes, returning
/// per-call latencies.
async fn sequential_write(file: &NfsFile, total: u64) -> Vec<SimDuration> {
    let sim = &file.mount().kernel.sim;
    let mut latencies = Vec::new();
    let mut off = 0;
    while off < total {
        let t0 = sim.now();
        file.write(off, 8192).await.unwrap();
        latencies.push(sim.now().since(t0));
        off += 8192;
    }
    latencies
}

#[test]
fn write_close_round_trip_updates_server() {
    let w = world(
        ClientTuning::full_patch(),
        ServerConfig::netapp_f85(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    let server = Rc::clone(&w.server);
    w.sim.run_until(async move {
        let file = mount.create("bench").await.unwrap();
        sequential_write(&file, 1 << 20).await;
        file.close().await.unwrap();
        let fh = file.inode().fh;
        assert_eq!(server.fs.size_of(&fh).unwrap(), 1 << 20);
        assert_eq!(
            file.inode().total_requests(),
            0,
            "close drains all requests"
        );
    });
    assert_eq!(w.kernel.mem.dirty_pages(), 0, "all pages released");
    assert_eq!(w.server.stats().write_bytes, 1 << 20);
}

#[test]
fn stock_client_shows_periodic_latency_spikes() {
    let w = world(
        ClientTuning::linux_2_4_4(),
        ServerConfig::netapp_f85(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    let latencies = w.sim.run_until(async move {
        let file = mount.create("bench").await.unwrap();
        let lat = sequential_write(&file, 5 << 20).await;
        file.close().await.unwrap();
        lat
    });
    let spike_threshold = SimDuration::from_millis(1);
    let spikes = latencies.iter().filter(|l| **l > spike_threshold).count();
    assert!(
        spikes >= 3,
        "expected periodic soft-limit spikes, saw {spikes} of {}",
        latencies.len()
    );
    // Spikes are many-millisecond stalls, like the paper's 19 ms.
    let max = latencies.iter().max().unwrap();
    assert!(
        *max >= SimDuration::from_millis(5),
        "spike magnitude should be milliseconds, got {max}"
    );
    // Most calls are still fast (paper: ~1.4% slow calls).
    assert!(
        spikes * 10 < latencies.len(),
        "spikes must be a small minority: {spikes}/{}",
        latencies.len()
    );
    assert!(w.mount.stats().soft_limit_flushes >= 3);
}

#[test]
fn no_flush_removes_spikes_but_latency_grows() {
    let w = world(
        ClientTuning::no_flush(),
        ServerConfig::netapp_f85(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    let latencies = w.sim.run_until(async move {
        let file = mount.create("bench").await.unwrap();
        let lat = sequential_write(&file, 20 << 20).await;
        file.close().await.unwrap();
        lat
    });
    assert_eq!(w.mount.stats().soft_limit_flushes, 0);
    // Request count exceeds the old soft limit freely.
    // Latency trend: mean of last tenth far above mean of first tenth.
    let n = latencies.len();
    let first: u64 = latencies[..n / 10]
        .iter()
        .map(|d| d.as_nanos())
        .sum::<u64>()
        / (n / 10) as u64;
    let last: u64 = latencies[n - n / 10..]
        .iter()
        .map(|d| d.as_nanos())
        .sum::<u64>()
        / (n / 10) as u64;
    assert!(
        last > first * 2,
        "list-scan growth expected: first-decile mean {first}ns, last-decile mean {last}ns"
    );
}

#[test]
fn hash_table_keeps_latency_flat() {
    let w = world(
        ClientTuning::hash_table(),
        ServerConfig::netapp_f85(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    let latencies = w.sim.run_until(async move {
        let file = mount.create("bench").await.unwrap();
        let lat = sequential_write(&file, 20 << 20).await;
        file.close().await.unwrap();
        lat
    });
    let n = latencies.len();
    let first: u64 = latencies[..n / 10]
        .iter()
        .map(|d| d.as_nanos())
        .sum::<u64>()
        / (n / 10) as u64;
    let last: u64 = latencies[n - n / 10..]
        .iter()
        .map(|d| d.as_nanos())
        .sum::<u64>()
        / (n / 10) as u64;
    assert!(
        last < first * 2,
        "hash table must keep latency flat: first {first}ns last {last}ns"
    );
}

#[test]
fn profiler_blames_nfs_find_request_in_no_flush_config() {
    // The paper's §3.4 profiling observation: with flushing removed and
    // the list in place, nfs_find_request/nfs_update_request dominate.
    let w = world(
        ClientTuning::no_flush(),
        ServerConfig::netapp_f85(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    w.sim.run_until(async move {
        let file = mount.create("bench").await.unwrap();
        sequential_write(&file, 40 << 20).await;
        file.close().await.unwrap();
    });
    let report = w.kernel.profiler.report();
    let top: Vec<&str> = report.iter().take(2).map(|r| r.label).collect();
    assert!(
        top.contains(&"nfs_find_request") || top.contains(&"nfs_update_request"),
        "request-list scans should top the profile, got {top:?}"
    );
}

#[test]
fn unstable_writes_commit_against_knfsd() {
    let w = world(
        ClientTuning::full_patch(),
        ServerConfig::linux_knfsd(),
        NicSpec::bus_limited(26_000_000),
    );
    let mount = Rc::clone(&w.mount);
    w.sim.run_until(async move {
        let file = mount.create("bench").await.unwrap();
        sequential_write(&file, 2 << 20).await;
        file.fsync().await.unwrap();
        assert_eq!(file.inode().unstable_requests(), 0);
        file.close().await.unwrap();
    });
    let stats = w.mount.stats();
    assert!(stats.commit_rpcs >= 1, "knfsd requires COMMIT");
    assert_eq!(w.server.dirty_bytes(), Some(0), "commit flushed the server");
    assert_eq!(w.kernel.mem.dirty_pages(), 0);
}

#[test]
fn filer_needs_no_commit() {
    let w = world(
        ClientTuning::full_patch(),
        ServerConfig::netapp_f85(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    w.sim.run_until(async move {
        let file = mount.create("bench").await.unwrap();
        sequential_write(&file, 2 << 20).await;
        file.close().await.unwrap();
    });
    assert_eq!(
        w.mount.stats().commit_rpcs,
        0,
        "FILE_SYNC replies make COMMIT unnecessary"
    );
}

#[test]
fn server_reboot_triggers_verifier_recovery() {
    let w = world(
        ClientTuning::full_patch(),
        ServerConfig::linux_knfsd(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    let server = Rc::clone(&w.server);
    let sim = w.sim.clone();
    w.sim.run_until(async move {
        let file = mount.create("bench").await.unwrap();
        // Write a little, then catch the window where some WRITEs have
        // completed UNSTABLE but no COMMIT has landed yet.
        sequential_write(&file, 512 * 1024).await;
        while file.inode().unstable_requests() == 0 {
            file.inode().completion.wait().await;
        }
        // Server "reboots": verifier changes, cached dirty data is gone.
        server.reboot();
        sim.sleep(SimDuration::from_micros(100)).await;
        file.fsync().await.unwrap();
        file.close().await.unwrap();
        let fh = file.inode().fh;
        assert_eq!(server.fs.size_of(&fh).unwrap(), 512 * 1024);
    });
    assert!(
        w.mount.stats().verf_mismatches > 0,
        "reboot must be detected via the verifier"
    );
}

#[test]
fn memory_pressure_throttles_writer_to_server_speed() {
    let sim = Sim::new();
    let costs = CostTable {
        cpu_jitter_frac: 0.0,
        ..CostTable::default()
    };
    // Small RAM so the test is fast: 16 MB.
    let kernel = Kernel::new(
        &sim,
        KernelConfig {
            ram_bytes: 16 << 20,
            costs,
            ..KernelConfig::default()
        },
    );
    let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit());
    let (snic, srx) = Nic::new(&sim, "server", NicSpec::gigabit());
    let to_server = Path::new(cnic, snic, Path::default_latency());
    let _server = NfsServer::spawn(&sim, srx, to_server.reversed(), ServerConfig::netapp_f85());
    let mount = NfsMount::mount(
        &kernel,
        to_server,
        crx,
        MountConfig {
            tuning: ClientTuning::full_patch(),
            ..MountConfig::default()
        },
    );
    let k2 = kernel.clone();
    let elapsed = sim.run_until(async move {
        let file = mount.create("bench").await.unwrap();
        let t0 = k2.sim.now();
        sequential_write(&file, 64 << 20).await; // 4x RAM
        let t = k2.sim.now().since(t0);
        file.close().await.unwrap();
        t
    });
    // At pure memory speed 64 MB would take ~0.5 s; the filer services
    // ~40 MB/s, so a memory-bound run is impossible.
    assert!(
        elapsed > SimDuration::from_millis(900),
        "writer must be throttled to server speed, took {elapsed}"
    );
    assert!(kernel.mem.throttle_events() > 0);
}

#[test]
fn soft_limit_honoured_only_in_stock_tuning() {
    for (tuning, expect_bounded) in [
        (ClientTuning::linux_2_4_4(), true),
        (ClientTuning::hash_table(), false),
    ] {
        let w = world(tuning, ServerConfig::netapp_f85(), NicSpec::gigabit());
        let mount = Rc::clone(&w.mount);
        let peak = w.sim.run_until(async move {
            let file = mount.create("bench").await.unwrap();
            let mut peak = 0;
            let mut off = 0u64;
            while off < (4 << 20) {
                file.write(off, 8192).await.unwrap();
                peak = peak.max(file.inode().total_requests());
                off += 8192;
            }
            file.close().await.unwrap();
            peak
        });
        if expect_bounded {
            assert!(
                peak <= MAX_REQUEST_SOFT + 2,
                "stock tuning keeps requests near the soft limit, peak {peak}"
            );
        } else {
            assert!(
                peak > MAX_REQUEST_SOFT,
                "patched tuning should blow past the soft limit, peak {peak}"
            );
        }
    }
}

#[test]
fn slower_server_yields_faster_memory_writes() {
    // The paper's §3.5 counter-intuitive observation, reproduced with the
    // BKL held (stock RPC layer): a slower server keeps nfs_flushd asleep
    // and the writer uncontended.
    let run = |server: ServerConfig, nic: NicSpec| -> f64 {
        let w = world(ClientTuning::hash_table(), server, nic);
        let mount = Rc::clone(&w.mount);
        w.sim.run_until(async move {
            let file = mount.create("bench").await.unwrap();
            let sim = &file.mount().kernel.sim;
            let t0 = sim.now();
            sequential_write(&file, 5 << 20).await;
            let elapsed = sim.now().since(t0);
            let mbps = (5 << 20) as f64 / elapsed.as_secs_f64() / 1e6;
            file.close().await.unwrap();
            mbps
        })
    };
    let vs_filer = run(ServerConfig::netapp_f85(), NicSpec::gigabit());
    let vs_slow = run(ServerConfig::slow_100bt(), NicSpec::fast_ethernet());
    assert!(
        vs_slow > vs_filer,
        "slow server should allow faster memory writes: slow={vs_slow:.1} filer={vs_filer:.1} MB/s"
    );
}

#[test]
fn read_back_after_write() {
    let w = world(
        ClientTuning::full_patch(),
        ServerConfig::netapp_f85(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    w.sim.run_until(async move {
        let file = mount.create("rw").await.unwrap();
        sequential_write(&file, 64 * 1024).await;
        // Read back: flushes dirty data first, then fetches.
        let n = file.read(0, 8192).await.unwrap();
        assert_eq!(n, 8192);
        // Reading past EOF is short.
        let n = file.read(60 * 1024, 8192).await.unwrap();
        assert_eq!(n, 4 * 1024);
        // Reading at EOF returns zero bytes.
        let n = file.read(64 * 1024, 8192).await.unwrap();
        assert_eq!(n, 0);
        file.close().await.unwrap();
    });
}

#[test]
fn truncate_shrinks_server_file() {
    let w = world(
        ClientTuning::full_patch(),
        ServerConfig::netapp_f85(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    let server = Rc::clone(&w.server);
    w.sim.run_until(async move {
        let file = mount.create("trunc").await.unwrap();
        sequential_write(&file, 64 * 1024).await;
        file.truncate(1000).await.unwrap();
        assert_eq!(server.fs.size_of(&file.inode().fh).unwrap(), 1000);
        file.close().await.unwrap();
    });
}

/// Regression for the COMMIT verifier-mismatch recovery path: a writer
/// coalescing new bytes into a request *while its COMMIT is in flight*
/// across a server reboot. The recovery used to rebuild the request by
/// hand, and the merge-grown length corrupted the inode's unstable-byte
/// accounting (an underflow panic in debug builds); re-dirtying the
/// request in place keeps the books straight.
#[test]
fn mid_commit_redirty_survives_verifier_recovery() {
    let w = world(
        ClientTuning::full_patch(),
        ServerConfig::linux_knfsd(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    let server = Rc::clone(&w.server);
    let sim = w.sim.clone();
    w.sim.run_until(async move {
        let file = Rc::new(mount.create("bench").await.unwrap());
        file.write(0, 100).await.unwrap();
        // Wait for the WRITE to complete UNSTABLE.
        while file.inode().unstable_requests() == 0 {
            file.inode().completion.wait().await;
        }
        // The server reboots: its verifier changes and cached data is
        // dropped, so the coming COMMIT cannot confirm the request.
        server.reboot();
        // fsync concurrently: it issues the COMMIT we want to race.
        let syncer = {
            let file = Rc::clone(&file);
            sim.spawn(async move { file.fsync().await })
        };
        while !file.inode().commit_in_flight() {
            sim.sleep(SimDuration::from_micros(1)).await;
        }
        // Mid-COMMIT, the writer grows the same page's request 100→200.
        file.write(0, 200).await.unwrap();
        syncer.await.unwrap();
        file.close().await.unwrap();
        assert_eq!(server.fs.size_of(&file.inode().fh).unwrap(), 200);
        assert_eq!(file.inode().total_requests(), 0, "everything drained");
    });
    assert_eq!(w.kernel.mem.dirty_pages(), 0, "accounting balanced");
}

/// The rare `nfs_updatepage` branch: a second write to a page whose
/// existing request it cannot merge with (a hole between the ranges)
/// must flush the old request synchronously before a new one is made.
#[test]
fn incompatible_same_page_write_flushes_the_old_request_first() {
    let w = world(
        ClientTuning::full_patch(),
        ServerConfig::netapp_f85(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    let server = Rc::clone(&w.server);
    w.sim.run_until(async move {
        let file = mount.create("sparse").await.unwrap();
        file.write(0, 100).await.unwrap();
        assert_eq!(file.inode().total_requests(), 1);
        // Same page, but [2000, 2100) cannot coalesce with [0, 100).
        file.write(2000, 100).await.unwrap();
        // The write returned only after the first request was flushed:
        // its bytes are already at the server, and only the new request
        // remains cached.
        assert_eq!(server.stats().write_bytes, 100);
        assert_eq!(file.inode().total_requests(), 1);
        file.close().await.unwrap();
        assert_eq!(server.fs.size_of(&file.inode().fh).unwrap(), 2100);
    });
    assert_eq!(w.server.stats().writes, 2, "two non-coalescable WRITEs");
}

/// NFSv3 carries READ/WRITE counts in a `u32`; a count at or above
/// 4 GiB used to be truncated by the cast (a >=4 GiB read silently
/// became a tiny one). Large counts are now chunked into capped RPCs.
#[test]
fn read_counts_past_u32_are_not_truncated() {
    let w = world(
        ClientTuning::full_patch(),
        ServerConfig::netapp_f85(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    w.sim.run_until(async move {
        let file = mount.create("big-read").await.unwrap();
        sequential_write(&file, 64 * 1024).await;
        // (1 << 32) + 8192 truncates to 8192 as a u32; the full count
        // must survive and the read stop at EOF instead.
        let n = file.read(0, (1u64 << 32) + 8192).await.unwrap();
        assert_eq!(n, 64 * 1024, "EOF bounds the read, not u32 truncation");
        file.close().await.unwrap();
    });
}

/// Unstable pages must stay pinned in client memory until a COMMIT with
/// a matching verifier lands: the server is allowed to lose its cached
/// copy, so the client cannot release (and reuse) the page earlier. The
/// pinned count is tracked per segment through the whole
/// unstable-write → reboot → COMMIT-mismatch → redirty → rewrite cycle
/// and must drain to zero only once the data is durable.
#[test]
fn unstable_pages_stay_pinned_until_commit() {
    let w = world(
        ClientTuning::full_patch(),
        ServerConfig::linux_knfsd(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    let server = Rc::clone(&w.server);
    let kernel = w.kernel.clone();
    let sim = w.sim.clone();
    w.sim.run_until(async move {
        let file = mount.create("bench").await.unwrap();
        sequential_write(&file, 512 * 1024).await;
        while file.inode().unstable_requests() == 0 {
            file.inode().completion.wait().await;
        }
        // In the unstable window every request still pins its page, and
        // the unstable segment matches the inode's request count.
        let inode = file.inode();
        assert_eq!(kernel.mem.dirty_pages(), inode.total_requests());
        assert_eq!(
            kernel.mem.seg_pages(PageSeg::Unstable),
            inode.unstable_requests(),
            "uncommitted pages must sit pinned in the unstable segment"
        );
        // Server reboots: cached unstable data is gone, verifier changes.
        server.reboot();
        sim.sleep(SimDuration::from_micros(100)).await;
        // The COMMIT mismatch forces a redirty + rewrite; because the
        // pages were never released, the client can replay them.
        file.fsync().await.unwrap();
        file.close().await.unwrap();
        let fh = file.inode().fh;
        assert_eq!(server.fs.size_of(&fh).unwrap(), 512 * 1024);
    });
    assert!(w.mount.stats().verf_mismatches > 0);
    assert_eq!(w.kernel.mem.dirty_pages(), 0, "all pages released after durable COMMIT");
    for seg in [PageSeg::Dirty, PageSeg::Writeback, PageSeg::Unstable] {
        assert_eq!(w.kernel.mem.seg_pages(seg), 0);
    }
}

/// With `fg_throttle` (the cawl tuning) a writer over the dirty ratio
/// does foreground writeback instead of parking: dirty memory is bounded
/// at the hard limit, the run is paced to server speed, and every byte
/// still lands.
#[test]
fn foreground_throttling_bounds_dirty_and_lands_all_bytes() {
    let sim = Sim::new();
    let costs = CostTable {
        cpu_jitter_frac: 0.0,
        ..CostTable::default()
    };
    // Small RAM so the test is fast: 16 MB, writing 2x RAM.
    let kernel = Kernel::new(
        &sim,
        KernelConfig {
            ram_bytes: 16 << 20,
            costs,
            ..KernelConfig::default()
        },
    );
    let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit());
    let (snic, srx) = Nic::new(&sim, "server", NicSpec::gigabit());
    let to_server = Path::new(cnic, snic, Path::default_latency());
    let server = NfsServer::spawn(&sim, srx, to_server.reversed(), ServerConfig::netapp_f85());
    let mount = NfsMount::mount(
        &kernel,
        to_server,
        crx,
        MountConfig {
            tuning: ClientTuning::cawl(),
            ..MountConfig::default()
        },
    );
    let k2 = kernel.clone();
    let elapsed = sim.run_until(async move {
        let file = mount.create("bench").await.unwrap();
        let t0 = k2.sim.now();
        sequential_write(&file, 32 << 20).await; // 2x RAM
        let t = k2.sim.now().since(t0);
        file.close().await.unwrap();
        t
    });
    assert!(kernel.mem.throttle_events() > 0, "2x RAM must cross the dirty ratio");
    assert!(
        kernel.mem.peak_dirty_pages() <= kernel.mem.hard_limit(),
        "foreground writeback must bound dirty memory at the hard limit"
    );
    assert!(
        elapsed > SimDuration::from_millis(450),
        "a 2x-RAM write cannot run at memory speed, took {elapsed}"
    );
    assert_eq!(kernel.mem.dirty_pages(), 0);
    assert_eq!(server.stats().write_bytes, 32 << 20, "every byte lands despite throttling");
}

/// Property: any interleaving of writes, fsyncs, sleeps, and server
/// reboots drains to zero pinned pages once the file is closed, and the
/// server ends up with the full file.
#[test]
fn random_write_interleavings_drain_to_zero_pinned() {
    use nfsperf_sim::proptest::{check, CaseOutcome, Gen};
    check(
        "mount_drain_to_zero",
        |g: &mut Gen| g.vec(1, 20, |g| (g.any_u8(), g.u64_in(0, 96), g.u64_in(1, 64))),
        |ops: &Vec<(u8, u64, u64)>| match run_mount_script(ops) {
            Ok(()) => CaseOutcome::Pass,
            Err(m) => CaseOutcome::Fail(m),
        },
    );
}

/// Drives one world through the op script; returns Err on any violated
/// invariant.
fn run_mount_script(ops: &[(u8, u64, u64)]) -> Result<(), String> {
    let w = world(
        ClientTuning::full_patch(),
        ServerConfig::linux_knfsd(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    let server = Rc::clone(&w.server);
    let sim = w.sim.clone();
    let ops = ops.to_vec();
    let (max_end, fh) = w.sim.run_until(async move {
        let file = mount.create("prop").await.unwrap();
        let mut max_end = 0u64;
        for &(kind, off_pages, len_kb) in &ops {
            match kind % 8 {
                0..=3 => {
                    let off = off_pages * 4096;
                    // Shrunk candidates may fall below the generator's
                    // range; a write is at least 1 KB.
                    let len = len_kb.max(1) * 1024;
                    file.write(off, len).await.unwrap();
                    max_end = max_end.max(off + len);
                }
                4 => file.fsync().await.unwrap(),
                5 => sim.sleep(SimDuration::from_micros(200)).await,
                6 => {
                    // Unaligned write that cannot start on a page edge.
                    let off = off_pages * 4096 + 512;
                    file.write(off, 100).await.unwrap();
                    max_end = max_end.max(off + 100);
                }
                _ => {
                    server.reboot();
                    sim.sleep(SimDuration::from_micros(50)).await;
                }
            }
        }
        file.fsync().await.unwrap();
        file.close().await.unwrap();
        (max_end, file.inode().fh)
    });
    if w.kernel.mem.dirty_pages() != 0 {
        return Err(format!(
            "{} pages still pinned after close",
            w.kernel.mem.dirty_pages()
        ));
    }
    for seg in [PageSeg::Dirty, PageSeg::Writeback, PageSeg::Unstable] {
        if w.kernel.mem.seg_pages(seg) != 0 {
            return Err(format!("segment {seg:?} not drained"));
        }
    }
    match w.server.fs.size_of(&fh) {
        Ok(size) if size == max_end => Ok(()),
        Ok(size) => Err(format!("server has {size} bytes, client wrote {max_end}")),
        Err(e) => Err(format!("file missing on server: {e:?}")),
    }
}

/// A WRITE batch is one dense byte range on the wire. Two requests on
/// adjacent pages whose byte ranges do not touch (the first page is
/// partial) used to coalesce by page index, making the RPC deposit the
/// second request's bytes at the wrong offset.
#[test]
fn partial_page_hole_splits_the_write_batch() {
    let w = world(
        ClientTuning::full_patch(),
        ServerConfig::netapp_f85(),
        NicSpec::gigabit(),
    );
    let mount = Rc::clone(&w.mount);
    let server = Rc::clone(&w.server);
    w.sim.run_until(async move {
        let file = mount.create("holey").await.unwrap();
        // Page 0: bytes [0, 1024). Page 1: bytes [4096, 5120). Adjacent
        // pages, but a [1024, 4096) hole between the byte ranges.
        file.write(0, 1024).await.unwrap();
        file.write(4096, 1024).await.unwrap();
        file.fsync().await.unwrap();
        file.close().await.unwrap();
        assert_eq!(server.fs.size_of(&file.inode().fh).unwrap(), 5120);
    });
    assert_eq!(
        w.server.stats().writes, 2,
        "byte-discontiguous requests must go in separate WRITE RPCs"
    );
}
