//! The NFS mount: write path, RPC scheduling, `nfs_flushd`, COMMIT
//! handling, and the open-file object.
//!
//! This module is the paper's subject. The write path follows Linux
//! 2.4.4's `fs/nfs/write.c` step for step:
//!
//! - `generic_file_write` hands the file system one page at a time;
//!   `nfs_prepare_write`/`nfs_commit_write` run under the global kernel
//!   lock.
//! - `nfs_updatepage` searches the inode's request list twice per page —
//!   once for incompatible requests (`nfs_find_request`) and once inside
//!   `nfs_update_request` — then creates and indexes a new request.
//! - Requests cache on the inode; the writer itself sends nothing
//!   ("the client should cache as many requests as it can in available
//!   memory", §3.3). `nfs_flushd` writes behind: each `nfs_scan_list`
//!   step walks the request index under the kernel lock (O(n) with the
//!   stock list, O(1) with the paper's hash) and coalesces one `wsize`
//!   batch into an asynchronous WRITE RPC; it also issues COMMITs for
//!   unstable data.
//! - With the stock tuning, crossing `MAX_REQUEST_SOFT` forces the writer
//!   to schedule everything and *wait* (the Figure 2 spikes); crossing
//!   `MAX_REQUEST_HARD` per mount puts writers to sleep.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use nfsperf_kernel::{Kernel, PageSeg, SimFile, VfsError, VfsResult, PAGE_SIZE};
use nfsperf_net::{DatagramPayload, Path};
use nfsperf_nfs3::{
    Commit3Args, Commit3Res, Create3Args, Create3Res, CreateMode, NfsProc3, NfsStat3, Read3Args,
    Read3Res, Sattr3, Setattr3Args, Setattr3Res, StableHow, Write3Args, Write3Res, NFS_PROGRAM,
    NFS_V3,
};
use nfsperf_sim::{Counter, Receiver, SimDuration, WaitQueue};
use nfsperf_sunrpc::{Transport, Xprt, XprtConfig};
use nfsperf_xdr::{Decoder, XdrDecode};

use crate::inode::NfsInode;
use crate::request::{NfsPageReq, ReqState};
use crate::tuning::{ClientTuning, IndexKind, MAX_REQUEST_HARD, MAX_REQUEST_SOFT};

/// Mount options and client behaviour.
#[derive(Debug, Clone)]
pub struct MountConfig {
    /// Write transfer size (the paper mounts with `wsize=8192`).
    pub wsize: u32,
    /// Client behaviour switches.
    pub tuning: ClientTuning,
    /// RPC slot-table size.
    pub slots: usize,
    /// `nfs_flushd` wakeup interval. The default keeps the daemon's
    /// idle duty cycle at the historical 11 ms: scans used to run every
    /// 10 ms-park + 1 ms unconditional pacing tick, and the tick is now
    /// paid only on passes that find nothing to do.
    pub flushd_interval: SimDuration,
    /// COMMIT once this many unstable bytes accumulate.
    pub commit_threshold: u64,
    /// Per-inode request count forcing a synchronous flush when
    /// `tuning.sync_flush_limits` is on (2.4.4: 192).
    pub soft_limit: usize,
    /// Per-mount request count putting writers to sleep (2.4.4: 256).
    pub hard_limit: usize,
    /// RPC transport flavour (the paper's client mounts over UDP).
    pub transport: Transport,
}

impl Default for MountConfig {
    fn default() -> Self {
        MountConfig {
            wsize: 8192,
            tuning: ClientTuning::default(),
            slots: 16,
            flushd_interval: SimDuration::from_millis(11),
            commit_threshold: 1 << 20,
            soft_limit: MAX_REQUEST_SOFT,
            hard_limit: MAX_REQUEST_HARD,
            transport: Transport::Udp,
        }
    }
}

/// Aggregate client-side statistics for one mount.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MountStats {
    /// WRITE RPCs issued.
    pub write_rpcs: u64,
    /// COMMIT RPCs issued.
    pub commit_rpcs: u64,
    /// Soft-limit synchronous flushes the writer suffered.
    pub soft_limit_flushes: u64,
    /// Times a writer slept on the per-mount hard limit.
    pub hard_limit_sleeps: u64,
    /// Requests re-dirtied by a COMMIT verifier mismatch.
    pub verf_mismatches: u64,
    /// WRITE RPCs that failed (transport or server error).
    pub write_failures: u64,
}

/// A mounted NFS file system.
pub struct NfsMount {
    /// The client machine this mount lives on.
    pub kernel: Kernel,
    xprt: Rc<Xprt>,
    config: MountConfig,
    /// All inodes with write state, for `nfs_flushd`.
    inodes: RefCell<Vec<Rc<NfsInode>>>,
    /// Outstanding requests across the whole mount (hard-limit guard).
    mount_requests: Cell<usize>,
    hard_waiters: WaitQueue,
    write_rpcs: Counter,
    commit_rpcs: Counter,
    soft_flushes: Counter,
    hard_sleeps: Counter,
    verf_mismatches: Counter,
    write_failures: Counter,
}

impl NfsMount {
    /// Mounts the file system: builds the RPC transport on `path`/`rx`
    /// and spawns `nfs_flushd`.
    pub fn mount(
        kernel: &Kernel,
        path: Path,
        rx: Receiver<DatagramPayload>,
        config: MountConfig,
    ) -> Rc<NfsMount> {
        let xprt = Xprt::new(
            kernel,
            path,
            rx,
            NFS_PROGRAM,
            NFS_V3,
            XprtConfig {
                slots: config.slots,
                bkl_around_sendmsg: config.tuning.bkl_around_sendmsg,
                ..XprtConfig::default()
            },
            config.transport,
        );
        let mount = Rc::new(NfsMount {
            kernel: kernel.clone(),
            xprt,
            config,
            inodes: RefCell::new(Vec::new()),
            mount_requests: Cell::new(0),
            hard_waiters: WaitQueue::new(),
            write_rpcs: Counter::new(),
            commit_rpcs: Counter::new(),
            soft_flushes: Counter::new(),
            hard_sleeps: Counter::new(),
            verf_mismatches: Counter::new(),
            write_failures: Counter::new(),
        });
        let daemon = Rc::clone(&mount);
        kernel.sim.spawn(async move {
            daemon.nfs_flushd().await;
        });
        mount
    }

    /// Pages per WRITE RPC.
    fn wsize_pages(&self) -> usize {
        (u64::from(self.config.wsize) / PAGE_SIZE).max(1) as usize
    }

    /// Creates (or truncates) a file on the server and opens it.
    pub async fn create(self: &Rc<Self>, name: &str) -> VfsResult<NfsFile> {
        let args = Create3Args {
            dir: nfsperf_nfs3::FileHandle::for_fileid(nfsperf_server::ROOT_FILEID),
            name: name.to_owned(),
            mode: CreateMode::Unchecked,
            attrs: Sattr3 {
                mode: Some(0o644),
                size: None,
            },
        };
        let bytes = self
            .xprt
            .call(NfsProc3::Create as u32, &args)
            .await
            .map_err(|_| VfsError::Server(NfsStat3::Io as u32))?;
        let res = decode_as::<Create3Res>(&bytes)?;
        if res.status != NfsStat3::Ok {
            return Err(VfsError::Server(res.status as u32));
        }
        let fh = res.file.ok_or(VfsError::Server(NfsStat3::Io as u32))?;
        let inode = NfsInode::new(fh, self.config.tuning.index);
        self.inodes.borrow_mut().push(Rc::clone(&inode));
        Ok(NfsFile {
            mount: Rc::clone(self),
            inode,
            written: Cell::new(0),
            closed: Cell::new(false),
        })
    }

    /// Requests outstanding across the mount.
    pub fn outstanding_requests(&self) -> usize {
        self.mount_requests.get()
    }

    /// Snapshot of mount statistics.
    pub fn stats(&self) -> MountStats {
        MountStats {
            write_rpcs: self.write_rpcs.get(),
            commit_rpcs: self.commit_rpcs.get(),
            soft_limit_flushes: self.soft_flushes.get(),
            hard_limit_sleeps: self.hard_sleeps.get(),
            verf_mismatches: self.verf_mismatches.get(),
            write_failures: self.write_failures.get(),
        }
    }

    /// The RPC transport (for its statistics).
    pub fn xprt(&self) -> &Rc<Xprt> {
        &self.xprt
    }

    /// The mount configuration.
    pub fn config(&self) -> &MountConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Write scheduling.
    // ------------------------------------------------------------------

    /// Spawns WRITE RPCs for the given batches (asynchronous writeback).
    fn issue_batches(self: &Rc<Self>, inode: &Rc<NfsInode>, batches: Vec<Vec<Rc<NfsPageReq>>>) {
        for batch in batches {
            let mount = Rc::clone(self);
            let ino = Rc::clone(inode);
            self.kernel.sim.spawn(async move {
                mount.write_batch(&ino, batch).await;
            });
        }
    }

    /// Sends WRITE RPCs for a batch and applies the outcome. A batch is
    /// normally wsize-bounded and fits one RPC; anything whose byte sum
    /// would overflow the u32 wire count is split, never truncated.
    async fn write_batch(self: &Rc<Self>, inode: &Rc<NfsInode>, batch: Vec<Rc<NfsPageReq>>) {
        debug_assert!(!batch.is_empty());
        for chunk in split_rpc_batches(batch, MAX_RPC_IO_BYTES) {
            self.write_rpc(inode, chunk).await;
        }
    }

    /// Sends one WRITE RPC for a wire-legal chunk of requests.
    async fn write_rpc(self: &Rc<Self>, inode: &Rc<NfsInode>, batch: Vec<Rc<NfsPageReq>>) {
        let offset = batch[0].file_offset();
        let count: u64 = batch.iter().map(|r| r.len()).sum();
        debug_assert!(count <= MAX_RPC_IO_BYTES);
        self.write_rpcs.inc();
        let args = Write3Args::new(inode.fh, offset, count as u32, StableHow::Unstable);
        match self.xprt.call(NfsProc3::Write as u32, &args).await {
            Ok(bytes) => match decode_as::<Write3Res>(&bytes) {
                Ok(res) if res.status == NfsStat3::Ok => match res.committed {
                    StableHow::FileSync | StableHow::DataSync => {
                        self.complete_batch(inode, &batch);
                    }
                    StableHow::Unstable => {
                        // Pages stay pinned awaiting COMMIT — the memory
                        // model's contract; only the segment changes.
                        self.kernel
                            .mem
                            .move_pages(PageSeg::Writeback, PageSeg::Unstable, batch.len());
                        inode.batch_unstable(&batch, res.verf);
                    }
                },
                Ok(res) => {
                    // Server-side failure: drop the data, record the error
                    // for fsync/close (asynchronous write error semantics).
                    self.write_failures.inc();
                    inode.write_error.set(Some(res.status as u32));
                    self.complete_batch(inode, &batch);
                }
                Err(_) => {
                    self.write_failures.inc();
                    self.kernel
                        .mem
                        .move_pages(PageSeg::Writeback, PageSeg::Dirty, batch.len());
                    inode.batch_redirty(&batch);
                }
            },
            Err(_) => {
                // Transport gave up: leave the data dirty for retry.
                self.write_failures.inc();
                self.kernel
                    .mem
                    .move_pages(PageSeg::Writeback, PageSeg::Dirty, batch.len());
                inode.batch_redirty(&batch);
            }
        }
    }

    /// Finishes a batch whose data is durable: releases pages and mount
    /// accounting.
    ///
    /// Audit note (pinned-until-COMMIT contract): this runs only for
    /// stable (FILE_SYNC/DATA_SYNC) completions and for server-side
    /// write errors that drop the data — never for an UNSTABLE reply,
    /// which moves pages to the `Unstable` segment and keeps them pinned
    /// until `commit_inode_begun` confirms the verifier.
    fn complete_batch(&self, inode: &Rc<NfsInode>, batch: &[Rc<NfsPageReq>]) {
        for req in batch {
            let seg = req_seg(req.state());
            inode.finish_request(req);
            self.kernel.mem.release_pages(seg, 1);
            self.note_request_gone();
        }
    }

    fn note_request_created(&self) {
        self.mount_requests.set(self.mount_requests.get() + 1);
    }

    fn note_request_gone(&self) {
        let n = self.mount_requests.get();
        debug_assert!(n > 0);
        self.mount_requests.set(n - 1);
        if n - 1 < self.config.hard_limit {
            self.hard_waiters.wake_all();
        }
    }

    /// Sends a COMMIT for the inode's unstable data and completes the
    /// requests the verifier confirms.
    async fn commit_inode(self: &Rc<Self>, inode: &Rc<NfsInode>) {
        if inode.unstable_requests() == 0 || !inode.begin_commit() {
            return;
        }
        self.commit_inode_begun(inode).await;
    }

    /// Body of a COMMIT whose in-flight slot (`begin_commit`) the caller
    /// already claimed — `nfs_flushd` claims it before spawning so the
    /// very next scan pass sees the commit as in flight.
    async fn commit_inode_begun(self: &Rc<Self>, inode: &Rc<NfsInode>) {
        if inode.unstable_requests() == 0 {
            inode.end_commit();
            return;
        }
        let snapshot = inode.unstable_snapshot();
        self.commit_rpcs.inc();
        let args = Commit3Args {
            file: inode.fh,
            offset: 0,
            count: 0,
        };
        let outcome = self.xprt.call(NfsProc3::Commit as u32, &args).await;
        match outcome {
            Ok(bytes) => {
                if let Ok(res) = decode_as::<Commit3Res>(&bytes) {
                    if res.status == NfsStat3::Ok {
                        for req in &snapshot {
                            if req.state() != crate::request::ReqState::Unstable {
                                continue;
                            }
                            if req.verf() == res.verf {
                                // COMMIT confirmed: the page's unstable
                                // pin finally drops.
                                inode.finish_request(req);
                                self.kernel.mem.release_pages(PageSeg::Unstable, 1);
                                self.note_request_gone();
                            } else {
                                // Server rebooted: data may be lost, send
                                // it again. The request goes back to the
                                // dirty list in place (as a failed WRITE
                                // does) — recreating it would collide with
                                // writers coalescing into it mid-COMMIT
                                // and corrupt the unstable accounting.
                                self.verf_mismatches.inc();
                                self.kernel
                                    .mem
                                    .move_pages(PageSeg::Unstable, PageSeg::Dirty, 1);
                                inode.redirty_unstable(req);
                            }
                        }
                    } else {
                        inode.write_error.set(Some(res.status as u32));
                    }
                }
            }
            Err(_) => {
                // Leave requests unstable; a later COMMIT retries.
            }
        }
        inode.end_commit();
    }

    /// Should this inode be committed now?
    fn wants_commit(&self, inode: &NfsInode) -> bool {
        inode.unstable_requests() > 0
            && !inode.commit_in_flight()
            && (inode.unstable_bytes() >= self.config.commit_threshold
                || (inode.dirty_requests() == 0 && inode.writeback_requests() == 0))
    }

    // ------------------------------------------------------------------
    // nfs_flushd.
    // ------------------------------------------------------------------

    /// The write-behind daemon: ages out partial batches and issues
    /// COMMITs. Holds the global kernel lock while scanning, as the 2.4
    /// daemon does whenever it is awake and flushing.
    async fn nfs_flushd(self: Rc<Self>) {
        loop {
            self.kernel
                .mem
                .wait_for_writeback_work(self.config.flushd_interval)
                .await;
            let inodes: Vec<Rc<NfsInode>> = self.inodes.borrow().clone();
            let mut progress = 0;
            for inode in &inodes {
                progress += self.schedule_dirty(inode, "nfs_flushd").await;
            }
            for inode in &inodes {
                // Claim the commit slot *before* spawning: the spawned
                // task cannot run until this pass yields, and without the
                // claim the daemon would re-spawn the same COMMIT (and
                // count it as progress) every pass until it did.
                if self.wants_commit(inode) && inode.begin_commit() {
                    progress += 1;
                    let mount = Rc::clone(&self);
                    let ino = Rc::clone(inode);
                    self.kernel.sim.spawn(async move {
                        mount.commit_inode_begun(&ino).await;
                    });
                }
            }
            // Pace the daemon only when a pass found nothing to do:
            // `wait_for_writeback_work` returns immediately while memory
            // sits over the background limit, and with everything already
            // in flight the daemon would spin without advancing simulated
            // time. On a productive pass the tick would be pure added
            // writeback latency, so it goes straight back to scanning.
            if progress == 0 {
                self.kernel.sim.sleep(SimDuration::from_millis(1)).await;
            }
        }
    }

    // ------------------------------------------------------------------
    // The write() system call path.
    // ------------------------------------------------------------------

    /// `nfs_updatepage` for one page segment: the double request-list
    /// search, request creation, and cost accounting.
    async fn nfs_updatepage(
        self: &Rc<Self>,
        inode: &Rc<NfsInode>,
        seg: nfsperf_kernel::PageSegment,
    ) {
        let kernel = &self.kernel;
        let costs = &kernel.costs;

        // nfs_prepare_write / nfs_commit_write bracket the copy under the
        // global kernel lock.
        {
            let _bkl = kernel.bkl.lock("nfs_commit_write").await;
            kernel
                .cpus
                .work("nfs_commit_write", costs.commit_write_locked)
                .await;
        }
        // Copy the user data into the page cache.
        kernel
            .cpus
            .work("generic_file_write", costs.page_copy)
            .await;

        // First search: nfs_find_request looks for an incompatible
        // request that would have to be flushed first.
        let lookup = inode.index.borrow().find(seg.index);
        self.charge_index_walk("nfs_find_request", lookup.scanned)
            .await;

        if let Some(existing) = lookup.found {
            // Second search happens inside nfs_update_request as well;
            // on a hit it is equally long.
            self.charge_index_walk("nfs_update_request", lookup.scanned)
                .await;
            if existing.merge(seg.offset_in_page, seg.len) {
                // Coalesced into the existing request. If its WRITE had
                // already completed UNSTABLE, the grown range must reach
                // the server again: back to the dirty list (keeping its
                // index slot and accounting consistent).
                if existing.state() == ReqState::Unstable {
                    self.kernel
                        .mem
                        .move_pages(PageSeg::Unstable, PageSeg::Dirty, 1);
                    inode.redirty_unstable(&existing);
                }
                return;
            }
            // Incompatible request on the same page: it must be flushed
            // before the current write proceeds (rare; never on the
            // sequential benchmark path).
            self.flush_and_wait(inode).await;
        }

        // Create and index the new request. With foreground throttling a
        // writer over the dirty ratio first does writeback work itself;
        // otherwise (2.4 semantics) it parks on the hard limit inside
        // `pin_dirty_page` until the daemons free pages.
        if self.config.tuning.fg_throttle {
            self.balance_dirty_pages(inode).await;
        }
        kernel.mem.pin_dirty_page().await;
        kernel
            .cpus
            .work("nfs_update_request", costs.request_setup)
            .await;
        let req = NfsPageReq::new(seg.index, seg.offset_in_page, seg.len, kernel.sim.now());
        // Index insertion and count bookkeeping must be atomic with
        // respect to `nfs_flushd` (no await between them), or the daemon
        // can schedule the request before it is accounted for.
        let walked = inode.index.borrow_mut().insert(req);
        inode.note_created(seg.index);
        self.note_request_created();
        self.charge_index_walk("nfs_update_request", walked).await;
    }

    /// `balance_dirty_pages`-style foreground throttling: while the
    /// pinned total sits at the dirty ratio, the writer schedules write
    /// batches itself (paying the same scan/flush costs as the daemon)
    /// and waits for completions instead of parking blind on the hard
    /// limit. Throughput therefore degrades gradually to server speed:
    /// each page the writer dirties over the ratio costs it one round of
    /// its own writeback work.
    async fn balance_dirty_pages(self: &Rc<Self>, inode: &Rc<NfsInode>) {
        let mem = &self.kernel.mem;
        if !mem.over_hard_limit() {
            return;
        }
        mem.note_throttle_event();
        mem.kick_writeback();
        let began = self.kernel.sim.now();
        self.kernel
            .cpus
            .work(
                "balance_dirty_pages",
                self.kernel.costs.balance_dirty_pages,
            )
            .await;
        while mem.over_hard_limit() {
            if inode.dirty_requests() > 0 {
                if let Some(batch) = self.schedule_one_batch(inode, "balance_dirty_pages").await {
                    self.issue_batches(inode, vec![batch]);
                    continue;
                }
            }
            if inode.total_requests() == 0 {
                // Nothing of ours left in flight: the pressure is other
                // files'/mounts' pages. Fall back to the throttled pin.
                break;
            }
            if self.wants_commit(inode) {
                let mount = Rc::clone(self);
                let ino = Rc::clone(inode);
                self.kernel.sim.spawn(async move {
                    mount.commit_inode(&ino).await;
                });
            }
            inode.completion.wait().await;
        }
        mem.add_throttle_time(self.kernel.sim.now().since(began));
    }

    /// Charges the CPU for an index walk (list scan or hash probe).
    async fn charge_index_walk(&self, label: &'static str, scanned: usize) {
        let cost = match self.config.tuning.index {
            IndexKind::SortedList => self.kernel.costs.list_scan(scanned),
            IndexKind::HashTable => self.kernel.costs.hash_op,
        };
        self.kernel.cpus.work_exact(label, cost).await;
    }

    /// The stock client's post-write limit checks (`nfs_strategy` tail).
    async fn enforce_limits(self: &Rc<Self>, inode: &Rc<NfsInode>) {
        if !self.config.tuning.sync_flush_limits {
            return;
        }
        if inode.total_requests() > self.config.soft_limit {
            // Schedule *everything* and wait for it all to drain — the
            // Figure 2 latency spike.
            self.soft_flushes.inc();
            self.flush_and_wait(inode).await;
        }
        if self.mount_requests.get() > self.config.hard_limit {
            self.hard_sleeps.inc();
            while self.mount_requests.get() > self.config.hard_limit {
                self.hard_waiters.wait().await;
            }
        }
    }

    /// Schedules every dirty request on the inode, one `nfs_scan_list`
    /// step per batch: each step walks the request index (O(n) with the
    /// stock list, O(1) with the paper's hash table) under the global
    /// kernel lock before the batch goes to the RPC layer.
    ///
    /// This per-batch walk is the scheduler-side twin of the writer's
    /// `nfs_find_request` pathology: with a long list the write-behind
    /// daemon spends its time scanning rather than sending, which is why
    /// writeback falls further and further behind in the Figure 3
    /// configuration.
    async fn schedule_dirty(
        self: &Rc<Self>,
        inode: &Rc<NfsInode>,
        label: &'static str,
    ) -> usize {
        let mut issued = 0;
        while inode.dirty_requests() > 0 {
            match self.schedule_one_batch(inode, label).await {
                Some(batch) => {
                    issued += 1;
                    self.issue_batches(inode, vec![batch]);
                }
                None => break,
            }
        }
        issued
    }

    /// One `nfs_scan_list` step: walks the request index under the
    /// global kernel lock, pays the scan and flush-setup costs, and takes
    /// the first wsize run of dirty requests, moving its pages to the
    /// `Writeback` segment. The caller sends the batch.
    async fn schedule_one_batch(
        self: &Rc<Self>,
        inode: &Rc<NfsInode>,
        label: &'static str,
    ) -> Option<Vec<Rc<NfsPageReq>>> {
        let _bkl = self.kernel.bkl.lock(label).await;
        let scan_cost = match self.config.tuning.index {
            IndexKind::SortedList => self.kernel.costs.list_scan(inode.index.borrow().len()),
            IndexKind::HashTable => self.kernel.costs.hash_op,
        };
        self.kernel
            .cpus
            .work_exact("nfs_scan_list", scan_cost)
            .await;
        self.kernel
            .cpus
            .work("nfs_flush_one", self.kernel.costs.flush_setup)
            .await;
        let batch = inode.take_first_dirty_batch(self.wsize_pages());
        if let Some(batch) = &batch {
            self.kernel
                .mem
                .move_pages(PageSeg::Dirty, PageSeg::Writeback, batch.len());
        }
        batch
    }

    /// Schedules all dirty data and waits until every request (including
    /// unstable ones) has completed — `nfs_wb_all`.
    async fn flush_and_wait(self: &Rc<Self>, inode: &Rc<NfsInode>) {
        loop {
            if inode.dirty_requests() > 0 {
                self.schedule_dirty(inode, "nfs_strategy").await;
            }
            if inode.total_requests() == 0 {
                return;
            }
            if self.wants_commit(inode) {
                let mount = Rc::clone(self);
                let ino = Rc::clone(inode);
                self.kernel.sim.spawn(async move {
                    mount.commit_inode(&ino).await;
                });
            }
            inode.completion.wait().await;
        }
    }
}

/// The memory-model segment a request's pinned page lives in.
fn req_seg(state: ReqState) -> PageSeg {
    match state {
        ReqState::Dirty => PageSeg::Dirty,
        ReqState::Writeback => PageSeg::Writeback,
        ReqState::Unstable => PageSeg::Unstable,
    }
}

/// Decodes an XDR result body.
fn decode_as<T: XdrDecode>(bytes: &[u8]) -> Result<T, VfsError> {
    let mut dec = Decoder::new(bytes);
    T::decode(&mut dec).map_err(|_| VfsError::Server(NfsStat3::Io as u32))
}

/// Largest byte count a single READ or WRITE RPC may carry: NFSv3 puts
/// counts in a `u32` on the wire (RFC 1813 §3.3.7), so larger transfers
/// must be split across RPCs instead of silently truncated by a cast.
pub const MAX_RPC_IO_BYTES: u64 = 1 << 30;

/// Splits a batch into sub-batches whose byte sums each fit in one WRITE
/// RPC of at most `cap` bytes. Batches are wsize-bounded in practice, so
/// outside pathological configurations this yields exactly one chunk.
fn split_rpc_batches(batch: Vec<Rc<NfsPageReq>>, cap: u64) -> Vec<Vec<Rc<NfsPageReq>>> {
    let mut chunks = Vec::new();
    let mut chunk: Vec<Rc<NfsPageReq>> = Vec::new();
    let mut bytes = 0u64;
    for req in batch {
        if !chunk.is_empty() && bytes + req.len() > cap {
            chunks.push(std::mem::take(&mut chunk));
            bytes = 0;
        }
        bytes += req.len();
        chunk.push(req);
    }
    if !chunk.is_empty() {
        chunks.push(chunk);
    }
    chunks
}

/// An open NFS file.
pub struct NfsFile {
    mount: Rc<NfsMount>,
    inode: Rc<NfsInode>,
    written: Cell<u64>,
    closed: Cell<bool>,
}

impl NfsFile {
    /// The mount this file belongs to.
    pub fn mount(&self) -> &Rc<NfsMount> {
        &self.mount
    }

    /// The file's client-side write state (for instrumentation).
    pub fn inode(&self) -> &Rc<NfsInode> {
        &self.inode
    }

    /// Reads `len` bytes at `offset` from the server, returning bytes
    /// actually read (short at end of file).
    ///
    /// The benchmark is write-only, so reads take the simple path: any
    /// dirty data is flushed first (write-then-read consistency), then
    /// the data comes straight from the server — the 2.4 read cache is
    /// out of scope for this reproduction.
    pub async fn read(&self, offset: u64, len: u64) -> VfsResult<u64> {
        if self.closed.get() {
            return Err(VfsError::Closed);
        }
        if self.inode.total_requests() > 0 {
            self.mount.flush_and_wait(&self.inode).await;
        }
        let kernel = &self.mount.kernel;
        kernel
            .cpus
            .work("sys_read", kernel.costs.write_syscall_fixed)
            .await;
        // NFSv3 READ counts are u32 on the wire: a transfer past 4 GiB
        // takes several RPCs (a cast would turn a 4 GiB read into a
        // zero-byte request).
        let mut total = 0u64;
        while total < len {
            let ask = (len - total).min(MAX_RPC_IO_BYTES) as u32;
            let args = Read3Args {
                file: self.inode.fh,
                offset: offset + total,
                count: ask,
            };
            let bytes = self
                .mount
                .xprt
                .call(NfsProc3::Read as u32, &args)
                .await
                .map_err(|_| VfsError::Server(NfsStat3::Io as u32))?;
            let res = decode_as::<Read3Res>(&bytes)?;
            if res.status != NfsStat3::Ok {
                return Err(VfsError::Server(res.status as u32));
            }
            // Copy the returned data into user space.
            for _seg in nfsperf_kernel::split_into_pages(offset + total, u64::from(res.count)) {
                kernel
                    .cpus
                    .work("generic_file_read", kernel.costs.page_copy)
                    .await;
            }
            total += u64::from(res.count);
            if res.eof || res.count < ask {
                break;
            }
        }
        Ok(total)
    }

    /// Truncates the file to `size` via SETATTR (flushing dirty data
    /// first).
    pub async fn truncate(&self, size: u64) -> VfsResult<()> {
        if self.closed.get() {
            return Err(VfsError::Closed);
        }
        if self.inode.total_requests() > 0 {
            self.mount.flush_and_wait(&self.inode).await;
        }
        let args = Setattr3Args {
            file: self.inode.fh,
            attrs: Sattr3 {
                mode: None,
                size: Some(size),
            },
        };
        let bytes = self
            .mount
            .xprt
            .call(NfsProc3::Setattr as u32, &args)
            .await
            .map_err(|_| VfsError::Server(NfsStat3::Io as u32))?;
        let res = decode_as::<Setattr3Res>(&bytes)?;
        if res.status != NfsStat3::Ok {
            return Err(VfsError::Server(res.status as u32));
        }
        Ok(())
    }

    fn check_error(&self) -> VfsResult<()> {
        match self.inode.write_error.get() {
            Some(status) => Err(VfsError::Server(status)),
            None => Ok(()),
        }
    }
}

impl SimFile for NfsFile {
    async fn write(&self, offset: u64, len: u64) -> VfsResult<u64> {
        if self.closed.get() {
            return Err(VfsError::Closed);
        }
        let kernel = &self.mount.kernel;
        kernel
            .cpus
            .work("sys_write", kernel.costs.write_syscall_fixed)
            .await;
        for seg in nfsperf_kernel::split_into_pages(offset, len) {
            self.mount.nfs_updatepage(&self.inode, seg).await;
        }
        self.inode.grow_size(offset + len);

        // The writer itself schedules no RPCs: requests cache on the
        // inode and `nfs_flushd` writes behind (paper §3.3: "the client
        // should cache as many requests as it can in available memory").
        // Only the stock limit checks below force synchronous flushing.
        self.mount.enforce_limits(&self.inode).await;
        self.written.set(self.written.get() + len);
        Ok(len)
    }

    async fn fsync(&self) -> VfsResult<()> {
        if self.closed.get() {
            return Err(VfsError::Closed);
        }
        self.mount.flush_and_wait(&self.inode).await;
        self.check_error()
    }

    async fn close(&self) -> VfsResult<()> {
        if self.closed.get() {
            return Ok(());
        }
        // NFS flushes completely before the last close.
        self.mount.flush_and_wait(&self.inode).await;
        self.closed.set(true);
        self.check_error()
    }

    fn bytes_written(&self) -> u64 {
        self.written.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::SimTime;

    fn reqs(lens: &[u64]) -> Vec<Rc<NfsPageReq>> {
        lens.iter()
            .enumerate()
            .map(|(i, &len)| NfsPageReq::new(i as u64, 0, len, SimTime::ZERO))
            .collect()
    }

    #[test]
    fn split_keeps_small_batches_whole() {
        let chunks = split_rpc_batches(reqs(&[4096, 4096]), MAX_RPC_IO_BYTES);
        assert_eq!(chunks.len(), 1, "a wsize batch is one RPC");
        assert_eq!(chunks[0].len(), 2);
    }

    #[test]
    fn split_respects_cap_boundary() {
        // Three page-sized requests against a two-page cap: 2 + 1.
        let chunks = split_rpc_batches(reqs(&[4096, 4096, 4096]), 8192);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[1].len(), 1);
        // An exact fit does not spill.
        let chunks = split_rpc_batches(reqs(&[4096, 4096]), 8192);
        assert_eq!(chunks.len(), 1);
    }

    #[test]
    fn split_never_drops_bytes_past_u32() {
        // A batch summing past u32::MAX must split so each chunk's count
        // survives the wire cast.
        let lens = vec![4096u64; 6];
        let chunks = split_rpc_batches(reqs(&lens), 3 * 4096);
        let total: u64 = chunks.iter().flatten().map(|r| r.len()).sum();
        assert_eq!(total, 6 * 4096);
        for chunk in &chunks {
            let count: u64 = chunk.iter().map(|r| r.len()).sum();
            assert!(count <= 3 * 4096);
        }
    }

    #[test]
    fn rpc_cap_fits_the_wire() {
        assert!(MAX_RPC_IO_BYTES <= u64::from(u32::MAX));
    }
}
