//! Per-inode NFS write state: request accounting, coalescing into RPC
//! batches, and completion tracking.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use nfsperf_nfs3::{FileHandle, WriteVerf};
use nfsperf_sim::WaitQueue;

use crate::index::RequestIndex;
use crate::request::{NfsPageReq, ReqState};
use crate::tuning::IndexKind;

/// Client-side write state for one NFS file.
pub struct NfsInode {
    /// The server's handle for this file.
    pub fh: FileHandle,
    /// Outstanding request index (list and/or hash).
    pub index: RefCell<RequestIndex>,
    dirty: Cell<usize>,
    /// No request with `page_index` below this is in `Dirty` state.
    ///
    /// Pure host-CPU hint: dirty scans start here instead of walking the
    /// leading writeback/unstable entries every call. Lowered whenever a
    /// request (re)enters `Dirty`, raised only once a scan has proven the
    /// prefix clean. Never affects which requests a scan returns, so
    /// simulation output is unchanged.
    dirty_floor: Cell<u64>,
    writeback: Cell<usize>,
    unstable: Cell<usize>,
    unstable_bytes: Cell<u64>,
    /// Woken whenever a request completes or changes state.
    pub completion: WaitQueue,
    commit_in_flight: Cell<bool>,
    /// Sticky asynchronous write error, reported at fsync/close.
    pub write_error: Cell<Option<u32>>,
    size: Cell<u64>,
}

impl NfsInode {
    /// Creates the write state for a freshly opened file.
    pub fn new(fh: FileHandle, kind: IndexKind) -> Rc<NfsInode> {
        Rc::new(NfsInode {
            fh,
            index: RefCell::new(RequestIndex::new(kind)),
            dirty: Cell::new(0),
            dirty_floor: Cell::new(0),
            writeback: Cell::new(0),
            unstable: Cell::new(0),
            unstable_bytes: Cell::new(0),
            completion: WaitQueue::new(),
            commit_in_flight: Cell::new(false),
            write_error: Cell::new(None),
            size: Cell::new(0),
        })
    }

    /// Requests in every state (the count `MAX_REQUEST_SOFT` guards).
    pub fn total_requests(&self) -> usize {
        self.dirty.get() + self.writeback.get() + self.unstable.get()
    }

    /// Requests dirty and not yet scheduled.
    pub fn dirty_requests(&self) -> usize {
        self.dirty.get()
    }

    /// Requests inside in-flight WRITE RPCs.
    pub fn writeback_requests(&self) -> usize {
        self.writeback.get()
    }

    /// Requests written UNSTABLE and awaiting COMMIT.
    pub fn unstable_requests(&self) -> usize {
        self.unstable.get()
    }

    /// Bytes awaiting COMMIT.
    pub fn unstable_bytes(&self) -> u64 {
        self.unstable_bytes.get()
    }

    /// Records a brand-new dirty request at `page_index`.
    pub fn note_created(&self, page_index: u64) {
        self.dirty.set(self.dirty.get() + 1);
        self.lower_dirty_floor(page_index);
    }

    /// A request at `page_index` (re)entered `Dirty`: the scan floor may
    /// no longer skip past it.
    fn lower_dirty_floor(&self, page_index: u64) {
        if page_index < self.dirty_floor.get() {
            self.dirty_floor.set(page_index);
        }
    }

    /// Observed file size (local view).
    pub fn size(&self) -> u64 {
        self.size.get()
    }

    /// Extends the local size view.
    pub fn grow_size(&self, to: u64) {
        self.size.set(self.size.get().max(to));
    }

    /// Takes batches of contiguous dirty requests, each at most
    /// `wsize_pages` pages, marking them writeback.
    ///
    /// With `only_full` set, trailing partial batches are left dirty for
    /// the write-behind daemon to age out — this is `nfs_strategy`'s
    /// behaviour on the hot path.
    pub fn take_dirty_batches(
        &self,
        wsize_pages: usize,
        only_full: bool,
    ) -> Vec<Vec<Rc<NfsPageReq>>> {
        let index = self.index.borrow();
        let mut batches: Vec<Vec<Rc<NfsPageReq>>> = Vec::new();
        let mut run: Vec<Rc<NfsPageReq>> = Vec::new();
        for req in index.iter_from(self.dirty_floor.get()) {
            if req.state() != ReqState::Dirty {
                continue;
            }
            let contiguous = run
                .last()
                .is_none_or(|last| last.file_offset() + last.len() == req.file_offset());
            if (!contiguous || run.len() == wsize_pages) && !run.is_empty() {
                batches.push(std::mem::take(&mut run));
            }
            run.push(Rc::clone(req));
            if run.len() == wsize_pages {
                batches.push(std::mem::take(&mut run));
            }
        }
        // Everything dirty up to the leftover partial run (if any) is
        // about to become writeback.
        self.dirty_floor.set(if only_full {
            run.first().map_or(u64::MAX, |r| r.page_index)
        } else {
            u64::MAX
        });
        if !run.is_empty() && !only_full {
            batches.push(run);
        }
        drop(index);
        for batch in &batches {
            for req in batch {
                req.mark_writeback();
                self.dirty.set(self.dirty.get() - 1);
                self.writeback.set(self.writeback.get() + 1);
            }
        }
        batches
    }

    /// Takes the first run of contiguous dirty requests (at most
    /// `wsize_pages` pages), marking it writeback — one `nfs_scan_list`
    /// step: the caller pays for one walk of the index per call.
    ///
    /// Contiguity is in bytes, not page indexes: a WRITE RPC covers one
    /// dense `[offset, offset+count)` range, so a partial page interior
    /// to a run (a byte hole behind an adjacent page) must end the batch.
    pub fn take_first_dirty_batch(&self, wsize_pages: usize) -> Option<Vec<Rc<NfsPageReq>>> {
        let index = self.index.borrow();
        let mut run: Vec<Rc<NfsPageReq>> = Vec::new();
        for req in index.iter_from(self.dirty_floor.get()) {
            if req.state() != ReqState::Dirty {
                continue;
            }
            let contiguous = run
                .last()
                .is_none_or(|last| last.file_offset() + last.len() == req.file_offset());
            if !contiguous || run.len() == wsize_pages {
                break;
            }
            run.push(Rc::clone(req));
        }
        drop(index);
        if run.is_empty() {
            // Proven: nothing is dirty anywhere (nothing below the floor
            // by invariant, nothing at or above it by this scan).
            self.dirty_floor.set(u64::MAX);
            return None;
        }
        // The run becomes writeback and everything before it was scanned
        // non-dirty: the floor moves past the run.
        self.dirty_floor
            .set(run.last().map_or(u64::MAX, |r| r.page_index + 1));
        for req in &run {
            req.mark_writeback();
            self.dirty.set(self.dirty.get() - 1);
            self.writeback.set(self.writeback.get() + 1);
        }
        Some(run)
    }

    /// Transitions a batch to UNSTABLE after an unstable WRITE reply.
    pub fn batch_unstable(&self, batch: &[Rc<NfsPageReq>], verf: WriteVerf) {
        for req in batch {
            req.mark_unstable(verf);
            self.writeback.set(self.writeback.get() - 1);
            self.unstable.set(self.unstable.get() + 1);
            self.unstable_bytes
                .set(self.unstable_bytes.get() + req.unstable_len());
        }
        self.completion.wake_all();
    }

    /// Returns a failed batch to dirty for retry.
    pub fn batch_redirty(&self, batch: &[Rc<NfsPageReq>]) {
        for req in batch {
            req.mark_dirty_again();
            self.lower_dirty_floor(req.page_index);
            self.writeback.set(self.writeback.get() - 1);
            self.dirty.set(self.dirty.get() + 1);
        }
        self.completion.wake_all();
    }

    /// Finishes one request (durable at the server): removes it from the
    /// index. The caller releases the page and mount accounting.
    pub fn finish_request(&self, req: &Rc<NfsPageReq>) {
        match req.state() {
            ReqState::Writeback => self.writeback.set(self.writeback.get() - 1),
            ReqState::Unstable => {
                self.unstable.set(self.unstable.get() - 1);
                // Subtract what was *recorded* unstable, not the current
                // length — a writer may have merge-grown the request since
                // its WRITE completed.
                self.unstable_bytes
                    .set(self.unstable_bytes.get() - req.unstable_len());
            }
            ReqState::Dirty => self.dirty.set(self.dirty.get() - 1),
        }
        self.index.borrow_mut().remove(req.page_index);
        self.completion.wake_all();
    }

    /// Returns one UNSTABLE request to dirty so its (possibly re-grown)
    /// data is sent again — COMMIT verifier mismatch, or new bytes landing
    /// on a page whose WRITE already completed. The request keeps its
    /// index slot, so concurrent writers keep coalescing into it instead
    /// of colliding with a hand-rolled replacement.
    pub fn redirty_unstable(&self, req: &Rc<NfsPageReq>) {
        debug_assert_eq!(req.state(), ReqState::Unstable);
        self.unstable.set(self.unstable.get() - 1);
        self.unstable_bytes
            .set(self.unstable_bytes.get() - req.unstable_len());
        req.mark_dirty_again();
        self.lower_dirty_floor(req.page_index);
        self.dirty.set(self.dirty.get() + 1);
        self.completion.wake_all();
    }

    /// Snapshot of requests currently in UNSTABLE state (for COMMIT).
    pub fn unstable_snapshot(&self) -> Vec<Rc<NfsPageReq>> {
        self.index
            .borrow()
            .iter()
            .filter(|r| r.state() == ReqState::Unstable)
            .map(Rc::clone)
            .collect()
    }

    /// Marks a COMMIT in flight; returns `false` if one already is.
    pub fn begin_commit(&self) -> bool {
        if self.commit_in_flight.get() {
            return false;
        }
        self.commit_in_flight.set(true);
        true
    }

    /// Clears the COMMIT-in-flight mark.
    pub fn end_commit(&self) {
        self.commit_in_flight.set(false);
        self.completion.wake_all();
    }

    /// Returns `true` while a COMMIT RPC is outstanding.
    pub fn commit_in_flight(&self) -> bool {
        self.commit_in_flight.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::SimTime;

    fn inode() -> Rc<NfsInode> {
        NfsInode::new(FileHandle::for_fileid(7), IndexKind::SortedList)
    }

    fn add_dirty(ino: &NfsInode, pages: std::ops::Range<u64>) {
        for p in pages {
            let req = NfsPageReq::new(p, 0, 4096, SimTime::ZERO);
            ino.index.borrow_mut().insert(req);
            ino.note_created(p);
        }
    }

    #[test]
    fn counts_track_states() {
        let ino = inode();
        add_dirty(&ino, 0..4);
        assert_eq!(ino.total_requests(), 4);
        assert_eq!(ino.dirty_requests(), 4);

        let batches = ino.take_dirty_batches(2, false);
        assert_eq!(batches.len(), 2);
        assert_eq!(ino.dirty_requests(), 0);
        assert_eq!(ino.writeback_requests(), 4);

        ino.batch_unstable(&batches[0], WriteVerf(1));
        assert_eq!(ino.unstable_requests(), 2);
        assert_eq!(ino.unstable_bytes(), 8192);

        for req in &batches[1] {
            ino.finish_request(req);
        }
        assert_eq!(ino.writeback_requests(), 0);
        assert_eq!(ino.total_requests(), 2);

        for req in &batches[0] {
            ino.finish_request(req);
        }
        assert_eq!(ino.total_requests(), 0);
        assert_eq!(ino.unstable_bytes(), 0);
        assert!(ino.index.borrow().is_empty());
    }

    #[test]
    fn batches_split_at_wsize_and_gaps() {
        let ino = inode();
        add_dirty(&ino, 0..5); // pages 0-4
        add_dirty(&ino, 10..12); // gap, then pages 10-11
        let batches = ino.take_dirty_batches(2, false);
        let shapes: Vec<Vec<u64>> = batches
            .iter()
            .map(|b| b.iter().map(|r| r.page_index).collect())
            .collect();
        assert_eq!(
            shapes,
            vec![vec![0, 1], vec![2, 3], vec![4], vec![10, 11]],
            "contiguous runs cut at wsize, gaps split batches"
        );
    }

    #[test]
    fn only_full_leaves_partial_tail_dirty() {
        let ino = inode();
        add_dirty(&ino, 0..5);
        let batches = ino.take_dirty_batches(2, true);
        assert_eq!(batches.len(), 2, "two full batches taken");
        assert_eq!(ino.dirty_requests(), 1, "page 4 stays dirty");
        assert_eq!(ino.writeback_requests(), 4);
    }

    #[test]
    fn redirty_returns_requests() {
        let ino = inode();
        add_dirty(&ino, 0..2);
        let batches = ino.take_dirty_batches(2, false);
        ino.batch_redirty(&batches[0]);
        assert_eq!(ino.dirty_requests(), 2);
        assert_eq!(ino.writeback_requests(), 0);
        // They can be taken again.
        let again = ino.take_dirty_batches(2, false);
        assert_eq!(again.len(), 1);
    }

    #[test]
    fn commit_in_flight_is_exclusive() {
        let ino = inode();
        assert!(ino.begin_commit());
        assert!(!ino.begin_commit(), "second commit refused");
        assert!(ino.commit_in_flight());
        ino.end_commit();
        assert!(ino.begin_commit());
    }

    #[test]
    fn unstable_snapshot_filters_state() {
        let ino = inode();
        add_dirty(&ino, 0..4);
        let batches = ino.take_dirty_batches(2, false);
        ino.batch_unstable(&batches[0], WriteVerf(9));
        let snap = ino.unstable_snapshot();
        let pages: Vec<u64> = snap.iter().map(|r| r.page_index).collect();
        assert_eq!(pages, vec![0, 1]);
    }

    #[test]
    fn size_grows_monotonically() {
        let ino = inode();
        ino.grow_size(100);
        ino.grow_size(50);
        assert_eq!(ino.size(), 100);
    }
}
