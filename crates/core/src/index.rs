//! The per-inode request index: sorted list (2.4.4) and hash table (the
//! paper's fix).
//!
//! The 2.4.4 client keeps an inode's write requests on a list sorted by
//! page offset; `_nfs_find_request` walks it linearly. A sequential
//! writer looks up a page that is never there, walks the *whole* list,
//! and appends at the end — Figure 3's linear latency growth. The paper's
//! hash table keyed by page offset makes the lookup O(1) at a cost of
//! eight bytes per request and eight per inode.
//!
//! [`RequestIndex::find`] and friends return the number of list entries
//! actually walked so the caller can charge honest CPU time; the walk is
//! performed for real, not assumed.

use std::collections::HashMap;
use std::rc::Rc;

use crate::request::NfsPageReq;
use crate::tuning::IndexKind;

/// The index over one inode's outstanding requests.
pub struct RequestIndex {
    /// Requests ordered by page index (the 2.4 list; always maintained).
    list: Vec<Rc<NfsPageReq>>,
    /// The paper's supplementary hash table, present when enabled.
    hash: Option<HashMap<u64, Rc<NfsPageReq>>>,
}

/// Result of an index operation: what was found plus the walk length to
/// charge.
pub struct Lookup {
    /// The matching request, if one exists.
    pub found: Option<Rc<NfsPageReq>>,
    /// List entries walked (zero when the hash table answered).
    pub scanned: usize,
}

impl RequestIndex {
    /// Creates an empty index of the given kind.
    pub fn new(kind: IndexKind) -> RequestIndex {
        RequestIndex {
            list: Vec::new(),
            hash: match kind {
                IndexKind::SortedList => None,
                IndexKind::HashTable => Some(HashMap::new()),
            },
        }
    }

    /// Looks up the request covering `page_index`.
    ///
    /// With the hash table this is one bucket probe; with the plain list
    /// it walks entries in page order until it finds the page or proves
    /// absence (passing the insertion point), exactly as
    /// `_nfs_find_request` does.
    pub fn find(&self, page_index: u64) -> Lookup {
        if let Some(hash) = &self.hash {
            return Lookup {
                found: hash.get(&page_index).cloned(),
                scanned: 0,
            };
        }
        let mut scanned = 0;
        for req in &self.list {
            scanned += 1;
            if req.page_index == page_index {
                return Lookup {
                    found: Some(Rc::clone(req)),
                    scanned,
                };
            }
            if req.page_index > page_index {
                // Sorted: the page cannot appear later.
                return Lookup {
                    found: None,
                    scanned,
                };
            }
        }
        Lookup {
            found: None,
            scanned,
        }
    }

    /// Inserts a new request, keeping the list sorted. Returns entries
    /// walked to find the insertion point (a sequential writer walks the
    /// whole list every time — the Figure 3 pathology).
    ///
    /// # Panics
    ///
    /// Panics if a request for the same page is already indexed; callers
    /// must [`RequestIndex::find`] first.
    pub fn insert(&mut self, req: Rc<NfsPageReq>) -> usize {
        let page = req.page_index;
        if let Some(hash) = &mut self.hash {
            let prev = hash.insert(page, Rc::clone(&req));
            assert!(prev.is_none(), "duplicate request for page {page}");
            // The supplementary list is still maintained (ordering is
            // needed for coalescing), but with the hash present the walk
            // is not charged: position is found from the end, where a
            // sequential writer appends in O(1).
            let pos = self.list.partition_point(|r| r.page_index < page);
            self.list.insert(pos, req);
            return 0;
        }
        let mut scanned = 0;
        let mut pos = self.list.len();
        for (i, r) in self.list.iter().enumerate() {
            scanned += 1;
            assert!(r.page_index != page, "duplicate request for page {page}");
            if r.page_index > page {
                pos = i;
                break;
            }
        }
        self.list.insert(pos, req);
        scanned
    }

    /// Removes the request for `page_index` (on completion). Completion
    /// holds a pointer to the request in the real kernel, so removal is
    /// O(1) and uncharged; the internal position search uses binary
    /// search.
    pub fn remove(&mut self, page_index: u64) -> Option<Rc<NfsPageReq>> {
        if let Some(hash) = &mut self.hash {
            hash.remove(&page_index);
        }
        match self
            .list
            .binary_search_by_key(&page_index, |r| r.page_index)
        {
            Ok(i) => Some(self.list.remove(i)),
            Err(_) => None,
        }
    }

    /// Number of indexed requests.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Returns `true` when no requests are outstanding.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Iterates requests in page order (for coalescing and flushing).
    pub fn iter(&self) -> impl Iterator<Item = &Rc<NfsPageReq>> {
        self.list.iter()
    }

    /// Iterates requests with `page_index >= from` in page order. The
    /// starting position is found by binary search; this is a host-CPU
    /// shortcut only — simulated scan costs are charged by the caller
    /// independently of how the iteration is implemented.
    pub fn iter_from(&self, from: u64) -> impl Iterator<Item = &Rc<NfsPageReq>> {
        let start = self.list.partition_point(|r| r.page_index < from);
        self.list[start..].iter()
    }

    /// Returns `true` if the hash table is active.
    pub fn has_hash(&self) -> bool {
        self.hash.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::SimTime;

    fn req(page: u64) -> Rc<NfsPageReq> {
        NfsPageReq::new(page, 0, 4096, SimTime::ZERO)
    }

    #[test]
    fn sequential_list_inserts_walk_everything() {
        let mut idx = RequestIndex::new(IndexKind::SortedList);
        for page in 0..100 {
            let l = idx.find(page);
            assert!(l.found.is_none());
            assert_eq!(l.scanned, page as usize, "absent lookup walks whole list");
            let walked = idx.insert(req(page));
            assert_eq!(walked, page as usize, "insert walks to the end");
        }
        assert_eq!(idx.len(), 100);
    }

    #[test]
    fn hash_lookups_do_not_walk() {
        let mut idx = RequestIndex::new(IndexKind::HashTable);
        for page in 0..100 {
            assert_eq!(idx.find(page).scanned, 0);
            assert_eq!(idx.insert(req(page)), 0);
        }
        let hit = idx.find(50);
        assert!(hit.found.is_some());
        assert_eq!(hit.scanned, 0);
        assert!(idx.has_hash());
    }

    #[test]
    fn list_find_hit_stops_at_match() {
        let mut idx = RequestIndex::new(IndexKind::SortedList);
        for page in 0..10 {
            idx.insert(req(page));
        }
        let l = idx.find(4);
        assert_eq!(l.found.unwrap().page_index, 4);
        assert_eq!(l.scanned, 5);
    }

    #[test]
    fn list_find_miss_stops_at_sorted_position() {
        let mut idx = RequestIndex::new(IndexKind::SortedList);
        idx.insert(req(0));
        idx.insert(req(10));
        let l = idx.find(5);
        assert!(l.found.is_none());
        assert_eq!(l.scanned, 2, "stops at the first larger page");
    }

    #[test]
    fn out_of_order_insert_keeps_sorted() {
        let mut idx = RequestIndex::new(IndexKind::SortedList);
        for page in [5u64, 1, 9, 3, 7] {
            idx.insert(req(page));
        }
        let pages: Vec<u64> = idx.iter().map(|r| r.page_index).collect();
        assert_eq!(pages, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn remove_finds_and_removes() {
        for kind in [IndexKind::SortedList, IndexKind::HashTable] {
            let mut idx = RequestIndex::new(kind);
            for page in 0..5 {
                idx.insert(req(page));
            }
            let removed = idx.remove(2).expect("present");
            assert_eq!(removed.page_index, 2);
            assert!(idx.find(2).found.is_none());
            assert!(idx.remove(2).is_none(), "second removal misses");
            assert_eq!(idx.len(), 4);
        }
    }

    #[test]
    fn both_kinds_agree_on_contents() {
        let mut a = RequestIndex::new(IndexKind::SortedList);
        let mut b = RequestIndex::new(IndexKind::HashTable);
        for page in [3u64, 1, 4, 8, 9, 2, 6] {
            a.insert(req(page));
            b.insert(req(page));
        }
        let pa: Vec<u64> = a.iter().map(|r| r.page_index).collect();
        let pb: Vec<u64> = b.iter().map(|r| r.page_index).collect();
        assert_eq!(pa, pb);
        for page in 0..10 {
            assert_eq!(a.find(page).found.is_some(), b.find(page).found.is_some());
        }
    }

    #[test]
    #[should_panic(expected = "duplicate request")]
    fn duplicate_insert_panics_list() {
        let mut idx = RequestIndex::new(IndexKind::SortedList);
        idx.insert(req(1));
        idx.insert(req(1));
    }

    #[test]
    #[should_panic(expected = "duplicate request")]
    fn duplicate_insert_panics_hash() {
        let mut idx = RequestIndex::new(IndexKind::HashTable);
        idx.insert(req(1));
        idx.insert(req(1));
    }
}
