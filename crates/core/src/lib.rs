//! The Linux 2.4.4 NFS client write path — the paper's subject — as a
//! faithful simulation model.
//!
//! The crate reproduces the three defects *Linux NFS Client Write
//! Performance* (Lever & Honeyman, 2002) diagnoses, each behind a
//! [`ClientTuning`] switch so every configuration in the paper's
//! evaluation can run:
//!
//! 1. the `MAX_REQUEST_SOFT`/`MAX_REQUEST_HARD` synchronous flush logic
//!    that produces the periodic ~19 ms `write()` latency spikes of
//!    Figure 2;
//! 2. the O(n) sorted per-inode request list walked twice per page write
//!    (`nfs_find_request`/`nfs_update_request`) that makes latency grow
//!    with file size in Figure 3, against the paper's hash-table fix of
//!    Figure 4;
//! 3. the global kernel lock held across `sock_sendmsg` in the RPC
//!    transmit path, whose contention with `nfs_flushd` and reply
//!    processing degrades SMP write throughput — Figures 5/6 and Table 1.
//!
//! # Example
//!
//! ```
//! use std::rc::Rc;
//! use nfsperf_client::{ClientTuning, MountConfig, NfsMount};
//! use nfsperf_kernel::{Kernel, KernelConfig, SimFile};
//! use nfsperf_net::{Nic, NicSpec, Path};
//! use nfsperf_server::{NfsServer, ServerConfig};
//! use nfsperf_sim::Sim;
//!
//! let sim = Sim::new();
//! let kernel = Kernel::new(&sim, KernelConfig::default());
//! let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit());
//! let (snic, srx) = Nic::new(&sim, "server", NicSpec::gigabit());
//! let to_server = Path::new(cnic, snic, Path::default_latency());
//! let _server = NfsServer::spawn(&sim, srx, to_server.reversed(), ServerConfig::netapp_f85());
//! let mount = NfsMount::mount(&kernel, to_server, crx, MountConfig {
//!     tuning: ClientTuning::full_patch(),
//!     ..MountConfig::default()
//! });
//!
//! let written = sim.run_until(async move {
//!     let file = mount.create("bench").await.unwrap();
//!     file.write(0, 8192).await.unwrap();
//!     file.close().await.unwrap();
//!     file.bytes_written()
//! });
//! assert_eq!(written, 8192);
//! ```

pub mod index;
pub mod inode;
pub mod mount;
pub mod request;
pub mod tuning;

pub use index::{Lookup, RequestIndex};
pub use inode::NfsInode;
pub use mount::{MountConfig, MountStats, NfsFile, NfsMount, MAX_RPC_IO_BYTES};
pub use request::{NfsPageReq, ReqState};
pub use tuning::{ClientTuning, IndexKind, MAX_REQUEST_HARD, MAX_REQUEST_SOFT};
