//! Client tuning knobs: the 2.4.4 baseline and the paper's three fixes.
//!
//! Each of the paper's modifications is an independent switch so every
//! intermediate configuration in Figures 2–6 and Table 1 can be
//! reproduced:
//!
//! | Figure/Table | preset |
//! |---|---|
//! | Fig 1, Fig 2 | [`ClientTuning::linux_2_4_4`] |
//! | Fig 3 | [`ClientTuning::no_flush`] |
//! | Fig 4, Fig 5, Table 1 "Normal" | [`ClientTuning::hash_table`] |
//! | Fig 6, Table 1 "No lock", Fig 7 | [`ClientTuning::full_patch`] |

/// How the client indexes an inode's outstanding write requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// The 2.4.4 sorted per-inode list: `_nfs_find_request` walks it
    /// linearly on every lookup.
    SortedList,
    /// The paper's fix: a hash table keyed by page offset supplementing
    /// the list (8 bytes per request, 8 per inode).
    HashTable,
}

/// Per-inode request count at which the stock client forces the writer to
/// flush and wait (Linux 2.4.4 `MAX_REQUEST_SOFT`).
pub const MAX_REQUEST_SOFT: usize = 192;

/// Per-mount request count at which the stock client puts writers to
/// sleep (Linux 2.4.4 `MAX_REQUEST_HARD`).
pub const MAX_REQUEST_HARD: usize = 256;

/// The complete set of client-behaviour switches studied by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientTuning {
    /// Enforce `MAX_REQUEST_SOFT`/`MAX_REQUEST_HARD` with synchronous
    /// flushes (the Figure 2 latency-spike source). The paper's first fix
    /// removes this and lets VM pressure drive writeback.
    pub sync_flush_limits: bool,
    /// Request index implementation (the Figure 3→4 fix).
    pub index: IndexKind,
    /// Hold the global kernel lock across `sock_sendmsg` (the
    /// Figure 5→6 / Table 1 fix removes this).
    pub bkl_around_sendmsg: bool,
    /// `balance_dirty_pages`-style foreground throttling: a writer over
    /// the dirty ratio synchronously flushes a write batch before
    /// pinning instead of just parking on the hard limit, so throughput
    /// degrades gradually to server speed (modern dirty-throttling
    /// semantics; off in every 2.4-era preset).
    pub fg_throttle: bool,
}

impl ClientTuning {
    /// The stock Linux 2.4.4 client.
    pub fn linux_2_4_4() -> ClientTuning {
        ClientTuning {
            sync_flush_limits: true,
            index: IndexKind::SortedList,
            bkl_around_sendmsg: true,
            fg_throttle: false,
        }
    }

    /// Fix 1 only: redundant flush logic removed (Figure 3).
    pub fn no_flush() -> ClientTuning {
        ClientTuning {
            sync_flush_limits: false,
            ..ClientTuning::linux_2_4_4()
        }
    }

    /// Fixes 1+2: no flushing, hash-table request index (Figure 4/5,
    /// Table 1 "Normal").
    pub fn hash_table() -> ClientTuning {
        ClientTuning {
            index: IndexKind::HashTable,
            ..ClientTuning::no_flush()
        }
    }

    /// All three fixes: the paper's full patch (Figure 6/7, Table 1 "No
    /// lock").
    pub fn full_patch() -> ClientTuning {
        ClientTuning {
            bkl_around_sendmsg: false,
            ..ClientTuning::hash_table()
        }
    }

    /// The full patch plus `balance_dirty_pages`-style foreground
    /// throttling — the CAWL-regime client with modern dirty-throttling
    /// semantics.
    pub fn cawl() -> ClientTuning {
        ClientTuning {
            fg_throttle: true,
            ..ClientTuning::full_patch()
        }
    }

    /// Short name for reports.
    pub fn label(&self) -> &'static str {
        match (
            self.sync_flush_limits,
            self.index,
            self.bkl_around_sendmsg,
            self.fg_throttle,
        ) {
            (true, IndexKind::SortedList, true, false) => "linux-2.4.4",
            (false, IndexKind::SortedList, true, false) => "no-flush",
            (false, IndexKind::HashTable, true, false) => "hash-table",
            (false, IndexKind::HashTable, false, false) => "full-patch",
            (false, IndexKind::HashTable, false, true) => "cawl",
            _ => "custom",
        }
    }
}

impl Default for ClientTuning {
    fn default() -> Self {
        ClientTuning::linux_2_4_4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_match_2_4_4() {
        assert_eq!(MAX_REQUEST_SOFT, 192);
        assert_eq!(MAX_REQUEST_HARD, 256);
    }

    #[test]
    fn presets_differ_only_in_the_advertised_knob() {
        let base = ClientTuning::linux_2_4_4();
        let f1 = ClientTuning::no_flush();
        assert_eq!(
            ClientTuning {
                sync_flush_limits: false,
                ..base
            },
            f1
        );
        let f2 = ClientTuning::hash_table();
        assert_eq!(
            ClientTuning {
                index: IndexKind::HashTable,
                ..f1
            },
            f2
        );
        let f3 = ClientTuning::full_patch();
        assert_eq!(
            ClientTuning {
                bkl_around_sendmsg: false,
                ..f2
            },
            f3
        );
        let f4 = ClientTuning::cawl();
        assert_eq!(
            ClientTuning {
                fg_throttle: true,
                ..f3
            },
            f4
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            ClientTuning::linux_2_4_4().label(),
            ClientTuning::no_flush().label(),
            ClientTuning::hash_table().label(),
            ClientTuning::full_patch().label(),
            ClientTuning::cawl().label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
        let custom = ClientTuning {
            sync_flush_limits: true,
            index: IndexKind::HashTable,
            bkl_around_sendmsg: true,
            fg_throttle: false,
        };
        assert_eq!(custom.label(), "custom");
    }
}
