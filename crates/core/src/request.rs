//! `struct nfs_page` — the client's internal write request.
//!
//! The VFS passes file systems writes one page at a time; the 2.4 NFS
//! client wraps each in a request that lives on the inode until the data
//! is durable at the server. An 8 KiB Bonnie write always creates two.

use std::cell::Cell;
use std::rc::Rc;

use nfsperf_nfs3::WriteVerf;
use nfsperf_sim::SimTime;

/// Lifecycle of a write request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqState {
    /// Dirty in the page cache, not yet scheduled into an RPC.
    Dirty,
    /// Part of an in-flight WRITE RPC.
    Writeback,
    /// WRITE completed UNSTABLE; awaiting COMMIT (verifier recorded).
    Unstable,
}

/// One per-page write request.
#[derive(Debug)]
pub struct NfsPageReq {
    /// Page index within the file.
    pub page_index: u64,
    /// Offset of dirty data within the page.
    offset_in_page: Cell<u64>,
    /// Dirty byte count within the page.
    len: Cell<u64>,
    state: Cell<ReqState>,
    /// Verifier from the UNSTABLE write reply.
    verf: Cell<WriteVerf>,
    /// Bytes covered when the UNSTABLE reply arrived — what the inode's
    /// `unstable_bytes` accounting recorded, which can lag `len` if a
    /// writer merge-grows the request while it awaits COMMIT.
    unstable_len: Cell<u64>,
    /// When the request was created (for age-based flushing).
    pub created_at: SimTime,
}

impl NfsPageReq {
    /// Creates a dirty request covering `[offset_in_page, offset_in_page
    /// + len)` of page `page_index`.
    pub fn new(page_index: u64, offset_in_page: u64, len: u64, at: SimTime) -> Rc<NfsPageReq> {
        debug_assert!(offset_in_page + len <= nfsperf_kernel::PAGE_SIZE);
        Rc::new(NfsPageReq {
            page_index,
            offset_in_page: Cell::new(offset_in_page),
            len: Cell::new(len),
            state: Cell::new(ReqState::Dirty),
            verf: Cell::new(WriteVerf::default()),
            unstable_len: Cell::new(0),
            created_at: at,
        })
    }

    /// Current state.
    pub fn state(&self) -> ReqState {
        self.state.get()
    }

    /// Marks the request as part of an in-flight WRITE.
    pub fn mark_writeback(&self) {
        debug_assert_eq!(self.state.get(), ReqState::Dirty);
        self.state.set(ReqState::Writeback);
    }

    /// Records an UNSTABLE completion with the server's verifier.
    pub fn mark_unstable(&self, verf: WriteVerf) {
        debug_assert_eq!(self.state.get(), ReqState::Writeback);
        self.verf.set(verf);
        self.unstable_len.set(self.len.get());
        self.state.set(ReqState::Unstable);
    }

    /// Bytes the request covered at UNSTABLE completion (0 before one).
    pub fn unstable_len(&self) -> u64 {
        self.unstable_len.get()
    }

    /// Returns the request to dirty (verifier mismatch: must re-send).
    pub fn mark_dirty_again(&self) {
        self.state.set(ReqState::Dirty);
    }

    /// The verifier recorded at UNSTABLE completion.
    pub fn verf(&self) -> WriteVerf {
        self.verf.get()
    }

    /// Grows the request to cover another write to the same page
    /// (coalescing at page granularity). Returns `false` if the ranges
    /// are not mergeable (disjoint, non-contiguous).
    pub fn merge(&self, offset_in_page: u64, len: u64) -> bool {
        let cur_start = self.offset_in_page.get();
        let cur_end = cur_start + self.len.get();
        let new_end = offset_in_page + len;
        // Mergeable iff the union is a contiguous range.
        if offset_in_page > cur_end || new_end < cur_start {
            return false;
        }
        let start = cur_start.min(offset_in_page);
        let end = cur_end.max(new_end);
        self.offset_in_page.set(start);
        self.len.set(end - start);
        true
    }

    /// Offset of the dirty range within the page.
    pub fn offset_in_page(&self) -> u64 {
        self.offset_in_page.get()
    }

    /// Dirty bytes covered.
    pub fn len(&self) -> u64 {
        self.len.get()
    }

    /// Returns `true` if the request covers no bytes (never the case for
    /// a live request; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len.get() == 0
    }

    /// Absolute file offset of the dirty range.
    pub fn file_offset(&self) -> u64 {
        self.page_index * nfsperf_kernel::PAGE_SIZE + self.offset_in_page.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let r = NfsPageReq::new(3, 0, 4096, SimTime::ZERO);
        assert_eq!(r.state(), ReqState::Dirty);
        r.mark_writeback();
        assert_eq!(r.state(), ReqState::Writeback);
        r.mark_unstable(WriteVerf(9));
        assert_eq!(r.state(), ReqState::Unstable);
        assert_eq!(r.verf(), WriteVerf(9));
        r.mark_dirty_again();
        assert_eq!(r.state(), ReqState::Dirty);
    }

    #[test]
    fn file_offset_math() {
        let r = NfsPageReq::new(2, 100, 50, SimTime::ZERO);
        assert_eq!(r.file_offset(), 2 * 4096 + 100);
        assert_eq!(r.len(), 50);
    }

    #[test]
    fn merge_contiguous_ranges() {
        let r = NfsPageReq::new(0, 0, 100, SimTime::ZERO);
        assert!(r.merge(100, 100), "adjacent ranges merge");
        assert_eq!(r.offset_in_page(), 0);
        assert_eq!(r.len(), 200);
        assert!(r.merge(50, 100), "overlapping ranges merge");
        assert_eq!(r.len(), 200);
    }

    #[test]
    fn merge_rejects_disjoint() {
        let r = NfsPageReq::new(0, 0, 100, SimTime::ZERO);
        assert!(!r.merge(200, 100), "gap between ranges");
        assert_eq!(r.len(), 100);
    }

    #[test]
    fn merge_extends_backwards() {
        let r = NfsPageReq::new(0, 1000, 100, SimTime::ZERO);
        assert!(r.merge(500, 500));
        assert_eq!(r.offset_in_page(), 500);
        assert_eq!(r.len(), 600);
    }
}
