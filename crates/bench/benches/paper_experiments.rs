//! One benchmark per table and figure of the paper.
//!
//! Each benchmark regenerates its exhibit end to end (full world:
//! client kernel, RPC stack, network, server) at a reduced file size so
//! the suite completes in minutes; the `examples/` binaries run the
//! paper-scale versions. The harness statistics dubiously measure *our*
//! simulator's wall-clock speed, but the real output is the asserted
//! shape of each exhibit, checked here with `assert!` so a regression in
//! the model fails the bench run loudly.

use std::hint::black_box;

use nfsperf_bench::Harness;
use nfsperf_client::ClientTuning;
use nfsperf_experiments::{figures, run_bonnie, run_local, Scenario, ServerKind};
use nfsperf_sim::SimDuration;

/// Figure 1: one stock-client point of the local-vs-NFS sweep.
fn fig1_throughput(h: &mut Harness) {
    h.group("fig1_local_vs_nfs_stock");
    h.sample_size(10);
    h.bench("local_ext2_50mb", || {
        let r = run_local(black_box(50 << 20), false);
        assert!(r.write_mbps() > 100.0, "local must be memory speed");
        r.write_mbps()
    });
    h.bench("filer_50mb", || {
        let s = Scenario::new(ClientTuning::linux_2_4_4(), ServerKind::Filer);
        let out = run_bonnie(&s, black_box(50 << 20));
        let mbps = out.report.write_mbps();
        assert!(mbps < 60.0, "stock NFS must be network-bound, got {mbps}");
        mbps
    });
    h.bench("knfsd_50mb", || {
        let s = Scenario::new(ClientTuning::linux_2_4_4(), ServerKind::Knfsd);
        run_bonnie(&s, black_box(50 << 20)).report.write_mbps()
    });
}

/// Figure 2: the stock client's periodic latency spikes (full 40 MB run).
fn fig2_spikes(h: &mut Harness) {
    h.group("fig2_latency_spikes");
    h.sample_size(10);
    h.bench("stock_40mb_filer", || {
        let t = figures::figure2();
        assert!(t.spikes >= 10, "expected periodic spikes, got {}", t.spikes);
        t.spikes
    });
}

/// Figure 3: latency growth with the sorted list (reduced to 25 MB).
fn fig3_list_growth(h: &mut Harness) {
    h.group("fig3_list_growth");
    h.sample_size(10);
    h.bench("no_flush_25mb_filer", || {
        let s = Scenario::new(ClientTuning::no_flush(), ServerKind::Filer);
        let out = run_bonnie(&s, black_box(25 << 20));
        let ratio = nfsperf_bonnie::trend_ratio(&out.report.latencies);
        assert!(ratio > 1.2, "latency must grow, ratio {ratio}");
        ratio
    });
}

/// Figure 4: flat latency with the hash table (reduced to 25 MB).
fn fig4_hash(h: &mut Harness) {
    h.group("fig4_hash_table");
    h.sample_size(10);
    h.bench("hash_25mb_filer", || {
        let s = Scenario::new(ClientTuning::hash_table(), ServerKind::Filer);
        let out = run_bonnie(&s, black_box(25 << 20));
        let ratio = nfsperf_bonnie::trend_ratio(&out.report.latencies);
        assert!(ratio < 1.3, "latency must stay flat, ratio {ratio}");
        ratio
    });
}

/// Figures 5/6: histogram pair, lock held vs released (reduced to 10 MB).
fn fig5_fig6_histograms(h: &mut Harness) {
    h.group("fig5_fig6_histograms");
    h.sample_size(10);
    for (name, tuning) in [
        ("fig5_bkl_held_10mb", ClientTuning::hash_table()),
        ("fig6_no_lock_10mb", ClientTuning::full_patch()),
    ] {
        h.bench(name, || {
            let size = black_box(10u64 << 20);
            let filer = run_bonnie(&Scenario::new(tuning, ServerKind::Filer), size);
            let knfsd = run_bonnie(&Scenario::new(tuning, ServerKind::Knfsd), size);
            let f = nfsperf_bonnie::mean(&filer.report.latencies[1..]);
            let k = nfsperf_bonnie::mean(&knfsd.report.latencies[1..]);
            assert!(
                f >= k,
                "the faster server must not show faster client writes: filer {f} linux {k}"
            );
            (f, k)
        });
    }
}

/// Table 1: the four 5 MB throughput cells.
fn table1_lock(h: &mut Harness) {
    h.group("table1_lock_modification");
    h.sample_size(10);
    h.bench("all_four_cells_5mb", || {
        let t = figures::table1();
        assert!(t.filer_no_lock > t.filer_normal, "lock fix must help filer");
        assert!(t.linux_no_lock > t.linux_normal, "lock fix must help linux");
        assert!(
            t.linux_normal > t.filer_normal,
            "slower server must allow faster memory writes under the BKL"
        );
        t
    });
}

/// Figure 7: one patched-client point each side of the RAM boundary.
fn fig7_throughput(h: &mut Harness) {
    h.group("fig7_local_vs_nfs_patched");
    h.sample_size(10);
    h.bench("filer_150mb_in_ram", || {
        let s = Scenario::new(ClientTuning::full_patch(), ServerKind::Filer);
        let mbps = run_bonnie(&s, black_box(150 << 20)).report.write_mbps();
        assert!(
            mbps > 80.0,
            "patched in-RAM writes are memory speed, got {mbps}"
        );
        mbps
    });
    h.bench("filer_300mb_past_ram", || {
        let s = Scenario::new(ClientTuning::full_patch(), ServerKind::Filer);
        run_bonnie(&s, black_box(300 << 20)).report.write_mbps()
    });
}

/// §3.5: the slow-server inversion plus the sendmsg lock-wait breakdown.
fn slow_server(h: &mut Harness) {
    h.group("sec3_5_slow_server");
    h.sample_size(10);
    h.bench("three_servers_5mb", || {
        let cmp = figures::slow_server_comparison();
        assert!(cmp.slow_mbps > cmp.filer_mbps, "inversion must hold");
        assert!(
            cmp.xmit_wait_fraction > 0.5,
            "sendmsg must dominate lock waits"
        );
        cmp.slow_mbps
    });
}

/// Ablations: the sweeps DESIGN.md calls out, at reduced sizes.
fn ablations(h: &mut Harness) {
    h.group("ablations");
    h.sample_size(10);
    h.bench("soft_limit_sweep", || {
        nfsperf_experiments::soft_limit_sweep(black_box(&[96, 192, 384]))
    });
    h.bench("mtu_jumbo", || {
        let m = nfsperf_experiments::mtu_ablation();
        assert!(m.jumbo_frags_per_rpc < m.standard_frags_per_rpc);
        m.jumbo_mbps
    });
    h.bench("cpu_1_vs_2", || {
        let a = nfsperf_experiments::cpu_ablation();
        assert!(
            a.one_cpu_wait_ns > a.two_cpu_wait_ns,
            "a second CPU must relieve lock waiting"
        );
        a.two_cpu_mbps
    });
}

/// The benchmark the paper builds everything on: one 5 MB Bonnie run.
fn bonnie_run(h: &mut Harness) {
    h.group("bonnie");
    h.sample_size(20);
    h.bench("sequential_write_5mb_filer", || {
        let s = Scenario::new(ClientTuning::full_patch(), ServerKind::Filer);
        let out = run_bonnie(&s, black_box(5 << 20));
        assert_eq!(out.report.latencies.len(), 640);
        assert!(out.report.mean_latency() < SimDuration::from_millis(1));
        out.report.write_mbps()
    });
}

fn main() {
    let mut h = Harness::from_env();
    fig1_throughput(&mut h);
    fig2_spikes(&mut h);
    fig3_list_growth(&mut h);
    fig4_hash(&mut h);
    fig5_fig6_histograms(&mut h);
    table1_lock(&mut h);
    fig7_throughput(&mut h);
    slow_server(&mut h);
    ablations(&mut h);
    bonnie_run(&mut h);
    h.finish();
}
