//! Microbenchmarks of the core data structures and substrates: the
//! request index (the paper's list-vs-hash fix, measured directly), the
//! XDR codec, and the simulation engine's primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nfsperf_client::{IndexKind, NfsPageReq, RequestIndex};
use nfsperf_sim::{Sim, SimDuration, SimTime};

/// The heart of the paper's second fix: absent-page lookup cost on a
/// sorted list vs the hash table, across list sizes.
fn index_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("request_index_lookup_absent");
    for &n in &[100u64, 1_000, 10_000] {
        for (label, kind) in [
            ("list", IndexKind::SortedList),
            ("hash", IndexKind::HashTable),
        ] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let mut idx = RequestIndex::new(kind);
                for page in 0..n {
                    idx.insert(NfsPageReq::new(page, 0, 4096, SimTime::ZERO));
                }
                b.iter(|| {
                    let l = idx.find(black_box(n + 1));
                    assert!(l.found.is_none());
                    l.scanned
                })
            });
        }
    }
    g.finish();
}

/// Sequential append cost (find + insert), the per-page write-path work.
fn index_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("request_index_append_10k");
    for (label, kind) in [
        ("list", IndexKind::SortedList),
        ("hash", IndexKind::HashTable),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut idx = RequestIndex::new(kind);
                for page in 0..10_000u64 {
                    idx.find(page);
                    idx.insert(NfsPageReq::new(page, 0, 4096, SimTime::ZERO));
                }
                idx.len()
            })
        });
    }
    g.finish();
}

/// Encoding a full WRITE3 call message (header + 8 KiB payload).
fn xdr_write3(c: &mut Criterion) {
    use nfsperf_nfs3::{FileHandle, StableHow, Write3Args};
    use nfsperf_sunrpc::AuthUnix;
    let cred = AuthUnix::root_on("bench");
    let args = Write3Args::new(FileHandle::for_fileid(7), 0, 8192, StableHow::Unstable);
    let mut g = c.benchmark_group("xdr");
    g.bench_function("encode_write3_call_8k", |b| {
        b.iter(|| {
            let msg = nfsperf_sunrpc::encode_call(black_box(1), 100_003, 3, 7, &cred, &args);
            msg.len()
        })
    });
    let msg = nfsperf_sunrpc::encode_call(1, 100_003, 3, 7, &cred, &args);
    g.bench_function("decode_write3_call_8k", |b| {
        b.iter(|| {
            let (hdr, mut dec) = nfsperf_sunrpc::decode_call(black_box(&msg)).unwrap();
            let w = <Write3Args as nfsperf_xdr::XdrDecode>::decode(&mut dec).unwrap();
            (hdr.xid, w.count)
        })
    });
    g.finish();
}

/// Raw discrete-event engine throughput: spawn/sleep/complete cycles.
fn sim_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine");
    g.bench_function("sleep_chain_10k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.run_until(async move {
                for _ in 0..10_000 {
                    s.sleep(SimDuration::from_nanos(100)).await;
                }
                s.now()
            })
        })
    });
    g.bench_function("spawn_join_1k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let s = sim.clone();
            sim.run_until(async move {
                let handles: Vec<_> = (0..1_000)
                    .map(|i| {
                        let s2 = s.clone();
                        s.spawn(async move {
                            s2.sleep(SimDuration::from_nanos(i)).await;
                            i
                        })
                    })
                    .collect();
                let mut total = 0;
                for h in handles {
                    total += h.await;
                }
                total
            })
        })
    });
    g.finish();
}

criterion_group!(micro, index_lookup, index_append, xdr_write3, sim_engine);
criterion_main!(micro);
