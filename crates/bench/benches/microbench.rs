//! Microbenchmarks of the core data structures and substrates: the
//! request index (the paper's list-vs-hash fix, measured directly), the
//! XDR codec, and the simulation engine's primitives.

use std::hint::black_box;

use nfsperf_bench::Harness;
use nfsperf_client::{IndexKind, NfsPageReq, RequestIndex};
use nfsperf_sim::{Sim, SimDuration, SimTime};

/// The heart of the paper's second fix: absent-page lookup cost on a
/// sorted list vs the hash table, across list sizes.
fn index_lookup(h: &mut Harness) {
    h.group("request_index_lookup_absent");
    for &n in &[100u64, 1_000, 10_000] {
        for (label, kind) in [
            ("list", IndexKind::SortedList),
            ("hash", IndexKind::HashTable),
        ] {
            let mut idx = RequestIndex::new(kind);
            for page in 0..n {
                idx.insert(NfsPageReq::new(page, 0, 4096, SimTime::ZERO));
            }
            h.bench(&format!("{label}/{n}"), || {
                let l = idx.find(black_box(n + 1));
                assert!(l.found.is_none());
                l.scanned
            });
        }
    }
}

/// Sequential append cost (find + insert), the per-page write-path work.
fn index_append(h: &mut Harness) {
    h.group("request_index_append_10k");
    for (label, kind) in [
        ("list", IndexKind::SortedList),
        ("hash", IndexKind::HashTable),
    ] {
        h.bench(label, || {
            let mut idx = RequestIndex::new(kind);
            for page in 0..10_000u64 {
                idx.find(page);
                idx.insert(NfsPageReq::new(page, 0, 4096, SimTime::ZERO));
            }
            idx.len()
        });
    }
}

/// Encoding a full WRITE3 call message (header + 8 KiB payload).
fn xdr_write3(h: &mut Harness) {
    use nfsperf_nfs3::{FileHandle, StableHow, Write3Args};
    use nfsperf_sunrpc::AuthUnix;
    let cred = AuthUnix::root_on("bench");
    let args = Write3Args::new(FileHandle::for_fileid(7), 0, 8192, StableHow::Unstable);
    h.group("xdr");
    h.bench("encode_write3_call_8k", || {
        let msg = nfsperf_sunrpc::encode_call(black_box(1), 100_003, 3, 7, &cred, &args);
        msg.len()
    });
    let msg = nfsperf_sunrpc::encode_call(1, 100_003, 3, 7, &cred, &args);
    h.bench("decode_write3_call_8k", || {
        let (hdr, mut dec) = nfsperf_sunrpc::decode_call(black_box(&msg)).unwrap();
        let w = <Write3Args as nfsperf_xdr::XdrDecode>::decode(&mut dec).unwrap();
        (hdr.xid, w.count)
    });
}

/// Raw discrete-event engine throughput: spawn/sleep/complete cycles.
fn sim_engine(h: &mut Harness) {
    h.group("sim_engine");
    h.bench("sleep_chain_10k", || {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            for _ in 0..10_000 {
                s.sleep(SimDuration::from_nanos(100)).await;
            }
            s.now()
        })
    });
    h.bench("spawn_join_1k", || {
        let sim = Sim::new();
        let s = sim.clone();
        sim.run_until(async move {
            let handles: Vec<_> = (0..1_000)
                .map(|i| {
                    let s2 = s.clone();
                    s.spawn(async move {
                        s2.sleep(SimDuration::from_nanos(i)).await;
                        i
                    })
                })
                .collect();
            let mut total = 0;
            for h in handles {
                total += h.await;
            }
            total
        })
    });
}

fn main() {
    let mut h = Harness::from_env();
    index_lookup(&mut h);
    index_append(&mut h);
    xdr_write3(&mut h);
    sim_engine(&mut h);
    h.finish();
}
