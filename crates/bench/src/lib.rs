//! Benchmark harness for the nfsperf workspace.
//!
//! [`harness`] is the in-tree criterion replacement (warmup, calibrated
//! batching, mean/p50/p99 per benchmark); the actual benchmarks live in
//! `benches/`. The experiment runners are re-exported so the bench
//! targets share one entry point.

pub mod harness;

pub use harness::{BenchResult, Harness};
pub use nfsperf_experiments as experiments;
