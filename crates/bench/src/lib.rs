//! Criterion benchmark harness for the nfsperf workspace.
//!
//! The actual benchmarks live in `benches/`; this library only re-exports
//! the experiment runners so the bench targets share one entry point.

pub use nfsperf_experiments as experiments;
