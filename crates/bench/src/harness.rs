//! A plain benchmark harness replacing the external `criterion` crate.
//!
//! Each benchmark is a closure timed for `samples` measurement rounds
//! after a warmup/calibration pass. Fast closures are auto-batched so a
//! round measures enough work (>= ~1 ms) for the monotonic clock to
//! resolve; reported figures are always *per call*. Statistics come from
//! `nfsperf_bonnie::stats`: mean, p50 and p99 over the per-call round
//! averages, plus min/max.
//!
//! Invoked by `cargo bench`; a positional argument filters benchmarks by
//! substring (`cargo bench --bench microbench -- index`), matching the
//! criterion CLI habit the repo's docs already describe.

use std::hint::black_box;
use std::time::Instant;

use nfsperf_bonnie::{mean, percentile};
use nfsperf_sim::SimDuration;

/// Default number of measurement rounds per benchmark.
pub const DEFAULT_SAMPLES: u32 = 10;

/// Per-benchmark timing summary. Durations are per call.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` as printed.
    pub name: String,
    /// Measurement rounds taken.
    pub samples: u32,
    /// Calls per round (auto-calibrated batch size).
    pub iters_per_sample: u64,
    /// Mean per-call time over all rounds.
    pub mean: SimDuration,
    /// Median of the per-round per-call averages.
    pub p50: SimDuration,
    /// 99th percentile of the per-round per-call averages.
    pub p99: SimDuration,
    /// Fastest round.
    pub min: SimDuration,
    /// Slowest round.
    pub max: SimDuration,
}

/// Collects and runs benchmarks; see the module docs.
pub struct Harness {
    filter: Option<String>,
    group: String,
    samples: u32,
    results: Vec<BenchResult>,
}

impl Default for Harness {
    fn default() -> Harness {
        Harness {
            filter: None,
            group: String::new(),
            samples: DEFAULT_SAMPLES,
            results: Vec::new(),
        }
    }
}

impl Harness {
    /// Builds a harness from the process arguments: flags (`--bench`,
    /// `--exact`, ...) that cargo forwards are ignored, the first
    /// positional argument becomes a substring filter.
    pub fn from_env() -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness {
            filter,
            ..Harness::default()
        }
    }

    /// Starts a new display group; subsequent benchmarks print as
    /// `group/name`.
    pub fn group(&mut self, name: &str) {
        self.group = name.to_string();
        self.samples = DEFAULT_SAMPLES;
    }

    /// Sets the number of measurement rounds for subsequent benchmarks in
    /// this group (criterion's `sample_size`).
    pub fn sample_size(&mut self, samples: u32) {
        assert!(samples >= 1, "need at least one sample");
        self.samples = samples;
    }

    /// Times `f` and records/prints its summary. The closure's return
    /// value is passed through [`black_box`] so the work isn't optimised
    /// away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        let full = if self.group.is_empty() {
            name.to_string()
        } else {
            format!("{}/{name}", self.group)
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }

        // Warmup + calibration: double the batch until one batch takes at
        // least ~1 ms, so per-round timings are well above clock noise.
        // Simulation-scale benchmarks exit at batch = 1 on the first probe.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed.as_micros() >= 1_000 || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }

        let mut rounds: Vec<SimDuration> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_call = t.elapsed().as_nanos() as u64 / batch;
            rounds.push(SimDuration(per_call));
        }

        let result = BenchResult {
            name: full,
            samples: self.samples,
            iters_per_sample: batch,
            mean: mean(&rounds),
            p50: percentile(&rounds, 50.0),
            p99: percentile(&rounds, 99.0),
            min: *rounds.iter().min().expect("samples >= 1"),
            max: *rounds.iter().max().expect("samples >= 1"),
        };
        println!(
            "{:<44} mean {:>12}  p50 {:>12}  p99 {:>12}  ({} samples x {} iters)",
            result.name, result.mean, result.p50, result.p99, result.samples, result.iters_per_sample
        );
        self.results.push(result);
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the closing summary line. Call at the end of `main`.
    pub fn finish(self) {
        println!("\n{} benchmarks completed", self.results.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Harness {
        // Small sample count keeps unit tests fast.
        Harness {
            samples: 3,
            ..Harness::default()
        }
    }

    #[test]
    fn records_result_with_ordered_stats() {
        let mut h = quiet();
        h.group("g");
        h.sample_size(3); // group() resets to the default
        h.bench("spin", || {
            // Enough work to be measurable without being slow.
            (0..1000u64).sum::<u64>()
        });
        let r = &h.results()[0];
        assert_eq!(r.name, "g/spin");
        assert_eq!(r.samples, 3);
        assert!(r.iters_per_sample >= 1);
        assert!(r.min <= r.p50 && r.p50 <= r.max);
        assert!(r.min <= r.mean && r.mean <= r.max);
        assert!(r.p50 <= r.p99 && r.p99 <= r.max);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut h = Harness {
            filter: Some("keep".to_string()),
            samples: 1,
            ..Harness::default()
        };
        h.bench("keep_this", || 1u64);
        h.bench("drop_this", || 2u64);
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].name, "keep_this");
    }

    #[test]
    fn fast_closures_are_batched() {
        let mut h = quiet();
        h.bench("noop", || 0u8);
        assert!(
            h.results()[0].iters_per_sample > 1,
            "a no-op must be batched to beat clock resolution"
        );
    }
}
