//! CPU pool: charges modelled execution time against a limited number of
//! processors.
//!
//! The client in the paper is a dual Pentium III; the pool has one permit
//! per CPU and a task "executes" by holding a permit while simulated time
//! advances. This is a non-preemptive model — adequate at the microsecond
//! granularity of the write path, where no single charge exceeds a
//! scheduling quantum.

use std::rc::Rc;

use nfsperf_sim::{Profiler, Semaphore, Sim, SimDuration, SimRng};

/// A pool of simulated CPUs with per-label execution accounting.
pub struct CpuPool {
    sim: Sim,
    slots: Rc<Semaphore>,
    profiler: Rc<Profiler>,
    rng: Rc<SimRng>,
    jitter_frac: f64,
    ncpus: usize,
}

impl CpuPool {
    /// Creates a pool of `ncpus` processors.
    ///
    /// `jitter_frac` is the multiplicative jitter applied to each charge
    /// (models cache state and minor interrupt skew).
    ///
    /// # Panics
    ///
    /// Panics if `ncpus` is zero.
    pub fn new(
        sim: &Sim,
        ncpus: usize,
        profiler: Rc<Profiler>,
        rng: Rc<SimRng>,
        jitter_frac: f64,
    ) -> CpuPool {
        assert!(ncpus > 0, "need at least one CPU");
        CpuPool {
            sim: sim.clone(),
            slots: Rc::new(Semaphore::new(ncpus)),
            profiler,
            rng,
            jitter_frac,
            ncpus,
        }
    }

    /// Executes `label` for a mean duration `d`: waits for a free CPU,
    /// occupies it for the (jittered) duration, and charges the profiler.
    pub async fn work(&self, label: &'static str, d: SimDuration) {
        if d == SimDuration::ZERO {
            return;
        }
        let actual = self.rng.jitter(d, self.jitter_frac);
        let _permit = self.slots.acquire().await;
        self.sim.sleep(actual).await;
        self.profiler.charge(label, actual);
    }

    /// Like [`CpuPool::work`] but without jitter — for strictly
    /// deterministic sections (used by a few unit tests and the pure
    /// data-structure cost charges).
    pub async fn work_exact(&self, label: &'static str, d: SimDuration) {
        if d == SimDuration::ZERO {
            return;
        }
        let _permit = self.slots.acquire().await;
        self.sim.sleep(d).await;
        self.profiler.charge(label, d);
    }

    /// Number of processors in the pool.
    pub fn ncpus(&self) -> usize {
        self.ncpus
    }

    /// Number of currently idle processors.
    pub fn idle(&self) -> usize {
        self.slots.available()
    }

    /// The execution-time profiler shared by this pool.
    pub fn profiler(&self) -> &Rc<Profiler> {
        &self.profiler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::SimTime;

    fn pool(sim: &Sim, ncpus: usize) -> Rc<CpuPool> {
        Rc::new(CpuPool::new(
            sim,
            ncpus,
            Rc::new(Profiler::new()),
            Rc::new(SimRng::new(1)),
            0.0,
        ))
    }

    #[test]
    fn single_cpu_serializes_work() {
        let sim = Sim::new();
        let cpu = pool(&sim, 1);
        for _ in 0..3 {
            let cpu = Rc::clone(&cpu);
            sim.spawn(async move {
                cpu.work("job", SimDuration::from_micros(10)).await;
            });
        }
        let s = sim.clone();
        let end = sim.run_until(async move {
            while s.live_tasks() > 1 {
                s.sleep(SimDuration::from_micros(1)).await;
            }
            s.now()
        });
        assert!(
            end >= SimTime(30_000),
            "3 jobs x 10us serialized, got {end}"
        );
    }

    #[test]
    fn two_cpus_run_in_parallel() {
        let sim = Sim::new();
        let cpu = pool(&sim, 2);
        let c1 = Rc::clone(&cpu);
        let c2 = Rc::clone(&cpu);
        let s = sim.clone();
        let end = sim.run_until(async move {
            let a = s.spawn(async move { c1.work("a", SimDuration::from_micros(10)).await });
            let b = s.spawn(async move { c2.work("b", SimDuration::from_micros(10)).await });
            a.await;
            b.await;
            s.now()
        });
        assert_eq!(end, SimTime(10_000), "parallel work should overlap fully");
    }

    #[test]
    fn profiler_accounts_time() {
        let sim = Sim::new();
        let cpu = pool(&sim, 1);
        let c = Rc::clone(&cpu);
        sim.run_until(async move {
            c.work("hot_path", SimDuration::from_micros(5)).await;
            c.work("hot_path", SimDuration::from_micros(5)).await;
        });
        assert_eq!(cpu.profiler().time_in("hot_path").as_micros(), 10);
        assert_eq!(cpu.profiler().hits("hot_path"), 2);
    }

    #[test]
    fn zero_work_is_free() {
        let sim = Sim::new();
        let cpu = pool(&sim, 1);
        let c = Rc::clone(&cpu);
        sim.run_until(async move {
            c.work("nothing", SimDuration::ZERO).await;
        });
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(cpu.profiler().hits("nothing"), 0);
    }

    #[test]
    fn idle_accounting() {
        let sim = Sim::new();
        let cpu = pool(&sim, 2);
        assert_eq!(cpu.ncpus(), 2);
        assert_eq!(cpu.idle(), 2);
    }
}
