//! Simulated Linux-2.4-style kernel substrate.
//!
//! Bundles the pieces of the client machine that the paper's write path
//! runs on: CPUs ([`cpu::CpuPool`]), the global kernel lock, dirty-page
//! accounting with writer throttling ([`memory::MemoryModel`]), page
//! arithmetic ([`page`]), the calibrated cost table ([`costs::CostTable`])
//! and the VFS file trait ([`vfs::SimFile`]).

pub mod costs;
pub mod cpu;
pub mod memory;
pub mod page;
pub mod vfs;

use std::rc::Rc;

use nfsperf_sim::{Profiler, Sim, SimLock, SimRng};

pub use costs::CostTable;
pub use cpu::CpuPool;
pub use memory::{MemTuning, MemoryModel, PageSeg};
pub use page::{page_index, page_start, pages_for, split_into_pages, PageSegment, PAGE_SIZE};
pub use vfs::{SimFile, VfsError, VfsResult};

/// Configuration for a simulated client machine.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Number of processors (the paper's client is a dual P3).
    pub ncpus: usize,
    /// Installed RAM in bytes (the paper's client has 256 MB).
    pub ram_bytes: u64,
    /// Seed for all randomness on this machine.
    pub seed: u64,
    /// CPU cost table.
    pub costs: CostTable,
    /// Dirty-memory thresholds (defaults reproduce 2.4's `bdflush`
    /// constants exactly).
    pub mem: MemTuning,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            ncpus: 2,
            ram_bytes: 256 * 1024 * 1024,
            seed: 0x5eed,
            costs: CostTable::default(),
            mem: MemTuning::default(),
        }
    }
}

/// A simulated client machine: CPUs, RAM, the global kernel lock, and the
/// shared measurement instruments.
///
/// Cheap to clone; all state is behind `Rc`.
#[derive(Clone)]
pub struct Kernel {
    /// The simulator this machine lives in.
    pub sim: Sim,
    /// The machine's processors.
    pub cpus: Rc<CpuPool>,
    /// The Linux 2.4 global kernel lock (BKL).
    pub bkl: Rc<SimLock>,
    /// Dirty-page accounting and writer throttling.
    pub mem: Rc<MemoryModel>,
    /// Shared execution profiler (same instance the CPU pool charges).
    pub profiler: Rc<Profiler>,
    /// Machine-local randomness.
    pub rng: Rc<SimRng>,
    /// The calibrated cost table.
    pub costs: Rc<CostTable>,
}

impl Kernel {
    /// Boots a simulated machine into `sim`.
    pub fn new(sim: &Sim, config: KernelConfig) -> Kernel {
        let profiler = Rc::new(Profiler::new());
        let rng = Rc::new(SimRng::new(config.seed));
        let cpus = Rc::new(CpuPool::new(
            sim,
            config.ncpus,
            Rc::clone(&profiler),
            Rc::clone(&rng),
            config.costs.cpu_jitter_frac,
        ));
        Kernel {
            sim: sim.clone(),
            cpus,
            bkl: Rc::new(SimLock::new(sim)),
            mem: Rc::new(MemoryModel::for_ram_tuned(
                sim,
                config.ram_bytes,
                config.mem,
            )),
            profiler,
            rng,
            costs: Rc::new(config.costs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_client() {
        let c = KernelConfig::default();
        assert_eq!(c.ncpus, 2);
        assert_eq!(c.ram_bytes, 256 * 1024 * 1024);
    }

    #[test]
    fn kernel_boots() {
        let sim = Sim::new();
        let k = Kernel::new(&sim, KernelConfig::default());
        assert_eq!(k.cpus.ncpus(), 2);
        assert!(!k.bkl.is_locked());
        assert_eq!(k.mem.dirty_pages(), 0);
    }

    #[test]
    fn kernel_clone_shares_state() {
        let sim = Sim::new();
        let k = Kernel::new(&sim, KernelConfig::default());
        let k2 = k.clone();
        k.profiler
            .charge("x", nfsperf_sim::SimDuration::from_micros(1));
        assert_eq!(k2.profiler.hits("x"), 1);
    }
}
