//! The calibrated cost table.
//!
//! Every CPU cost charged anywhere in the model comes from this one table,
//! so calibration is a single-file affair. Values are chosen to match the
//! paper's measured anchors on its dual 933 MHz Pentium III client:
//!
//! - `sock_sendmsg` ≈ 50 µs per RPC request (paper §3.5, measured),
//! - an uncontended 8 KiB `write()` ≈ 55–70 µs, giving the ~140 MB/s
//!   memory-write ceiling of Table 1,
//! - list-scan costs producing Figure 3's growth to ≈1.2 ms at 6400 calls,
//! - ext2 page-cache copies giving the ≈190–200 MB/s local peak of
//!   Figure 1.

use nfsperf_sim::SimDuration;

/// Per-operation CPU costs for the simulated client.
///
/// All durations are the *mean* cost; the CPU pool applies multiplicative
/// jitter of [`CostTable::cpu_jitter_frac`] to each charge.
#[derive(Debug, Clone)]
pub struct CostTable {
    /// Fixed `write()` system-call overhead (entry, fget, VFS dispatch).
    pub write_syscall_fixed: SimDuration,
    /// Copying 4 KiB from user space into a page-cache page, plus
    /// `prepare_write` bookkeeping.
    pub page_copy: SimDuration,
    /// Allocating and initialising one `struct nfs_page` write request.
    pub request_setup: SimDuration,
    /// Scanning one request-list entry that is resident in L2 cache.
    pub list_scan_hot: SimDuration,
    /// Scanning one request-list entry once the list has outgrown L2.
    pub list_scan_cold: SimDuration,
    /// Number of list entries that fit in L2 before scans go cold.
    pub list_hot_entries: usize,
    /// One hash-table lookup or insert (the paper's fix).
    pub hash_op: SimDuration,
    /// `sock_sendmsg()` CPU time per RPC request (paper: ~50 µs).
    pub sock_sendmsg: SimDuration,
    /// Building an RPC call message (XDR encode, slot bookkeeping).
    pub rpc_encode: SimDuration,
    /// Processing one RPC reply (softirq + rpciod completion).
    pub rpc_reply: SimDuration,
    /// Raw interrupt entry/exit per received packet group.
    pub interrupt: SimDuration,
    /// Portion of per-page work done while holding the kernel lock in
    /// `nfs_commit_write`.
    pub commit_write_locked: SimDuration,
    /// Queueing/strategy work when flushing requests into RPCs, per RPC.
    pub flush_setup: SimDuration,
    /// ext2: copy 4 KiB into the page cache and mark buffers dirty.
    pub ext2_page_write: SimDuration,
    /// Entering `balance_dirty_pages`-style foreground throttling: the
    /// dirty-ratio check plus scheduling bookkeeping, charged once per
    /// excursion over the dirty ratio.
    pub balance_dirty_pages: SimDuration,
    /// Multiplicative jitter applied to every CPU charge.
    pub cpu_jitter_frac: f64,
}

impl CostTable {
    /// Costs calibrated for the paper's dual 933 MHz Pentium III client.
    pub fn pentium3_933() -> CostTable {
        CostTable {
            write_syscall_fixed: SimDuration::from_nanos(6_000),
            page_copy: SimDuration::from_nanos(20_000),
            request_setup: SimDuration::from_nanos(2_500),
            list_scan_hot: SimDuration::from_nanos(10),
            list_scan_cold: SimDuration::from_nanos(50),
            list_hot_entries: 2_000,
            hash_op: SimDuration::from_nanos(300),
            sock_sendmsg: SimDuration::from_nanos(50_000),
            rpc_encode: SimDuration::from_nanos(6_000),
            rpc_reply: SimDuration::from_nanos(10_000),
            interrupt: SimDuration::from_nanos(4_000),
            commit_write_locked: SimDuration::from_nanos(6_000),
            flush_setup: SimDuration::from_nanos(4_000),
            ext2_page_write: SimDuration::from_nanos(19_000),
            balance_dirty_pages: SimDuration::from_nanos(3_000),
            cpu_jitter_frac: 0.08,
        }
    }

    /// Cost of scanning `n` request-list entries (the inline
    /// `_nfs_find_request` walk): hot until [`CostTable::list_hot_entries`],
    /// cold beyond — long lists fall out of L2 and each hop is a cache
    /// miss, which is what makes Figure 3 grow super-linearly at first
    /// and then settle on the cold slope.
    pub fn list_scan(&self, n: usize) -> SimDuration {
        let hot = n.min(self.list_hot_entries) as u64;
        let cold = n.saturating_sub(self.list_hot_entries) as u64;
        SimDuration(hot * self.list_scan_hot.as_nanos() + cold * self.list_scan_cold.as_nanos())
    }
}

impl Default for CostTable {
    fn default() -> Self {
        CostTable::pentium3_933()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_8k_write_cost_is_near_60us() {
        // Sanity-check the calibration: fixed + 2 * (copy + setup + locked
        // commit) should land in the 50–70 µs band that yields the paper's
        // ~140 MB/s ceiling.
        let c = CostTable::pentium3_933();
        let per_call = c.write_syscall_fixed.as_nanos()
            + 2 * (c.page_copy.as_nanos()
                + c.request_setup.as_nanos()
                + c.commit_write_locked.as_nanos());
        assert!(
            (50_000..=70_000).contains(&per_call),
            "8K write cost {per_call}ns outside calibration band"
        );
    }

    #[test]
    fn list_scan_hot_region() {
        let c = CostTable::pentium3_933();
        assert_eq!(c.list_scan(0), SimDuration::ZERO);
        assert_eq!(c.list_scan(100).as_nanos(), 100 * 10);
        assert_eq!(c.list_scan(2_000).as_nanos(), 2_000 * 10);
    }

    #[test]
    fn list_scan_cold_region_is_steeper() {
        let c = CostTable::pentium3_933();
        let at_2k = c.list_scan(2_000).as_nanos();
        let at_4k = c.list_scan(4_000).as_nanos();
        // The second 2000 entries cost 5x the first 2000.
        assert_eq!(at_4k - at_2k, 2_000 * 50);
    }

    #[test]
    fn list_scan_matches_figure3_end_of_run() {
        // Figure 3: after ~6400 8 KiB writes (12,800 requests) a single
        // write's two scans take on the order of a millisecond.
        let c = CostTable::pentium3_933();
        let two_scans = c.list_scan(12_800) * 2;
        assert!(
            (800_000..=1_500_000).contains(&two_scans.as_nanos()),
            "two scans of 12800 entries = {two_scans}, expected ~1ms"
        );
    }

    #[test]
    fn ext2_copy_rate_near_200_mbps() {
        let c = CostTable::pentium3_933();
        let bytes_per_sec = 4096.0 / c.ext2_page_write.as_secs_f64();
        assert!(
            (1.8e8..=2.4e8).contains(&bytes_per_sec),
            "ext2 copy rate {bytes_per_sec} B/s"
        );
    }
}
