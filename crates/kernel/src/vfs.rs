//! Minimal VFS layer: the file abstraction the benchmark writes through.
//!
//! The benchmark does not care whether it writes to NFS or ext2, just like
//! Bonnie does not; [`SimFile`] is the seam. `write` takes an offset and a
//! length rather than data — the simulation models *costs*, not contents —
//! while the protocol crates still encode real (synthetic) bytes when a
//! message needs a wire size.

use std::future::Future;

/// Errors surfaced by the simulated file systems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// The file was already closed.
    Closed,
    /// The server rejected an operation (carries the protocol status).
    Server(u32),
}

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfsError::Closed => write!(f, "file is closed"),
            VfsError::Server(s) => write!(f, "server error status {s}"),
        }
    }
}

impl std::error::Error for VfsError {}

/// Result alias for VFS operations.
pub type VfsResult<T> = Result<T, VfsError>;

/// A writable simulated file.
///
/// Implemented by the NFS client (`nfsperf-client`) and the local ext2
/// model (`nfsperf-ext2`); consumed generically by the Bonnie benchmark.
pub trait SimFile {
    /// Writes `len` bytes at byte `offset`, returning the bytes written.
    ///
    /// Blocks (in simulated time) exactly where the modelled kernel write
    /// path would: page allocation under memory pressure, the 2.4.4
    /// soft/hard request limits, lock acquisition.
    fn write(&self, offset: u64, len: u64) -> impl Future<Output = VfsResult<u64>>;

    /// Flushes all dirty data (and for NFS, commits it), returning when
    /// everything the file has accepted is durable at its destination.
    fn fsync(&self) -> impl Future<Output = VfsResult<()>>;

    /// Closes the file. NFS flushes completely before the last close
    /// (close-to-open consistency); ext2 may leave dirty data cached.
    fn close(&self) -> impl Future<Output = VfsResult<()>>;

    /// Total bytes accepted by `write` so far.
    fn bytes_written(&self) -> u64;
}
