//! Client memory model: dirty-page accounting and writer throttling.
//!
//! The paper's Figures 1 and 7 hinge on what happens when the benchmark
//! file outgrows client RAM (256 MB): the VFS blocks the writer until
//! writeback frees pages, so application throughput collapses to
//! network/server/disk speed. This module models exactly that and nothing
//! more: a budget of pages, a hard limit at which page allocation blocks,
//! and a background threshold at which the write-behind daemon should be
//! kicked.

use std::cell::Cell;

use nfsperf_sim::{Sim, SimDuration, SimTime, WaitQueue};

/// Dirty-page budget with writer throttling.
///
/// "Dirty" here means *pinned by an outstanding write*: for NFS a page
/// stays pinned until its WRITE (and, for unstable writes, COMMIT) is
/// complete; for ext2 until `bdflush` has written it to disk.
pub struct MemoryModel {
    sim: Sim,
    /// Pages that may be pinned dirty before writers block.
    hard_limit: usize,
    /// Dirty level above which background writeback should run.
    background_limit: usize,
    dirty: Cell<usize>,
    peak_dirty: Cell<usize>,
    throttle_events: Cell<u64>,
    throttle_time: Cell<u64>,
    /// Writers blocked on the hard limit.
    throttled: WaitQueue,
    /// Writeback daemons waiting for the background threshold.
    writeback_kick: WaitQueue,
}

impl MemoryModel {
    /// Creates a budget of `hard_limit` pinnable pages with background
    /// writeback starting at `background_limit`.
    ///
    /// # Panics
    ///
    /// Panics if `background_limit > hard_limit` or `hard_limit == 0`.
    pub fn new(sim: &Sim, hard_limit: usize, background_limit: usize) -> MemoryModel {
        assert!(hard_limit > 0, "page budget must be positive");
        assert!(
            background_limit <= hard_limit,
            "background limit {background_limit} exceeds hard limit {hard_limit}"
        );
        MemoryModel {
            sim: sim.clone(),
            hard_limit,
            background_limit,
            dirty: Cell::new(0),
            peak_dirty: Cell::new(0),
            throttle_events: Cell::new(0),
            throttle_time: Cell::new(0),
            throttled: WaitQueue::new(),
            writeback_kick: WaitQueue::new(),
        }
    }

    /// Builds a model sized for `ram_bytes` of RAM: the hard limit is the
    /// usable page-cache share (about 7/8 of RAM, the rest being kernel
    /// text and anonymous memory) and background writeback starts at half
    /// of it — 2.4's `bdflush` default of ~40–60 % dirty.
    pub fn for_ram(sim: &Sim, ram_bytes: u64) -> MemoryModel {
        let pages = (ram_bytes / crate::page::PAGE_SIZE) as usize;
        let hard = pages * 7 / 8;
        MemoryModel::new(sim, hard, hard / 2)
    }

    /// Pins one page as dirty, blocking while the hard limit is reached.
    ///
    /// Wakes background writeback when crossing the background threshold.
    pub async fn pin_dirty_page(&self) {
        if self.dirty.get() >= self.hard_limit {
            self.throttle_events.set(self.throttle_events.get() + 1);
            // Make sure writeback is running before we sleep on it.
            self.writeback_kick.wake_all();
            let began: SimTime = self.sim.now();
            while self.dirty.get() >= self.hard_limit {
                self.throttled.wait().await;
            }
            let waited = self.sim.now().since(began).as_nanos();
            self.throttle_time.set(self.throttle_time.get() + waited);
        }
        let d = self.dirty.get() + 1;
        self.dirty.set(d);
        self.peak_dirty.set(self.peak_dirty.get().max(d));
        if d > self.background_limit {
            self.writeback_kick.wake_all();
        }
    }

    /// Unpins one page (its write reached stable storage or the server),
    /// waking one throttled writer.
    ///
    /// # Panics
    ///
    /// Panics if no page is pinned — a double-release bug in the caller.
    pub fn release_page(&self) {
        let d = self.dirty.get();
        assert!(d > 0, "release_page with no pinned pages");
        self.dirty.set(d - 1);
        if d - 1 < self.hard_limit {
            self.throttled.wake_one();
        }
    }

    /// Parks a writeback daemon until the background threshold is crossed
    /// (or someone kicks writeback explicitly), or until `timeout` elapses.
    pub async fn wait_for_writeback_work(&self, timeout: SimDuration) {
        if self.dirty.get() > self.background_limit {
            return;
        }
        let deadline = self.sim.now() + timeout;
        let kicked = self.writeback_kick.wait();
        let timer = self.sim.sleep_until(deadline);
        // Wait for whichever comes first; both are cheap to abandon.
        futures_select2(kicked, timer).await;
    }

    /// Explicitly kicks writeback daemons (e.g. on `fsync`).
    pub fn kick_writeback(&self) {
        self.writeback_kick.wake_all();
    }

    /// Currently pinned dirty pages.
    pub fn dirty_pages(&self) -> usize {
        self.dirty.get()
    }

    /// Highest dirty-page level seen.
    pub fn peak_dirty_pages(&self) -> usize {
        self.peak_dirty.get()
    }

    /// `true` if background writeback should run.
    pub fn over_background_limit(&self) -> bool {
        self.dirty.get() > self.background_limit
    }

    /// The hard (blocking) limit in pages.
    pub fn hard_limit(&self) -> usize {
        self.hard_limit
    }

    /// The background-writeback threshold in pages.
    pub fn background_limit(&self) -> usize {
        self.background_limit
    }

    /// How many times a writer hit the hard limit.
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events.get()
    }

    /// Total time writers spent blocked on the hard limit.
    pub fn throttle_time(&self) -> SimDuration {
        SimDuration(self.throttle_time.get())
    }
}

/// Awaits whichever of two futures completes first, dropping the other.
async fn futures_select2<A, B>(a: A, b: B)
where
    A: std::future::Future<Output = ()>,
    B: std::future::Future<Output = ()>,
{
    use std::pin::pin;
    use std::task::Poll;

    let mut a = pin!(a);
    let mut b = pin!(b);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(()) = a.as_mut().poll(cx) {
            return Poll::Ready(());
        }
        if let Poll::Ready(()) = b.as_mut().poll(cx) {
            return Poll::Ready(());
        }
        Poll::Pending
    })
    .await;
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::Sim;
    use std::rc::Rc;

    #[test]
    fn pin_and_release_track_counts() {
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 10, 5));
        let m = Rc::clone(&mem);
        sim.run_until(async move {
            for _ in 0..7 {
                m.pin_dirty_page().await;
            }
            assert_eq!(m.dirty_pages(), 7);
            assert!(m.over_background_limit());
            m.release_page();
            assert_eq!(m.dirty_pages(), 6);
            assert_eq!(m.peak_dirty_pages(), 7);
        });
    }

    #[test]
    fn writer_blocks_at_hard_limit() {
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 2, 1));
        let m = Rc::clone(&mem);
        let s = sim.clone();
        let writer = sim.spawn(async move {
            for _ in 0..3 {
                m.pin_dirty_page().await;
            }
            s.now()
        });
        let m2 = Rc::clone(&mem);
        let s2 = sim.clone();
        let done_at = sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(50)).await;
            assert_eq!(m2.dirty_pages(), 2, "third pin must be blocked");
            m2.release_page();
            writer.await
        });
        assert_eq!(done_at.as_nanos(), 50_000);
        assert_eq!(mem.throttle_events(), 1);
        assert_eq!(mem.throttle_time().as_micros(), 50);
        assert_eq!(mem.dirty_pages(), 2);
    }

    #[test]
    fn for_ram_sizes_sensibly() {
        let sim = Sim::new();
        let mem = MemoryModel::for_ram(&sim, 256 * 1024 * 1024);
        // 65536 pages of RAM; hard limit 7/8 of that.
        assert_eq!(mem.hard_limit(), 57_344);
        assert_eq!(mem.background_limit(), 28_672);
    }

    #[test]
    fn writeback_wait_returns_on_kick() {
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 100, 50));
        let m = Rc::clone(&mem);
        let s = sim.clone();
        let daemon = sim.spawn(async move {
            m.wait_for_writeback_work(SimDuration::from_secs(60)).await;
            s.now()
        });
        let m2 = Rc::clone(&mem);
        let s2 = sim.clone();
        let woke_at = sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(10)).await;
            m2.kick_writeback();
            daemon.await
        });
        assert_eq!(woke_at.as_nanos(), 10_000, "kick should beat the timeout");
    }

    #[test]
    fn writeback_wait_returns_on_timeout() {
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 100, 50));
        let m = Rc::clone(&mem);
        let s = sim.clone();
        let woke_at = sim.run_until(async move {
            m.wait_for_writeback_work(SimDuration::from_millis(5)).await;
            s.now()
        });
        assert_eq!(woke_at.as_nanos(), 5_000_000);
    }

    #[test]
    fn writeback_wait_immediate_when_over_limit() {
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 100, 2));
        let m = Rc::clone(&mem);
        sim.run_until(async move {
            for _ in 0..3 {
                m.pin_dirty_page().await;
            }
            m.wait_for_writeback_work(SimDuration::from_secs(60)).await;
            // Reaching here without the deadlock panic is the assertion.
        });
        assert_eq!(sim.now().as_nanos(), 0);
    }

    #[test]
    #[should_panic(expected = "release_page with no pinned pages")]
    fn double_release_panics() {
        let sim = Sim::new();
        let mem = MemoryModel::new(&sim, 4, 2);
        mem.release_page();
    }
}
