//! Client memory model: dirty-page accounting and writer throttling.
//!
//! The paper's Figures 1 and 7 hinge on what happens when the benchmark
//! file outgrows client RAM (256 MB): the VFS blocks the writer until
//! writeback frees pages, so application throughput collapses to
//! network/server/disk speed. This module models that with a CAWL-style
//! page budget: ratio-driven thresholds ([`MemTuning`]), pinned pages
//! segmented by writeback state ([`PageSeg`]), FIFO writer throttling at
//! the hard limit, and an edge-triggered kick for the write-behind daemon
//! at the background threshold.
//!
//! ## Determinism
//!
//! Handoff at the hard limit is grant-based: `release_pages` transfers
//! freed capacity directly to the longest-waiting writer instead of
//! letting woken writers race fresh pinners. A fresh pin joins the back
//! of the queue whenever capacity is already spoken for, so writers pin
//! in strict arrival order and no sleeper can be stranded by a barger.
//! Grants assume a woken writer completes its pin (writer tasks are
//! never cancelled mid-pin in this simulator).

use std::cell::Cell;

use nfsperf_sim::{Sim, SimDuration, SimTime, WaitQueue};

/// Dirty-memory thresholds as a fraction of the page-cache, in 1/256ths.
///
/// Mirrors Linux's `dirty_ratio`/`dirty_background_ratio` sysctls but in
/// per-256 fixed point so the 2.4-era defaults are *exact*: 224/256 is
/// precisely the old hardcoded 7/8 page-cache share, and 112/256 is
/// precisely half of it, so default tuning reproduces the historical
/// limits bit-for-bit at every RAM size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTuning {
    /// Pinned-page hard limit as a fraction of RAM pages, per 256.
    /// Writers block (or, with foreground throttling, do writeback
    /// themselves) above this. Default 224 (= 7/8).
    pub dirty_ratio: u32,
    /// Background writeback threshold, per 256. The write-behind daemon
    /// is kicked when pinned pages cross this. Default 112 (= 7/16,
    /// i.e. half the hard limit — 2.4's `bdflush` ~40–60 % dirty).
    pub dirty_background_ratio: u32,
}

impl Default for MemTuning {
    fn default() -> MemTuning {
        MemTuning {
            dirty_ratio: 224,
            dirty_background_ratio: 112,
        }
    }
}

/// Which writeback stage a pinned page is in.
///
/// A page moves `Dirty` → `Writeback` when its WRITE is put on the wire,
/// `Writeback` → `Unstable` when an UNSTABLE reply pins it awaiting
/// COMMIT, and back to `Dirty` when a write must be redone (transport
/// error, COMMIT verifier mismatch). It is released from `Writeback`
/// (stable write done) or `Unstable` (COMMIT confirmed) — or straight
/// from `Dirty` for local filesystems that write synchronously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageSeg {
    /// Dirtied by the application, not yet scheduled for writeback.
    Dirty,
    /// WRITE in flight (or stable write being performed).
    Writeback,
    /// Unstable WRITE acknowledged; pinned until COMMIT confirms it.
    Unstable,
}

impl PageSeg {
    fn index(self) -> usize {
        match self {
            PageSeg::Dirty => 0,
            PageSeg::Writeback => 1,
            PageSeg::Unstable => 2,
        }
    }
}

/// Dirty-page budget with writer throttling.
///
/// "Dirty" here means *pinned by an outstanding write*: for NFS a page
/// stays pinned until its WRITE (and, for unstable writes, COMMIT) is
/// complete; for ext2 until `bdflush` has written it to disk. The three
/// [`PageSeg`] counters partition the pinned total; the hard and
/// background limits apply to the total, exactly as 2.4 accounted
/// `nr_dirty + nr_writeback` against `bdflush` thresholds.
pub struct MemoryModel {
    sim: Sim,
    /// Pages that may be pinned before writers block.
    hard_limit: usize,
    /// Pinned level above which background writeback should run.
    background_limit: usize,
    /// Pinned pages by segment: `[dirty, writeback, unstable]`.
    segs: [Cell<usize>; 3],
    /// Freed capacity already promised to woken writers (S1 handoff).
    granted: Cell<usize>,
    background_kicks: Cell<u64>,
    peak_dirty: Cell<usize>,
    throttle_events: Cell<u64>,
    throttle_time: Cell<u64>,
    /// Writers blocked on the hard limit, in arrival order.
    throttled: WaitQueue,
    /// Writeback daemons waiting for the background threshold.
    writeback_kick: WaitQueue,
}

impl MemoryModel {
    /// Creates a budget of `hard_limit` pinnable pages with background
    /// writeback starting at `background_limit`.
    ///
    /// # Panics
    ///
    /// Panics if `background_limit > hard_limit` or `hard_limit == 0`.
    pub fn new(sim: &Sim, hard_limit: usize, background_limit: usize) -> MemoryModel {
        assert!(hard_limit > 0, "page budget must be positive");
        assert!(
            background_limit <= hard_limit,
            "background limit {background_limit} exceeds hard limit {hard_limit}"
        );
        MemoryModel {
            sim: sim.clone(),
            hard_limit,
            background_limit,
            segs: [Cell::new(0), Cell::new(0), Cell::new(0)],
            granted: Cell::new(0),
            background_kicks: Cell::new(0),
            peak_dirty: Cell::new(0),
            throttle_events: Cell::new(0),
            throttle_time: Cell::new(0),
            throttled: WaitQueue::new(),
            writeback_kick: WaitQueue::new(),
        }
    }

    /// Builds a model sized for `ram_bytes` of RAM under default (2.4
    /// `bdflush`-era) tuning: hard limit at 7/8 of RAM pages, background
    /// writeback from half of that.
    pub fn for_ram(sim: &Sim, ram_bytes: u64) -> MemoryModel {
        MemoryModel::for_ram_tuned(sim, ram_bytes, MemTuning::default())
    }

    /// Builds a model sized for `ram_bytes` of RAM with explicit
    /// dirty-ratio tuning.
    ///
    /// # Panics
    ///
    /// Panics if `dirty_ratio` is 0 or over 256, or if
    /// `dirty_background_ratio` exceeds `dirty_ratio`.
    pub fn for_ram_tuned(sim: &Sim, ram_bytes: u64, tuning: MemTuning) -> MemoryModel {
        assert!(
            tuning.dirty_ratio > 0 && tuning.dirty_ratio <= 256,
            "dirty_ratio must be in 1..=256 (per-256 fixed point)"
        );
        assert!(
            tuning.dirty_background_ratio <= tuning.dirty_ratio,
            "dirty_background_ratio {} exceeds dirty_ratio {}",
            tuning.dirty_background_ratio,
            tuning.dirty_ratio
        );
        let pages = (ram_bytes / crate::page::PAGE_SIZE) as usize;
        let hard = pages * tuning.dirty_ratio as usize / 256;
        let background = pages * tuning.dirty_background_ratio as usize / 256;
        MemoryModel::new(sim, hard.max(1), background.min(hard.max(1)))
    }

    fn total(&self) -> usize {
        self.segs[0].get() + self.segs[1].get() + self.segs[2].get()
    }

    /// `true` when a fresh pin must join the throttle queue: either all
    /// capacity is pinned or promised to already-woken writers, or older
    /// writers are still queued (FIFO — no barging past them).
    fn must_queue(&self) -> bool {
        self.total() + self.granted.get() >= self.hard_limit || !self.throttled.is_empty()
    }

    /// Hands freed capacity to the longest-waiting writers, one grant per
    /// free page, preserving arrival order.
    fn grant_freed_capacity(&self) {
        while self.total() + self.granted.get() < self.hard_limit && self.throttled.wake_one() {
            self.granted.set(self.granted.get() + 1);
        }
    }

    /// Pins one page as dirty, blocking while the hard limit is reached.
    ///
    /// Wakes background writeback when *crossing* the background
    /// threshold (edge-triggered: one kick per excursion over the limit).
    pub async fn pin_dirty_page(&self) {
        if self.must_queue() {
            self.throttle_events.set(self.throttle_events.get() + 1);
            // Make sure writeback is running before we sleep on it.
            self.writeback_kick.wake_all();
            let began: SimTime = self.sim.now();
            self.throttled.wait().await;
            // Woken only by grant_freed_capacity, which reserved a page
            // for us — consume the grant and pin without re-racing.
            let g = self.granted.get();
            debug_assert!(g > 0, "throttled writer woken without a grant");
            self.granted.set(g - 1);
            let waited = self.sim.now().since(began).as_nanos();
            self.throttle_time.set(self.throttle_time.get() + waited);
        }
        let seg = &self.segs[PageSeg::Dirty.index()];
        seg.set(seg.get() + 1);
        let total = self.total();
        debug_assert!(total <= self.hard_limit, "pinned past the hard limit");
        self.peak_dirty.set(self.peak_dirty.get().max(total));
        if total == self.background_limit + 1 {
            self.background_kicks.set(self.background_kicks.get() + 1);
            self.writeback_kick.wake_all();
        }
    }

    /// Writeback kicks issued from the pin path on the background
    /// threshold (one per excursion over the limit).
    pub fn background_kicks(&self) -> u64 {
        self.background_kicks.get()
    }

    /// Moves `n` pinned pages from one writeback segment to another
    /// (e.g. `Dirty` → `Writeback` when a batch is put on the wire).
    /// The pinned total is unchanged, so no writers are woken.
    ///
    /// # Panics
    ///
    /// Panics if segment `from` holds fewer than `n` pages.
    pub fn move_pages(&self, from: PageSeg, to: PageSeg, n: usize) {
        let src = &self.segs[from.index()];
        let have = src.get();
        assert!(
            have >= n,
            "move_pages underflow: moving {n} from {from:?} with {have} pinned"
        );
        src.set(have - n);
        let dst = &self.segs[to.index()];
        dst.set(dst.get() + n);
    }

    /// Unpins `n` pages from segment `seg` (their writes are durable or
    /// COMMIT-confirmed), handing freed capacity to throttled writers in
    /// FIFO order.
    ///
    /// # Panics
    ///
    /// Panics if segment `seg` holds fewer than `n` pages — a
    /// double-release bug in the caller.
    pub fn release_pages(&self, seg: PageSeg, n: usize) {
        let src = &self.segs[seg.index()];
        let have = src.get();
        assert!(
            have >= n,
            "release_pages underflow: releasing {n} from {seg:?} with {have} pinned"
        );
        src.set(have - n);
        self.grant_freed_capacity();
    }

    /// Unpins one `Dirty` page, waking one throttled writer.
    ///
    /// Shorthand for local filesystems whose pages never leave the
    /// `Dirty` segment; NFS paths release from the segment the page is
    /// actually in via [`MemoryModel::release_pages`].
    ///
    /// # Panics
    ///
    /// Panics if no page is pinned — a double-release bug in the caller.
    pub fn release_page(&self) {
        assert!(
            self.segs[PageSeg::Dirty.index()].get() > 0,
            "release_page with no pinned pages"
        );
        self.release_pages(PageSeg::Dirty, 1);
    }

    /// Parks a writeback daemon until the background threshold is crossed
    /// (or someone kicks writeback explicitly), or until `timeout` elapses.
    pub async fn wait_for_writeback_work(&self, timeout: SimDuration) {
        if self.total() > self.background_limit {
            return;
        }
        let deadline = self.sim.now() + timeout;
        let kicked = self.writeback_kick.wait();
        let timer = self.sim.sleep_until(deadline);
        // Wait for whichever comes first; both are cheap to abandon.
        futures_select2(kicked, timer).await;
    }

    /// Explicitly kicks writeback daemons (e.g. on `fsync`).
    pub fn kick_writeback(&self) {
        self.writeback_kick.wake_all();
    }

    /// Total currently pinned pages across all segments.
    pub fn dirty_pages(&self) -> usize {
        self.total()
    }

    /// Currently pinned pages in one writeback segment.
    pub fn seg_pages(&self, seg: PageSeg) -> usize {
        self.segs[seg.index()].get()
    }

    /// Highest pinned-page level seen.
    pub fn peak_dirty_pages(&self) -> usize {
        self.peak_dirty.get()
    }

    /// `true` if background writeback should run.
    pub fn over_background_limit(&self) -> bool {
        self.total() > self.background_limit
    }

    /// `true` if the pinned total has reached the hard limit — a fresh
    /// pin would block (or should do foreground writeback first).
    pub fn over_hard_limit(&self) -> bool {
        self.total() + self.granted.get() >= self.hard_limit
    }

    /// The hard (blocking) limit in pages.
    pub fn hard_limit(&self) -> usize {
        self.hard_limit
    }

    /// The background-writeback threshold in pages.
    pub fn background_limit(&self) -> usize {
        self.background_limit
    }

    /// How many times a writer hit the hard limit.
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events.get()
    }

    /// Records a foreground-throttle event (a writer over the dirty
    /// ratio doing its own writeback in `balance_dirty_pages` style).
    pub fn note_throttle_event(&self) {
        self.throttle_events.set(self.throttle_events.get() + 1);
    }

    /// Adds time a writer spent doing or awaiting foreground writeback.
    pub fn add_throttle_time(&self, d: SimDuration) {
        self.throttle_time.set(self.throttle_time.get() + d.as_nanos());
    }

    /// Total time writers spent blocked on the hard limit (including
    /// foreground writeback time under `balance_dirty_pages` throttling).
    pub fn throttle_time(&self) -> SimDuration {
        SimDuration(self.throttle_time.get())
    }
}

/// Awaits whichever of two futures completes first, dropping the other.
async fn futures_select2<A, B>(a: A, b: B)
where
    A: std::future::Future<Output = ()>,
    B: std::future::Future<Output = ()>,
{
    use std::pin::pin;
    use std::task::Poll;

    let mut a = pin!(a);
    let mut b = pin!(b);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(()) = a.as_mut().poll(cx) {
            return Poll::Ready(());
        }
        if let Poll::Ready(()) = b.as_mut().poll(cx) {
            return Poll::Ready(());
        }
        Poll::Pending
    })
    .await;
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_sim::Sim;
    use std::rc::Rc;

    #[test]
    fn pin_and_release_track_counts() {
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 10, 5));
        let m = Rc::clone(&mem);
        sim.run_until(async move {
            for _ in 0..7 {
                m.pin_dirty_page().await;
            }
            assert_eq!(m.dirty_pages(), 7);
            assert!(m.over_background_limit());
            m.release_page();
            assert_eq!(m.dirty_pages(), 6);
            assert_eq!(m.peak_dirty_pages(), 7);
        });
    }

    #[test]
    fn writer_blocks_at_hard_limit() {
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 2, 1));
        let m = Rc::clone(&mem);
        let s = sim.clone();
        let writer = sim.spawn(async move {
            for _ in 0..3 {
                m.pin_dirty_page().await;
            }
            s.now()
        });
        let m2 = Rc::clone(&mem);
        let s2 = sim.clone();
        let done_at = sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(50)).await;
            assert_eq!(m2.dirty_pages(), 2, "third pin must be blocked");
            m2.release_page();
            writer.await
        });
        assert_eq!(done_at.as_nanos(), 50_000);
        assert_eq!(mem.throttle_events(), 1);
        assert_eq!(mem.throttle_time().as_micros(), 50);
        assert_eq!(mem.dirty_pages(), 2);
    }

    #[test]
    fn for_ram_sizes_sensibly() {
        let sim = Sim::new();
        let mem = MemoryModel::for_ram(&sim, 256 * 1024 * 1024);
        // 65536 pages of RAM; hard limit 7/8 of that.
        assert_eq!(mem.hard_limit(), 57_344);
        assert_eq!(mem.background_limit(), 28_672);
    }

    #[test]
    fn writeback_wait_returns_on_kick() {
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 100, 50));
        let m = Rc::clone(&mem);
        let s = sim.clone();
        let daemon = sim.spawn(async move {
            m.wait_for_writeback_work(SimDuration::from_secs(60)).await;
            s.now()
        });
        let m2 = Rc::clone(&mem);
        let s2 = sim.clone();
        let woke_at = sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(10)).await;
            m2.kick_writeback();
            daemon.await
        });
        assert_eq!(woke_at.as_nanos(), 10_000, "kick should beat the timeout");
    }

    #[test]
    fn writeback_wait_returns_on_timeout() {
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 100, 50));
        let m = Rc::clone(&mem);
        let s = sim.clone();
        let woke_at = sim.run_until(async move {
            m.wait_for_writeback_work(SimDuration::from_millis(5)).await;
            s.now()
        });
        assert_eq!(woke_at.as_nanos(), 5_000_000);
    }

    #[test]
    fn writeback_wait_immediate_when_over_limit() {
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 100, 2));
        let m = Rc::clone(&mem);
        sim.run_until(async move {
            for _ in 0..3 {
                m.pin_dirty_page().await;
            }
            m.wait_for_writeback_work(SimDuration::from_secs(60)).await;
            // Reaching here without the deadlock panic is the assertion.
        });
        assert_eq!(sim.now().as_nanos(), 0);
    }

    #[test]
    fn throttled_writers_hand_off_fifo_without_barging() {
        // Satellite regression: with N writers parked at the hard limit,
        // a fresh pin racing a `release_page` wake must not steal the
        // freed slot from the queue head. Handoff is FIFO: parked writers
        // pin in arrival order, and the late "barger" pins last.
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 2, 2));
        let order = Rc::new(std::cell::RefCell::new(Vec::new()));
        let m0 = Rc::clone(&mem);
        let s0 = sim.clone();
        sim.run_until(async move {
            m0.pin_dirty_page().await;
            m0.pin_dirty_page().await;
            // Four writers park on the hard limit in a known order.
            for i in 0..4u32 {
                let m = Rc::clone(&m0);
                let s = s0.clone();
                let ord = Rc::clone(&order);
                s0.spawn(async move {
                    s.sleep(SimDuration::from_micros(u64::from(i) + 1)).await;
                    m.pin_dirty_page().await;
                    ord.borrow_mut().push(i);
                });
            }
            // At t=10 µs a page is released and, in the same task before
            // the woken writer can run, a fresh writer pins ("barger").
            {
                let m = Rc::clone(&m0);
                let ord = Rc::clone(&order);
                let s = s0.clone();
                s0.spawn(async move {
                    s.sleep(SimDuration::from_micros(10)).await;
                    m.release_page();
                    m.pin_dirty_page().await;
                    ord.borrow_mut().push(99);
                });
            }
            // Four more releases let everyone through.
            let m = Rc::clone(&m0);
            let s = s0.clone();
            s0.spawn(async move {
                for k in 0..4u64 {
                    s.sleep(SimDuration::from_micros(20 + k)).await;
                    m.release_page();
                }
            });
            s0.sleep(SimDuration::from_millis(1)).await;
            assert_eq!(
                *order.borrow(),
                vec![0, 1, 2, 3, 99],
                "handoff must be FIFO: parked writers first, barger last"
            );
        });
        assert_eq!(mem.dirty_pages(), 2, "5 pins released 5 times from 2+5");
    }

    #[test]
    fn background_kick_fires_once_per_excursion() {
        // Satellite regression: crossing the background threshold kicks
        // writeback exactly once; pins while already over the limit must
        // not re-kick (the old code called `wake_all` on every pin).
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 100, 2));
        let m = Rc::clone(&mem);
        sim.run_until(async move {
            for _ in 0..10 {
                m.pin_dirty_page().await;
            }
            assert_eq!(m.background_kicks(), 1, "one kick per excursion");
            // Drain below the threshold and cross it again: a second
            // excursion earns exactly one more kick.
            for _ in 0..10 {
                m.release_page();
            }
            for _ in 0..3 {
                m.pin_dirty_page().await;
            }
            assert_eq!(m.background_kicks(), 2);
        });
    }

    #[test]
    fn parked_daemon_wakes_once_per_excursion() {
        // The daemon side of the same regression: a parked daemon is
        // woken once when the threshold is crossed, drains, re-parks, and
        // is woken once more by the next excursion — and the entry check
        // in `wait_for_writeback_work` still catches work that arrived
        // while the daemon was busy (no lost kick).
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 100, 2));
        let wakes = Rc::new(Cell::new(0u32));
        let m = Rc::clone(&mem);
        let w = Rc::clone(&wakes);
        let s = sim.clone();
        sim.spawn(async move {
            loop {
                m.wait_for_writeback_work(SimDuration::from_secs(3600)).await;
                w.set(w.get() + 1);
                // "Writeback": drain everything, then re-park.
                s.sleep(SimDuration::from_micros(5)).await;
                while m.dirty_pages() > 0 {
                    m.release_page();
                }
            }
        });
        let m2 = Rc::clone(&mem);
        let s2 = sim.clone();
        sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(1)).await;
            for _ in 0..10 {
                m2.pin_dirty_page().await;
            }
            s2.sleep(SimDuration::from_micros(50)).await;
            assert_eq!(wakes.get(), 1, "first excursion: exactly one wake");
            for _ in 0..5 {
                m2.pin_dirty_page().await;
            }
            s2.sleep(SimDuration::from_micros(50)).await;
            assert_eq!(wakes.get(), 2, "second excursion: exactly one more");
        });
    }

    #[test]
    #[should_panic(expected = "release_page with no pinned pages")]
    fn double_release_panics() {
        let sim = Sim::new();
        let mem = MemoryModel::new(&sim, 4, 2);
        mem.release_page();
    }

    #[test]
    #[should_panic(expected = "release_pages underflow")]
    fn segment_release_underflow_panics() {
        let sim = Sim::new();
        let mem = MemoryModel::new(&sim, 4, 2);
        mem.release_pages(PageSeg::Unstable, 1);
    }

    #[test]
    #[should_panic(expected = "move_pages underflow")]
    fn segment_move_underflow_panics() {
        let sim = Sim::new();
        let mem = MemoryModel::new(&sim, 4, 2);
        mem.move_pages(PageSeg::Dirty, PageSeg::Writeback, 1);
    }

    #[test]
    fn default_tuning_matches_bdflush_constants() {
        // The per-256 ratios must reproduce the historical hardcoded
        // thresholds exactly — hard = pages*7/8, background = hard/2 —
        // at every RAM size, so default-tuning sweeps stay bit-identical.
        let sim = Sim::new();
        for ram in [
            16u64 << 20,
            64 << 20,
            256 << 20,
            1 << 30,
            4u64 << 30,
            123_456_789,
            (512 << 20) + 4096 * 3,
        ] {
            let mem = MemoryModel::for_ram(&sim, ram);
            let pages = (ram / crate::page::PAGE_SIZE) as usize;
            let old_hard = pages * 7 / 8;
            assert_eq!(mem.hard_limit(), old_hard, "ram={ram}");
            assert_eq!(mem.background_limit(), old_hard / 2, "ram={ram}");
            let tuned = MemoryModel::for_ram_tuned(&sim, ram, MemTuning::default());
            assert_eq!(tuned.hard_limit(), mem.hard_limit());
            assert_eq!(tuned.background_limit(), mem.background_limit());
        }
    }

    #[test]
    fn segments_partition_the_pinned_total() {
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 10, 5));
        let m = Rc::clone(&mem);
        sim.run_until(async move {
            for _ in 0..6 {
                m.pin_dirty_page().await;
            }
            m.move_pages(PageSeg::Dirty, PageSeg::Writeback, 4);
            m.move_pages(PageSeg::Writeback, PageSeg::Unstable, 3);
            assert_eq!(m.seg_pages(PageSeg::Dirty), 2);
            assert_eq!(m.seg_pages(PageSeg::Writeback), 1);
            assert_eq!(m.seg_pages(PageSeg::Unstable), 3);
            assert_eq!(m.dirty_pages(), 6, "moves must not change the total");
            assert!(m.over_background_limit());
            m.release_pages(PageSeg::Unstable, 3);
            m.release_pages(PageSeg::Writeback, 1);
            assert_eq!(m.dirty_pages(), 2);
            assert_eq!(m.peak_dirty_pages(), 6);
        });
    }

    #[test]
    fn moves_do_not_wake_throttled_writers() {
        // A Dirty → Writeback transition changes no capacity; a writer
        // blocked at the hard limit must stay blocked until a release.
        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, 2, 1));
        let m = Rc::clone(&mem);
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            for _ in 0..3 {
                m.pin_dirty_page().await;
            }
            d.set(true);
        });
        let m2 = Rc::clone(&mem);
        let s2 = sim.clone();
        sim.run_until(async move {
            s2.sleep(SimDuration::from_micros(10)).await;
            m2.move_pages(PageSeg::Dirty, PageSeg::Writeback, 2);
            s2.sleep(SimDuration::from_micros(10)).await;
            assert!(!done.get(), "move must not unblock the writer");
            m2.release_pages(PageSeg::Writeback, 1);
            s2.sleep(SimDuration::from_micros(10)).await;
            assert!(done.get(), "release must unblock the writer");
        });
        assert_eq!(mem.dirty_pages(), 2);
    }

    /// One generated op-script case for the segmented-model proptest:
    /// random limits plus a byte-coded sequence of pin/move/release ops.
    fn run_memory_script(hard: usize, background: usize, ops: &[u8]) -> Result<(), String> {
        use std::cell::RefCell;

        let sim = Sim::new();
        let mem = Rc::new(MemoryModel::new(&sim, hard, background));
        let errors: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let pins_started = Rc::new(Cell::new(0usize));
        let pins_done = Rc::new(Cell::new(0usize));
        let m = Rc::clone(&mem);
        let errs = Rc::clone(&errors);
        let started = Rc::clone(&pins_started);
        let finished = Rc::clone(&pins_done);
        let s = sim.clone();
        let ops = ops.to_vec();
        sim.run_until(async move {
            let mut last_throttle = SimDuration(0);
            for &op in &ops {
                match op % 6 {
                    // Writers may block at the hard limit; run each as a
                    // task so the script keeps executing (and releasing).
                    0 | 1 => {
                        started.set(started.get() + 1);
                        let m = Rc::clone(&m);
                        let fin = Rc::clone(&finished);
                        s.spawn(async move {
                            m.pin_dirty_page().await;
                            fin.set(fin.get() + 1);
                        });
                    }
                    2 => {
                        if m.seg_pages(PageSeg::Dirty) > 0 {
                            m.move_pages(PageSeg::Dirty, PageSeg::Writeback, 1);
                        }
                    }
                    3 => {
                        if m.seg_pages(PageSeg::Writeback) > 0 {
                            m.move_pages(PageSeg::Writeback, PageSeg::Unstable, 1);
                        }
                    }
                    4 => {
                        if m.seg_pages(PageSeg::Unstable) > 0 {
                            m.release_pages(PageSeg::Unstable, 1);
                        } else if m.seg_pages(PageSeg::Writeback) > 0 {
                            m.release_pages(PageSeg::Writeback, 1);
                        } else if m.seg_pages(PageSeg::Dirty) > 0 {
                            m.release_page();
                        }
                    }
                    _ => s.sleep(SimDuration::from_micros(1)).await,
                }
                s.sleep(SimDuration::from_nanos(100)).await;
                if m.dirty_pages() > hard {
                    errs.borrow_mut()
                        .push(format!("total {} over hard limit {hard}", m.dirty_pages()));
                }
                if m.throttle_time() < last_throttle {
                    errs.borrow_mut().push("throttle_time went backwards".into());
                }
                last_throttle = m.throttle_time();
            }
            // Full drain: release whatever is pinned until every writer
            // has pinned and released; bounded so a stranded writer (a
            // lost wakeup) fails the property instead of hanging it.
            let mut steps = 0usize;
            while finished.get() < started.get() || m.dirty_pages() > 0 {
                steps += 1;
                if steps > 10 * ops.len() + 100 {
                    errs.borrow_mut().push(format!(
                        "drain stuck: {}/{} pins done, {} pages pinned",
                        finished.get(),
                        started.get(),
                        m.dirty_pages()
                    ));
                    break;
                }
                for seg in [PageSeg::Unstable, PageSeg::Writeback, PageSeg::Dirty] {
                    if m.seg_pages(seg) > 0 {
                        m.release_pages(seg, 1);
                        break;
                    }
                }
                s.sleep(SimDuration::from_micros(1)).await;
            }
        });
        let errs = errors.borrow();
        if let Some(e) = errs.first() {
            return Err(e.clone());
        }
        if mem.dirty_pages() != 0 {
            return Err(format!("{} pages pinned after full drain", mem.dirty_pages()));
        }
        Ok(())
    }

    #[test]
    fn prop_segmented_model_invariants() {
        use nfsperf_sim::proptest::{check, CaseOutcome};

        // Random limits and op scripts: the pinned total never exceeds
        // the hard limit, throttle_time is monotone, no writer is ever
        // stranded, and a full drain leaves zero pinned pages.
        check(
            "memory_segment_invariants",
            |g| {
                let hard = g.usize_in(1, 12);
                let background = g.usize_in(0, hard + 1);
                let ops = g.vec(0, 120, |g| g.any_u8());
                (hard, background, ops)
            },
            |(hard, background, ops)| {
                // Shrunk candidates may fall outside the generated
                // ranges; clamp to the constructor's invariants.
                let hard = (*hard).max(1);
                match run_memory_script(hard, (*background).min(hard), ops) {
                    Ok(()) => CaseOutcome::Pass,
                    Err(e) => CaseOutcome::Fail(e),
                }
            },
        );
    }
}
