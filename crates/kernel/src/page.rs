//! Page-size constants and arithmetic.
//!
//! The modelled client is an i686 Linux 2.4 machine, so pages are 4 KiB.
//! An 8 KiB Bonnie `write()` therefore always touches two pages — the
//! origin of the paper's "every system call in our test generates two
//! write requests".

/// Bytes per page (i686).
pub const PAGE_SIZE: u64 = 4096;

/// Index of the page containing byte `offset`.
#[inline]
pub fn page_index(offset: u64) -> u64 {
    offset / PAGE_SIZE
}

/// Byte offset of the start of page `index`.
#[inline]
pub fn page_start(index: u64) -> u64 {
    index * PAGE_SIZE
}

/// Number of pages needed to hold `bytes` bytes.
#[inline]
pub fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

/// A byte range confined to a single page.
///
/// Produced by [`split_into_pages`]; the VFS hands file systems writes one
/// page at a time, which is why the NFS client maintains one internal
/// request per page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageSegment {
    /// Page index within the file.
    pub index: u64,
    /// Offset of the segment within the page.
    pub offset_in_page: u64,
    /// Segment length in bytes (`1..=PAGE_SIZE`).
    pub len: u64,
}

impl PageSegment {
    /// Absolute file offset of the segment start.
    pub fn file_offset(&self) -> u64 {
        page_start(self.index) + self.offset_in_page
    }
}

/// Splits the byte range `[offset, offset + len)` into per-page segments,
/// in ascending page order — the unit at which `generic_file_write` calls
/// into a file system's `prepare_write`/`commit_write`.
pub fn split_into_pages(offset: u64, len: u64) -> Vec<PageSegment> {
    let mut segments = Vec::new();
    let mut pos = offset;
    let end = offset + len;
    while pos < end {
        let index = page_index(pos);
        let offset_in_page = pos - page_start(index);
        let take = (PAGE_SIZE - offset_in_page).min(end - pos);
        segments.push(PageSegment {
            index,
            offset_in_page,
            len: take,
        });
        pos += take;
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_math() {
        assert_eq!(page_index(0), 0);
        assert_eq!(page_index(4095), 0);
        assert_eq!(page_index(4096), 1);
        assert_eq!(page_start(3), 12288);
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
    }

    #[test]
    fn aligned_8k_write_is_two_pages() {
        let segs = split_into_pages(8192, 8192);
        assert_eq!(
            segs,
            vec![
                PageSegment {
                    index: 2,
                    offset_in_page: 0,
                    len: 4096
                },
                PageSegment {
                    index: 3,
                    offset_in_page: 0,
                    len: 4096
                },
            ]
        );
    }

    #[test]
    fn unaligned_write_spans_three_pages() {
        let segs = split_into_pages(4000, 8192);
        assert_eq!(segs.len(), 3);
        assert_eq!(
            segs[0],
            PageSegment {
                index: 0,
                offset_in_page: 4000,
                len: 96
            }
        );
        assert_eq!(
            segs[1],
            PageSegment {
                index: 1,
                offset_in_page: 0,
                len: 4096
            }
        );
        assert_eq!(
            segs[2],
            PageSegment {
                index: 2,
                offset_in_page: 0,
                len: 4000
            }
        );
        let total: u64 = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 8192);
    }

    #[test]
    fn sub_page_write() {
        let segs = split_into_pages(100, 50);
        assert_eq!(
            segs,
            vec![PageSegment {
                index: 0,
                offset_in_page: 100,
                len: 50
            }]
        );
        assert_eq!(segs[0].file_offset(), 100);
    }

    #[test]
    fn empty_write_yields_nothing() {
        assert!(split_into_pages(123, 0).is_empty());
    }

    #[test]
    fn segments_are_contiguous_and_cover_range() {
        let segs = split_into_pages(777, 20_000);
        let mut pos = 777;
        for s in &segs {
            assert_eq!(s.file_offset(), pos);
            assert!(s.len > 0 && s.len <= PAGE_SIZE);
            assert!(s.offset_in_page + s.len <= PAGE_SIZE);
            pos += s.len;
        }
        assert_eq!(pos, 777 + 20_000);
    }
}
