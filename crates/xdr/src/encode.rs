//! The XDR encoder: big-endian, 4-byte aligned output.

use crate::pad_len;

/// Append-only XDR output buffer.
#[derive(Default, Debug, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Creates an encoder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Encoder {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a 32-bit unsigned integer.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a 32-bit signed integer.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a 64-bit unsigned integer (XDR "unsigned hyper").
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a boolean as a 32-bit 0/1.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u32(u32::from(v));
    }

    /// Appends variable-length opaque data: length word, bytes, zero pad.
    pub fn put_opaque(&mut self, data: &[u8]) {
        self.put_u32(data.len() as u32);
        self.put_opaque_fixed(data);
    }

    /// Appends fixed-length opaque data (no length word), zero padded.
    pub fn put_opaque_fixed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
        self.buf
            .extend(std::iter::repeat_n(0u8, pad_len(data.len())));
    }

    /// Appends a counted-length opaque of `len` **zero** bytes.
    ///
    /// The simulation models payload costs without materialising real file
    /// contents; this writes an honest wire image for a zero-filled
    /// payload in O(len) time with one extend.
    pub fn put_opaque_zeroes(&mut self, len: usize) {
        self.put_u32(len as u32);
        self.buf
            .extend(std::iter::repeat_n(0u8, len + pad_len(len)));
    }

    /// Appends an ASCII/UTF-8 string as XDR string.
    pub fn put_string(&mut self, s: &str) {
        self.put_opaque(s.as_bytes());
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, yielding the wire bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the wire bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_is_big_endian() {
        let mut e = Encoder::new();
        e.put_u32(0x0102_0304);
        assert_eq!(e.bytes(), &[1, 2, 3, 4]);
    }

    #[test]
    fn i32_two_complement() {
        let mut e = Encoder::new();
        e.put_i32(-1);
        assert_eq!(e.bytes(), &[0xff, 0xff, 0xff, 0xff]);
    }

    #[test]
    fn u64_is_big_endian() {
        let mut e = Encoder::new();
        e.put_u64(0x0102_0304_0506_0708);
        assert_eq!(e.bytes(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn opaque_pads_to_four() {
        let mut e = Encoder::new();
        e.put_opaque(&[0xaa, 0xbb, 0xcc]);
        assert_eq!(e.bytes(), &[0, 0, 0, 3, 0xaa, 0xbb, 0xcc, 0]);
    }

    #[test]
    fn opaque_aligned_needs_no_pad() {
        let mut e = Encoder::new();
        e.put_opaque(&[1, 2, 3, 4]);
        assert_eq!(e.len(), 8);
    }

    #[test]
    fn opaque_fixed_has_no_length_word() {
        let mut e = Encoder::new();
        e.put_opaque_fixed(&[9, 9]);
        assert_eq!(e.bytes(), &[9, 9, 0, 0]);
    }

    #[test]
    fn opaque_zeroes_matches_real_opaque() {
        let mut a = Encoder::new();
        a.put_opaque_zeroes(10);
        let mut b = Encoder::new();
        b.put_opaque(&[0u8; 10]);
        assert_eq!(a.bytes(), b.bytes());
    }

    #[test]
    fn string_encoding() {
        let mut e = Encoder::new();
        e.put_string("hello");
        assert_eq!(
            e.bytes(),
            &[0, 0, 0, 5, b'h', b'e', b'l', b'l', b'o', 0, 0, 0]
        );
    }

    #[test]
    fn bool_encoding() {
        let mut e = Encoder::new();
        e.put_bool(true);
        e.put_bool(false);
        assert_eq!(e.bytes(), &[0, 0, 0, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn with_capacity_and_empty() {
        let e = Encoder::with_capacity(64);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }
}
