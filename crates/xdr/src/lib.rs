//! RFC 4506 XDR (External Data Representation) encoding and decoding.
//!
//! SUN RPC and NFS messages are XDR-encoded on the wire; this crate
//! provides the codec the `nfsperf-sunrpc` and `nfsperf-nfs3` crates build
//! their real message encodings on, so that simulated wire sizes (and thus
//! fragmentation and transmission times) come from genuine byte layouts.
//!
//! # Example
//!
//! ```
//! use nfsperf_xdr::{XdrEncode, XdrDecode, Encoder, Decoder};
//!
//! let mut enc = Encoder::new();
//! enc.put_u32(7);
//! enc.put_string("nfs");
//! let bytes = enc.into_bytes();
//! assert_eq!(bytes.len(), 4 + 4 + 4); // u32 + length + "nfs" padded to 4
//!
//! let mut dec = Decoder::new(&bytes);
//! assert_eq!(dec.get_u32().unwrap(), 7);
//! assert_eq!(dec.get_string().unwrap(), "nfs");
//! assert!(dec.is_empty());
//! ```

pub mod decode;
pub mod encode;

pub use decode::{Decoder, XdrError};
pub use encode::Encoder;

/// A type with a canonical XDR encoding.
pub trait XdrEncode {
    /// Appends this value's XDR form to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Returns the encoded size in bytes without materialising the bytes.
    ///
    /// The default implementation encodes into a scratch buffer; types on
    /// hot paths override it with arithmetic.
    fn encoded_len(&self) -> usize {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.len()
    }
}

/// A type decodable from its canonical XDR form.
pub trait XdrDecode: Sized {
    /// Reads one value from `dec`.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError>;
}

/// Number of zero pad bytes needed to reach 4-byte alignment.
#[inline]
pub const fn pad_len(n: usize) -> usize {
    (4 - (n % 4)) % 4
}

/// Length of an XDR opaque/string of `n` bytes including length word and
/// padding.
#[inline]
pub const fn opaque_wire_len(n: usize) -> usize {
    4 + n + pad_len(n)
}

impl XdrEncode for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl XdrDecode for u32 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        dec.get_u32()
    }
}

impl XdrEncode for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl XdrDecode for u64 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        dec.get_u64()
    }
}

impl XdrEncode for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(u32::from(*self));
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl XdrDecode for bool {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        dec.get_bool()
    }
}

impl<T: XdrEncode> XdrEncode for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Some(v) => {
                enc.put_u32(1);
                v.encode(enc);
            }
            None => enc.put_u32(0),
        }
    }
    fn encoded_len(&self) -> usize {
        4 + self.as_ref().map_or(0, XdrEncode::encoded_len)
    }
}

impl<T: XdrDecode> XdrDecode for Option<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_len_values() {
        assert_eq!(pad_len(0), 0);
        assert_eq!(pad_len(1), 3);
        assert_eq!(pad_len(2), 2);
        assert_eq!(pad_len(3), 1);
        assert_eq!(pad_len(4), 0);
        assert_eq!(pad_len(5), 3);
    }

    #[test]
    fn opaque_wire_len_values() {
        assert_eq!(opaque_wire_len(0), 4);
        assert_eq!(opaque_wire_len(1), 8);
        assert_eq!(opaque_wire_len(4), 8);
        assert_eq!(opaque_wire_len(8192), 8196);
    }

    #[test]
    fn primitive_round_trips() {
        let mut enc = Encoder::new();
        42u32.encode(&mut enc);
        7_000_000_000u64.encode(&mut enc);
        true.encode(&mut enc);
        Some(5u32).encode(&mut enc);
        Option::<u32>::None.encode(&mut enc);
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(u32::decode(&mut dec).unwrap(), 42);
        assert_eq!(u64::decode(&mut dec).unwrap(), 7_000_000_000);
        assert!(bool::decode(&mut dec).unwrap());
        assert_eq!(Option::<u32>::decode(&mut dec).unwrap(), Some(5));
        assert_eq!(Option::<u32>::decode(&mut dec).unwrap(), None);
        assert!(dec.is_empty());
    }

    #[test]
    fn encoded_len_matches_encoding() {
        let v: Option<u64> = Some(9);
        assert_eq!(v.encoded_len(), 12);
        let mut enc = Encoder::new();
        v.encode(&mut enc);
        assert_eq!(enc.len(), 12);
    }

    #[test]
    fn option_bad_discriminant() {
        let bytes = 2u32.to_be_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            Option::<u32>::decode(&mut dec),
            Err(XdrError::BadDiscriminant(2))
        ));
    }
}
