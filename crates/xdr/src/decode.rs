//! The XDR decoder: a bounds-checked cursor over wire bytes.

use crate::pad_len;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// Bytes needed by the read.
        needed: usize,
        /// Bytes remaining in the buffer.
        available: usize,
    },
    /// A union/enum discriminant had an unknown value.
    BadDiscriminant(u32),
    /// A string was not valid UTF-8.
    BadString,
    /// A declared length exceeded the sanity limit.
    LengthTooLarge(u32),
}

impl std::fmt::Display for XdrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XdrError::Truncated { needed, available } => {
                write!(f, "truncated: need {needed} bytes, have {available}")
            }
            XdrError::BadDiscriminant(d) => write!(f, "bad union discriminant {d}"),
            XdrError::BadString => write!(f, "string is not valid UTF-8"),
            XdrError::LengthTooLarge(n) => write!(f, "declared length {n} too large"),
        }
    }
}

impl std::error::Error for XdrError {}

/// Upper bound accepted for variable-length items; larger declared lengths
/// are treated as corruption rather than allocated.
const MAX_ITEM_LEN: u32 = 64 * 1024 * 1024;

/// Cursor over an XDR-encoded byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], XdrError> {
        if self.remaining() < n {
            return Err(XdrError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a 32-bit unsigned integer.
    pub fn get_u32(&mut self) -> Result<u32, XdrError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a 32-bit signed integer.
    pub fn get_i32(&mut self) -> Result<i32, XdrError> {
        Ok(self.get_u32()? as i32)
    }

    /// Reads a 64-bit unsigned integer.
    pub fn get_u64(&mut self) -> Result<u64, XdrError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a boolean (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, XdrError> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }

    /// Reads variable-length opaque data (length word, bytes, pad).
    pub fn get_opaque(&mut self) -> Result<&'a [u8], XdrError> {
        let len = self.get_u32()?;
        if len > MAX_ITEM_LEN {
            return Err(XdrError::LengthTooLarge(len));
        }
        let data = self.take(len as usize)?;
        self.take(pad_len(len as usize))?;
        Ok(data)
    }

    /// Reads fixed-length opaque data of `len` bytes plus pad.
    pub fn get_opaque_fixed(&mut self, len: usize) -> Result<&'a [u8], XdrError> {
        let data = self.take(len)?;
        self.take(pad_len(len))?;
        Ok(data)
    }

    /// Reads an XDR string as UTF-8.
    pub fn get_string(&mut self) -> Result<&'a str, XdrError> {
        let bytes = self.get_opaque()?;
        std::str::from_utf8(bytes).map_err(|_| XdrError::BadString)
    }

    /// Skips a variable-length opaque without borrowing it.
    pub fn skip_opaque(&mut self) -> Result<usize, XdrError> {
        Ok(self.get_opaque()?.len())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` when the whole buffer is consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Encoder;

    #[test]
    fn round_trip_integers() {
        let mut e = Encoder::new();
        e.put_u32(u32::MAX);
        e.put_i32(-42);
        e.put_u64(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u32().unwrap(), u32::MAX);
        assert_eq!(d.get_i32().unwrap(), -42);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert!(d.is_empty());
    }

    #[test]
    fn truncated_u32() {
        let mut d = Decoder::new(&[0, 0]);
        assert_eq!(
            d.get_u32(),
            Err(XdrError::Truncated {
                needed: 4,
                available: 2
            })
        );
    }

    #[test]
    fn truncated_opaque_body() {
        let mut e = Encoder::new();
        e.put_u32(100); // claims 100 bytes but provides none
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.get_opaque(), Err(XdrError::Truncated { .. })));
    }

    #[test]
    fn opaque_round_trip_with_padding() {
        let mut e = Encoder::new();
        e.put_opaque(&[1, 2, 3, 4, 5]);
        let bytes = e.into_bytes();
        assert_eq!(bytes.len(), 4 + 5 + 3);
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_opaque().unwrap(), &[1, 2, 3, 4, 5]);
        assert!(d.is_empty(), "padding must be consumed");
    }

    #[test]
    fn fixed_opaque_round_trip() {
        let mut e = Encoder::new();
        e.put_opaque_fixed(&[7; 6]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_opaque_fixed(6).unwrap(), &[7; 6]);
        assert!(d.is_empty());
    }

    #[test]
    fn string_round_trip_and_bad_utf8() {
        let mut e = Encoder::new();
        e.put_string("héllo");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_string().unwrap(), "héllo");

        let mut e = Encoder::new();
        e.put_opaque(&[0xff, 0xfe]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_string(), Err(XdrError::BadString));
    }

    #[test]
    fn bool_rejects_junk() {
        let bytes = 7u32.to_be_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_bool(), Err(XdrError::BadDiscriminant(7)));
    }

    #[test]
    fn length_sanity_limit() {
        let bytes = (u32::MAX).to_be_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_opaque(), Err(XdrError::LengthTooLarge(u32::MAX)));
    }

    #[test]
    fn skip_opaque_reports_len() {
        let mut e = Encoder::new();
        e.put_opaque(&[0; 11]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.skip_opaque().unwrap(), 11);
        assert!(d.is_empty());
    }

    #[test]
    fn position_tracks_reads() {
        let mut e = Encoder::new();
        e.put_u32(1);
        e.put_u64(2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.position(), 0);
        d.get_u32().unwrap();
        assert_eq!(d.position(), 4);
        assert_eq!(d.remaining(), 8);
    }
}
