//! RFC 1813 — NFS version 3 protocol types and wire codecs.
//!
//! This crate implements the subset of NFSv3 that the reproduced write
//! path exercises: WRITE and COMMIT (the stars of the paper), plus the
//! surrounding operations a client needs to create and inspect a fresh
//! benchmark file (LOOKUP, CREATE, GETATTR, SETATTR). All types encode to
//! and decode from genuine XDR, so the byte sizes that drive the network
//! simulation are the real RFC 1813 sizes.
//!
//! The paper mounts with `rsize=wsize=8192`, NFS version 3 — WRITE3
//! requests carry two 4 KiB pages of data and either `UNSTABLE` (Linux
//! knfsd path, requiring a later COMMIT) or `FILE_SYNC` (the filer's
//! NVRAM-backed path, durable on reply).

pub mod attrs;
pub mod ops;

pub use attrs::{Fattr3, Ftype3, Sattr3, WccAttr, WccData};
pub use ops::{
    Commit3Args, Commit3Res, Create3Args, Create3Res, CreateMode, Getattr3Args, Getattr3Res,
    Lookup3Args, Lookup3Res, Read3Args, Read3Res, Setattr3Args, Setattr3Res, Write3Args, Write3Res,
};

use nfsperf_xdr::{Decoder, Encoder, XdrDecode, XdrEncode, XdrError};

/// The NFS program number.
pub const NFS_PROGRAM: u32 = 100_003;
/// Protocol version implemented here.
pub const NFS_V3: u32 = 3;

/// NFSv3 procedure numbers (RFC 1813 §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum NfsProc3 {
    /// NULL — ping.
    Null = 0,
    /// GETATTR — fetch file attributes.
    Getattr = 1,
    /// SETATTR — set file attributes (used to truncate the bench file).
    Setattr = 2,
    /// LOOKUP — resolve a name in a directory.
    Lookup = 3,
    /// READ — read data from a file.
    Read = 6,
    /// WRITE — write data to a file.
    Write = 7,
    /// CREATE — create a regular file.
    Create = 8,
    /// COMMIT — commit previously unstable writes to stable storage.
    Commit = 21,
}

impl NfsProc3 {
    /// Decodes a procedure number.
    pub fn from_u32(v: u32) -> Option<NfsProc3> {
        Some(match v {
            0 => NfsProc3::Null,
            1 => NfsProc3::Getattr,
            2 => NfsProc3::Setattr,
            3 => NfsProc3::Lookup,
            6 => NfsProc3::Read,
            7 => NfsProc3::Write,
            8 => NfsProc3::Create,
            21 => NfsProc3::Commit,
            _ => return None,
        })
    }
}

/// NFSv3 status codes (the subset the simulation can produce).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum NfsStat3 {
    /// Success.
    Ok = 0,
    /// No such file or directory.
    Noent = 2,
    /// Generic I/O error.
    Io = 5,
    /// Permission denied.
    Access = 13,
    /// File exists.
    Exist = 17,
    /// No space on device.
    Nospc = 28,
    /// Stale file handle.
    Stale = 70,
    /// Server fault.
    ServerFault = 10006,
}

impl NfsStat3 {
    /// Decodes a status word.
    pub fn from_u32(v: u32) -> Option<NfsStat3> {
        Some(match v {
            0 => NfsStat3::Ok,
            2 => NfsStat3::Noent,
            5 => NfsStat3::Io,
            13 => NfsStat3::Access,
            17 => NfsStat3::Exist,
            28 => NfsStat3::Nospc,
            70 => NfsStat3::Stale,
            10006 => NfsStat3::ServerFault,
            _ => return None,
        })
    }
}

impl XdrEncode for NfsStat3 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(*self as u32);
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl XdrDecode for NfsStat3 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let v = dec.get_u32()?;
        NfsStat3::from_u32(v).ok_or(XdrError::BadDiscriminant(v))
    }
}

/// Maximum file-handle length (RFC 1813: NFS3_FHSIZE = 64).
pub const FHSIZE3: usize = 64;

/// An opaque NFSv3 file handle.
///
/// The simulated servers use 32-byte handles (as the Linux knfsd of the
/// era did), stored inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileHandle {
    len: u8,
    bytes: [u8; FHSIZE3],
}

impl FileHandle {
    /// Builds a handle from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds [`FHSIZE3`].
    pub fn new(bytes: &[u8]) -> FileHandle {
        assert!(bytes.len() <= FHSIZE3, "file handle too long");
        let mut buf = [0u8; FHSIZE3];
        buf[..bytes.len()].copy_from_slice(bytes);
        FileHandle {
            len: bytes.len() as u8,
            bytes: buf,
        }
    }

    /// A deterministic 32-byte handle derived from a file id — the shape
    /// the simulated servers hand out.
    pub fn for_fileid(fileid: u64) -> FileHandle {
        let mut raw = [0u8; 32];
        raw[..8].copy_from_slice(&fileid.to_be_bytes());
        raw[8..16].copy_from_slice(&(!fileid).to_be_bytes());
        raw[16..24].copy_from_slice(&fileid.rotate_left(17).to_be_bytes());
        raw[24..32].copy_from_slice(&0xfee1_dead_u64.to_be_bytes());
        FileHandle::new(&raw)
    }

    /// The handle bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Recovers the file id from a handle minted by
    /// [`FileHandle::for_fileid`].
    pub fn fileid(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.bytes[..8]);
        u64::from_be_bytes(b)
    }
}

impl XdrEncode for FileHandle {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_opaque(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        nfsperf_xdr::opaque_wire_len(self.len as usize)
    }
}

impl XdrDecode for FileHandle {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let raw = dec.get_opaque()?;
        if raw.len() > FHSIZE3 {
            return Err(XdrError::LengthTooLarge(raw.len() as u32));
        }
        Ok(FileHandle::new(raw))
    }
}

/// A write verifier: servers change it on reboot so clients can detect
/// lost unstable writes (RFC 1813 §3.3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WriteVerf(pub u64);

impl XdrEncode for WriteVerf {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.0);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl XdrDecode for WriteVerf {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(WriteVerf(dec.get_u64()?))
    }
}

/// WRITE3 stability levels (RFC 1813 §3.3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum StableHow {
    /// Server may cache; client must COMMIT later.
    Unstable = 0,
    /// Data (not metadata) must be durable before the reply.
    DataSync = 1,
    /// Data and metadata must be durable before the reply.
    FileSync = 2,
}

impl XdrEncode for StableHow {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(*self as u32);
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl XdrDecode for StableHow {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(StableHow::Unstable),
            1 => Ok(StableHow::DataSync),
            2 => Ok(StableHow::FileSync),
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_numbers_round_trip() {
        for p in [
            NfsProc3::Null,
            NfsProc3::Getattr,
            NfsProc3::Setattr,
            NfsProc3::Lookup,
            NfsProc3::Read,
            NfsProc3::Write,
            NfsProc3::Create,
            NfsProc3::Commit,
        ] {
            assert_eq!(NfsProc3::from_u32(p as u32), Some(p));
        }
        assert_eq!(NfsProc3::from_u32(99), None);
    }

    #[test]
    fn write_is_proc_7_commit_21() {
        assert_eq!(NfsProc3::Write as u32, 7);
        assert_eq!(NfsProc3::Commit as u32, 21);
    }

    #[test]
    fn file_handle_round_trip() {
        let fh = FileHandle::for_fileid(0xdead_beef);
        let mut enc = Encoder::new();
        fh.encode(&mut enc);
        assert_eq!(enc.len(), fh.encoded_len());
        assert_eq!(enc.len(), 4 + 32);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = FileHandle::decode(&mut dec).unwrap();
        assert_eq!(back, fh);
        assert_eq!(back.fileid(), 0xdead_beef);
    }

    #[test]
    fn file_handles_differ_by_fileid() {
        assert_ne!(FileHandle::for_fileid(1), FileHandle::for_fileid(2));
    }

    #[test]
    #[should_panic(expected = "file handle too long")]
    fn oversize_handle_panics() {
        FileHandle::new(&[0u8; 65]);
    }

    #[test]
    fn stable_how_round_trip() {
        for s in [
            StableHow::Unstable,
            StableHow::DataSync,
            StableHow::FileSync,
        ] {
            let mut enc = Encoder::new();
            s.encode(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(StableHow::decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn stable_how_rejects_junk() {
        let bytes = 9u32.to_be_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(StableHow::decode(&mut dec).is_err());
    }

    #[test]
    fn status_round_trip() {
        for s in [
            NfsStat3::Ok,
            NfsStat3::Io,
            NfsStat3::Nospc,
            NfsStat3::ServerFault,
        ] {
            let mut enc = Encoder::new();
            s.encode(&mut enc);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(NfsStat3::decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn verifier_round_trip() {
        let v = WriteVerf(0x1234_5678_9abc_def0);
        let mut enc = Encoder::new();
        v.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(WriteVerf::decode(&mut dec).unwrap(), v);
    }
}
