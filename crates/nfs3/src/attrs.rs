//! File attributes: `fattr3`, `sattr3` and weak cache consistency data
//! (RFC 1813 §2.6).

use nfsperf_xdr::{Decoder, Encoder, XdrDecode, XdrEncode, XdrError};

/// NFSv3 file types (`ftype3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum Ftype3 {
    /// Regular file.
    Reg = 1,
    /// Directory.
    Dir = 2,
}

impl XdrEncode for Ftype3 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(*self as u32);
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl XdrDecode for Ftype3 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            1 => Ok(Ftype3::Reg),
            2 => Ok(Ftype3::Dir),
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

/// An NFSv3 timestamp (`nfstime3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NfsTime3 {
    /// Seconds since the epoch.
    pub seconds: u32,
    /// Nanoseconds within the second.
    pub nseconds: u32,
}

impl XdrEncode for NfsTime3 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.seconds);
        enc.put_u32(self.nseconds);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl XdrDecode for NfsTime3 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(NfsTime3 {
            seconds: dec.get_u32()?,
            nseconds: dec.get_u32()?,
        })
    }
}

/// Full file attributes (`fattr3`, RFC 1813 §2.6) — a fixed 84-byte
/// structure on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fattr3 {
    /// File type.
    pub ftype: Ftype3,
    /// Permission bits.
    pub mode: u32,
    /// Hard-link count.
    pub nlink: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// File size in bytes.
    pub size: u64,
    /// Bytes actually used on disk.
    pub used: u64,
    /// Device numbers (major, minor); zero for regular files.
    pub rdev: (u32, u32),
    /// File-system id.
    pub fsid: u64,
    /// File id (inode number).
    pub fileid: u64,
    /// Last access time.
    pub atime: NfsTime3,
    /// Last modification time.
    pub mtime: NfsTime3,
    /// Last attribute change time.
    pub ctime: NfsTime3,
}

impl Fattr3 {
    /// Attributes for a fresh regular file of the given id and size.
    pub fn regular(fileid: u64, size: u64) -> Fattr3 {
        Fattr3 {
            ftype: Ftype3::Reg,
            mode: 0o644,
            nlink: 1,
            uid: 0,
            gid: 0,
            size,
            used: size,
            rdev: (0, 0),
            fsid: 1,
            fileid,
            atime: NfsTime3::default(),
            mtime: NfsTime3::default(),
            ctime: NfsTime3::default(),
        }
    }
}

/// Wire size of an encoded `fattr3`.
pub const FATTR3_WIRE_LEN: usize = 84;

impl XdrEncode for Fattr3 {
    fn encode(&self, enc: &mut Encoder) {
        self.ftype.encode(enc);
        enc.put_u32(self.mode);
        enc.put_u32(self.nlink);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_u64(self.size);
        enc.put_u64(self.used);
        enc.put_u32(self.rdev.0);
        enc.put_u32(self.rdev.1);
        enc.put_u64(self.fsid);
        enc.put_u64(self.fileid);
        self.atime.encode(enc);
        self.mtime.encode(enc);
        self.ctime.encode(enc);
    }
    fn encoded_len(&self) -> usize {
        FATTR3_WIRE_LEN
    }
}

impl XdrDecode for Fattr3 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(Fattr3 {
            ftype: Ftype3::decode(dec)?,
            mode: dec.get_u32()?,
            nlink: dec.get_u32()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            size: dec.get_u64()?,
            used: dec.get_u64()?,
            rdev: (dec.get_u32()?, dec.get_u32()?),
            fsid: dec.get_u64()?,
            fileid: dec.get_u64()?,
            atime: NfsTime3::decode(dec)?,
            mtime: NfsTime3::decode(dec)?,
            ctime: NfsTime3::decode(dec)?,
        })
    }
}

/// Settable attributes (`sattr3`); only the fields the benchmark needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sattr3 {
    /// New mode, if set.
    pub mode: Option<u32>,
    /// New size (truncate), if set.
    pub size: Option<u64>,
}

impl XdrEncode for Sattr3 {
    fn encode(&self, enc: &mut Encoder) {
        self.mode.encode(enc);
        // uid, gid: not set.
        enc.put_u32(0);
        enc.put_u32(0);
        self.size.encode(enc);
        // atime, mtime: don't change (enum set_to = 0).
        enc.put_u32(0);
        enc.put_u32(0);
    }
}

impl XdrDecode for Sattr3 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let mode = Option::<u32>::decode(dec)?;
        let _uid = Option::<u32>::decode(dec)?;
        let _gid = Option::<u32>::decode(dec)?;
        let size = Option::<u64>::decode(dec)?;
        let _atime = dec.get_u32()?;
        let _mtime = dec.get_u32()?;
        Ok(Sattr3 { mode, size })
    }
}

/// Pre-operation attributes for weak cache consistency (`wcc_attr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WccAttr {
    /// File size before the operation.
    pub size: u64,
    /// mtime before the operation.
    pub mtime: NfsTime3,
    /// ctime before the operation.
    pub ctime: NfsTime3,
}

impl XdrEncode for WccAttr {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.size);
        self.mtime.encode(enc);
        self.ctime.encode(enc);
    }
    fn encoded_len(&self) -> usize {
        24
    }
}

impl XdrDecode for WccAttr {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(WccAttr {
            size: dec.get_u64()?,
            mtime: NfsTime3::decode(dec)?,
            ctime: NfsTime3::decode(dec)?,
        })
    }
}

/// Weak cache consistency data (`wcc_data`, RFC 1813 §2.6): optional
/// before/after attributes carried by WRITE and COMMIT replies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WccData {
    /// Attributes before the operation.
    pub before: Option<WccAttr>,
    /// Attributes after the operation.
    pub after: Option<Fattr3>,
}

impl WccData {
    /// The full before/after pair the simulated servers always return.
    pub fn full(before_size: u64, after: Fattr3) -> WccData {
        WccData {
            before: Some(WccAttr {
                size: before_size,
                ..WccAttr::default()
            }),
            after: Some(after),
        }
    }
}

impl XdrEncode for WccData {
    fn encode(&self, enc: &mut Encoder) {
        self.before.encode(enc);
        self.after.encode(enc);
    }
    fn encoded_len(&self) -> usize {
        self.before.encoded_len() + self.after.encoded_len()
    }
}

impl XdrDecode for WccData {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(WccData {
            before: Option::<WccAttr>::decode(dec)?,
            after: Option::<Fattr3>::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: XdrEncode + XdrDecode + PartialEq + std::fmt::Debug>(v: &T) {
        let mut enc = Encoder::new();
        v.encode(&mut enc);
        assert_eq!(enc.len(), v.encoded_len(), "encoded_len mismatch");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = T::decode(&mut dec).expect("decode");
        assert_eq!(&back, v);
        assert!(dec.is_empty(), "trailing bytes after decode");
    }

    #[test]
    fn fattr3_is_84_bytes() {
        let a = Fattr3::regular(7, 4096);
        let mut enc = Encoder::new();
        a.encode(&mut enc);
        assert_eq!(enc.len(), 84);
    }

    #[test]
    fn fattr3_round_trip() {
        let mut a = Fattr3::regular(123, 1 << 30);
        a.mode = 0o600;
        a.nlink = 3;
        a.atime = NfsTime3 {
            seconds: 10,
            nseconds: 20,
        };
        round_trip(&a);
    }

    #[test]
    fn ftype_round_trip_and_reject() {
        round_trip(&Ftype3::Reg);
        round_trip(&Ftype3::Dir);
        let bytes = 0u32.to_be_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(Ftype3::decode(&mut dec).is_err());
    }

    #[test]
    fn wcc_attr_round_trip() {
        round_trip(&WccAttr {
            size: 8192,
            mtime: NfsTime3 {
                seconds: 1,
                nseconds: 2,
            },
            ctime: NfsTime3 {
                seconds: 3,
                nseconds: 4,
            },
        });
    }

    #[test]
    fn wcc_data_empty_and_full() {
        round_trip(&WccData::default());
        round_trip(&WccData::full(100, Fattr3::regular(9, 200)));
    }

    #[test]
    fn sattr3_truncate_round_trip() {
        let s = Sattr3 {
            mode: Some(0o644),
            size: Some(0),
        };
        let mut enc = Encoder::new();
        s.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Sattr3::decode(&mut dec).unwrap(), s);
    }

    #[test]
    fn wcc_full_has_before_and_after() {
        let w = WccData::full(11, Fattr3::regular(1, 22));
        assert_eq!(w.before.unwrap().size, 11);
        assert_eq!(w.after.unwrap().size, 22);
    }
}
