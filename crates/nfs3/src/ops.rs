//! Procedure argument and result types (RFC 1813 §3.3).

use nfsperf_xdr::{opaque_wire_len, Decoder, Encoder, XdrDecode, XdrEncode, XdrError};

use crate::attrs::{Fattr3, Sattr3, WccData};
use crate::{FileHandle, NfsStat3, StableHow, WriteVerf};

/// WRITE3 arguments (RFC 1813 §3.3.7).
///
/// The simulation writes zero-filled payloads: `data_len` is the honest
/// wire length of the data opaque, but the bytes themselves are zeros —
/// the model measures costs, not contents. Decoding a real message
/// recovers `data_len` from the opaque's length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Write3Args {
    /// Target file.
    pub file: FileHandle,
    /// Byte offset of the write.
    pub offset: u64,
    /// Number of bytes to write.
    pub count: u32,
    /// Requested stability.
    pub stable: StableHow,
    /// Length of the data opaque (normally equal to `count`).
    pub data_len: u32,
}

impl Write3Args {
    /// Builds a write of `count` zero bytes.
    pub fn new(file: FileHandle, offset: u64, count: u32, stable: StableHow) -> Write3Args {
        Write3Args {
            file,
            offset,
            count,
            stable,
            data_len: count,
        }
    }
}

impl XdrEncode for Write3Args {
    fn encode(&self, enc: &mut Encoder) {
        self.file.encode(enc);
        enc.put_u64(self.offset);
        enc.put_u32(self.count);
        self.stable.encode(enc);
        enc.put_opaque_zeroes(self.data_len as usize);
    }
    fn encoded_len(&self) -> usize {
        self.file.encoded_len() + 8 + 4 + 4 + opaque_wire_len(self.data_len as usize)
    }
}

impl XdrDecode for Write3Args {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let file = FileHandle::decode(dec)?;
        let offset = dec.get_u64()?;
        let count = dec.get_u32()?;
        let stable = StableHow::decode(dec)?;
        let data_len = dec.skip_opaque()? as u32;
        Ok(Write3Args {
            file,
            offset,
            count,
            stable,
            data_len,
        })
    }
}

/// WRITE3 result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Write3Res {
    /// Operation status.
    pub status: NfsStat3,
    /// Weak cache-consistency data (returned in both arms).
    pub wcc: WccData,
    /// Bytes actually written (success only).
    pub count: u32,
    /// Stability achieved — may be stronger than requested (success only).
    pub committed: StableHow,
    /// Server write verifier (success only).
    pub verf: WriteVerf,
}

impl Write3Res {
    /// A successful write of `count` bytes at stability `committed`.
    pub fn ok(wcc: WccData, count: u32, committed: StableHow, verf: WriteVerf) -> Write3Res {
        Write3Res {
            status: NfsStat3::Ok,
            wcc,
            count,
            committed,
            verf,
        }
    }
}

impl XdrEncode for Write3Res {
    fn encode(&self, enc: &mut Encoder) {
        self.status.encode(enc);
        self.wcc.encode(enc);
        if self.status == NfsStat3::Ok {
            enc.put_u32(self.count);
            self.committed.encode(enc);
            self.verf.encode(enc);
        }
    }
}

impl XdrDecode for Write3Res {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = NfsStat3::decode(dec)?;
        let wcc = WccData::decode(dec)?;
        if status == NfsStat3::Ok {
            Ok(Write3Res {
                status,
                wcc,
                count: dec.get_u32()?,
                committed: StableHow::decode(dec)?,
                verf: WriteVerf::decode(dec)?,
            })
        } else {
            Ok(Write3Res {
                status,
                wcc,
                count: 0,
                committed: StableHow::Unstable,
                verf: WriteVerf::default(),
            })
        }
    }
}

/// COMMIT3 arguments (RFC 1813 §3.3.21).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit3Args {
    /// Target file.
    pub file: FileHandle,
    /// Start of the range to commit.
    pub offset: u64,
    /// Length of the range (0 = to end of file).
    pub count: u32,
}

impl XdrEncode for Commit3Args {
    fn encode(&self, enc: &mut Encoder) {
        self.file.encode(enc);
        enc.put_u64(self.offset);
        enc.put_u32(self.count);
    }
    fn encoded_len(&self) -> usize {
        self.file.encoded_len() + 12
    }
}

impl XdrDecode for Commit3Args {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(Commit3Args {
            file: FileHandle::decode(dec)?,
            offset: dec.get_u64()?,
            count: dec.get_u32()?,
        })
    }
}

/// COMMIT3 result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commit3Res {
    /// Operation status.
    pub status: NfsStat3,
    /// Weak cache-consistency data.
    pub wcc: WccData,
    /// Server write verifier (success only).
    pub verf: WriteVerf,
}

impl XdrEncode for Commit3Res {
    fn encode(&self, enc: &mut Encoder) {
        self.status.encode(enc);
        self.wcc.encode(enc);
        if self.status == NfsStat3::Ok {
            self.verf.encode(enc);
        }
    }
}

impl XdrDecode for Commit3Res {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = NfsStat3::decode(dec)?;
        let wcc = WccData::decode(dec)?;
        let verf = if status == NfsStat3::Ok {
            WriteVerf::decode(dec)?
        } else {
            WriteVerf::default()
        };
        Ok(Commit3Res { status, wcc, verf })
    }
}

/// CREATE3 creation mode (GUARDED/UNCHECKED; EXCLUSIVE is not modelled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum CreateMode {
    /// Overwrite silently if the file exists.
    Unchecked = 0,
    /// Fail with NFS3ERR_EXIST if the file exists.
    Guarded = 1,
}

impl XdrEncode for CreateMode {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(*self as u32);
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl XdrDecode for CreateMode {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(CreateMode::Unchecked),
            1 => Ok(CreateMode::Guarded),
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

/// CREATE3 arguments (RFC 1813 §3.3.8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Create3Args {
    /// Parent directory.
    pub dir: FileHandle,
    /// New file name.
    pub name: String,
    /// Creation mode.
    pub mode: CreateMode,
    /// Initial attributes.
    pub attrs: Sattr3,
}

impl XdrEncode for Create3Args {
    fn encode(&self, enc: &mut Encoder) {
        self.dir.encode(enc);
        enc.put_string(&self.name);
        self.mode.encode(enc);
        self.attrs.encode(enc);
    }
}

impl XdrDecode for Create3Args {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(Create3Args {
            dir: FileHandle::decode(dec)?,
            name: dec.get_string()?.to_owned(),
            mode: CreateMode::decode(dec)?,
            attrs: Sattr3::decode(dec)?,
        })
    }
}

/// CREATE3 result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Create3Res {
    /// Operation status.
    pub status: NfsStat3,
    /// Handle of the created file (success only).
    pub file: Option<FileHandle>,
    /// Attributes of the created file (success only).
    pub attrs: Option<Fattr3>,
}

impl XdrEncode for Create3Res {
    fn encode(&self, enc: &mut Encoder) {
        self.status.encode(enc);
        if self.status == NfsStat3::Ok {
            self.file.encode(enc);
            self.attrs.encode(enc);
            // Directory wcc_data: empty.
            WccData::default().encode(enc);
        } else {
            WccData::default().encode(enc);
        }
    }
}

impl XdrDecode for Create3Res {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = NfsStat3::decode(dec)?;
        if status == NfsStat3::Ok {
            let file = Option::<FileHandle>::decode(dec)?;
            let attrs = Option::<Fattr3>::decode(dec)?;
            let _dir_wcc = WccData::decode(dec)?;
            Ok(Create3Res {
                status,
                file,
                attrs,
            })
        } else {
            let _dir_wcc = WccData::decode(dec)?;
            Ok(Create3Res {
                status,
                file: None,
                attrs: None,
            })
        }
    }
}

/// LOOKUP3 arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lookup3Args {
    /// Directory to search.
    pub dir: FileHandle,
    /// Name to resolve.
    pub name: String,
}

impl XdrEncode for Lookup3Args {
    fn encode(&self, enc: &mut Encoder) {
        self.dir.encode(enc);
        enc.put_string(&self.name);
    }
}

impl XdrDecode for Lookup3Args {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(Lookup3Args {
            dir: FileHandle::decode(dec)?,
            name: dec.get_string()?.to_owned(),
        })
    }
}

/// LOOKUP3 result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lookup3Res {
    /// Operation status.
    pub status: NfsStat3,
    /// Resolved handle (success only).
    pub file: Option<FileHandle>,
    /// Attributes of the resolved object (success only).
    pub attrs: Option<Fattr3>,
}

impl XdrEncode for Lookup3Res {
    fn encode(&self, enc: &mut Encoder) {
        self.status.encode(enc);
        if self.status == NfsStat3::Ok {
            self.file
                .as_ref()
                .expect("Ok lookup must carry a handle")
                .encode(enc);
            self.attrs.encode(enc);
        }
        // Directory post-op attributes: none.
        enc.put_u32(0);
    }
}

impl XdrDecode for Lookup3Res {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = NfsStat3::decode(dec)?;
        if status == NfsStat3::Ok {
            let file = FileHandle::decode(dec)?;
            let attrs = Option::<Fattr3>::decode(dec)?;
            let _dir_attrs = dec.get_u32()?;
            Ok(Lookup3Res {
                status,
                file: Some(file),
                attrs,
            })
        } else {
            let _dir_attrs = dec.get_u32()?;
            Ok(Lookup3Res {
                status,
                file: None,
                attrs: None,
            })
        }
    }
}

/// GETATTR3 arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Getattr3Args {
    /// File to inspect.
    pub file: FileHandle,
}

impl XdrEncode for Getattr3Args {
    fn encode(&self, enc: &mut Encoder) {
        self.file.encode(enc);
    }
    fn encoded_len(&self) -> usize {
        self.file.encoded_len()
    }
}

impl XdrDecode for Getattr3Args {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(Getattr3Args {
            file: FileHandle::decode(dec)?,
        })
    }
}

/// GETATTR3 result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Getattr3Res {
    /// Operation status.
    pub status: NfsStat3,
    /// Attributes (success only).
    pub attrs: Option<Fattr3>,
}

impl XdrEncode for Getattr3Res {
    fn encode(&self, enc: &mut Encoder) {
        self.status.encode(enc);
        if self.status == NfsStat3::Ok {
            self.attrs
                .as_ref()
                .expect("Ok getattr must carry attributes")
                .encode(enc);
        }
    }
}

impl XdrDecode for Getattr3Res {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = NfsStat3::decode(dec)?;
        let attrs = if status == NfsStat3::Ok {
            Some(Fattr3::decode(dec)?)
        } else {
            None
        };
        Ok(Getattr3Res { status, attrs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::WccData;

    fn round_trip<T: XdrEncode + XdrDecode + PartialEq + std::fmt::Debug>(v: &T) -> usize {
        let mut enc = Encoder::new();
        v.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = T::decode(&mut dec).expect("decode");
        assert_eq!(&back, v);
        assert!(dec.is_empty());
        bytes.len()
    }

    #[test]
    fn write3_args_round_trip_and_len() {
        let args = Write3Args::new(FileHandle::for_fileid(9), 16384, 8192, StableHow::Unstable);
        let n = round_trip(&args);
        assert_eq!(n, args.encoded_len());
        // fh(36) + offset(8) + count(4) + stable(4) + opaque(4 + 8192).
        assert_eq!(n, 36 + 8 + 4 + 4 + 4 + 8192);
    }

    #[test]
    fn write3_wire_overhead_is_56_bytes_for_8k() {
        // The per-WRITE protocol overhead above the payload matters for
        // fragmentation: 8 KiB of data rides in an 8248-byte NFS body.
        let args = Write3Args::new(FileHandle::for_fileid(1), 0, 8192, StableHow::FileSync);
        assert_eq!(args.encoded_len() - 8192, 56);
    }

    #[test]
    fn write3_res_ok_round_trip() {
        let res = Write3Res::ok(
            WccData::full(0, Fattr3::regular(9, 8192)),
            8192,
            StableHow::FileSync,
            WriteVerf(77),
        );
        round_trip(&res);
    }

    #[test]
    fn write3_res_error_round_trip() {
        let res = Write3Res {
            status: NfsStat3::Nospc,
            wcc: WccData::default(),
            count: 0,
            committed: StableHow::Unstable,
            verf: WriteVerf::default(),
        };
        round_trip(&res);
    }

    #[test]
    fn commit3_round_trip() {
        let args = Commit3Args {
            file: FileHandle::for_fileid(4),
            offset: 0,
            count: 0,
        };
        let n = round_trip(&args);
        assert_eq!(n, args.encoded_len());
        let res = Commit3Res {
            status: NfsStat3::Ok,
            wcc: WccData::default(),
            verf: WriteVerf(123),
        };
        round_trip(&res);
    }

    #[test]
    fn create3_round_trip() {
        let args = Create3Args {
            dir: FileHandle::for_fileid(1),
            name: "bonnie.scratch".into(),
            mode: CreateMode::Unchecked,
            attrs: Sattr3 {
                mode: Some(0o644),
                size: None,
            },
        };
        round_trip(&args);
        let res = Create3Res {
            status: NfsStat3::Ok,
            file: Some(FileHandle::for_fileid(55)),
            attrs: Some(Fattr3::regular(55, 0)),
        };
        round_trip(&res);
        let err = Create3Res {
            status: NfsStat3::Exist,
            file: None,
            attrs: None,
        };
        round_trip(&err);
    }

    #[test]
    fn lookup3_round_trip() {
        let args = Lookup3Args {
            dir: FileHandle::for_fileid(1),
            name: "testfile".into(),
        };
        round_trip(&args);
        let hit = Lookup3Res {
            status: NfsStat3::Ok,
            file: Some(FileHandle::for_fileid(8)),
            attrs: Some(Fattr3::regular(8, 100)),
        };
        round_trip(&hit);
        let miss = Lookup3Res {
            status: NfsStat3::Noent,
            file: None,
            attrs: None,
        };
        round_trip(&miss);
    }

    #[test]
    fn getattr3_round_trip() {
        let args = Getattr3Args {
            file: FileHandle::for_fileid(2),
        };
        round_trip(&args);
        let res = Getattr3Res {
            status: NfsStat3::Ok,
            attrs: Some(Fattr3::regular(2, 42)),
        };
        round_trip(&res);
        let err = Getattr3Res {
            status: NfsStat3::Stale,
            attrs: None,
        };
        round_trip(&err);
    }

    #[test]
    fn create_mode_rejects_exclusive() {
        // EXCLUSIVE (2) is deliberately unmodelled.
        let bytes = 2u32.to_be_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(CreateMode::decode(&mut dec).is_err());
    }
}

/// READ3 arguments (RFC 1813 §3.3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Read3Args {
    /// File to read.
    pub file: FileHandle,
    /// Byte offset.
    pub offset: u64,
    /// Bytes requested.
    pub count: u32,
}

impl XdrEncode for Read3Args {
    fn encode(&self, enc: &mut Encoder) {
        self.file.encode(enc);
        enc.put_u64(self.offset);
        enc.put_u32(self.count);
    }
    fn encoded_len(&self) -> usize {
        self.file.encoded_len() + 12
    }
}

impl XdrDecode for Read3Args {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(Read3Args {
            file: FileHandle::decode(dec)?,
            offset: dec.get_u64()?,
            count: dec.get_u32()?,
        })
    }
}

/// READ3 result. Like [`Write3Args`], the data opaque is zero-filled but
/// has an honest wire length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Read3Res {
    /// Operation status.
    pub status: NfsStat3,
    /// Post-op attributes (success only).
    pub attrs: Option<Fattr3>,
    /// Bytes returned (success only).
    pub count: u32,
    /// End-of-file reached (success only).
    pub eof: bool,
    /// Length of the data opaque.
    pub data_len: u32,
}

impl Read3Res {
    /// A successful read of `count` bytes.
    pub fn ok(attrs: Fattr3, count: u32, eof: bool) -> Read3Res {
        Read3Res {
            status: NfsStat3::Ok,
            attrs: Some(attrs),
            count,
            eof,
            data_len: count,
        }
    }
}

impl XdrEncode for Read3Res {
    fn encode(&self, enc: &mut Encoder) {
        self.status.encode(enc);
        if self.status == NfsStat3::Ok {
            self.attrs.encode(enc);
            enc.put_u32(self.count);
            enc.put_bool(self.eof);
            enc.put_opaque_zeroes(self.data_len as usize);
        } else {
            self.attrs.encode(enc);
        }
    }
    fn encoded_len(&self) -> usize {
        if self.status == NfsStat3::Ok {
            4 + self.attrs.encoded_len() + 4 + 4 + opaque_wire_len(self.data_len as usize)
        } else {
            4 + self.attrs.encoded_len()
        }
    }
}

impl XdrDecode for Read3Res {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let status = NfsStat3::decode(dec)?;
        let attrs = Option::<Fattr3>::decode(dec)?;
        if status == NfsStat3::Ok {
            let count = dec.get_u32()?;
            let eof = dec.get_bool()?;
            let data_len = dec.skip_opaque()? as u32;
            Ok(Read3Res {
                status,
                attrs,
                count,
                eof,
                data_len,
            })
        } else {
            Ok(Read3Res {
                status,
                attrs,
                count: 0,
                eof: false,
                data_len: 0,
            })
        }
    }
}

/// SETATTR3 arguments (RFC 1813 §3.3.2); the benchmark uses it only to
/// truncate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Setattr3Args {
    /// Target file.
    pub file: FileHandle,
    /// New attributes.
    pub attrs: Sattr3,
}

impl XdrEncode for Setattr3Args {
    fn encode(&self, enc: &mut Encoder) {
        self.file.encode(enc);
        self.attrs.encode(enc);
        // guard: no ctime check.
        enc.put_u32(0);
    }
}

impl XdrDecode for Setattr3Args {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let file = FileHandle::decode(dec)?;
        let attrs = Sattr3::decode(dec)?;
        let _guard = dec.get_u32()?;
        Ok(Setattr3Args { file, attrs })
    }
}

/// SETATTR3 result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Setattr3Res {
    /// Operation status.
    pub status: NfsStat3,
    /// Weak cache-consistency data.
    pub wcc: WccData,
}

impl XdrEncode for Setattr3Res {
    fn encode(&self, enc: &mut Encoder) {
        self.status.encode(enc);
        self.wcc.encode(enc);
    }
}

impl XdrDecode for Setattr3Res {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        Ok(Setattr3Res {
            status: NfsStat3::decode(dec)?,
            wcc: WccData::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod read_setattr_tests {
    use super::*;
    use crate::attrs::Fattr3;

    fn round_trip<T: XdrEncode + XdrDecode + PartialEq + std::fmt::Debug>(v: &T) -> usize {
        let mut enc = Encoder::new();
        v.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = T::decode(&mut dec).expect("decode");
        assert_eq!(&back, v);
        assert!(dec.is_empty());
        bytes.len()
    }

    #[test]
    fn read3_args_round_trip() {
        let args = Read3Args {
            file: FileHandle::for_fileid(5),
            offset: 4096,
            count: 8192,
        };
        let n = round_trip(&args);
        assert_eq!(n, args.encoded_len());
    }

    #[test]
    fn read3_res_round_trip_and_len() {
        let res = Read3Res::ok(Fattr3::regular(5, 16384), 8192, false);
        let n = round_trip(&res);
        assert_eq!(n, res.encoded_len());
        // status + (1+fattr) + count + eof + opaque(4+8192).
        assert_eq!(n, 4 + 4 + 84 + 4 + 4 + 4 + 8192);
    }

    #[test]
    fn read3_res_error_round_trip() {
        let res = Read3Res {
            status: NfsStat3::Stale,
            attrs: None,
            count: 0,
            eof: false,
            data_len: 0,
        };
        round_trip(&res);
    }

    #[test]
    fn setattr3_truncate_round_trip() {
        let args = Setattr3Args {
            file: FileHandle::for_fileid(9),
            attrs: Sattr3 {
                mode: None,
                size: Some(0),
            },
        };
        round_trip(&args);
        let res = Setattr3Res {
            status: NfsStat3::Ok,
            wcc: WccData::full(100, Fattr3::regular(9, 0)),
        };
        round_trip(&res);
    }
}
