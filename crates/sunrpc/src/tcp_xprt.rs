//! The client-side RPC-over-TCP transport.
//!
//! Where the UDP transport ([`crate::xprt`]) must guess at loss with a
//! 700 ms retransmit timer and resend the *entire* RPC, the TCP transport
//! delegates reliability downward: while the connection is up there is **no
//! RPC-layer retransmit timer at all** — `nfsperf-tcp` retransmits lost
//! segments itself, so one dropped datagram costs one MSS of recovery
//! instead of a whole 8 KB WRITE plus a timeout. The RPC layer's only
//! reliability job is *connection death*: when the stream fails, the
//! transport re-establishes it and replays every pending request (new
//! connection, same xids), matching the Linux client's TCP behaviour.
//!
//! Calls are framed with RFC 1831 §10 record marking ([`crate::record`]).
//! Per-call CPU and lock costs mirror the UDP transport exactly — encode
//! under the BKL, `sock_sendmsg` under (or not under) the BKL per
//! [`XprtConfig::bkl_around_sendmsg`], interrupt + completion work per
//! reply — so a UDP-vs-TCP comparison isolates the *transport* difference.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use nfsperf_kernel::Kernel;
use nfsperf_net::{DatagramPayload, Path};
use nfsperf_sim::{Counter, Receiver, Semaphore, WaitQueue};
use nfsperf_tcp::{TcpConfig, TcpConn, TcpEndpoint, TcpStats};
use nfsperf_xdr::XdrEncode;

use crate::msg::{self, AuthUnix, ACCEPT_SUCCESS};
use crate::record::{self, RecordReader};
use crate::xprt::{RpcError, XprtConfig, XprtStats};

struct Pending {
    reply: RefCell<Option<DatagramPayload>>,
    failed: Cell<bool>,
    arrived: WaitQueue,
}

/// State of the one connection this transport maintains.
#[derive(Clone)]
enum ConnState {
    /// No connection; the next call (or replay) establishes one.
    Down,
    /// A handshake is in flight; callers park on `conn_changed`.
    Connecting,
    /// Connected.
    Up(Rc<TcpConn>),
    /// Connection establishment exhausted its SYN retries; the transport
    /// is permanently failed and every call errors with `TimedOut`.
    Dead,
}

/// The client RPC transport over a [`TcpEndpoint`] connection.
pub struct TcpRpcXprt {
    kernel: Kernel,
    endpoint: Rc<TcpEndpoint>,
    cred: AuthUnix,
    config: XprtConfig,
    prog: u32,
    vers: u32,
    next_xid: Cell<u32>,
    pending: RefCell<HashMap<u32, Rc<Pending>>>,
    /// Encoded call bytes for every pending xid, kept for replay after a
    /// reconnect.
    sent: RefCell<HashMap<u32, Vec<u8>>>,
    conn: RefCell<ConnState>,
    conn_changed: WaitQueue,
    slots: Rc<Semaphore>,
    calls: Counter,
    replies: Counter,
    orphans: Counter,
    replays: Counter,
    reconnects: Counter,
    ever_connected: Cell<bool>,
}

impl TcpRpcXprt {
    /// Creates a transport for program `prog` version `vers` over a fresh
    /// TCP endpoint on `path`/`rx`. The connection itself is established
    /// lazily by the first call.
    ///
    /// `config.initial_timeout`/`max_retries`/`max_timeout` are unused —
    /// they parameterize the UDP retransmit timer this transport does not
    /// have. Slot count and BKL behaviour apply as for UDP.
    pub fn new(
        kernel: &Kernel,
        path: Path,
        rx: Receiver<DatagramPayload>,
        prog: u32,
        vers: u32,
        config: XprtConfig,
    ) -> Rc<TcpRpcXprt> {
        let mtu = path.local.spec().mtu;
        let endpoint = TcpEndpoint::new(&kernel.sim, path, rx, TcpConfig::for_mtu(mtu));
        Rc::new(TcpRpcXprt {
            kernel: kernel.clone(),
            endpoint,
            cred: AuthUnix::root_on("nfsperf-client"),
            slots: Rc::new(Semaphore::new(config.slots)),
            config,
            prog,
            vers,
            next_xid: Cell::new(0x7c90_0000),
            pending: RefCell::new(HashMap::new()),
            sent: RefCell::new(HashMap::new()),
            conn: RefCell::new(ConnState::Down),
            conn_changed: WaitQueue::new(),
            calls: Counter::new(),
            replies: Counter::new(),
            orphans: Counter::new(),
            replays: Counter::new(),
            reconnects: Counter::new(),
            ever_connected: Cell::new(false),
        })
    }

    /// Issues one RPC and awaits the raw result bytes (after the reply
    /// header). Holds one transport slot for the full duration. There is
    /// no retransmit timer: the call completes when its reply record
    /// arrives, fails only if the connection can not be (re-)established.
    pub async fn call(
        self: &Rc<Self>,
        proc: u32,
        args: &dyn XdrEncode,
    ) -> Result<DatagramPayload, RpcError> {
        let _slot = self.slots.acquire().await;
        self.calls.inc();

        let xid = self.next_xid.get();
        self.next_xid.set(xid.wrapping_add(1));

        let pending = Rc::new(Pending {
            reply: RefCell::new(None),
            failed: Cell::new(false),
            arrived: WaitQueue::new(),
        });
        self.pending.borrow_mut().insert(xid, Rc::clone(&pending));

        // Encode under the BKL, exactly like the UDP transport.
        let encoded = {
            let _guard = self.kernel.bkl.lock("rpc_xmit").await;
            self.kernel
                .cpus
                .work("rpc_encode", self.kernel.costs.rpc_encode)
                .await;
            msg::encode_call(xid, self.prog, self.vers, proc, &self.cred, args)
        };
        self.sent.borrow_mut().insert(xid, encoded.clone());

        let outcome = match self.transmit(&encoded).await {
            Err(e) => Err(e),
            Ok(()) => loop {
                if let Some(r) = pending.reply.borrow_mut().take() {
                    break Ok(r);
                }
                if pending.failed.get() {
                    break Err(RpcError::TimedOut);
                }
                pending.arrived.wait().await;
            },
        };
        self.pending.borrow_mut().remove(&xid);
        self.sent.borrow_mut().remove(&xid);

        let payload = outcome?;
        let (hdr, dec) = msg::decode_reply(&payload).map_err(|_| RpcError::Garbage)?;
        if hdr.accept_stat != ACCEPT_SUCCESS {
            return Err(RpcError::Rejected(hdr.accept_stat));
        }
        let at = dec.position();
        Ok(payload[at..].to_vec())
    }

    /// Record-marks and writes one encoded call to the connection,
    /// establishing it first if necessary, with the configured
    /// `sock_sendmsg` cost and BKL behaviour.
    async fn transmit(self: &Rc<Self>, encoded: &[u8]) -> Result<(), RpcError> {
        let conn = self.ensure_conn().await?;
        let framed = record::encode_record(encoded);
        if self.config.bkl_around_sendmsg {
            let _g = self.kernel.bkl.lock("rpc_xmit").await;
            self.kernel
                .cpus
                .work("sock_sendmsg", self.kernel.costs.sock_sendmsg)
                .await;
            let _ = conn.send(&framed);
        } else {
            self.kernel
                .cpus
                .work("sock_sendmsg", self.kernel.costs.sock_sendmsg)
                .await;
            let _ = conn.send(&framed);
        }
        // A send onto a connection that died in the meantime is not an
        // error: the death is (or will be) observed by the reader, which
        // replays every pending call on the replacement connection.
        Ok(())
    }

    /// Returns the live connection, running the handshake if none exists.
    /// Exactly one task connects at a time; the rest wait. A failed
    /// handshake (SYN retries exhausted) is terminal: the transport goes
    /// `Dead` and all pending calls fail.
    async fn ensure_conn(self: &Rc<Self>) -> Result<Rc<TcpConn>, RpcError> {
        loop {
            let state = self.conn.borrow().clone();
            match state {
                ConnState::Up(c) if c.is_open() => return Ok(c),
                ConnState::Dead => return Err(RpcError::TimedOut),
                ConnState::Connecting => self.conn_changed.wait().await,
                _ => {
                    *self.conn.borrow_mut() = ConnState::Connecting;
                    match self.endpoint.connect().await {
                        Ok(c) => {
                            if self.ever_connected.get() {
                                self.reconnects.inc();
                            }
                            self.ever_connected.set(true);
                            *self.conn.borrow_mut() = ConnState::Up(Rc::clone(&c));
                            self.conn_changed.wake_all();
                            let me = Rc::clone(self);
                            let reader_conn = Rc::clone(&c);
                            self.kernel.sim.spawn(async move {
                                me.reader(reader_conn).await;
                            });
                            return Ok(c);
                        }
                        Err(_) => {
                            *self.conn.borrow_mut() = ConnState::Dead;
                            self.conn_changed.wake_all();
                            self.fail_all_pending();
                            return Err(RpcError::TimedOut);
                        }
                    }
                }
            }
        }
    }

    /// Per-connection reply reader: reassembles records from the stream,
    /// charges the same per-reply CPU/BKL costs as the UDP receive loop,
    /// and completes pending calls by xid. When the connection dies, kicks
    /// off reconnect-and-replay.
    async fn reader(self: Rc<Self>, conn: Rc<TcpConn>) {
        let mut records = RecordReader::new();
        loop {
            let bytes = match conn.recv_some().await {
                Ok(b) => b,
                Err(_) => break,
            };
            records.push(&bytes);
            while let Some(reply) = records.next_record() {
                self.kernel
                    .cpus
                    .work("net_interrupt", self.kernel.costs.interrupt)
                    .await;
                {
                    let _g = self.kernel.bkl.lock("rpc_reply").await;
                    self.kernel
                        .cpus
                        .work("rpc_reply", self.kernel.costs.rpc_reply)
                        .await;
                }
                let xid = match msg::peek_xid(&reply) {
                    Ok(x) => x,
                    Err(_) => continue,
                };
                let slot = self.pending.borrow().get(&xid).map(Rc::clone);
                match slot {
                    Some(p) => {
                        self.replies.inc();
                        *p.reply.borrow_mut() = Some(reply);
                        p.arrived.wake_all();
                    }
                    None => self.orphans.inc(),
                }
            }
        }
        self.on_conn_death(&conn);
    }

    fn on_conn_death(self: &Rc<Self>, conn: &Rc<TcpConn>) {
        let is_current =
            matches!(&*self.conn.borrow(), ConnState::Up(c) if Rc::ptr_eq(c, conn));
        if !is_current {
            return;
        }
        *self.conn.borrow_mut() = ConnState::Down;
        self.conn_changed.wake_all();
        if !self.pending.borrow().is_empty() {
            let me = Rc::clone(self);
            self.kernel.sim.spawn(async move {
                me.replay().await;
            });
        }
    }

    /// Re-sends every pending call, in xid order, on a fresh connection.
    /// The server may execute a replayed request twice; its second reply
    /// finds no pending xid and is counted as an orphan, like a duplicate
    /// UDP reply.
    async fn replay(self: Rc<Self>) {
        let Ok(conn) = self.ensure_conn().await else {
            // Reconnect failed: ensure_conn already failed all pending.
            return;
        };
        let mut xids: Vec<u32> = self.pending.borrow().keys().copied().collect();
        xids.sort_unstable();
        for xid in xids {
            // The call may have completed while we were reconnecting.
            let encoded = match self.sent.borrow().get(&xid) {
                Some(e) => e.clone(),
                None => continue,
            };
            if !self.pending.borrow().contains_key(&xid) {
                continue;
            }
            self.replays.inc();
            let framed = record::encode_record(&encoded);
            if self.config.bkl_around_sendmsg {
                let _g = self.kernel.bkl.lock("rpc_xmit").await;
                self.kernel
                    .cpus
                    .work("sock_sendmsg", self.kernel.costs.sock_sendmsg)
                    .await;
                let _ = conn.send(&framed);
            } else {
                self.kernel
                    .cpus
                    .work("sock_sendmsg", self.kernel.costs.sock_sendmsg)
                    .await;
                let _ = conn.send(&framed);
            }
        }
    }

    fn fail_all_pending(&self) {
        for p in self.pending.borrow().values() {
            p.failed.set(true);
            p.arrived.wake_all();
        }
    }

    /// Abortively closes the current connection (RST), as a fault
    /// injection hook for tests: pending calls replay on a fresh
    /// connection.
    pub fn abort_connection(&self) {
        let conn = match &*self.conn.borrow() {
            ConnState::Up(c) => Some(Rc::clone(c)),
            _ => None,
        };
        if let Some(c) = conn {
            c.abort();
        }
    }

    /// Snapshot of transport counters, shaped like the UDP transport's:
    /// `retransmits` counts whole-call replays after reconnects (the only
    /// RPC-level resend TCP ever does).
    pub fn stats(&self) -> XprtStats {
        XprtStats {
            calls: self.calls.get(),
            retransmits: self.replays.get(),
            replies: self.replies.get(),
            orphan_replies: self.orphans.get(),
        }
    }

    /// Connections re-established after the first.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.get()
    }

    /// Counters of the underlying TCP endpoint.
    pub fn tcp_stats(&self) -> TcpStats {
        self.endpoint.stats()
    }

    /// Free transport slots right now.
    pub fn free_slots(&self) -> usize {
        self.slots.available()
    }

    /// Tasks queued waiting for a slot.
    pub fn queued_senders(&self) -> usize {
        self.slots.queued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_kernel::KernelConfig;
    use nfsperf_net::{Nic, NicSpec};
    use nfsperf_sim::{Sim, SimDuration, SimTime};

    /// A stream-side echo RPC server: accepts one connection after
    /// another, reassembles call records, replies with the called proc
    /// after `delay`.
    fn spawn_stream_echo_server(
        sim: &Sim,
        rx: Receiver<DatagramPayload>,
        reply_path: Path,
        delay: SimDuration,
    ) {
        let ep = TcpEndpoint::new(sim, reply_path, rx, TcpConfig::for_mtu(1500));
        let sim2 = sim.clone();
        sim.spawn(async move {
            while let Some(conn) = ep.accept().await {
                let sim3 = sim2.clone();
                sim2.spawn(async move {
                    let mut records = RecordReader::new();
                    loop {
                        let bytes = match conn.recv_some().await {
                            Ok(b) => b,
                            Err(_) => return,
                        };
                        records.push(&bytes);
                        while let Some(call) = records.next_record() {
                            let (hdr, _args) = msg::decode_call(&call).expect("parse call");
                            sim3.sleep(delay).await;
                            let reply = msg::encode_reply(hdr.xid, &hdr.proc);
                            let _ = conn.send(&record::encode_record(&reply));
                        }
                    }
                });
            }
        });
    }

    fn build(
        sim: &Sim,
        config: XprtConfig,
        server_delay: SimDuration,
    ) -> (Kernel, Rc<TcpRpcXprt>) {
        let kernel = Kernel::new(sim, KernelConfig::default());
        let (cnic, crx) = Nic::new(sim, "client", NicSpec::gigabit());
        let (snic, srx) = Nic::new(sim, "server", NicSpec::gigabit());
        let to_server = Path::new(Rc::clone(&cnic), Rc::clone(&snic), Path::default_latency());
        spawn_stream_echo_server(sim, srx, to_server.reversed(), server_delay);
        let xprt = TcpRpcXprt::new(&kernel, to_server, crx, 100_003, 3, config);
        (kernel, xprt)
    }

    #[test]
    fn call_round_trips_over_tcp() {
        let sim = Sim::new();
        let (_k, xprt) = build(&sim, XprtConfig::default(), SimDuration::from_micros(100));
        let x = Rc::clone(&xprt);
        let res = sim.run_until(async move { x.call(7, &0xfeed_u32).await.unwrap() });
        let mut dec = nfsperf_xdr::Decoder::new(&res);
        assert_eq!(dec.get_u32().unwrap(), 7);
        let stats = xprt.stats();
        assert_eq!((stats.calls, stats.replies, stats.retransmits), (1, 1, 0));
        assert_eq!(xprt.tcp_stats().connects, 1);
    }

    #[test]
    fn slow_server_never_triggers_rpc_retransmit() {
        // Two seconds of server latency dwarfs the UDP transport's 700 ms
        // retransmit timer; over TCP the call just waits.
        let sim = Sim::new();
        let (_k, xprt) = build(&sim, XprtConfig::default(), SimDuration::from_secs(2));
        let x = Rc::clone(&xprt);
        let res = sim.run_until(async move { x.call(7, &1u32).await });
        assert!(res.is_ok());
        assert_eq!(xprt.stats().retransmits, 0, "no RPC-layer retransmit");
        assert_eq!(xprt.tcp_stats().retransmits, 0, "no TCP-layer retransmit");
        let elapsed = sim.now() - SimTime::ZERO;
        assert!(elapsed >= SimDuration::from_secs(2));
    }

    #[test]
    fn connection_death_replays_pending_calls() {
        let sim = Sim::new();
        let (_k, xprt) = build(&sim, XprtConfig::default(), SimDuration::from_millis(50));
        let x = Rc::clone(&xprt);
        let killer = Rc::clone(&xprt);
        let s = sim.clone();
        let res = sim.run_until(async move {
            let call = s.spawn(async move { x.call(9, &2u32).await });
            // Let the call reach the server-delay window, then kill the
            // connection under it.
            s.sleep(SimDuration::from_millis(10)).await;
            killer.abort_connection();
            call.await
        });
        let out = res.expect("call survives a connection reset");
        let mut dec = nfsperf_xdr::Decoder::new(&out);
        assert_eq!(dec.get_u32().unwrap(), 9);
        assert_eq!(xprt.stats().retransmits, 1, "one replay");
        assert_eq!(xprt.reconnects(), 1, "one reconnect");
        assert_eq!(xprt.tcp_stats().connects, 2);
    }

    #[test]
    fn unreachable_server_fails_calls() {
        let sim = Sim::new();
        let kernel = Kernel::new(&sim, KernelConfig::default());
        let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (snic, _srx_dropped) = Nic::new(&sim, "server", NicSpec::gigabit());
        let to_server = Path::new(cnic, snic, Path::default_latency());
        let xprt = TcpRpcXprt::new(&kernel, to_server, crx, 100_003, 3, XprtConfig::default());
        let x = Rc::clone(&xprt);
        let res = sim.run_until(async move { x.call(7, &1u32).await });
        assert_eq!(res, Err(RpcError::TimedOut));
        // And the transport is dead: later calls fail immediately.
        let x = Rc::clone(&xprt);
        let before = sim.now();
        let res = sim.run_until(async move { x.call(8, &1u32).await });
        assert_eq!(res, Err(RpcError::TimedOut));
        assert!(sim.now() - before < SimDuration::from_secs(1));
    }
}
