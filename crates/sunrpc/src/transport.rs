//! Transport selection: one client RPC transport type that is either the
//! 2.4-style UDP transport or the RPC-over-TCP transport, chosen per
//! mount. Callers (the NFS client write path) see one `call` surface and
//! never depend on `nfsperf-tcp` directly.

use std::rc::Rc;

use nfsperf_kernel::Kernel;
use nfsperf_net::{DatagramPayload, Path};
use nfsperf_sim::Receiver;
use nfsperf_xdr::XdrEncode;

use crate::tcp_xprt::TcpRpcXprt;
use crate::xprt::{RpcError, RpcXprt, XprtConfig, XprtStats};

/// Which RPC transport a mount uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Datagrams with RPC-layer retransmission (Linux 2.4 default).
    #[default]
    Udp,
    /// A TCP connection with record marking; reliability lives in the
    /// transport, the RPC layer only replays across reconnects.
    Tcp,
}

impl Transport {
    /// Lower-case name, as accepted by the CLI `--transport` flag.
    pub fn label(&self) -> &'static str {
        match self {
            Transport::Udp => "udp",
            Transport::Tcp => "tcp",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Option<Transport> {
        match s {
            "udp" => Some(Transport::Udp),
            "tcp" => Some(Transport::Tcp),
            _ => None,
        }
    }
}

/// A client RPC transport of either flavour.
pub enum Xprt {
    /// UDP: slot table + retransmit timer ([`RpcXprt`]).
    Udp(Rc<RpcXprt>),
    /// TCP: record marking + connection replay ([`TcpRpcXprt`]).
    Tcp(Rc<TcpRpcXprt>),
}

impl Xprt {
    /// Creates the transport selected by `transport`, bound to `path` and
    /// draining `rx`.
    pub fn new(
        kernel: &Kernel,
        path: Path,
        rx: Receiver<DatagramPayload>,
        prog: u32,
        vers: u32,
        config: XprtConfig,
        transport: Transport,
    ) -> Rc<Xprt> {
        Rc::new(match transport {
            Transport::Udp => Xprt::Udp(RpcXprt::new(kernel, path, rx, prog, vers, config)),
            Transport::Tcp => Xprt::Tcp(TcpRpcXprt::new(kernel, path, rx, prog, vers, config)),
        })
    }

    /// Issues one RPC and awaits the raw result bytes.
    pub async fn call(
        &self,
        proc: u32,
        args: &dyn XdrEncode,
    ) -> Result<DatagramPayload, RpcError> {
        match self {
            Xprt::Udp(x) => x.call(proc, args).await,
            Xprt::Tcp(x) => x.call(proc, args).await,
        }
    }

    /// Which flavour this is.
    pub fn transport(&self) -> Transport {
        match self {
            Xprt::Udp(_) => Transport::Udp,
            Xprt::Tcp(_) => Transport::Tcp,
        }
    }

    /// The TCP transport, when that is what this is (for TCP-specific
    /// counters in reports).
    pub fn tcp(&self) -> Option<&Rc<TcpRpcXprt>> {
        match self {
            Xprt::Tcp(x) => Some(x),
            Xprt::Udp(_) => None,
        }
    }

    /// Snapshot of transport counters.
    pub fn stats(&self) -> XprtStats {
        match self {
            Xprt::Udp(x) => x.stats(),
            Xprt::Tcp(x) => x.stats(),
        }
    }

    /// Free transport slots right now.
    pub fn free_slots(&self) -> usize {
        match self {
            Xprt::Udp(x) => x.free_slots(),
            Xprt::Tcp(x) => x.free_slots(),
        }
    }

    /// Tasks queued waiting for a slot.
    pub fn queued_senders(&self) -> usize {
        match self {
            Xprt::Udp(x) => x.queued_senders(),
            Xprt::Tcp(x) => x.queued_senders(),
        }
    }
}
