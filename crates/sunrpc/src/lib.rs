//! SUN RPC (RFC 1831) message layer and simulated client transports.
//!
//! [`msg`] encodes and decodes real RPC CALL/REPLY wire messages on top of
//! `nfsperf-xdr`. Two client transports sit above it, selected per mount
//! via [`Transport`]:
//!
//! - [`xprt`]: the Linux 2.4 UDP transport the paper studies — a 16-entry
//!   slot table, whole-RPC retransmission with exponential backoff (capped
//!   at 60 s), per-send `sock_sendmsg` CPU cost, and the global kernel
//!   lock held (or, with the paper's patch, released) across the send
//!   path;
//! - [`tcp_xprt`]: RPC over a `nfsperf-tcp` connection with RFC 1831 §10
//!   record marking ([`record`]), no RPC-layer retransmit timer, and
//!   reconnect-with-replay on connection death.

pub mod msg;
pub mod record;
pub mod tcp_xprt;
pub mod transport;
pub mod xprt;

pub use msg::{
    decode_call, decode_reply, encode_call, encode_reply, encode_reply_status, peek_xid, AuthUnix,
    CallHeader, ReplyHeader, ACCEPT_GARBAGE_ARGS, ACCEPT_PROC_UNAVAIL, ACCEPT_PROG_MISMATCH,
    ACCEPT_PROG_UNAVAIL, ACCEPT_SUCCESS,
};
pub use record::{encode_record, encode_record_frags, RecordReader, LAST_FRAGMENT};
pub use tcp_xprt::TcpRpcXprt;
pub use transport::{Transport, Xprt};
pub use xprt::{RpcError, RpcXprt, XprtConfig, XprtStats};
