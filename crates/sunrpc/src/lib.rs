//! SUN RPC (RFC 1831) message layer and simulated client transport.
//!
//! [`msg`] encodes and decodes real RPC CALL/REPLY wire messages on top of
//! `nfsperf-xdr`; [`xprt`] is the client transport with the Linux 2.4
//! behaviours the paper studies — a 16-entry slot table, retransmission
//! with exponential backoff, per-send `sock_sendmsg` CPU cost, and the
//! global kernel lock held (or, with the paper's patch, released) across
//! the send path.

pub mod msg;
pub mod xprt;

pub use msg::{
    decode_call, decode_reply, encode_call, encode_reply, encode_reply_status, peek_xid, AuthUnix,
    CallHeader, ReplyHeader, ACCEPT_GARBAGE_ARGS, ACCEPT_PROC_UNAVAIL, ACCEPT_SUCCESS,
};
pub use xprt::{RpcError, RpcXprt, XprtConfig, XprtStats};
