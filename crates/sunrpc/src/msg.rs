//! RFC 1831 RPC message headers: CALL and REPLY encoding.
//!
//! Only the shapes the simulation needs are implemented: version-2 RPC,
//! `AUTH_UNIX` credentials on calls, `AUTH_NONE` verifiers, and accepted
//! replies with `SUCCESS`/error status. These are real wire encodings —
//! the sizes feed the fragmentation model.

use nfsperf_xdr::{Decoder, Encoder, XdrDecode, XdrEncode, XdrError};

/// RPC protocol version.
pub const RPC_VERSION: u32 = 2;
/// Message type: call.
pub const MSG_CALL: u32 = 0;
/// Message type: reply.
pub const MSG_REPLY: u32 = 1;
/// Auth flavor: none.
pub const AUTH_NONE: u32 = 0;
/// Auth flavor: unix.
pub const AUTH_UNIX: u32 = 1;
/// Accept status: success.
pub const ACCEPT_SUCCESS: u32 = 0;
/// Accept status: program unavailable on this server.
pub const ACCEPT_PROG_UNAVAIL: u32 = 1;
/// Accept status: program version not supported.
pub const ACCEPT_PROG_MISMATCH: u32 = 2;
/// Accept status: procedure unavailable.
pub const ACCEPT_PROC_UNAVAIL: u32 = 3;
/// Accept status: garbage arguments.
pub const ACCEPT_GARBAGE_ARGS: u32 = 4;

/// An `AUTH_UNIX` credential (RFC 1831 appendix A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthUnix {
    /// Arbitrary stamp.
    pub stamp: u32,
    /// Client host name.
    pub machine: String,
    /// Effective uid.
    pub uid: u32,
    /// Effective gid.
    pub gid: u32,
    /// Supplementary gids.
    pub gids: Vec<u32>,
}

impl AuthUnix {
    /// The credential the simulated client always presents.
    pub fn root_on(machine: &str) -> AuthUnix {
        AuthUnix {
            stamp: 0x1ab5,
            machine: machine.to_owned(),
            uid: 0,
            gid: 0,
            gids: Vec::new(),
        }
    }
}

impl XdrEncode for AuthUnix {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(AUTH_UNIX);
        // Body is an opaque; encode it separately to learn its length.
        let mut body = Encoder::new();
        body.put_u32(self.stamp);
        body.put_string(&self.machine);
        body.put_u32(self.uid);
        body.put_u32(self.gid);
        body.put_u32(self.gids.len() as u32);
        for g in &self.gids {
            body.put_u32(*g);
        }
        enc.put_opaque(body.bytes());
    }
}

impl XdrDecode for AuthUnix {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, XdrError> {
        let flavor = dec.get_u32()?;
        if flavor != AUTH_UNIX {
            return Err(XdrError::BadDiscriminant(flavor));
        }
        let body = dec.get_opaque()?;
        let mut b = Decoder::new(body);
        let stamp = b.get_u32()?;
        let machine = b.get_string()?.to_owned();
        let uid = b.get_u32()?;
        let gid = b.get_u32()?;
        let n = b.get_u32()?;
        let mut gids = Vec::with_capacity(n as usize);
        for _ in 0..n {
            gids.push(b.get_u32()?);
        }
        Ok(AuthUnix {
            stamp,
            machine,
            uid,
            gid,
            gids,
        })
    }
}

/// A parsed RPC CALL header (everything before the procedure arguments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallHeader {
    /// Transaction id.
    pub xid: u32,
    /// Program number.
    pub prog: u32,
    /// Program version.
    pub vers: u32,
    /// Procedure number.
    pub proc: u32,
    /// Credential.
    pub cred: AuthUnix,
}

/// Encodes a complete CALL message: header followed by `args`.
pub fn encode_call(
    xid: u32,
    prog: u32,
    vers: u32,
    proc: u32,
    cred: &AuthUnix,
    args: &dyn XdrEncode,
) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(args.encoded_len() + 96);
    enc.put_u32(xid);
    enc.put_u32(MSG_CALL);
    enc.put_u32(RPC_VERSION);
    enc.put_u32(prog);
    enc.put_u32(vers);
    enc.put_u32(proc);
    cred.encode(&mut enc);
    // Verifier: AUTH_NONE.
    enc.put_u32(AUTH_NONE);
    enc.put_u32(0);
    args.encode(&mut enc);
    enc.into_bytes()
}

/// Parses a CALL message; returns the header and a decoder positioned at
/// the procedure arguments.
pub fn decode_call(payload: &[u8]) -> Result<(CallHeader, Decoder<'_>), XdrError> {
    let mut dec = Decoder::new(payload);
    let xid = dec.get_u32()?;
    let mtype = dec.get_u32()?;
    if mtype != MSG_CALL {
        return Err(XdrError::BadDiscriminant(mtype));
    }
    let rpcvers = dec.get_u32()?;
    if rpcvers != RPC_VERSION {
        return Err(XdrError::BadDiscriminant(rpcvers));
    }
    let prog = dec.get_u32()?;
    let vers = dec.get_u32()?;
    let proc = dec.get_u32()?;
    let cred = AuthUnix::decode(&mut dec)?;
    let verf_flavor = dec.get_u32()?;
    if verf_flavor != AUTH_NONE {
        return Err(XdrError::BadDiscriminant(verf_flavor));
    }
    let _verf_body = dec.get_opaque()?;
    Ok((
        CallHeader {
            xid,
            prog,
            vers,
            proc,
            cred,
        },
        dec,
    ))
}

/// Encodes an accepted-SUCCESS REPLY carrying `results`.
pub fn encode_reply(xid: u32, results: &dyn XdrEncode) -> Vec<u8> {
    encode_reply_status(xid, ACCEPT_SUCCESS, Some(results))
}

/// Encodes an accepted REPLY with an explicit accept status; `results`
/// only for `ACCEPT_SUCCESS`.
pub fn encode_reply_status(xid: u32, accept_stat: u32, results: Option<&dyn XdrEncode>) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(results.map_or(0, |r| r.encoded_len()) + 32);
    enc.put_u32(xid);
    enc.put_u32(MSG_REPLY);
    // reply_stat: MSG_ACCEPTED.
    enc.put_u32(0);
    // Verifier: AUTH_NONE.
    enc.put_u32(AUTH_NONE);
    enc.put_u32(0);
    enc.put_u32(accept_stat);
    if accept_stat == ACCEPT_SUCCESS {
        if let Some(r) = results {
            r.encode(&mut enc);
        }
    }
    enc.into_bytes()
}

/// A parsed REPLY: xid, accept status, and the results bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyHeader {
    /// Transaction id this reply answers.
    pub xid: u32,
    /// Accept status ([`ACCEPT_SUCCESS`] on the happy path).
    pub accept_stat: u32,
}

/// Parses a REPLY; returns the header and a decoder positioned at the
/// results.
pub fn decode_reply(payload: &[u8]) -> Result<(ReplyHeader, Decoder<'_>), XdrError> {
    let mut dec = Decoder::new(payload);
    let xid = dec.get_u32()?;
    let mtype = dec.get_u32()?;
    if mtype != MSG_REPLY {
        return Err(XdrError::BadDiscriminant(mtype));
    }
    let reply_stat = dec.get_u32()?;
    if reply_stat != 0 {
        return Err(XdrError::BadDiscriminant(reply_stat));
    }
    let verf_flavor = dec.get_u32()?;
    if verf_flavor != AUTH_NONE {
        return Err(XdrError::BadDiscriminant(verf_flavor));
    }
    let _verf_body = dec.get_opaque()?;
    let accept_stat = dec.get_u32()?;
    Ok((ReplyHeader { xid, accept_stat }, dec))
}

/// Peeks the xid of any RPC message without full parsing.
pub fn peek_xid(payload: &[u8]) -> Result<u32, XdrError> {
    Decoder::new(payload).get_u32()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_nfs3::{FileHandle, NfsProc3, StableHow, Write3Args, NFS_PROGRAM, NFS_V3};

    #[test]
    fn auth_unix_round_trip() {
        let cred = AuthUnix {
            stamp: 7,
            machine: "client".into(),
            uid: 500,
            gid: 100,
            gids: vec![1, 2, 3],
        };
        let mut enc = Encoder::new();
        cred.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(AuthUnix::decode(&mut dec).unwrap(), cred);
    }

    #[test]
    fn call_round_trip() {
        let cred = AuthUnix::root_on("client");
        let args = Write3Args::new(FileHandle::for_fileid(3), 0, 8192, StableHow::Unstable);
        let msg = encode_call(
            0xabc,
            NFS_PROGRAM,
            NFS_V3,
            NfsProc3::Write as u32,
            &cred,
            &args,
        );
        let (hdr, mut argdec) = decode_call(&msg).unwrap();
        assert_eq!(hdr.xid, 0xabc);
        assert_eq!(hdr.prog, NFS_PROGRAM);
        assert_eq!(hdr.vers, NFS_V3);
        assert_eq!(hdr.proc, 7);
        assert_eq!(hdr.cred, cred);
        let back = Write3Args::decode(&mut argdec).unwrap();
        assert_eq!(back, args);
        assert!(argdec.is_empty());
    }

    #[test]
    fn write_call_wire_size_fragments_six_ways() {
        // The whole point of real encodings: an 8 KiB WRITE over UDP is a
        // ~8.3 KB datagram = 6 fragments at MTU 1500.
        let cred = AuthUnix::root_on("client");
        let args = Write3Args::new(FileHandle::for_fileid(3), 0, 8192, StableHow::Unstable);
        let msg = encode_call(1, NFS_PROGRAM, NFS_V3, 7, &cred, &args);
        assert!(msg.len() > 8192 + 56, "header must add to payload");
        assert!(msg.len() < 8192 + 200, "header should be modest");
        assert_eq!(nfsperf_net::fragments_for(msg.len(), 1500), 6);
        assert_eq!(nfsperf_net::fragments_for(msg.len(), 9000), 1);
    }

    #[test]
    fn reply_round_trip() {
        let msg = encode_reply(9, &42u32);
        let (hdr, mut dec) = decode_reply(&msg).unwrap();
        assert_eq!(hdr.xid, 9);
        assert_eq!(hdr.accept_stat, ACCEPT_SUCCESS);
        assert_eq!(dec.get_u32().unwrap(), 42);
    }

    #[test]
    fn reply_error_status() {
        let msg = encode_reply_status(9, ACCEPT_PROC_UNAVAIL, None);
        let (hdr, dec) = decode_reply(&msg).unwrap();
        assert_eq!(hdr.accept_stat, ACCEPT_PROC_UNAVAIL);
        assert!(dec.is_empty());
    }

    #[test]
    fn peek_xid_works_on_calls_and_replies() {
        let cred = AuthUnix::root_on("c");
        let call = encode_call(0x1111, 1, 2, 3, &cred, &0u32);
        let reply = encode_reply(0x2222, &0u32);
        assert_eq!(peek_xid(&call).unwrap(), 0x1111);
        assert_eq!(peek_xid(&reply).unwrap(), 0x2222);
    }

    #[test]
    fn decode_call_rejects_reply() {
        let reply = encode_reply(5, &0u32);
        assert!(decode_call(&reply).is_err());
    }

    #[test]
    fn decode_reply_rejects_call() {
        let cred = AuthUnix::root_on("c");
        let call = encode_call(5, 1, 2, 3, &cred, &0u32);
        assert!(decode_reply(&call).is_err());
    }
}
