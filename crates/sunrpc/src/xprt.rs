//! The client-side RPC transport (`xprt`), modelled on Linux 2.4's
//! `net/sunrpc` UDP transport.
//!
//! Three properties matter to the paper and are modelled faithfully:
//!
//! 1. **Slot table**: at most [`XprtConfig::slots`] requests in flight
//!    (Linux 2.4: 16). When a slow server is attached the table empties
//!    slowly, senders park, and — this is the paper's §3.5 surprise — the
//!    *writer* runs free of lock contention, which is why memory-write
//!    throughput is *higher* against slower servers.
//! 2. **The global kernel lock**: the 2.4.4 RPC layer runs its whole
//!    transmit path, including `sock_sendmsg` (~50 µs of CPU), under the
//!    BKL. The paper's fix releases the lock around `sock_sendmsg`;
//!    [`XprtConfig::bkl_around_sendmsg`] selects either behaviour.
//! 3. **Reply processing**: every reply costs interrupt plus RPC
//!    completion CPU and briefly takes the BKL, so faster servers impose
//!    more client-side work per second.
//!
//! Retransmission uses the 2.4 defaults: 700 ms initial timeout with
//! exponential backoff.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use nfsperf_kernel::Kernel;
use nfsperf_net::{pool_copy, pool_put, DatagramPayload, Path};
use nfsperf_sim::{select2, Counter, Either, Receiver, Semaphore, SimDuration, WaitQueue};
use nfsperf_xdr::XdrEncode;

use crate::msg::{self, AuthUnix, ACCEPT_SUCCESS};

/// Transport configuration.
#[derive(Debug, Clone)]
pub struct XprtConfig {
    /// Maximum in-flight requests (2.4 sunrpc slot-table size).
    pub slots: usize,
    /// Initial retransmit timeout.
    pub initial_timeout: SimDuration,
    /// Retransmissions before a call errors out.
    pub max_retries: u32,
    /// Ceiling on the backed-off retransmit timeout. Linux 2.4 caps the
    /// doubling at 60 s (`RPC_MAX_TIMEOUT`); without the cap a handful of
    /// consecutive losses pushes the next probe out by many minutes.
    pub max_timeout: SimDuration,
    /// Hold the global kernel lock across `sock_sendmsg` (2.4.4
    /// behaviour). The paper's patch sets this to `false`.
    pub bkl_around_sendmsg: bool,
}

impl Default for XprtConfig {
    fn default() -> Self {
        XprtConfig {
            slots: 16,
            initial_timeout: SimDuration::from_millis(700),
            max_retries: 5,
            max_timeout: SimDuration::from_secs(60),
            bkl_around_sendmsg: true,
        }
    }
}

/// RPC call failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// No reply after all retransmissions.
    TimedOut,
    /// The server accepted but did not execute (accept_stat != SUCCESS).
    Rejected(u32),
    /// The reply would not parse.
    Garbage,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::TimedOut => write!(f, "RPC timed out"),
            RpcError::Rejected(s) => write!(f, "RPC rejected with accept status {s}"),
            RpcError::Garbage => write!(f, "RPC reply would not parse"),
        }
    }
}

impl std::error::Error for RpcError {}

struct Pending {
    reply: RefCell<Option<DatagramPayload>>,
    arrived: WaitQueue,
}

/// Aggregate transport statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct XprtStats {
    /// Calls issued.
    pub calls: u64,
    /// Datagrams retransmitted.
    pub retransmits: u64,
    /// Replies matched to a pending call.
    pub replies: u64,
    /// Replies that arrived after their call had completed or timed out.
    pub orphan_replies: u64,
}

/// The client RPC transport.
pub struct RpcXprt {
    kernel: Kernel,
    path: Path,
    cred: AuthUnix,
    config: XprtConfig,
    prog: u32,
    vers: u32,
    next_xid: Cell<u32>,
    pending: RefCell<HashMap<u32, Rc<Pending>>>,
    slots: Rc<Semaphore>,
    calls: Counter,
    retransmits: Counter,
    replies: Counter,
    orphans: Counter,
}

impl RpcXprt {
    /// Creates a transport bound to `path` for program `prog` version
    /// `vers`, and spawns the receive loop draining `rx`.
    pub fn new(
        kernel: &Kernel,
        path: Path,
        rx: Receiver<DatagramPayload>,
        prog: u32,
        vers: u32,
        config: XprtConfig,
    ) -> Rc<RpcXprt> {
        let xprt = Rc::new(RpcXprt {
            kernel: kernel.clone(),
            path,
            cred: AuthUnix::root_on("nfsperf-client"),
            slots: Rc::new(Semaphore::new(config.slots)),
            config,
            prog,
            vers,
            next_xid: Cell::new(0x0136_5ee0),
            pending: RefCell::new(HashMap::new()),
            calls: Counter::new(),
            retransmits: Counter::new(),
            replies: Counter::new(),
            orphans: Counter::new(),
        });
        let recv = Rc::clone(&xprt);
        kernel.sim.spawn(async move {
            recv.receive_loop(rx).await;
        });
        xprt
    }

    /// Issues one RPC and awaits the raw result bytes (after the reply
    /// header). Holds one transport slot for the full duration.
    pub async fn call(&self, proc: u32, args: &dyn XdrEncode) -> Result<DatagramPayload, RpcError> {
        let _slot = self.slots.acquire().await;
        self.calls.inc();

        let xid = self.next_xid.get();
        self.next_xid.set(xid.wrapping_add(1));

        let pending = Rc::new(Pending {
            reply: RefCell::new(None),
            arrived: WaitQueue::new(),
        });
        self.pending.borrow_mut().insert(xid, Rc::clone(&pending));

        // Encode under the BKL (the 2.4 RPC layer protects its state with
        // it); in the patched configuration the lock is dropped before
        // sock_sendmsg, in the stock one it is held across it.
        let msg = {
            let guard = self.kernel.bkl.lock("rpc_xmit").await;
            self.kernel
                .cpus
                .work("rpc_encode", self.kernel.costs.rpc_encode)
                .await;
            let msg = msg::encode_call(xid, self.prog, self.vers, proc, &self.cred, args);
            if self.config.bkl_around_sendmsg {
                self.kernel
                    .cpus
                    .work("sock_sendmsg", self.kernel.costs.sock_sendmsg)
                    .await;
                self.path.send(pool_copy(&msg));
                drop(guard);
            } else {
                drop(guard);
                self.kernel
                    .cpus
                    .work("sock_sendmsg", self.kernel.costs.sock_sendmsg)
                    .await;
                self.path.send(pool_copy(&msg));
            }
            msg
        };

        let mut timeout = self.config.initial_timeout;
        let mut attempt = 0;
        let outcome = loop {
            match select2(Self::wait_reply(&pending), self.kernel.sim.sleep(timeout)).await {
                Either::Left(reply) => break Ok(reply),
                Either::Right(()) => {
                    if attempt >= self.config.max_retries {
                        break Err(RpcError::TimedOut);
                    }
                    attempt += 1;
                    self.retransmits.inc();
                    timeout = (timeout * 2).min(self.config.max_timeout);
                    self.send_retransmit(&msg).await;
                }
            }
        };
        self.pending.borrow_mut().remove(&xid);
        // The call message outlived its last (re)transmission; recycle it.
        pool_put(msg);
        let payload = outcome?;
        let result = (|| {
            let (hdr, dec) = msg::decode_reply(&payload).map_err(|_| RpcError::Garbage)?;
            if hdr.accept_stat != ACCEPT_SUCCESS {
                return Err(RpcError::Rejected(hdr.accept_stat));
            }
            let at = dec.position();
            Ok(pool_copy(&payload[at..]))
        })();
        pool_put(payload);
        result
    }

    async fn send_retransmit(&self, msg: &[u8]) {
        if self.config.bkl_around_sendmsg {
            let _g = self.kernel.bkl.lock("rpc_xmit").await;
            self.kernel
                .cpus
                .work("sock_sendmsg", self.kernel.costs.sock_sendmsg)
                .await;
            self.path.send(pool_copy(msg));
        } else {
            self.kernel
                .cpus
                .work("sock_sendmsg", self.kernel.costs.sock_sendmsg)
                .await;
            self.path.send(pool_copy(msg));
        }
    }

    async fn wait_reply(pending: &Rc<Pending>) -> DatagramPayload {
        loop {
            if let Some(r) = pending.reply.borrow_mut().take() {
                return r;
            }
            pending.arrived.wait().await;
        }
    }

    async fn receive_loop(&self, rx: Receiver<DatagramPayload>) {
        while let Some(payload) = rx.recv().await {
            // Interrupt entry/exit, then RPC completion under the BKL
            // (softirq + rpciod work the 2.4 kernel does per reply).
            self.kernel
                .cpus
                .work("net_interrupt", self.kernel.costs.interrupt)
                .await;
            {
                let _g = self.kernel.bkl.lock("rpc_reply").await;
                self.kernel
                    .cpus
                    .work("rpc_reply", self.kernel.costs.rpc_reply)
                    .await;
            }
            let xid = match msg::peek_xid(&payload) {
                Ok(x) => x,
                Err(_) => continue,
            };
            let slot = self.pending.borrow().get(&xid).map(Rc::clone);
            match slot {
                Some(p) => {
                    self.replies.inc();
                    *p.reply.borrow_mut() = Some(payload);
                    p.arrived.wake_all();
                }
                None => {
                    self.orphans.inc();
                }
            }
        }
    }

    /// Snapshot of transport counters.
    pub fn stats(&self) -> XprtStats {
        XprtStats {
            calls: self.calls.get(),
            retransmits: self.retransmits.get(),
            replies: self.replies.get(),
            orphan_replies: self.orphans.get(),
        }
    }

    /// Free transport slots right now.
    pub fn free_slots(&self) -> usize {
        self.slots.available()
    }

    /// Tasks queued waiting for a slot.
    pub fn queued_senders(&self) -> usize {
        self.slots.queued()
    }

    /// The transport's network path (for meters in reports).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfsperf_kernel::KernelConfig;
    use nfsperf_net::{Nic, NicSpec};
    use nfsperf_sim::Sim;

    /// A trivial echo RPC server: replies to every call with its xid.
    fn spawn_echo_server(
        sim: &Sim,
        rx: Receiver<DatagramPayload>,
        reply_path: Path,
        delay: SimDuration,
    ) {
        let sim2 = sim.clone();
        sim.spawn(async move {
            while let Some(payload) = rx.recv().await {
                let (hdr, _args) = msg::decode_call(&payload).expect("parse call");
                sim2.sleep(delay).await;
                reply_path.send(msg::encode_reply(hdr.xid, &hdr.proc));
            }
        });
    }

    fn build(sim: &Sim, config: XprtConfig, server_delay: SimDuration) -> (Kernel, Rc<RpcXprt>) {
        let kernel = Kernel::new(sim, KernelConfig::default());
        let (cnic, crx) = Nic::new(sim, "client", NicSpec::gigabit());
        let (snic, srx) = Nic::new(sim, "server", NicSpec::gigabit());
        let to_server = Path::new(Rc::clone(&cnic), Rc::clone(&snic), Path::default_latency());
        let to_client = to_server.reversed();
        spawn_echo_server(sim, srx, to_client, server_delay);
        let xprt = RpcXprt::new(&kernel, to_server, crx, 100_003, 3, config);
        (kernel, xprt)
    }

    #[test]
    fn call_round_trips() {
        let sim = Sim::new();
        let (_k, xprt) = build(&sim, XprtConfig::default(), SimDuration::from_micros(100));
        let out = sim.run_until(async move {
            let res = xprt.call(7, &0xfeed_u32).await.unwrap();
            (res, xprt.stats())
        });
        let (res, stats) = out;
        let mut dec = nfsperf_xdr::Decoder::new(&res);
        assert_eq!(dec.get_u32().unwrap(), 7, "echo server returns proc");
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.replies, 1);
        assert_eq!(stats.retransmits, 0);
    }

    #[test]
    fn slot_table_limits_in_flight() {
        let sim = Sim::new();
        let config = XprtConfig {
            slots: 2,
            ..XprtConfig::default()
        };
        // Slow server so calls overlap.
        let (_k, xprt) = build(&sim, config, SimDuration::from_millis(1));
        let xprt2 = Rc::clone(&xprt);
        let s = sim.clone();
        sim.run_until(async move {
            let mut handles = Vec::new();
            for _ in 0..6 {
                let x = Rc::clone(&xprt2);
                handles.push(s.spawn(async move { x.call(1, &1u32).await.unwrap() }));
            }
            s.sleep(SimDuration::from_micros(500)).await;
            // All six issued; at most 2 slots outstanding.
            assert_eq!(x_free(&xprt2), 0);
            assert!(xprt2.queued_senders() >= 3);
            for h in handles {
                h.await;
            }
        });
        assert_eq!(xprt.stats().calls, 6);
        assert_eq!(xprt.free_slots(), 2);
    }

    fn x_free(x: &RpcXprt) -> usize {
        x.free_slots()
    }

    #[test]
    fn retransmits_on_loss_and_recovers() {
        let sim = Sim::new();
        let kernel = Kernel::new(&sim, KernelConfig::default());
        // Client NIC drops the first transmission deterministically-ish:
        // use 60% loss and enough retries that the call succeeds.
        let (cnic, crx) = Nic::with_loss(&sim, "client", NicSpec::gigabit(), 0.6, 42);
        let (snic, srx) = Nic::new(&sim, "server", NicSpec::gigabit());
        let to_server = Path::new(Rc::clone(&cnic), Rc::clone(&snic), Path::default_latency());
        spawn_echo_server(
            &sim,
            srx,
            to_server.reversed(),
            SimDuration::from_micros(10),
        );
        let xprt = RpcXprt::new(
            &kernel,
            to_server,
            crx,
            100_003,
            3,
            XprtConfig {
                max_retries: 20,
                initial_timeout: SimDuration::from_millis(10),
                ..XprtConfig::default()
            },
        );
        let x = Rc::clone(&xprt);
        let res = sim.run_until(async move { x.call(7, &1u32).await });
        assert!(res.is_ok(), "call should survive losses: {res:?}");
        let stats = xprt.stats();
        assert!(
            stats.retransmits > 0 || cnic.drops() == 0,
            "with 60% loss we expect at least one retransmit (drops={})",
            cnic.drops()
        );
    }

    #[test]
    fn times_out_when_server_gone() {
        let sim = Sim::new();
        let kernel = Kernel::new(&sim, KernelConfig::default());
        let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (snic, _srx_dropped) = Nic::new(&sim, "server", NicSpec::gigabit());
        let to_server = Path::new(cnic, snic, Path::default_latency());
        let xprt = RpcXprt::new(
            &kernel,
            to_server,
            crx,
            100_003,
            3,
            XprtConfig {
                max_retries: 2,
                initial_timeout: SimDuration::from_millis(1),
                ..XprtConfig::default()
            },
        );
        let x = Rc::clone(&xprt);
        let res = sim.run_until(async move { x.call(7, &1u32).await });
        assert_eq!(res, Err(RpcError::TimedOut));
        assert_eq!(xprt.stats().retransmits, 2);
    }

    #[test]
    fn backoff_is_capped_at_max_timeout() {
        let sim = Sim::new();
        let kernel = Kernel::new(&sim, KernelConfig::default());
        let (cnic, crx) = Nic::new(&sim, "client", NicSpec::gigabit());
        let (snic, _srx_dropped) = Nic::new(&sim, "server", NicSpec::gigabit());
        let to_server = Path::new(cnic, snic, Path::default_latency());
        // Start at 30 s so the doubling crosses the 60 s ceiling on the
        // first backoff: waits are 30 + 60 + 60 + 60 = 210 s. Uncapped
        // doubling would wait 30 + 60 + 120 + 240 = 450 s.
        let xprt = RpcXprt::new(
            &kernel,
            to_server,
            crx,
            100_003,
            3,
            XprtConfig {
                max_retries: 3,
                initial_timeout: SimDuration::from_secs(30),
                ..XprtConfig::default()
            },
        );
        let x = Rc::clone(&xprt);
        let res = sim.run_until(async move { x.call(7, &1u32).await });
        assert_eq!(res, Err(RpcError::TimedOut));
        assert_eq!(xprt.stats().retransmits, 3);
        let elapsed = sim.now() - nfsperf_sim::SimTime::ZERO;
        assert!(
            elapsed >= SimDuration::from_secs(210),
            "gave up too early: {elapsed:?}"
        );
        assert!(
            elapsed < SimDuration::from_secs(211),
            "backoff not capped at 60 s: {elapsed:?}"
        );
    }

    #[test]
    fn bkl_held_mode_blames_sendmsg_for_waits() {
        let sim = Sim::new();
        let (kernel, xprt) = build(&sim, XprtConfig::default(), SimDuration::from_micros(50));
        let s = sim.clone();
        let k2 = kernel.clone();
        sim.run_until(async move {
            // Saturate the transmit path from one task...
            let x = Rc::clone(&xprt);
            let sender = s.spawn(async move {
                for _ in 0..50 {
                    x.call(7, &1u32).await.unwrap();
                }
            });
            // ...while another task repeatedly takes the BKL like a writer.
            let contender = s.spawn({
                let k = k2.clone();
                async move {
                    for _ in 0..50 {
                        let _g = k.bkl.lock("nfs_commit_write").await;
                        k.cpus
                            .work("nfs_commit_write", SimDuration::from_micros(5))
                            .await;
                    }
                }
            });
            sender.await;
            contender.await;
        });
        let stats = kernel.bkl.stats();
        // The writer's lock waits should be blamed overwhelmingly on the
        // rpc_xmit section (which contains sock_sendmsg in stock mode).
        let blamed_xmit = stats.wait_blamed_on("rpc_xmit");
        let total = stats.total_wait;
        assert!(
            blamed_xmit.as_nanos() * 10 >= total.as_nanos() * 5,
            "xmit should dominate lock waits: {blamed_xmit} of {total}"
        );
    }

    #[test]
    fn no_lock_mode_reduces_writer_wait() {
        let run = |hold: bool| -> u64 {
            let sim = Sim::new();
            let (kernel, xprt) = build(
                &sim,
                XprtConfig {
                    bkl_around_sendmsg: hold,
                    ..XprtConfig::default()
                },
                SimDuration::from_micros(50),
            );
            let s = sim.clone();
            let k2 = kernel.clone();
            sim.run_until(async move {
                let x = Rc::clone(&xprt);
                let sender = s.spawn(async move {
                    for _ in 0..100 {
                        x.call(7, &1u32).await.unwrap();
                    }
                });
                let contender = s.spawn({
                    let k = k2.clone();
                    async move {
                        for _ in 0..100 {
                            let _g = k.bkl.lock("nfs_commit_write").await;
                            k.cpus
                                .work("nfs_commit_write", SimDuration::from_micros(5))
                                .await;
                        }
                    }
                });
                sender.await;
                contender.await;
            });
            kernel.bkl.stats().total_wait.as_nanos()
        };
        let held = run(true);
        let released = run(false);
        assert!(
            released * 2 < held,
            "releasing the BKL around sendmsg should at least halve lock \
             waits: held={held}ns released={released}ns"
        );
    }
}
