//! RFC 1831 §10 record marking: framing RPC messages on a byte stream.
//!
//! TCP gives the RPC layer a byte stream with no message boundaries, so
//! each RPC message travels as a *record*: a sequence of fragments, each
//! preceded by a 4-byte big-endian header whose low 31 bits are the
//! fragment length and whose top bit marks the record's last fragment.
//!
//! The writer side normally emits one maximal fragment per message
//! ([`encode_record`]); [`encode_record_frags`] exists to exercise
//! multi-fragment records, which a conforming reader must accept at any
//! fragment boundaries. The reader ([`RecordReader`]) is incremental: feed
//! it stream bytes as they arrive, pull out complete records as they
//! become available.

/// Top bit of the fragment header: this fragment completes the record.
pub const LAST_FRAGMENT: u32 = 0x8000_0000;

/// Largest fragment body expressible in the 31-bit length field.
pub const MAX_FRAGMENT: usize = 0x7fff_ffff;

/// Frames one RPC message as a single-fragment record.
pub fn encode_record(msg: &[u8]) -> Vec<u8> {
    encode_record_frags(msg, MAX_FRAGMENT)
}

/// Frames one RPC message as a record of fragments of at most `max_frag`
/// bytes each. An empty message still produces one (empty) last fragment.
pub fn encode_record_frags(msg: &[u8], max_frag: usize) -> Vec<u8> {
    assert!(
        (1..=MAX_FRAGMENT).contains(&max_frag),
        "fragment size {max_frag} out of range"
    );
    let mut out = Vec::with_capacity(msg.len() + 8);
    let mut off = 0;
    loop {
        let len = (msg.len() - off).min(max_frag);
        let last = off + len == msg.len();
        let header = len as u32 | if last { LAST_FRAGMENT } else { 0 };
        out.extend_from_slice(&header.to_be_bytes());
        out.extend_from_slice(&msg[off..off + len]);
        off += len;
        if last {
            return out;
        }
    }
}

/// Incremental record parser for one direction of a stream connection.
///
/// Bytes go in via [`push`](RecordReader::push) in whatever chunks the
/// transport delivers; complete records come out of
/// [`next_record`](RecordReader::next_record). Partial headers, partial
/// fragments and records split across many pushes are all handled.
#[derive(Debug, Default)]
pub struct RecordReader {
    stream: Vec<u8>,
    assembled: Vec<u8>,
}

impl RecordReader {
    /// Creates an empty reader.
    pub fn new() -> RecordReader {
        RecordReader::default()
    }

    /// Appends bytes received from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.stream.extend_from_slice(bytes);
    }

    /// Extracts the next complete record, if the stream holds one.
    pub fn next_record(&mut self) -> Option<Vec<u8>> {
        loop {
            if self.stream.len() < 4 {
                return None;
            }
            let header = u32::from_be_bytes(self.stream[0..4].try_into().unwrap());
            let len = (header & !LAST_FRAGMENT) as usize;
            let last = header & LAST_FRAGMENT != 0;
            if self.stream.len() < 4 + len {
                return None;
            }
            self.assembled.extend_from_slice(&self.stream[4..4 + len]);
            self.stream.drain(..4 + len);
            if last {
                return Some(std::mem::take(&mut self.assembled));
            }
        }
    }

    /// Bytes buffered but not yet returned as a record.
    pub fn buffered(&self) -> usize {
        self.stream.len() + self.assembled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fragment_round_trip() {
        let msg = b"call body".to_vec();
        let wire = encode_record(&msg);
        assert_eq!(wire.len(), msg.len() + 4);
        assert_eq!(wire[0] & 0x80, 0x80, "last-fragment bit set");
        let mut rd = RecordReader::new();
        rd.push(&wire);
        assert_eq!(rd.next_record().unwrap(), msg);
        assert_eq!(rd.next_record(), None);
        assert_eq!(rd.buffered(), 0);
    }

    #[test]
    fn empty_record_round_trips() {
        let wire = encode_record(&[]);
        assert_eq!(wire, 0x8000_0000u32.to_be_bytes());
        let mut rd = RecordReader::new();
        rd.push(&wire);
        assert_eq!(rd.next_record().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn multi_fragment_and_byte_at_a_time_delivery() {
        let msg: Vec<u8> = (0..100u8).collect();
        let wire = encode_record_frags(&msg, 7);
        // 100 bytes in 7-byte fragments: 15 headers.
        assert_eq!(wire.len(), msg.len() + 15 * 4);
        let mut rd = RecordReader::new();
        let mut out = Vec::new();
        for b in &wire {
            rd.push(std::slice::from_ref(b));
            if let Some(r) = rd.next_record() {
                out.push(r);
            }
        }
        assert_eq!(out, vec![msg]);
    }

    #[test]
    fn back_to_back_records_stay_separate() {
        let a = vec![1u8; 10];
        let b = vec![2u8; 20];
        let mut rd = RecordReader::new();
        let mut wire = encode_record_frags(&a, 4);
        wire.extend(encode_record(&b));
        rd.push(&wire);
        assert_eq!(rd.next_record().unwrap(), a);
        assert_eq!(rd.next_record().unwrap(), b);
        assert_eq!(rd.next_record(), None);
    }
}
