//! # nfsperf-tcp — a deterministic TCP connection model
//!
//! A byte-stream transport layered on `nfsperf-net`'s datagram NICs, built
//! for the UDP-vs-TCP transport experiments: every mechanism that shapes
//! NFS-over-TCP write throughput is modeled (three-way-handshake setup
//! cost, ACK-clocked in-order delivery, slow start + AIMD congestion
//! window, RTO with Jacobson/Karels estimation and Karn's rule, fast
//! retransmit on triple duplicate ACK, reconnection after failure), while
//! everything irrelevant to the reproduction is not (no receive-window flow
//! control, no delayed ACKs, no TIME-WAIT, 64-bit never-wrapping sequence
//! numbers).
//!
//! Segments travel as ordinary `nfsperf-net` datagrams, so they share the
//! UDP stack's serialization, latency, IP-fragmentation and seeded-loss
//! models — a lost datagram costs TCP one segment, where it costs the UDP
//! RPC transport the entire RPC. That asymmetry is the point of the
//! `experiments::transport` loss sweep.
//!
//! Everything is single-threaded and deterministic: same seeds, same wire
//! schedule, bit-for-bit.

mod conn;
mod endpoint;
pub mod segment;

pub use conn::{TcpConfig, TcpConn, TcpError};
pub use endpoint::{TcpEndpoint, TcpStats};

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use nfsperf_net::{Nic, NicSpec, Path};
    use nfsperf_sim::{Sim, SimDuration};

    use crate::{TcpConfig, TcpConn, TcpEndpoint, TcpError, TcpStats};

    /// Builds a client/server endpoint pair. Loss applies to datagrams the
    /// client NIC transmits (requests and the client's ACKs).
    fn world(loss: f64) -> (Sim, Rc<TcpEndpoint>, Rc<TcpEndpoint>) {
        let sim = Sim::new();
        let (client_nic, client_rx) =
            Nic::with_loss(&sim, "client", NicSpec::gigabit(), loss, 42);
        let (server_nic, server_rx) = Nic::new(&sim, "server", NicSpec::gigabit());
        let c2s = Path::new(client_nic, server_nic, Path::default_latency());
        let s2c = c2s.reversed();
        let client = TcpEndpoint::new(&sim, c2s, client_rx, TcpConfig::for_mtu(1500));
        let server = TcpEndpoint::new(&sim, s2c, server_rx, TcpConfig::for_mtu(1500));
        (sim, client, server)
    }

    async fn recv_exactly(conn: &Rc<TcpConn>, n: usize) -> Vec<u8> {
        let mut out = Vec::new();
        while out.len() < n {
            out.extend(conn.recv_some().await.expect("stream ended early"));
        }
        out
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn handshake_and_echo() {
        let (sim, client, server) = world(0.0);
        let server_task = sim.spawn({
            let server = Rc::clone(&server);
            async move {
                let conn = server.accept().await.unwrap();
                let req = recv_exactly(&conn, 5).await;
                conn.send(&req).unwrap();
                req
            }
        });
        let (elapsed, echoed) = sim.run_until({
            let sim = sim.clone();
            async move {
                let t0 = sim.now();
                let conn = client.connect().await.unwrap();
                let setup = sim.now() - t0;
                conn.send(b"hello").unwrap();
                let reply = recv_exactly(&conn, 5).await;
                assert_eq!(reply, b"hello");
                (setup, server_task.await)
            }
        });
        assert_eq!(echoed, b"hello");
        // Handshake costs at least one round trip but well under a
        // millisecond on an idle gigabit link with 30 us propagation.
        assert!(elapsed >= SimDuration::from_micros(60), "setup {elapsed:?}");
        assert!(elapsed < SimDuration::from_millis(1), "setup {elapsed:?}");
    }

    /// Runs a one-way bulk transfer and returns (elapsed, stats).
    fn bulk(loss: f64, size: usize) -> (SimDuration, TcpStats) {
        let (sim, client, server) = world(loss);
        let data = payload(size);
        let expect = data.clone();
        let server_task = sim.spawn({
            let server = Rc::clone(&server);
            async move {
                let conn = server.accept().await.unwrap();
                recv_exactly(&conn, size).await
            }
        });
        let received = sim.run_until({
            let client = Rc::clone(&client);
            async move {
                let conn = client.connect().await.unwrap();
                conn.send(&data).unwrap();
                server_task.await
            }
        });
        assert_eq!(received, expect, "stream corrupted");
        (sim.now() - nfsperf_sim::SimTime::ZERO, client.stats())
    }

    #[test]
    fn lossless_bulk_transfer_never_retransmits() {
        let (elapsed, stats) = bulk(0.0, 512 * 1024);
        assert_eq!(stats.retransmits, 0);
        assert_eq!(stats.rto_timeouts, 0);
        // 512 KB at ~1 Gb/s is ~4 ms; slow start and ACK clocking may
        // stretch it, but it must stay in the same order of magnitude.
        assert!(elapsed < SimDuration::from_millis(60), "took {elapsed:?}");
    }

    #[test]
    fn heavy_loss_recovers_every_byte() {
        let (_elapsed, stats) = bulk(0.2, 100 * 1024);
        assert!(stats.retransmits > 0, "expected retransmissions: {stats:?}");
        assert!(
            stats.rto_timeouts > 0 || stats.fast_retransmits > 0,
            "loss recovered without any recovery mechanism firing: {stats:?}"
        );
    }

    #[test]
    fn moderate_loss_uses_fast_retransmit() {
        let (_elapsed, stats) = bulk(0.02, 512 * 1024);
        assert!(
            stats.fast_retransmits > 0,
            "expected triple-dup-ACK recovery: {stats:?}"
        );
    }

    #[test]
    fn slow_start_opens_the_window() {
        let (sim, client, server) = world(0.0);
        let size = 256 * 1024;
        let server_task = sim.spawn({
            let server = Rc::clone(&server);
            async move {
                let conn = server.accept().await.unwrap();
                recv_exactly(&conn, size).await.len()
            }
        });
        let (initial_cwnd, final_cwnd) = sim.run_until(async move {
            let conn = client.connect().await.unwrap();
            let initial = conn.cwnd();
            conn.send(&payload(size)).unwrap();
            server_task.await;
            (initial, conn.cwnd())
        });
        assert!(final_cwnd > initial_cwnd, "{initial_cwnd} -> {final_cwnd}");
        assert!(final_cwnd <= 64 * 1024, "cwnd exceeded cap: {final_cwnd}");
    }

    #[test]
    fn connect_gives_up_when_peer_is_gone() {
        let sim = Sim::new();
        let (client_nic, client_rx) = Nic::new(&sim, "client", NicSpec::gigabit());
        // The server NIC exists but nothing reads or answers it.
        let (server_nic, _server_rx) = Nic::new(&sim, "server", NicSpec::gigabit());
        let path = Path::new(client_nic, server_nic, Path::default_latency());
        let client = TcpEndpoint::new(&sim, path, client_rx, TcpConfig::for_mtu(1500));
        let err = sim.run_until(async move { client.connect().await.err().unwrap() });
        assert_eq!(err, TcpError::ConnectTimedOut);
        // 5 retries with doubling backoff from 1 s: 1+2+4+8+16+32 = 63 s.
        assert_eq!(sim.now() - nfsperf_sim::SimTime::ZERO, SimDuration::from_secs(63));
    }

    #[test]
    fn abort_resets_the_peer() {
        let (sim, client, server) = world(0.0);
        let server_task = sim.spawn({
            let server = Rc::clone(&server);
            async move {
                let conn = server.accept().await.unwrap();
                let first = recv_exactly(&conn, 4).await;
                let err = loop {
                    match conn.recv_some().await {
                        Ok(_) => continue,
                        Err(e) => break e,
                    }
                };
                (first, err)
            }
        });
        let (first, err) = sim.run_until({
            let sim = sim.clone();
            async move {
                let conn = client.connect().await.unwrap();
                conn.send(b"data").unwrap();
                // Give the bytes time to arrive, then kill the connection.
                sim.sleep(SimDuration::from_millis(5)).await;
                conn.abort();
                assert!(!conn.is_open());
                server_task.await
            }
        });
        assert_eq!(first, b"data");
        assert_eq!(err, TcpError::Reset);
    }

    #[test]
    fn close_delivers_end_of_stream() {
        let (sim, client, server) = world(0.0);
        let server_task = sim.spawn({
            let server = Rc::clone(&server);
            async move {
                let conn = server.accept().await.unwrap();
                let data = recv_exactly(&conn, 4).await;
                let end = conn.recv_some().await.unwrap_err();
                (data, end)
            }
        });
        let (data, end) = sim.run_until({
            let sim = sim.clone();
            async move {
                let conn = client.connect().await.unwrap();
                conn.send(b"done").unwrap();
                sim.sleep(SimDuration::from_millis(5)).await;
                conn.close();
                server_task.await
            }
        });
        assert_eq!(data, b"done");
        assert_eq!(end, TcpError::Closed);
    }

    #[test]
    fn lossy_transfer_is_deterministic() {
        let a = bulk(0.05, 200 * 1024);
        let b = bulk(0.05, 200 * 1024);
        assert_eq!(a.0, b.0, "elapsed time diverged");
        assert_eq!(a.1, b.1, "transport stats diverged");
    }
}
