//! Wire format of the simulated TCP segment.
//!
//! Each segment travels as one `nfsperf-net` datagram payload, so it is
//! subject to the same serialization, propagation, loss and IP-fragmentation
//! model as a UDP datagram of the same size. The header is a fixed 24 bytes,
//! big-endian, chosen so that with the 20-byte IP and 8-byte UDP framing the
//! link layer adds, an MSS of `mtu - 52` keeps every full segment inside a
//! single IP fragment (1448 bytes at MTU 1500, 8948 at MTU 9000).

/// Synchronize: connection setup. Consumes sequence number 0.
pub const FLAG_SYN: u8 = 0x01;
/// The `ack` field is valid.
pub const FLAG_ACK: u8 = 0x02;
/// Sender is done sending (best-effort half close).
pub const FLAG_FIN: u8 = 0x04;
/// Abortive close; the receiver drops all connection state.
pub const FLAG_RST: u8 = 0x08;

/// Bytes of simulated TCP header per segment.
pub const HEADER_LEN: usize = 24;

/// One simulated TCP segment.
///
/// Sequence numbers are 64-bit and never wrap: the SYN occupies sequence 0
/// in each direction and application data starts at sequence 1. `ack` is the
/// next sequence number the sender of the segment expects to receive
/// (cumulative acknowledgment), valid when [`FLAG_ACK`] is set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Connection this segment belongs to; chosen by the active opener.
    pub conn_id: u32,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: u64,
    /// Cumulative acknowledgment: next expected sequence number.
    pub ack: u64,
    /// Bitwise OR of the `FLAG_*` constants.
    pub flags: u8,
    /// Application bytes carried, at most one MSS.
    pub payload: Vec<u8>,
}

impl Segment {
    /// Serializes the segment into one datagram payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.conn_id.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(self.flags);
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a datagram payload back into a segment.
    ///
    /// Returns `None` for payloads shorter than the fixed header (which a
    /// conforming peer never produces).
    pub fn decode(bytes: &[u8]) -> Option<Segment> {
        if bytes.len() < HEADER_LEN {
            return None;
        }
        let conn_id = u32::from_be_bytes(bytes[0..4].try_into().unwrap());
        let seq = u64::from_be_bytes(bytes[4..12].try_into().unwrap());
        let ack = u64::from_be_bytes(bytes[12..20].try_into().unwrap());
        let flags = bytes[20];
        Some(Segment {
            conn_id,
            seq,
            ack,
            flags,
            payload: bytes[HEADER_LEN..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let seg = Segment {
            conn_id: 7,
            seq: 0x1_0000_0001,
            ack: 42,
            flags: FLAG_ACK | FLAG_FIN,
            payload: vec![1, 2, 3, 4, 5],
        };
        let wire = seg.encode();
        assert_eq!(wire.len(), HEADER_LEN + 5);
        assert_eq!(Segment::decode(&wire).unwrap(), seg);
    }

    #[test]
    fn short_payload_rejected() {
        assert!(Segment::decode(&[0u8; HEADER_LEN - 1]).is_none());
    }
}
