//! The per-NIC TCP endpoint: owns the datagram receive queue, demultiplexes
//! segments to connections by connection id, and implements active
//! (`connect`) and passive (`accept`) opens.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use nfsperf_net::{DatagramPayload, Path};
use nfsperf_sim::{channel, select2, Either, Receiver, Sender, Sim};

use crate::conn::{SharedCounters, TcpConfig, TcpConn, TcpError};
use crate::segment::{Segment, FLAG_ACK, FLAG_SYN};

/// Aggregate transport counters for one endpoint (all its connections).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Active opens attempted.
    pub connects: u64,
    /// Segments of any kind transmitted (data, ACK, SYN, FIN, RST).
    pub segments_sent: u64,
    /// Segments carrying payload.
    pub data_segments_sent: u64,
    /// All retransmitted segments (RTO + fast retransmit + SYN/SYN-ACK).
    pub retransmits: u64,
    /// Retransmissions triggered by triple duplicate ACK.
    pub fast_retransmits: u64,
    /// Retransmission-timer expirations.
    pub rto_timeouts: u64,
}

/// One end of the simulated TCP stack, bound to a NIC receive queue and a
/// transmit [`Path`].
///
/// Connection ids are chosen by the active opener; this model has a single
/// initiator per endpoint pair (the NFS client), so ids never collide.
pub struct TcpEndpoint {
    sim: Sim,
    path: Path,
    config: TcpConfig,
    conns: RefCell<HashMap<u32, Rc<TcpConn>>>,
    accept_tx: Sender<Rc<TcpConn>>,
    accept_rx: Receiver<Rc<TcpConn>>,
    next_id: Cell<u32>,
    counters: Rc<SharedCounters>,
}

impl TcpEndpoint {
    /// Creates the endpoint and spawns its demultiplexer over `rx`, the
    /// receive queue of the NIC `path.local` transmits from.
    pub fn new(
        sim: &Sim,
        path: Path,
        rx: Receiver<DatagramPayload>,
        config: TcpConfig,
    ) -> Rc<TcpEndpoint> {
        let (accept_tx, accept_rx) = channel();
        let ep = Rc::new(TcpEndpoint {
            sim: sim.clone(),
            path,
            config,
            conns: RefCell::new(HashMap::new()),
            accept_tx,
            accept_rx,
            next_id: Cell::new(1),
            counters: Rc::new(SharedCounters::default()),
        });
        let demux = Rc::clone(&ep);
        sim.spawn(async move { demux.demux_loop(rx).await });
        ep
    }

    /// The endpoint's TCP configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.config
    }

    /// Aggregate counters across all connections of this endpoint.
    pub fn stats(&self) -> TcpStats {
        TcpStats {
            connects: self.counters.connects.get(),
            segments_sent: self.counters.segments_sent.get(),
            data_segments_sent: self.counters.data_segments_sent.get(),
            retransmits: self.counters.retransmits.get(),
            fast_retransmits: self.counters.fast_retransmits.get(),
            rto_timeouts: self.counters.rto_timeouts.get(),
        }
    }

    /// Active open: runs the three-way handshake, retrying the SYN with
    /// exponential backoff up to `syn_retries` times.
    pub async fn connect(self: &Rc<Self>) -> Result<Rc<TcpConn>, TcpError> {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        self.counters.connects.inc();
        let conn = TcpConn::active(
            &self.sim,
            self.path.clone(),
            self.config.clone(),
            id,
            Rc::clone(&self.counters),
        );
        self.conns.borrow_mut().insert(id, Rc::clone(&conn));
        let mut timeout = self.config.initial_rto;
        let mut attempt = 0u32;
        loop {
            match select2(conn.wait_established(), self.sim.sleep(timeout)).await {
                Either::Left(Ok(())) => return Ok(conn),
                Either::Left(Err(e)) => return Err(e),
                Either::Right(()) => {
                    if attempt >= self.config.syn_retries {
                        conn.abort();
                        return Err(TcpError::ConnectTimedOut);
                    }
                    attempt += 1;
                    timeout = (timeout * 2).min(self.config.max_rto);
                    self.counters.retransmits.inc();
                    self.resend_syn(&conn);
                }
            }
        }
    }

    fn resend_syn(&self, conn: &Rc<TcpConn>) {
        // Retransmitted SYN, identical to the original.
        self.counters.segments_sent.inc();
        self.path.send(
            Segment {
                conn_id: conn.id(),
                seq: 0,
                ack: 0,
                flags: FLAG_SYN,
                payload: Vec::new(),
            }
            .encode(),
        );
    }

    /// Passive open: yields the next incoming connection. The connection is
    /// queued as soon as its SYN arrives (its handshake may still be
    /// completing); servers can start `recv_some` immediately.
    pub async fn accept(&self) -> Option<Rc<TcpConn>> {
        self.accept_rx.recv().await
    }

    async fn demux_loop(self: Rc<Self>, rx: Receiver<DatagramPayload>) {
        while let Some(datagram) = rx.recv().await {
            let Some(seg) = Segment::decode(&datagram) else {
                continue;
            };
            let existing = self.conns.borrow().get(&seg.conn_id).cloned();
            match existing {
                Some(conn) => conn.on_segment(seg),
                None => {
                    // A SYN for an unknown id is a passive open; anything
                    // else is a stale segment for a connection we already
                    // dropped — ignore it.
                    if seg.flags & FLAG_SYN != 0 && seg.flags & FLAG_ACK == 0 {
                        let conn = TcpConn::passive(
                            &self.sim,
                            self.path.clone(),
                            self.config.clone(),
                            seg.conn_id,
                            Rc::clone(&self.counters),
                        );
                        self.conns.borrow_mut().insert(seg.conn_id, Rc::clone(&conn));
                        self.accept_tx.send(conn);
                    }
                }
            }
        }
    }
}
