//! One simulated TCP connection.
//!
//! The model keeps the mechanisms that matter for NFS-over-TCP performance
//! and drops everything else:
//!
//! - **Reliable, in-order byte stream.** Data is sequenced per byte; the
//!   receiver buffers out-of-order segments and delivers contiguously.
//! - **ACK-clocked sending with congestion control.** Slow start doubles the
//!   window every RTT until `ssthresh`, then AIMD grows it by one MSS per
//!   RTT. A loss detected by triple duplicate ACK halves the window (fast
//!   retransmit); a retransmission timeout collapses it to one MSS.
//! - **RTO estimation.** Jacobson/Karels smoothed RTT plus variance, with
//!   Karn's rule (no samples from retransmitted data) and exponential
//!   backoff capped at `max_rto`.
//! - **Connection setup and teardown.** A SYN/SYN-ACK/ACK handshake paying
//!   real link latency, plus best-effort FIN and abortive RST.
//!
//! There is no receive-window flow control (the simulated receiver drains
//! promptly and memory is not the modeled bottleneck) and no delayed ACKs
//! (every data segment is acknowledged immediately, which keeps the ACK
//! clock simple and deterministic).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use nfsperf_net::Path;
use nfsperf_sim::{select2, Counter, Either, Sim, SimDuration, SimTime, WaitQueue};

use crate::segment::{Segment, FLAG_ACK, FLAG_FIN, FLAG_RST, FLAG_SYN};

/// Tunables of the TCP model.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size (application bytes per segment).
    pub mss: usize,
    /// Initial congestion window in bytes (RFC 3390-style: a few segments).
    pub initial_cwnd: usize,
    /// Upper bound on the congestion window (stands in for the peer's
    /// receive window / socket buffer).
    pub max_cwnd: usize,
    /// Initial retransmission timeout before any RTT sample.
    pub initial_rto: SimDuration,
    /// Lower bound on the RTO.
    pub min_rto: SimDuration,
    /// Upper bound on the RTO (and on SYN retry backoff).
    pub max_rto: SimDuration,
    /// SYN retransmissions before `connect` gives up.
    pub syn_retries: u32,
    /// Duplicate ACKs that trigger a fast retransmit.
    pub dupack_threshold: u32,
}

impl TcpConfig {
    /// A configuration whose MSS fills exactly one IP fragment at `mtu`.
    ///
    /// The simulated segment header is 24 bytes and the link adds 20 (IP) +
    /// 8 (UDP framing) more, so `mss = mtu - 52` makes a full segment's
    /// datagram exactly `mtu - 24` bytes — one fragment, like a real TCP
    /// segment that fits the MTU.
    pub fn for_mtu(mtu: usize) -> TcpConfig {
        let mss = mtu.saturating_sub(52).max(512);
        TcpConfig {
            mss,
            initial_cwnd: 4 * mss,
            max_cwnd: 64 * 1024,
            initial_rto: SimDuration::from_secs(1),
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            syn_retries: 5,
            dupack_threshold: 3,
        }
    }
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig::for_mtu(1500)
    }
}

/// Why a stream operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// The connection is closed (local close, or the peer sent FIN and the
    /// receive buffer is drained).
    Closed,
    /// The peer aborted the connection with RST.
    Reset,
    /// The three-way handshake never completed.
    ConnectTimedOut,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Active opener: SYN sent, waiting for SYN-ACK.
    SynSent,
    /// Passive opener: SYN seen, SYN-ACK sent, waiting for the first ACK.
    SynReceived,
    Established,
    Closed,
}

/// Endpoint-wide counters, shared by all connections of a [`TcpEndpoint`].
#[derive(Debug, Default)]
pub(crate) struct SharedCounters {
    pub connects: Counter,
    pub segments_sent: Counter,
    pub data_segments_sent: Counter,
    pub retransmits: Counter,
    pub fast_retransmits: Counter,
    pub rto_timeouts: Counter,
}

/// One end of a simulated TCP connection.
///
/// Single-threaded like everything in the simulation: interior mutability
/// via `Cell`/`RefCell`, driven by the endpoint's demultiplexer task and a
/// per-connection retransmission-timer task.
pub struct TcpConn {
    sim: Sim,
    path: Path,
    config: TcpConfig,
    id: u32,
    counters: Rc<SharedCounters>,

    state: Cell<State>,
    established: WaitQueue,
    reset_seen: Cell<bool>,

    // Send side. The buffer holds bytes [snd_una, snd_end); its front is
    // dropped as cumulative ACKs advance snd_una.
    snd_una: Cell<u64>,
    snd_nxt: Cell<u64>,
    snd_end: Cell<u64>,
    snd_buf: RefCell<Vec<u8>>,
    cwnd: Cell<u64>,
    ssthresh: Cell<u64>,
    dup_acks: Cell<u32>,

    // RTO machinery. `timer_epoch` invalidates a running timer whenever the
    // leading unacknowledged byte changes; `rtt_probe` times one in-flight
    // segment at a time and is cleared on retransmission (Karn's rule).
    rto: Cell<SimDuration>,
    srtt: Cell<Option<(SimDuration, SimDuration)>>,
    rtt_probe: Cell<Option<(u64, SimTime)>>,
    timer_epoch: Cell<u64>,
    timer_kick: WaitQueue,

    // Receive side.
    rcv_nxt: Cell<u64>,
    out_of_order: RefCell<BTreeMap<u64, Vec<u8>>>,
    app_rx: RefCell<Vec<u8>>,
    rx_waiters: WaitQueue,
    fin_seen: Cell<bool>,
}

impl TcpConn {
    fn new(
        sim: &Sim,
        path: Path,
        config: TcpConfig,
        id: u32,
        counters: Rc<SharedCounters>,
        state: State,
    ) -> Rc<TcpConn> {
        let initial_cwnd = config.initial_cwnd as u64;
        let initial_rto = config.initial_rto;
        let max_cwnd = config.max_cwnd as u64;
        let conn = Rc::new(TcpConn {
            sim: sim.clone(),
            path,
            config,
            id,
            counters,
            state: Cell::new(state),
            established: WaitQueue::new(),
            reset_seen: Cell::new(false),
            snd_una: Cell::new(1),
            snd_nxt: Cell::new(1),
            snd_end: Cell::new(1),
            snd_buf: RefCell::new(Vec::new()),
            cwnd: Cell::new(initial_cwnd),
            ssthresh: Cell::new(max_cwnd),
            dup_acks: Cell::new(0),
            rto: Cell::new(initial_rto),
            srtt: Cell::new(None),
            rtt_probe: Cell::new(None),
            timer_epoch: Cell::new(0),
            timer_kick: WaitQueue::new(),
            rcv_nxt: Cell::new(1),
            out_of_order: RefCell::new(BTreeMap::new()),
            app_rx: RefCell::new(Vec::new()),
            rx_waiters: WaitQueue::new(),
            fin_seen: Cell::new(false),
        });
        let timer = Rc::clone(&conn);
        sim.spawn(async move { timer.timer_loop().await });
        conn
    }

    /// Active open: creates the connection and transmits the initial SYN.
    /// The caller ([`TcpEndpoint::connect`]) drives SYN retries.
    pub(crate) fn active(
        sim: &Sim,
        path: Path,
        config: TcpConfig,
        id: u32,
        counters: Rc<SharedCounters>,
    ) -> Rc<TcpConn> {
        let conn = TcpConn::new(sim, path, config, id, counters, State::SynSent);
        conn.send_syn();
        conn
    }

    /// Passive open: created by the endpoint on an incoming SYN; replies
    /// with SYN-ACK immediately.
    pub(crate) fn passive(
        sim: &Sim,
        path: Path,
        config: TcpConfig,
        id: u32,
        counters: Rc<SharedCounters>,
    ) -> Rc<TcpConn> {
        let conn = TcpConn::new(sim, path, config, id, counters, State::SynReceived);
        conn.send_raw(FLAG_SYN | FLAG_ACK, 0, 1, Vec::new());
        conn
    }

    /// The connection id shared by both ends.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// True until the connection is fully closed.
    pub fn is_open(&self) -> bool {
        self.state.get() != State::Closed
    }

    /// Current congestion window in bytes (exposed for tests/experiments).
    pub fn cwnd(&self) -> u64 {
        self.cwnd.get()
    }

    /// Current retransmission timeout (exposed for tests).
    pub fn rto(&self) -> SimDuration {
        self.rto.get()
    }

    /// Resolves once the three-way handshake completes, or fails if the
    /// connection dies first.
    pub async fn wait_established(&self) -> Result<(), TcpError> {
        loop {
            match self.state.get() {
                State::Established => return Ok(()),
                State::Closed => {
                    return Err(if self.reset_seen.get() {
                        TcpError::Reset
                    } else {
                        TcpError::Closed
                    });
                }
                _ => self.established.wait().await,
            }
        }
    }

    /// Appends bytes to the send stream. Never blocks: transmission is
    /// paced purely by the congestion window, so `send` queues and the ACK
    /// clock drains. Fails once the connection is closed.
    pub fn send(self: &Rc<Self>, bytes: &[u8]) -> Result<(), TcpError> {
        if self.state.get() == State::Closed {
            return Err(if self.reset_seen.get() {
                TcpError::Reset
            } else {
                TcpError::Closed
            });
        }
        self.snd_buf.borrow_mut().extend_from_slice(bytes);
        self.snd_end.set(self.snd_end.get() + bytes.len() as u64);
        self.pump();
        Ok(())
    }

    /// Awaits and returns whatever contiguous bytes have arrived, like a
    /// `read()` on a stream socket. Errors once the stream is done:
    /// [`TcpError::Closed`] after FIN/local close, [`TcpError::Reset`]
    /// after RST.
    pub async fn recv_some(&self) -> Result<Vec<u8>, TcpError> {
        loop {
            {
                let mut buf = self.app_rx.borrow_mut();
                if !buf.is_empty() {
                    return Ok(std::mem::take(&mut *buf));
                }
            }
            if self.reset_seen.get() {
                return Err(TcpError::Reset);
            }
            if self.state.get() == State::Closed || self.fin_seen.get() {
                return Err(TcpError::Closed);
            }
            self.rx_waiters.wait().await;
        }
    }

    /// Best-effort orderly close: sends FIN and closes the local end. No
    /// TIME-WAIT modeling; the peer observes end-of-stream.
    pub fn close(self: &Rc<Self>) {
        if self.state.get() == State::Closed {
            return;
        }
        self.send_raw(FLAG_FIN | FLAG_ACK, self.snd_end.get(), self.rcv_nxt.get(), Vec::new());
        self.mark_closed();
    }

    /// Abortive close: sends RST and drops all state.
    pub fn abort(self: &Rc<Self>) {
        if self.state.get() == State::Closed {
            return;
        }
        self.send_raw(FLAG_RST, self.snd_nxt.get(), self.rcv_nxt.get(), Vec::new());
        self.reset_seen.set(true);
        self.mark_closed();
    }

    fn mark_closed(&self) {
        self.state.set(State::Closed);
        self.established.wake_all();
        self.rx_waiters.wake_all();
        self.timer_kick.wake_all();
    }

    fn send_syn(&self) {
        self.send_raw(FLAG_SYN, 0, 0, Vec::new());
    }

    fn send_raw(&self, flags: u8, seq: u64, ack: u64, payload: Vec<u8>) {
        self.counters.segments_sent.inc();
        if !payload.is_empty() {
            self.counters.data_segments_sent.inc();
        }
        let seg = Segment {
            conn_id: self.id,
            seq,
            ack,
            flags,
            payload,
        };
        self.path.send(seg.encode());
    }

    /// Transmits as much buffered data as the congestion window allows.
    fn pump(self: &Rc<Self>) {
        if self.state.get() != State::Established {
            return;
        }
        let mut sent = false;
        loop {
            let nxt = self.snd_nxt.get();
            let end = self.snd_end.get();
            let una = self.snd_una.get();
            if nxt >= end || nxt - una >= self.cwnd.get() {
                break;
            }
            let len = ((end - nxt) as usize).min(self.config.mss);
            let off = (nxt - una) as usize;
            let payload = self.snd_buf.borrow()[off..off + len].to_vec();
            if self.rtt_probe.get().is_none() {
                self.rtt_probe.set(Some((nxt + len as u64, self.sim.now())));
            }
            self.send_raw(FLAG_ACK, nxt, self.rcv_nxt.get(), payload);
            self.snd_nxt.set(nxt + len as u64);
            sent = true;
        }
        if sent {
            self.timer_kick.wake_all();
        }
    }

    /// Resends the first unacknowledged segment.
    fn retransmit_first(&self) {
        let una = self.snd_una.get();
        let nxt = self.snd_nxt.get();
        if nxt <= una {
            return;
        }
        let len = ((nxt - una) as usize).min(self.config.mss);
        let payload = self.snd_buf.borrow()[..len].to_vec();
        self.counters.retransmits.inc();
        // Karn's rule: a retransmitted range must not produce an RTT sample.
        self.rtt_probe.set(None);
        self.send_raw(FLAG_ACK, una, self.rcv_nxt.get(), payload);
    }

    fn rtt_update(&self, sample: SimDuration) {
        let (srtt, rttvar) = match self.srtt.get() {
            None => (sample, SimDuration(sample.0 / 2)),
            Some((srtt, rttvar)) => {
                // Jacobson/Karels with alpha = 1/8, beta = 1/4.
                let err = srtt.0.abs_diff(sample.0);
                let rttvar = SimDuration(rttvar.0 - rttvar.0 / 4 + err / 4);
                let srtt = SimDuration(srtt.0 - srtt.0 / 8 + sample.0 / 8);
                (srtt, rttvar)
            }
        };
        self.srtt.set(Some((srtt, rttvar)));
        let rto = SimDuration(srtt.0 + 4 * rttvar.0)
            .max(self.config.min_rto)
            .min(self.config.max_rto);
        self.rto.set(rto);
    }

    /// Main segment handler, called from the endpoint demultiplexer.
    pub(crate) fn on_segment(self: &Rc<Self>, seg: Segment) {
        if self.state.get() == State::Closed {
            return;
        }
        if seg.flags & FLAG_RST != 0 {
            self.reset_seen.set(true);
            self.mark_closed();
            return;
        }
        match self.state.get() {
            State::SynSent => {
                if seg.flags & FLAG_SYN != 0 && seg.flags & FLAG_ACK != 0 {
                    self.become_established();
                    // Complete the handshake; this ACK also opens the
                    // peer's SynReceived half.
                    self.send_raw(FLAG_ACK, self.snd_nxt.get(), self.rcv_nxt.get(), Vec::new());
                    self.pump();
                }
            }
            State::SynReceived => {
                if seg.flags & FLAG_SYN != 0 {
                    // Duplicate SYN: the SYN-ACK was lost; resend it.
                    self.counters.retransmits.inc();
                    self.send_raw(FLAG_SYN | FLAG_ACK, 0, 1, Vec::new());
                    return;
                }
                if seg.flags & FLAG_ACK != 0 && seg.ack >= 1 {
                    // Any ACK of our SYN opens the connection — including
                    // one piggybacked on first data if the pure handshake
                    // ACK was lost.
                    self.become_established();
                    self.process(seg);
                }
            }
            State::Established => self.process(seg),
            State::Closed => {}
        }
    }

    fn become_established(&self) {
        self.state.set(State::Established);
        self.established.wake_all();
        self.timer_kick.wake_all();
    }

    fn process(self: &Rc<Self>, seg: Segment) {
        if seg.flags & FLAG_ACK != 0 {
            self.process_ack(&seg);
        }
        if !seg.payload.is_empty() {
            self.accept_data(seg.seq, seg.payload);
            // Immediate cumulative ACK for every data segment. When the
            // segment left a gap this duplicates the previous ACK, which is
            // exactly what drives the sender's fast retransmit.
            self.send_raw(FLAG_ACK, self.snd_nxt.get(), self.rcv_nxt.get(), Vec::new());
        }
        if seg.flags & FLAG_FIN != 0 {
            self.fin_seen.set(true);
            self.rx_waiters.wake_all();
        }
    }

    fn process_ack(self: &Rc<Self>, seg: &Segment) {
        let una = self.snd_una.get();
        if seg.ack > una {
            // New data acknowledged.
            let advanced = (seg.ack - una) as usize;
            self.snd_buf.borrow_mut().drain(..advanced);
            self.snd_una.set(seg.ack);
            self.dup_acks.set(0);
            if let Some((probe_seq, sent_at)) = self.rtt_probe.get() {
                if seg.ack >= probe_seq {
                    self.rtt_probe.set(None);
                    self.rtt_update(self.sim.now() - sent_at);
                }
            }
            let mss = self.config.mss as u64;
            let cwnd = self.cwnd.get();
            let grown = if cwnd < self.ssthresh.get() {
                cwnd + mss // slow start: one MSS per ACK
            } else {
                cwnd + (mss * mss / cwnd).max(1) // congestion avoidance
            };
            self.cwnd.set(grown.min(self.config.max_cwnd as u64).max(mss));
            // Restart the retransmission timer for the new leading byte.
            self.timer_epoch.set(self.timer_epoch.get() + 1);
            self.timer_kick.wake_all();
            self.pump();
        } else if seg.ack == una
            && self.snd_nxt.get() > una
            && seg.payload.is_empty()
            && seg.flags & (FLAG_SYN | FLAG_FIN) == 0
        {
            // Duplicate ACK while data is outstanding.
            let dups = self.dup_acks.get() + 1;
            self.dup_acks.set(dups);
            if dups == self.config.dupack_threshold {
                self.counters.fast_retransmits.inc();
                let mss = self.config.mss as u64;
                let flight = self.snd_nxt.get() - una;
                let ssthresh = (flight / 2).max(2 * mss);
                self.ssthresh.set(ssthresh);
                self.cwnd.set(ssthresh);
                self.retransmit_first();
                self.timer_epoch.set(self.timer_epoch.get() + 1);
                self.timer_kick.wake_all();
            }
        }
    }

    fn accept_data(&self, seq: u64, data: Vec<u8>) {
        let rcv = self.rcv_nxt.get();
        if seq + data.len() as u64 <= rcv {
            return; // pure duplicate; the caller still re-ACKs
        }
        if seq > rcv {
            self.out_of_order.borrow_mut().entry(seq).or_insert(data);
            return;
        }
        // In-order (possibly overlapping the front): deliver, then drain
        // whatever out-of-order data became contiguous.
        let skip = (rcv - seq) as usize;
        let mut next = rcv;
        {
            let mut app = self.app_rx.borrow_mut();
            app.extend_from_slice(&data[skip..]);
            next += (data.len() - skip) as u64;
            let mut ooo = self.out_of_order.borrow_mut();
            while let Some((&s, _)) = ooo.range(..=next).next() {
                let d = ooo.remove(&s).unwrap();
                let d_end = s + d.len() as u64;
                if d_end > next {
                    app.extend_from_slice(&d[(next - s) as usize..]);
                    next = d_end;
                }
            }
        }
        self.rcv_nxt.set(next);
        self.rx_waiters.wake_all();
    }

    /// Retransmission-timer task: one per connection, lives until close.
    ///
    /// The timer sleeps `rto` from the last "kick" (send or leading-edge
    /// ACK, tracked by `timer_epoch`); if the epoch is unchanged when the
    /// sleep expires and data is still outstanding, that data's leading
    /// segment is retransmitted with the window collapsed to one MSS and
    /// the RTO doubled (exponential backoff, capped).
    async fn timer_loop(self: Rc<Self>) {
        loop {
            match self.state.get() {
                State::Closed => return,
                State::Established => {}
                _ => {
                    self.timer_kick.wait().await;
                    continue;
                }
            }
            if self.snd_una.get() == self.snd_nxt.get() {
                // Nothing outstanding; wait for a send.
                self.timer_kick.wait().await;
                continue;
            }
            let epoch = self.timer_epoch.get();
            let expired = matches!(
                select2(self.timer_kick.wait(), self.sim.sleep(self.rto.get())).await,
                Either::Right(())
            );
            if expired
                && self.state.get() == State::Established
                && self.timer_epoch.get() == epoch
                && self.snd_una.get() < self.snd_nxt.get()
            {
                self.counters.rto_timeouts.inc();
                let mss = self.config.mss as u64;
                let flight = self.snd_nxt.get() - self.snd_una.get();
                self.ssthresh.set((flight / 2).max(2 * mss));
                self.cwnd.set(mss);
                self.dup_acks.set(0);
                self.rto
                    .set((self.rto.get() * 2).min(self.config.max_rto));
                self.retransmit_first();
            }
        }
    }
}
